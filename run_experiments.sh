#!/bin/sh
# Regenerates every table and figure of the paper at full scale.
# Outputs land in results/*.json and results/*.txt.
set -e
cd "$(dirname "$0")"
mkdir -p results
run() {
  name=$1; shift
  echo "=== $name ==="
  env "$@" cargo run --release -p freeway-eval --bin "$name" > "results/$name.txt" 2>&1
  tail -4 "results/$name.txt"
}
run table1 FREEWAY_BATCHES=300 FREEWAY_BATCH_SIZE=256
run table2 FREEWAY_BATCHES=300 FREEWAY_BATCH_SIZE=256
run table3 FREEWAY_BATCHES=30
run table4
run table5 FREEWAY_BATCHES=150 FREEWAY_BATCH_SIZE=128
run table6 FREEWAY_BATCHES=20
run fig2   FREEWAY_BATCHES=200
run fig9   FREEWAY_BATCHES=200 FREEWAY_BATCH_SIZE=256
run fig10  FREEWAY_BATCHES=30
run fig11  FREEWAY_BATCHES=300 FREEWAY_BATCH_SIZE=256
run fig12  FREEWAY_BATCHES=100 FREEWAY_BATCH_SIZE=128
run ablations FREEWAY_BATCHES=200 FREEWAY_BATCH_SIZE=256
run extended  FREEWAY_BATCHES=150 FREEWAY_BATCH_SIZE=128
cargo run --release -p freeway-eval --bin summary > results/summary.txt 2>&1
tail -4 results/summary.txt
echo ALL-DONE
