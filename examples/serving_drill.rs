//! Multi-client serving drill: eight concurrent keyed sessions, each
//! under its own label-delivery regime, driving a 2-shard service.
//!
//! Every client runs on its own thread with a distinct routing key and a
//! distinct [`LabelSchedule`] — inline, delayed by 1/2/4 batches, or the
//! ISSUE regime (delay 4 **and** only 50% of labels surviving). A
//! turnstile keeps exactly one batch in flight globally, so the run —
//! cross-shard knowledge registry included — is a pure function of the
//! round-robin feed order, and `results/SERVING_drill.json` comes out
//! byte-identical across runs.
//!
//! Three acceptance checks run inline:
//!
//! 1. **Oracle** — replaying the service's recorded admitted order
//!    serially through an identically built (non-serving) pipeline must
//!    reproduce every client's transcript exactly.
//! 2. **Accuracy** — the regime-degraded run must land within 3 points
//!    of a fully-labeled run of the same streams (the learner's
//!    continuous pseudo-label mode carries the unlabeled batches).
//! 3. **Latency** — p99 submit latency stays bounded (printed, never
//!    written to the artifact: wall-clock would break byte-stability).
//!
//! ```sh
//! cargo run --release --example serving_drill
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use freewayml::chaos::LateLabels;
use freewayml::core::admission::{AdmissionConfig, AdmissionPolicy};
use freewayml::core::AdmittedRecord;
use freewayml::prelude::*;
use freewayml::streams::concept::{stream_rng, GmmConcept};

const DIM: usize = 6;
const CLASSES: usize = 2;
const ROWS: usize = 64;
const CLIENTS: usize = 8;
const BATCHES_PER_CLIENT: usize = 36;
const SHARDS: usize = 2;
/// Mild mid-stream translation — enough drift to exercise the strategy
/// selector without blowing the delayed-label accuracy budget.
const SHIFT_AT: usize = 18;

/// Per-client regimes: a spread of delays plus two clients on the ISSUE
/// acceptance regime (k = 4, 50% partial).
fn schedule_for(client: usize) -> LabelSchedule {
    let delays = [0u64, 1, 2, 4, 4, 2, 1, 0];
    let mut schedule = LabelSchedule::delayed(delays[client % delays.len()]);
    if client == 3 || client == 4 {
        schedule.keep_probability = 0.5;
        schedule.seed = 40 + client as u64;
    }
    schedule
}

/// Deterministic per-client stream: stationary GMM with one mild
/// translation mid-stream.
fn client_batches(key: u64) -> Vec<Batch> {
    let mut rng = stream_rng(9000 + key);
    let mut concept = GmmConcept::random(DIM, CLASSES, 2, 4.0, 0.6, &mut rng);
    (0..BATCHES_PER_CLIENT)
        .map(|i| {
            if i == SHIFT_AT {
                concept.translate(&[2.0; DIM]);
            }
            let (x, y) = concept.sample_batch(ROWS, &mut rng);
            Batch::labeled(x, y, i as u64, DriftPhase::Stable)
        })
        .collect()
}

fn builder() -> PipelineBuilder {
    PipelineBuilder::new(ModelSpec::lr(DIM, CLASSES))
        .with_config(FreewayConfig {
            pca_warmup_rows: 128,
            mini_batch: ROWS,
            enable_pseudo_labels: true,
            pseudo_label_min_purity: 0.7,
            ..Default::default()
        })
        .with_queue_depth(32)
        .admission(AdmissionConfig {
            policy: AdmissionPolicy::Block,
            ladder: None,
            ..Default::default()
        })
        .shards(SHARDS)
}

/// Round-robin turnstile: client `c` may act only on turns where
/// `turn % CLIENTS == c`, and each action (submit + await the answer)
/// completes before the turn advances — one batch in flight globally.
struct Turnstile {
    turn: Mutex<u64>,
    tick: Condvar,
}

impl Turnstile {
    fn new() -> Self {
        Self { turn: Mutex::new(0), tick: Condvar::new() }
    }

    fn wait_for(&self, expected: u64) {
        let mut turn = self.turn.lock().expect("turnstile healthy");
        while *turn != expected {
            turn = self.tick.wait(turn).expect("turnstile healthy");
        }
    }

    fn advance(&self) {
        *self.turn.lock().expect("turnstile healthy") += 1;
        self.tick.notify_all();
    }
}

/// Everything one client thread brings back.
struct ClientReport {
    key: u64,
    /// `(client_seq, predictions)` for every answered submission.
    transcript: Vec<(u64, Vec<usize>)>,
    /// The exact batches fed, by client seq — the oracle's replay input.
    submitted: Vec<Batch>,
    correct: usize,
    scored: usize,
    deferred: u64,
    arrived: u64,
    dropped: u64,
    max_lag: u64,
    submit_latencies: Vec<Duration>,
}

/// Submits one batch through the session, retrying on Busy, and waits
/// for its answer. Returns the predictions when the batch was answered.
fn submit_and_await(
    session: &mut ClientSession,
    batch: Batch,
    prequential: bool,
    latencies: &mut Vec<Duration>,
) -> Option<Vec<usize>> {
    let started = Instant::now();
    let mut pending = batch;
    loop {
        match session.submit_batch(pending, prequential) {
            Ok(_) => break,
            Err((back, ServeError::Busy { retry_after_hint })) => {
                std::thread::sleep(retry_after_hint);
                pending = back;
            }
            Err((_, err)) => panic!("submit failed: {err}"),
        }
    }
    latencies.push(started.elapsed());
    let out = session.recv_output().expect("service answers every submission");
    match out.outcome {
        SubmitOutcome::Answered(report) => Some(report.predictions),
        SubmitOutcome::Trained => None,
        SubmitOutcome::Shed(tag) => panic!("Block admission shed a batch: {tag}"),
        SubmitOutcome::Quarantined(tag) => panic!("clean batch quarantined: {tag}"),
        other => panic!("unexpected outcome: {other:?}"),
    }
}

fn run_client(
    mut session: ClientSession,
    key: u64,
    client: usize,
    schedule: LabelSchedule,
    turnstile: Arc<Turnstile>,
) -> ClientReport {
    let batches = client_batches(key);
    let truth: Vec<Vec<usize>> =
        batches.iter().map(|b| b.labels.clone().expect("generated labeled")).collect();
    let mut scheduler = LabelScheduler::new(schedule).expect("valid schedule");
    let mut report = ClientReport {
        key,
        transcript: Vec::new(),
        submitted: Vec::new(),
        correct: 0,
        scored: 0,
        deferred: 0,
        arrived: 0,
        dropped: 0,
        max_lag: 0,
        submit_latencies: Vec::new(),
    };

    let feed_late = |late: Vec<LateLabels>,
                     session: &mut ClientSession,
                     report: &mut ClientReport| {
        for l in late {
            let batch = Batch::labeled(l.x, l.labels, 0, l.phase);
            report.submitted.push(batch.clone());
            let answered = submit_and_await(session, batch, false, &mut report.submit_latencies);
            assert!(answered.is_none(), "training-only submissions produce no report");
        }
    };

    // One extra turn at the end for the scheduler flush.
    for round in 0..=BATCHES_PER_CLIENT {
        turnstile.wait_for((round * CLIENTS + client) as u64);
        if round < BATCHES_PER_CLIENT {
            let step = scheduler.step(batches[round].clone());
            feed_late(step.released, &mut session, &mut report);
            let client_seq = report.submitted.len() as u64;
            report.submitted.push(step.batch.clone());
            let preds =
                submit_and_await(&mut session, step.batch, true, &mut report.submit_latencies)
                    .expect("prequential submissions are answered");
            report.correct += preds.iter().zip(&truth[round]).filter(|(p, t)| p == t).count();
            report.scored += truth[round].len();
            report.transcript.push((client_seq, preds));
        } else {
            feed_late(scheduler.flush(), &mut session, &mut report);
        }
        turnstile.advance();
    }

    report.deferred = scheduler.deferred();
    report.arrived = scheduler.arrived();
    report.dropped = scheduler.dropped();
    report.max_lag = scheduler.max_lag();
    report
}

/// Drives one full lockstep service run; `schedules[c]` is client `c`'s
/// label regime.
fn run_service(schedules: &[LabelSchedule]) -> (Vec<ClientReport>, ServiceReport) {
    let service = builder()
        .service(ServiceConfig { record_admitted: true, ..Default::default() })
        .build_service()
        .expect("valid service");
    let handle = service.handle();
    let turnstile = Arc::new(Turnstile::new());

    let mut threads = Vec::new();
    for (client, schedule) in schedules.iter().copied().enumerate() {
        let key = client as u64;
        let session = handle.open_session(key).expect("service running");
        let turnstile = Arc::clone(&turnstile);
        threads.push(std::thread::spawn(move || {
            run_client(session, key, client, schedule, turnstile)
        }));
    }
    let mut reports: Vec<ClientReport> =
        threads.into_iter().map(|t| t.join().expect("client thread completed")).collect();
    reports.sort_by_key(|r| r.key);
    let report = service.shutdown().expect("clean shutdown");
    (reports, report)
}

/// Replays the recorded admitted order serially (feed + barrier per
/// record, mirroring the lockstep run) and returns per-key transcripts.
fn oracle_replay(
    clients: &[ClientReport],
    admitted: &[AdmittedRecord],
) -> HashMap<u64, Vec<(u64, Vec<usize>)>> {
    let submitted: HashMap<u64, &Vec<Batch>> =
        clients.iter().map(|c| (c.key, &c.submitted)).collect();
    let mut pipeline = builder().build_sharded().expect("valid pipeline");
    let mut transcripts: HashMap<u64, Vec<(u64, Vec<usize>)>> = HashMap::new();
    for rec in admitted {
        let mut batch = submitted[&rec.key][rec.client_seq as usize].clone();
        batch.seq = rec.global_seq;
        let keyed = KeyedBatch { key: rec.key, batch };
        if rec.prequential {
            pipeline.feed_prequential(keyed).expect("oracle feed");
        } else {
            pipeline.feed(keyed).expect("oracle feed");
        }
        for (_, out) in pipeline.barrier().expect("oracle barrier") {
            if let Some(r) = out.report {
                transcripts.entry(rec.key).or_default().push((rec.client_seq, r.predictions));
            }
        }
    }
    let _ = pipeline.finish().expect("clean oracle shutdown");
    transcripts
}

fn accuracy(correct: usize, scored: usize) -> f64 {
    if scored == 0 {
        0.0
    } else {
        correct as f64 / scored as f64
    }
}

fn main() {
    // Act 1: the regime run — eight clients, mixed label schedules.
    let schedules: Vec<LabelSchedule> = (0..CLIENTS).map(schedule_for).collect();
    let (clients, service_report) = run_service(&schedules);

    let total_correct: usize = clients.iter().map(|c| c.correct).sum();
    let total_scored: usize = clients.iter().map(|c| c.scored).sum();
    let regime_accuracy = accuracy(total_correct, total_scored);
    let stats = service_report.stats;
    println!(
        "act 1: {CLIENTS} clients x {BATCHES_PER_CLIENT} batches -> \
         {} submitted, {} answered, {} trained, accuracy {:.4}",
        stats.submitted, stats.answered, stats.trained, regime_accuracy
    );

    let panics: Vec<u64> =
        service_report.run.shards.iter().map(|s| s.run.stats.worker_panics).collect();
    assert!(panics.iter().all(|&p| p == 0), "zero-panic drill saw {panics:?}");
    assert_eq!(stats.shed, 0, "Block admission never sheds");
    assert_eq!(stats.quarantined, 0, "clean batches never quarantine");

    // Act 2: oracle replay of the recorded admitted order.
    let admitted = service_report.admitted_order.as_deref().expect("record_admitted was set");
    let mut per_shard = vec![0u64; SHARDS];
    for rec in admitted {
        per_shard[rec.shard] += 1;
    }
    assert!(per_shard.iter().all(|&n| n > 0), "both shards served traffic: {per_shard:?}");
    let oracle = oracle_replay(&clients, admitted);
    for client in &clients {
        let oracle_transcript = &oracle[&client.key];
        assert_eq!(
            &client.transcript, oracle_transcript,
            "client {} diverged from the serialized oracle",
            client.key
        );
    }
    println!(
        "act 2: oracle replay of {} admitted records matches all {CLIENTS} transcripts \
         (shard split {per_shard:?})",
        admitted.len()
    );

    // Act 3: the same streams fully labeled — the accuracy reference.
    let (full_clients, _full_report) = run_service(&vec![LabelSchedule::full(); CLIENTS]);
    let full_correct: usize = full_clients.iter().map(|c| c.correct).sum();
    let full_scored: usize = full_clients.iter().map(|c| c.scored).sum();
    let full_accuracy = accuracy(full_correct, full_scored);
    let gap = full_accuracy - regime_accuracy;
    println!(
        "act 3: fully-labeled accuracy {full_accuracy:.4}, regime accuracy \
         {regime_accuracy:.4}, gap {gap:.4}"
    );
    assert!(gap <= 0.03, "label-regime accuracy gap {gap:.4} exceeds the 3-point budget");

    // Latency self-check: wall-clock stays out of the artifact.
    let mut latencies: Vec<Duration> =
        clients.iter().flat_map(|c| c.submit_latencies.iter().copied()).collect();
    latencies.sort_unstable();
    let p99 = latencies[latencies.len() * 99 / 100];
    println!("p99 submit latency: {p99:?} over {} submissions", latencies.len());
    assert!(
        p99 < Duration::from_millis(250),
        "p99 submit latency {p99:?} breached the 250ms bound"
    );

    // Deterministic artifact: counters, ordering, and 4-dp accuracies.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"shards\": {SHARDS},");
    let _ = writeln!(json, "  \"clients\": {CLIENTS},");
    let _ = writeln!(json, "  \"batches_per_client\": {BATCHES_PER_CLIENT},");
    let _ = writeln!(json, "  \"batch_rows\": {ROWS},");
    let _ = writeln!(json, "  \"per_client\": [");
    for (i, (client, schedule)) in clients.iter().zip(&schedules).enumerate() {
        let comma = if i + 1 < clients.len() { "," } else { "" };
        let _ = writeln!(
            json,
            "    {{\"key\": {}, \"delay\": {}, \"keep\": {:.2}, \"submitted\": {}, \
             \"deferred\": {}, \"arrived\": {}, \"dropped\": {}, \"max_lag\": {}, \
             \"accuracy\": {:.4}}}{comma}",
            client.key,
            schedule.delay_batches,
            schedule.keep_probability,
            client.submitted.len(),
            client.deferred,
            client.arrived,
            client.dropped,
            client.max_lag,
            accuracy(client.correct, client.scored),
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"submitted\": {},", stats.submitted);
    let _ = writeln!(json, "  \"answered\": {},", stats.answered);
    let _ = writeln!(json, "  \"trained\": {},", stats.trained);
    let _ = writeln!(json, "  \"shed\": {},", stats.shed);
    let _ = writeln!(json, "  \"quarantined\": {},", stats.quarantined);
    let per_shard_json: Vec<String> = per_shard.iter().map(u64::to_string).collect();
    let _ = writeln!(json, "  \"per_shard_admitted\": [{}],", per_shard_json.join(", "));
    let _ = writeln!(json, "  \"worker_panics\": [{}, {}],", panics[0], panics[1]);
    let _ = writeln!(json, "  \"oracle_records\": {},", admitted.len());
    let _ = writeln!(json, "  \"oracle_match\": true,");
    let _ = writeln!(json, "  \"regime_accuracy\": {regime_accuracy:.4},");
    let _ = writeln!(json, "  \"full_accuracy\": {full_accuracy:.4},");
    let _ = writeln!(json, "  \"accuracy_gap\": {gap:.4}");
    json.push('}');
    json.push('\n');

    let out = Path::new("results").join("SERVING_drill.json");
    fs::create_dir_all("results").expect("results directory");
    fs::write(&out, json).expect("write drill artifact");
    println!("\nwrote {}", out.display());
}
