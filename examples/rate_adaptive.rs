//! The rate-aware adjuster under a simulated traffic spike (§V-B).
//!
//! A rate-simulated source feeds the threaded pipeline. When the flow
//! rate spikes past the threshold, the adjuster raises the ASW decay
//! multiplier (cheapening long-model updates) and scales how many
//! batches are consumed per scheduling tick with queue pressure.
//!
//! ```sh
//! cargo run --release --example rate_adaptive
//! ```

use freewayml::core::pipeline::Pipeline;
use freewayml::core::rate::{RateAdjusterParams, RateAwareAdjuster};
use freewayml::prelude::*;
use freewayml::streams::source::SimulatedSource;

fn main() {
    let batch_size = 256;
    let mut source = SimulatedSource::new(
        Box::new(Hyperplane::new(10, 0.02, 0.05, 3)),
        20_000.0, // items per simulated second
        100_000.0,
    );
    let adjuster = RateAwareAdjuster::new(RateAdjusterParams {
        rate_threshold: 40_000.0,
        ..Default::default()
    });

    let learner = Learner::new(
        ModelSpec::lr(10, 2),
        FreewayConfig { mini_batch: batch_size, ..Default::default() },
    );
    let pipeline = Pipeline::with_learner(learner, 32).expect("valid queue depth");

    println!("tick | rate     | pressure | batches/tick | decay x");
    println!("-----+----------+----------+--------------+--------");
    let mut seq = 0u64;
    for tick in 0..30 {
        // Simulated traffic spike between ticks 10 and 20.
        if tick == 10 {
            source.set_rate(120_000.0);
        }
        if tick == 20 {
            source.set_rate(20_000.0);
        }
        source.advance(0.05);

        let adj = adjuster.adjust(source.pressure(), source.rate());
        println!(
            "{tick:>4} | {:>8.0} | {:>8.2} | {:>12} | {:>6.2}",
            source.rate(),
            source.pressure(),
            adj.inference_batches,
            adj.decay_multiplier
        );

        for _ in 0..adj.inference_batches {
            if let Some(batch) = source.try_take_batch(batch_size) {
                pipeline.feed_prequential(batch.clone()).expect("worker alive");
                seq += 1;
            }
        }
        // Drain available outputs without blocking the producer loop.
        while pipeline.try_recv().is_some() {}
    }

    let learner = pipeline.finish().expect("clean shutdown");
    println!(
        "\nprocessed ~{seq} batches; dropped {:.0} items at the source; \
         selector ready: {}",
        source.dropped_items(),
        learner.selector().is_ready()
    );
}
