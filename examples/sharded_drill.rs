//! Sharded multi-tenant drill: keyed ingest, a shard crash, and
//! registry-driven cross-shard knowledge reuse.
//!
//! Three acts on a 2-shard [`ShardedPipeline`]:
//!
//! 1. **Warmup** — two tenants (hash-pinned to different shards) each
//!    learn their own concept; window completions publish into the
//!    cross-shard knowledge registry.
//! 2. **Crash** — shard 0's worker is made to panic mid-stream. Only
//!    that shard restarts (from its checkpoint); shard 1 and the
//!    registry never notice.
//! 3. **Jump** — shard 1's tenant lands on shard 0's concept, which it
//!    has never seen. Pattern-C lookup finds shard 0's published entry
//!    and serves the shift as knowledge reuse instead of relearning.
//!
//! A fleet pass then routes 1200 interleaved keyed streams through the
//! same runtime. Every batch runs to a barrier, so the drill — and the
//! report written to `results/SHARDED_drill.json` — is byte-identical
//! across runs on the same seed.
//!
//! ```sh
//! cargo run --release --example sharded_drill
//! ```

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use freewayml::core::admission::AdmissionConfig;
use freewayml::core::knowledge::SharedEntry;
use freewayml::prelude::*;
use freewayml::streams::concept::{stream_rng, GmmConcept};

const DIM: usize = 6;
const BATCH_SIZE: usize = 64;
const WARM_ROUNDS: usize = 25;
const JUMP_ROUNDS: usize = 6;
const FLEET_KEYS: usize = 1200;

fn build(shards: usize) -> ShardedPipeline {
    PipelineBuilder::new(ModelSpec::lr(DIM, 2))
        .with_config(FreewayConfig {
            pca_warmup_rows: 64,
            mini_batch: BATCH_SIZE,
            asw_max_batches: 3,
            beta: 0.9,
            ..Default::default()
        })
        .with_queue_depth(32)
        .with_checkpoint_every(4)
        .admission(AdmissionConfig {
            policy: freewayml::core::admission::AdmissionPolicy::Block,
            ladder: None,
            ..Default::default()
        })
        .shards(shards)
        .build_sharded()
        .expect("valid configuration")
}

/// First key at/after `start` routing to `target` under two shards.
fn key_for_shard(target: usize) -> u64 {
    (0u64..1024).find(|k| shard_for(*k, 2) == target).expect("keys cover both shards")
}

fn main() {
    let mut rng = stream_rng(12);
    let home = GmmConcept::random(DIM, 2, 2, 4.0, 0.6, &mut rng);
    let mut away = home.clone();
    away.translate(&[40.0; DIM]);

    let mut pipeline = build(2);
    let key_a = key_for_shard(0);
    let key_b = key_for_shard(1);
    println!("tenants: key {key_a} -> shard 0 (home), key {key_b} -> shard 1 (away)");

    // One batch in flight at a time: feed, then drain to the barrier.
    // That makes the whole drill — registry contents included — a pure
    // function of the feed order.
    let mut seq = 0u64;
    let mut jump_strategies: Vec<&'static str> = Vec::new();
    let mut feed = |pipeline: &mut ShardedPipeline,
                    key: u64,
                    concept: &GmmConcept,
                    rng: &mut rand::rngs::StdRng,
                    record: &mut Vec<&'static str>| {
        let (x, y) = concept.sample_batch(BATCH_SIZE, rng);
        let batch = Batch::labeled(x, y, seq, DriftPhase::Stable);
        seq += 1;
        pipeline.feed_prequential(KeyedBatch { key, batch }).expect("router alive");
        for (_, out) in pipeline.barrier().expect("shards recover") {
            if let Some(report) = out.report {
                record.push(report.strategy().tag());
            }
        }
    };

    // Act 1: warmup.
    let mut sink = Vec::new();
    for _ in 0..WARM_ROUNDS {
        feed(&mut pipeline, key_a, &home, &mut rng, &mut sink);
        feed(&mut pipeline, key_b, &away, &mut rng, &mut sink);
    }
    let published: Vec<(usize, u64)> = {
        let (_, view) = pipeline.shared().view();
        view.iter().map(|e: &SharedEntry| (e.shard, e.seq)).collect()
    };
    println!(
        "act 1: {} warm batches/tenant, registry holds {} entries {published:?}",
        WARM_ROUNDS,
        published.len()
    );

    // Act 2: crash shard 0 at a quiescent point (nothing in flight),
    // then spin until the supervisor has reaped the dead worker and
    // restarted it from the checkpoint — so the batches fed afterwards
    // always land on the restored learner, run after run.
    pipeline.inject_worker_panic(0).expect("panic injection");
    while pipeline.shard(0).supervisor().stats().restarts == 0 {
        pipeline.shard(0).try_recv().expect("restart within budget");
        std::thread::yield_now();
    }
    feed(&mut pipeline, key_a, &home, &mut rng, &mut sink);
    feed(&mut pipeline, key_a, &home, &mut rng, &mut sink);
    let stats0 = pipeline.shard(0).supervisor().stats();
    let stats1 = pipeline.shard(1).supervisor().stats();
    println!(
        "act 2: shard 0 panicked ({} restart(s), {} batch(es) lost); shard 1 untouched ({} restarts)",
        stats0.restarts, stats0.lost_in_flight, stats1.restarts
    );

    // Act 3: shard 1's tenant jumps onto shard 0's concept.
    for _ in 0..JUMP_ROUNDS {
        feed(&mut pipeline, key_b, &home, &mut rng, &mut jump_strategies);
    }
    let run = pipeline.finish().expect("clean finish");
    let hits = run.shards[1].learner().shared_hits();
    println!(
        "act 3: tenant B on shard 1 hit shard 0's knowledge {hits} time(s); \
         strategies {jump_strategies:?}"
    );

    // Fleet pass: 1200 interleaved keyed streams through a fresh router.
    let mut fleet = build(2);
    let mut gen = InterleavedKeyed::uniform(DIM, 2, FLEET_KEYS, 77);
    let mut per_shard = [0u64; 2];
    for _ in 0..FLEET_KEYS {
        let (shard, _) = fleet.feed_prequential(gen.next_keyed(32)).expect("router alive");
        per_shard[shard] += 1;
    }
    let fleet_outputs = fleet.barrier().expect("shards alive").len();
    let fleet_run = fleet.finish().expect("clean finish");
    println!(
        "fleet: {FLEET_KEYS} keyed streams -> shards {per_shard:?}, {} answered, {} admitted",
        fleet_outputs,
        fleet_run.admission().admitted
    );

    // Deterministic artifact: counters and ordering only, no wall-clock.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"shards\": 2,");
    let _ = writeln!(json, "  \"tenant_keys\": [{key_a}, {key_b}],");
    let _ = writeln!(json, "  \"warm_rounds\": {WARM_ROUNDS},");
    let published_json: Vec<String> =
        published.iter().map(|(shard, seq)| format!("[{shard}, {seq}]")).collect();
    let _ = writeln!(json, "  \"registry_entries\": [{}],", published_json.join(", "));
    let _ = writeln!(json, "  \"panic_shard\": 0,");
    let _ = writeln!(json, "  \"restarts\": [{}, {}],", stats0.restarts, stats1.restarts);
    let _ = writeln!(
        json,
        "  \"worker_panics\": [{}, {}],",
        stats0.worker_panics, stats1.worker_panics
    );
    let _ = writeln!(json, "  \"lost_in_flight\": {},", stats0.lost_in_flight);
    let _ = writeln!(json, "  \"cross_shard_hits\": {hits},");
    let strategies_json: Vec<String> = jump_strategies.iter().map(|s| format!("\"{s}\"")).collect();
    let _ = writeln!(json, "  \"jump_strategies\": [{}],", strategies_json.join(", "));
    let _ = writeln!(json, "  \"fleet_keys\": {FLEET_KEYS},");
    let _ = writeln!(json, "  \"fleet_per_shard\": [{}, {}],", per_shard[0], per_shard[1]);
    let _ = writeln!(json, "  \"fleet_answered\": {fleet_outputs},");
    let _ = writeln!(json, "  \"fleet_admitted\": {}", fleet_run.admission().admitted);
    json.push('}');
    json.push('\n');

    let out = Path::new("results").join("SHARDED_drill.json");
    fs::create_dir_all("results").expect("results directory");
    fs::write(&out, json).expect("write drill artifact");
    println!("\nwrote {}", out.display());
}
