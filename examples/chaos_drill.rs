//! Fault-injection drill for the supervised runtime.
//!
//! Wraps the simulated Electricity stream in a seeded chaos injector
//! (~10% poison: NaN bursts, width corruption, bad labels, duplicates,
//! reorders, dropped labels), schedules a worker panic mid-stream, and
//! drives the checkpointed supervisor over it. Prints the fault log, the
//! recovery counters, the fault-handling event timeline (quarantines,
//! checkpoints, the restart), and the accuracy cost of the chaos versus a
//! fault-free run on the same stream seed.
//!
//! ```sh
//! cargo run --release --example chaos_drill
//! ```

use freewayml::chaos::{paired_accuracy, run_supervised_prequential, ChaosConfig, ChaosStream};
use freewayml::core::supervisor::SupervisorConfig;
use freewayml::prelude::*;
use freewayml::streams::datasets::electricity;

fn main() {
    let (stream_seed, chaos_seed) = (1717, 42);
    let (batches, batch_size) = (96, 128);
    let supervisor = SupervisorConfig { checkpoint_every_n_batches: 4, ..Default::default() };
    let learner = |f: usize, c: usize| {
        // The builder attaches a recording sink, so the chaos report comes
        // back with the full fault-handling event stream.
        let (builder, _sink) = PipelineBuilder::new(ModelSpec::lr(f, c)).recording();
        builder
            .with_config(FreewayConfig {
                pca_warmup_rows: 256,
                mini_batch: batch_size,
                ..Default::default()
            })
            .build_learner()
            .expect("valid configuration")
    };

    // Reference: the same stream with no faults and no panic.
    let mut clean = electricity(stream_seed);
    let (f, c) = (clean.num_features(), clean.num_classes());
    let reference = run_supervised_prequential(
        &mut clean,
        learner(f, c),
        supervisor.clone(),
        batches,
        batch_size,
        &[],
    )
    .expect("fault-free run");

    // The drill: ~10% poison plus a worker panic before batch 48.
    let mut chaotic =
        ChaosStream::new(electricity(stream_seed), ChaosConfig::standard(chaos_seed, 0.10));
    let report = run_supervised_prequential(
        &mut chaotic,
        learner(f, c),
        supervisor,
        batches,
        batch_size,
        &[48],
    )
    .expect("chaos is survivable");

    println!("injected faults:");
    for rec in chaotic.log() {
        println!(
            "  batch {:>3} (seq {:>3}): {:<18} -> {}",
            rec.emit_index,
            rec.seq,
            rec.kind.to_string(),
            if rec.expect_quarantine { "quarantined" } else { "flows through" }
        );
    }
    println!("\nfault-handling event timeline:");
    for event in &report.events {
        match event {
            TelemetryEvent::BatchQuarantined { seq, fault } => {
                println!("  seq {seq:>3}: quarantined ({fault})");
            }
            TelemetryEvent::CheckpointWritten { seq, persisted } if *persisted => {
                println!("  seq {seq:>3}: checkpoint persisted");
            }
            TelemetryEvent::CheckpointRestored { seq } => {
                println!("  seq {seq:>3}: checkpoint restored");
            }
            TelemetryEvent::WorkerRestarted { restarts, lost_in_flight } => {
                println!("           worker restart #{restarts} ({lost_in_flight} lost in flight)");
            }
            TelemetryEvent::InferenceDegraded { seq, strategy } => {
                println!("  seq {seq:>3}: degraded inference via {strategy}");
            }
            _ => {}
        }
    }

    let s = report.stats;
    println!(
        "\nsupervisor: {} accepted, {} quarantined, {} worker panic(s), {} restart(s)",
        s.accepted, s.quarantined, s.worker_panics, s.restarts
    );
    println!(
        "checkpoints: {} taken, {} batches lost in flight at crash",
        s.checkpoints_taken, s.lost_in_flight
    );
    let (faulted, fault_free) = paired_accuracy(&report, &reference);
    println!(
        "\nprequential accuracy on common batches: {faulted:.4} under chaos vs {fault_free:.4} fault-free (delta {:+.4})",
        faulted - fault_free
    );
}
