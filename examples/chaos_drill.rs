//! Fault-injection drill for the supervised runtime.
//!
//! Wraps the simulated Electricity stream in a seeded chaos injector
//! (~10% poison: NaN bursts, width corruption, bad labels, duplicates,
//! reorders, dropped labels), schedules a worker panic mid-stream, and
//! drives the checkpointed supervisor over it. Prints the fault log, the
//! recovery counters, the fault-handling event timeline (quarantines,
//! checkpoints, the restart), and the accuracy cost of the chaos versus a
//! fault-free run on the same stream seed.
//!
//! ```sh
//! cargo run --release --example chaos_drill
//! ```
//!
//! With `--journal`, the drill instead exercises the durable ingest
//! journal: the same chaotic stream is run fault-free and with two
//! worker crashes under journaled replay, a 2-shard keyed run takes a
//! single-shard crash, and the deterministic effectively-once evidence
//! (zero lost batches, byte-identical transcripts) is written to
//! `results/JOURNAL_drill.json`:
//!
//! ```sh
//! cargo run --release --example chaos_drill -- --journal
//! ```

use freewayml::chaos::{paired_accuracy, run_supervised_prequential, ChaosConfig, ChaosStream};
use freewayml::core::supervisor::SupervisorConfig;
use freewayml::prelude::*;
use freewayml::streams::datasets::electricity;

fn main() {
    if std::env::args().any(|arg| arg == "--journal") {
        journal_drill();
        return;
    }
    let (stream_seed, chaos_seed) = (1717, 42);
    let (batches, batch_size) = (96, 128);
    let supervisor = SupervisorConfig { checkpoint_every_n_batches: 4, ..Default::default() };
    let learner = |f: usize, c: usize| {
        // The builder attaches a recording sink, so the chaos report comes
        // back with the full fault-handling event stream.
        let (builder, _sink) = PipelineBuilder::new(ModelSpec::lr(f, c)).recording();
        builder
            .with_config(FreewayConfig {
                pca_warmup_rows: 256,
                mini_batch: batch_size,
                ..Default::default()
            })
            .build_learner()
            .expect("valid configuration")
    };

    // Reference: the same stream with no faults and no panic.
    let mut clean = electricity(stream_seed);
    let (f, c) = (clean.num_features(), clean.num_classes());
    let reference = run_supervised_prequential(
        &mut clean,
        learner(f, c),
        supervisor.clone(),
        batches,
        batch_size,
        &[],
    )
    .expect("fault-free run");

    // The drill: ~10% poison plus a worker panic before batch 48.
    let mut chaotic =
        ChaosStream::new(electricity(stream_seed), ChaosConfig::standard(chaos_seed, 0.10));
    let report = run_supervised_prequential(
        &mut chaotic,
        learner(f, c),
        supervisor,
        batches,
        batch_size,
        &[48],
    )
    .expect("chaos is survivable");

    println!("injected faults:");
    for rec in chaotic.log() {
        println!(
            "  batch {:>3} (seq {:>3}): {:<18} -> {}",
            rec.emit_index,
            rec.seq,
            rec.kind.to_string(),
            if rec.expect_quarantine { "quarantined" } else { "flows through" }
        );
    }
    println!("\nfault-handling event timeline:");
    for event in &report.events {
        match event {
            TelemetryEvent::BatchQuarantined { seq, fault } => {
                println!("  seq {seq:>3}: quarantined ({fault})");
            }
            TelemetryEvent::CheckpointWritten { seq, persisted } if *persisted => {
                println!("  seq {seq:>3}: checkpoint persisted");
            }
            TelemetryEvent::CheckpointRestored { seq } => {
                println!("  seq {seq:>3}: checkpoint restored");
            }
            TelemetryEvent::WorkerRestarted { restarts, lost_in_flight } => {
                println!("           worker restart #{restarts} ({lost_in_flight} lost in flight)");
            }
            TelemetryEvent::InferenceDegraded { seq, strategy } => {
                println!("  seq {seq:>3}: degraded inference via {strategy}");
            }
            _ => {}
        }
    }

    let s = report.stats;
    println!(
        "\nsupervisor: {} accepted, {} quarantined, {} worker panic(s), {} restart(s)",
        s.accepted, s.quarantined, s.worker_panics, s.restarts
    );
    println!(
        "checkpoints: {} taken, {} batches lost in flight at crash",
        s.checkpoints_taken, s.lost_in_flight
    );
    let (faulted, fault_free) = paired_accuracy(&report, &reference);
    println!(
        "\nprequential accuracy on common batches: {faulted:.4} under chaos vs {fault_free:.4} fault-free (delta {:+.4})",
        faulted - fault_free
    );
}

/// The journaled crash drill: effectively-once evidence on the plain
/// supervised pipeline and on a 2-shard keyed run with a single-shard
/// panic, written deterministically to `results/JOURNAL_drill.json`.
fn journal_drill() {
    use freewayml::core::admission::{AdmissionConfig, AdmissionPolicy};
    use freewayml::streams::keyed::{InterleavedKeyed, KeyedBatch};
    use std::fmt::Write as _;

    let (stream_seed, chaos_seed) = (1717u64, 42u64);
    let (batches, batch_size) = (96usize, 128usize);
    let panic_at = [24usize, 48];
    let root = std::env::temp_dir().join(format!("freeway-journal-drill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(root.join("plain")).expect("journal dir");
    std::fs::create_dir_all(root.join("shard-clean")).expect("journal dir");
    std::fs::create_dir_all(root.join("shard-faulted")).expect("journal dir");

    let supervisor = SupervisorConfig { checkpoint_every_n_batches: 4, ..Default::default() };
    let learner = |f: usize, c: usize| {
        let (builder, _sink) = PipelineBuilder::new(ModelSpec::lr(f, c)).recording();
        builder
            .with_config(FreewayConfig {
                pca_warmup_rows: 256,
                mini_batch: batch_size,
                ..Default::default()
            })
            .build_learner()
            .expect("valid configuration")
    };

    // Act 1 — plain pipeline. The same chaotic stream twice: once
    // fault-free, once with two worker crashes under journaled replay.
    let mut clean =
        ChaosStream::new(electricity(stream_seed), ChaosConfig::standard(chaos_seed, 0.10));
    let (f, c) = (clean.num_features(), clean.num_classes());
    let reference = run_supervised_prequential(
        &mut clean,
        learner(f, c),
        supervisor.clone(),
        batches,
        batch_size,
        &[],
    )
    .expect("fault-free run");
    let mut chaotic =
        ChaosStream::new(electricity(stream_seed), ChaosConfig::standard(chaos_seed, 0.10));
    let journaled = SupervisorConfig {
        journal: Some(JournalConfig::new(root.join("plain").join("ingest.wal"))),
        ..supervisor
    };
    let report = run_supervised_prequential(
        &mut chaotic,
        learner(f, c),
        journaled,
        batches,
        batch_size,
        &panic_at,
    )
    .expect("journaled crashes are survivable");
    let transcript_match = report.transcript == reference.transcript;
    assert!(transcript_match, "journaled crash transcript diverged from fault-free");
    assert_eq!(report.stats.lost_in_flight, 0, "replay must recover all in-flight batches");
    let journal = report.journal.expect("journal stats");
    let (acc_faulted, acc_fault_free) = paired_accuracy(&report, &reference);
    println!(
        "plain: {} crashes, {} replayed ({} suppressed), {} lost, transcript match: {}",
        report.stats.worker_panics,
        report.stats.replayed,
        report.stats.replay_suppressed,
        report.stats.lost_in_flight,
        transcript_match
    );

    // Act 2 — 2-shard keyed run, single-shard panic. One batch in
    // flight at a time (barrier per batch) keeps it deterministic.
    let (rounds, panic_round) = (40usize, 20usize);
    let sharded_drill = |panic_shard: Option<usize>, dir: &std::path::Path| {
        let mut sharded = PipelineBuilder::new(ModelSpec::lr(6, 2))
            .with_config(FreewayConfig {
                pca_warmup_rows: 64,
                mini_batch: 64,
                ..Default::default()
            })
            .with_queue_depth(32)
            .with_checkpoint_every(4)
            .journal(JournalConfig::new(dir.join("ingest.wal")))
            .admission(AdmissionConfig {
                policy: AdmissionPolicy::Block,
                ladder: None,
                ..Default::default()
            })
            .shards(2)
            .build_sharded()
            .expect("valid configuration");
        let key0 = (0u64..1024).find(|k| shard_for(*k, 2) == 0).expect("shard 0 key");
        let key1 = (0u64..1024).find(|k| shard_for(*k, 2) == 1).expect("shard 1 key");
        let mut gen = InterleavedKeyed::uniform(6, 2, 2, 2024);
        let mut transcripts: Vec<Vec<(u64, Vec<usize>)>> = vec![Vec::new(), Vec::new()];
        for round in 0..rounds {
            for (tenant, &key) in [key0, key1].iter().enumerate() {
                let batch = gen.next_keyed(64).batch;
                if panic_shard == Some(tenant) && round == panic_round {
                    sharded.inject_worker_panic(tenant).expect("panic injection");
                }
                let (shard, _) =
                    sharded.feed_prequential(KeyedBatch { key, batch }).expect("router alive");
                assert_eq!(shard, tenant, "tenant keys pin their shards");
                for (s, out) in sharded.barrier().expect("shards recover") {
                    if let Some(rep) = out.report {
                        transcripts[s].push((out.seq, rep.predictions.clone()));
                    }
                }
            }
        }
        (transcripts, sharded)
    };
    let (shard_clean, _clean_pipe) = sharded_drill(None, &root.join("shard-clean"));
    let (shard_faulted, mut faulted_pipe) = sharded_drill(Some(0), &root.join("shard-faulted"));
    let stats0 = faulted_pipe.shard(0).supervisor().stats();
    let stats1 = faulted_pipe.shard(1).supervisor().stats();
    let victim_match = shard_clean[0] == shard_faulted[0];
    let healthy_match = shard_clean[1] == shard_faulted[1];
    assert!(victim_match, "victim shard transcript diverged under journaled replay");
    assert!(healthy_match, "healthy shard transcript diverged");
    assert_eq!(stats0.lost_in_flight + stats1.lost_in_flight, 0, "no shard lost a batch");
    let admitted = faulted_pipe.finish().expect("clean finish").admission().admitted;
    println!(
        "sharded: shard 0 crashed ({} replayed, {} lost), shard 1 untouched; \
         victim transcript match: {victim_match}, healthy: {healthy_match}",
        stats0.replayed, stats0.lost_in_flight
    );

    // Deterministic artifact: counters and match booleans only — sync
    // counts are wall-clock dependent (slow-sync backoff) and excluded.
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"batches\": {batches},");
    let _ = writeln!(json, "  \"panic_at\": [{}, {}],", panic_at[0], panic_at[1]);
    let _ = writeln!(json, "  \"plain\": {{");
    let _ = writeln!(json, "    \"accepted\": {},", report.stats.accepted);
    let _ = writeln!(json, "    \"quarantined\": {},", report.stats.quarantined);
    let _ = writeln!(json, "    \"worker_panics\": {},", report.stats.worker_panics);
    let _ = writeln!(json, "    \"restarts\": {},", report.stats.restarts);
    // Exact replay counts race with dead-worker detection (the batch fed
    // into a crash is journaled before or after the restart is noticed
    // depending on scheduling), so the artifact records the invariants;
    // exact counts are asserted in the deterministic supervisor tests.
    let _ = writeln!(json, "    \"replay_exercised\": {},", report.stats.replayed > 0);
    let _ = writeln!(
        json,
        "    \"replayed_outputs_all_suppressed\": {},",
        report.stats.replay_suppressed == report.stats.replayed
    );
    let _ = writeln!(json, "    \"lost_in_flight\": {},", report.stats.lost_in_flight);
    let _ = writeln!(json, "    \"journal_appended\": {},", journal.appended);
    let _ = writeln!(json, "    \"journal_recovered_on_open\": {},", journal.recovered_records);
    let _ = writeln!(json, "    \"journal_truncated_segments\": {},", journal.truncated_segments);
    let _ = writeln!(json, "    \"transcript_len\": {},", report.transcript.len());
    let _ = writeln!(json, "    \"transcript_matches_fault_free\": {transcript_match},");
    let _ = writeln!(json, "    \"accuracy_faulted\": {acc_faulted:.6},");
    let _ = writeln!(json, "    \"accuracy_fault_free\": {acc_fault_free:.6}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"sharded\": {{");
    let _ = writeln!(json, "    \"rounds\": {rounds},");
    let _ = writeln!(json, "    \"panic_shard\": 0,");
    let _ = writeln!(json, "    \"panic_round\": {panic_round},");
    let _ = writeln!(json, "    \"restarts\": [{}, {}],", stats0.restarts, stats1.restarts);
    // The victim's exact replay count races with dead-worker detection
    // (the batch fed into the crash may be journaled before or after the
    // restart is noticed), so the artifact records the invariant instead.
    let _ = writeln!(
        json,
        "    \"replay_confined_to_victim\": {},",
        stats0.replayed > 0 && stats1.replayed == 0
    );
    let _ = writeln!(
        json,
        "    \"lost_in_flight\": [{}, {}],",
        stats0.lost_in_flight, stats1.lost_in_flight
    );
    let _ = writeln!(json, "    \"victim_transcript_matches\": {victim_match},");
    let _ = writeln!(json, "    \"healthy_transcript_matches\": {healthy_match},");
    let _ = writeln!(json, "    \"admitted\": {admitted}");
    let _ = writeln!(json, "  }}");
    json.push('}');
    json.push('\n');

    let out = std::path::Path::new("results").join("JOURNAL_drill.json");
    std::fs::create_dir_all("results").expect("results directory");
    std::fs::write(&out, json).expect("write drill artifact");
    let _ = std::fs::remove_dir_all(&root);
    println!("\nwrote {}", out.display());
}
