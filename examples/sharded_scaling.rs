//! Data-parallel sharded training (the paper's future-work extension).
//!
//! Splits each batch across shard models that compute gradients on
//! separate threads and re-synchronise by parameter averaging, and
//! reports wall-clock throughput per shard count — the single-machine
//! simulation of "enhancing FreewayML's performance in distributed
//! computing environments".
//!
//! ```sh
//! cargo run --release --example sharded_scaling
//! ```

use freewayml::ml::{Sgd, ShardedTrainer};
use freewayml::prelude::*;
use std::time::Instant;

fn main() {
    let batch_size = 4096;
    let batches = 40;
    let spec = ModelSpec::mlp(10, vec![64], 2);
    let base = spec.build(7);
    let opt = Sgd::new(0.2);

    println!("shards | items/s   | final accuracy");
    println!("-------+-----------+---------------");
    for shards in [1usize, 2, 4, 8] {
        let mut stream = Hyperplane::new(10, 0.01, 0.05, 11);
        let mut trainer = ShardedTrainer::new(base.as_ref(), &opt, shards, 2);
        let t0 = Instant::now();
        let mut last_batch = None;
        for _ in 0..batches {
            let batch = stream.next_batch(batch_size);
            trainer.train_batch(&batch.x, batch.labels());
            last_batch = Some(batch);
        }
        trainer.synchronize();
        let elapsed = t0.elapsed().as_secs_f64();
        let throughput = (batches * batch_size) as f64 / elapsed;

        let batch = last_batch.expect("ran at least one batch");
        let preds = trainer.predict(&batch.x);
        let acc = preds.iter().zip(batch.labels()).filter(|(p, t)| p == t).count() as f64
            / batch.len() as f64;
        println!("{shards:>6} | {throughput:>9.0} | {:>13.1}%", acc * 100.0);
    }
    println!("\nAt sync_every = 1 sharded training is bit-identical to the");
    println!("single-model baseline; larger intervals trade gradient");
    println!("freshness for fewer synchronisation barriers (local SGD).");
}
