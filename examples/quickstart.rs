//! Quickstart: the paper's `Learner` interface on a drifting stream.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use freewayml::prelude::*;

fn main() {
    // A rotating-hyperplane stream: 10 features, gradual concept drift,
    // 5% label noise, plus regime switches every 30 batches.
    let mut stream = freewayml::streams::datasets::by_name("hyperplane", 42);

    // The paper's constructor template:
    // Learner(Model=model, ModelNum=2, MiniBatch=256, KdgBuffer=20,
    //         ExpBuffer=10, alpha=1.96).
    let model = ModelSpec::mlp(stream.num_features(), vec![32], stream.num_classes());
    let mut learner = Learner::paper_interface(model, 2, 256, 20, 10, 1.96);

    println!("batch | pattern      | strategy  | accuracy");
    println!("------+--------------+-----------+---------");
    let mut accs = Vec::new();
    for i in 0..60 {
        let batch = stream.next_batch(256);
        // Prequential: infer on the batch, then train on its labels.
        let report = learner.process(&batch);
        let correct = report.predictions.iter().zip(batch.labels()).filter(|(p, t)| p == t).count();
        let acc = correct as f64 / batch.len() as f64;
        accs.push(acc);
        if i % 5 == 0 || report.strategy != Strategy::Ensemble {
            println!(
                "{i:>5} | {:<12} | {:<9} | {:>6.1}%",
                report.pattern.map_or("warm-up".to_string(), |p| p.tag().to_string()),
                report.strategy.tag(),
                acc * 100.0
            );
        }
    }

    let g_acc = freewayml::eval::global_accuracy(&accs);
    let si = freewayml::eval::stability_index(&accs);
    println!("\nG_acc = {:.2}%   SI = {:.3}", g_acc * 100.0, si);
    println!(
        "knowledge entries: {} in memory, {} archived ({} bytes)",
        learner.knowledge().len(),
        learner.knowledge().archived(),
        learner.knowledge().space_bytes()
    );
}
