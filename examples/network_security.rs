//! Network-security scenario: alternating attack waves.
//!
//! Intrusion-detection streams (the paper's NSL-KDD workload) alternate
//! between attack families; the same attack pattern reoccurs weeks later.
//! A plain streaming model must relearn each wave from scratch;
//! FreewayML's historical knowledge reuse answers reoccurring waves from
//! stored snapshots, and coherent experience clustering bridges novel
//! waves.
//!
//! ```sh
//! cargo run --release --example network_security
//! ```

use freewayml::baselines::PlainSgd;
use freewayml::prelude::*;
use freewayml::streams::datasets;
use std::collections::HashMap;

fn main() {
    let seed = 2024;
    let batch_size = 256;
    let batches = 120;

    // Two identical streams so both systems see the same data.
    let mut stream_a = datasets::nslkdd(seed);
    let mut stream_b = datasets::nslkdd(seed);

    let spec = ModelSpec::mlp(stream_a.num_features(), vec![32], stream_a.num_classes());
    let mut freeway = Learner::new(
        spec.clone(),
        FreewayConfig { mini_batch: batch_size, pca_warmup_rows: 512, ..Default::default() },
    );
    let mut plain = PlainSgd::new(spec, seed);

    let mut freeway_by_phase: HashMap<&str, Vec<f64>> = HashMap::new();
    let mut plain_by_phase: HashMap<&str, Vec<f64>> = HashMap::new();
    let mut strategy_counts: HashMap<&str, usize> = HashMap::new();

    for _ in 0..batches {
        let batch = stream_a.next_batch(batch_size);
        let report = freeway.process(&batch);
        let phase = match batch.phase {
            DriftPhase::Sudden => "sudden",
            DriftPhase::Reoccurring => "reoccurring",
            _ => "slight",
        };
        let acc = |preds: &[usize]| {
            preds.iter().zip(batch.labels()).filter(|(p, t)| p == t).count() as f64
                / batch.len() as f64
        };
        freeway_by_phase.entry(phase).or_default().push(acc(&report.predictions));
        *strategy_counts.entry(report.strategy.tag()).or_default() += 1;

        let batch_b = stream_b.next_batch(batch_size);
        let preds = plain.infer(&batch_b.x);
        let acc_b = preds.iter().zip(batch_b.labels()).filter(|(p, t)| p == t).count() as f64
            / batch_b.len() as f64;
        plain.train(&batch_b.x, batch_b.labels());
        plain_by_phase.entry(phase).or_default().push(acc_b);
    }

    println!("Attack-wave stream: FreewayML vs plain StreamingMLP\n");
    println!("phase        | FreewayML | plain   | improvement");
    println!("-------------+-----------+---------+------------");
    for phase in ["slight", "sudden", "reoccurring"] {
        let f = mean(freeway_by_phase.get(phase));
        let p = mean(plain_by_phase.get(phase));
        println!(
            "{phase:<12} | {:>8.2}% | {:>6.2}% | {:>+9.1}%",
            f * 100.0,
            p * 100.0,
            (f - p) / p * 100.0
        );
    }
    println!("\nstrategies used: {strategy_counts:?}");
    println!(
        "knowledge store: {} live entries, {:.1} KB",
        freeway.knowledge().len(),
        freeway.knowledge().space_bytes() as f64 / 1024.0
    );
}

fn mean(v: Option<&Vec<f64>>) -> f64 {
    v.map_or(0.0, |v| v.iter().sum::<f64>() / v.len().max(1) as f64)
}
