//! Observability drill: watch FreewayML detect drift through telemetry.
//!
//! Runs the "Black Friday" sudden-shift workload with a recording
//! telemetry sink attached via the builder, prints the drift-event
//! timeline as it unfolds, checks the `DriftDetected` events against the
//! stream's ground-truth phase tags, and writes both exporter formats
//! (Prometheus text + JSON snapshot) next to the experiment results.
//!
//! ```sh
//! cargo run --release --example observe_drift
//! ```
//!
//! The process exits non-zero if the drift timeline does not match the
//! ground truth — CI runs this as the telemetry gate.

use freewayml::prelude::*;
use freewayml::streams::concept::GmmConcept;
use freewayml::streams::datasets::{Segment, SimulatedDataset};
use freewayml::telemetry::TelemetrySnapshot;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let seed = 11;
    let batch_size = 256;
    let batches = 60;

    // Same workload as `sudden_shift_retail`: 30 calm batches, one fresh
    // sudden shift (batch 30), and a reoccurring return home (batch 45).
    let mut rng = StdRng::seed_from_u64(seed);
    let regular = GmmConcept::random(12, 3, 2, 3.5, 1.0, &mut rng);
    let program = vec![
        Segment::Localized { amplitude: 0.25, batches: 30 },
        Segment::SwitchFresh { batches: 15 },
        Segment::SwitchTo { index: 0, batches: 15 },
    ];
    let mut stream = SimulatedDataset::new("Retail", vec![regular], program, 3.5, 1.0, 2, seed)
        .with_label_noise(0.1);

    // The builder is the one place everything is configured: model,
    // learner config, and the telemetry sink — attached before the first
    // batch so the event stream covers the whole run.
    let (builder, sink) = PipelineBuilder::new(ModelSpec::mlp(12, vec![32], 3)).recording();
    let mut learner = builder
        .with_config(FreewayConfig { mini_batch: batch_size, ..Default::default() })
        .build_learner()
        .expect("valid configuration");

    let mut phase_by_seq: BTreeMap<u64, DriftPhase> = BTreeMap::new();
    for i in 0..batches {
        let batch = stream.next_batch(batch_size);
        phase_by_seq.insert(batch.seq, batch.phase);
        let _ = learner.process(&batch);
        let _ = i;
    }

    // ---- Drift-event timeline -------------------------------------------
    let events = sink.events();
    println!("=== Drift-event timeline ({} events total) ===", events.len());
    println!("  seq | event           | detail");
    println!("------+-----------------+----------------------------------------");
    let mut drift_seqs: Vec<u64> = Vec::new();
    for event in &events {
        match event {
            TelemetryEvent::DriftDetected { seq, severity, distance, pattern, .. } => {
                drift_seqs.push(*seq);
                let truth = phase_by_seq.get(seq).copied().unwrap_or(DriftPhase::Stable);
                println!(
                    "{seq:>5} | DriftDetected   | pattern={pattern:<10} M={severity:>7.2} \
                     d_t={distance:>6.2} truth={truth:?}"
                );
            }
            TelemetryEvent::StrategyDispatched { seq, strategy, pattern }
                if *strategy != "ensemble" =>
            {
                println!("{seq:>5} | Dispatched      | strategy={strategy} pattern={pattern}");
            }
            TelemetryEvent::WindowEvicted { seq, level, evicted, disorder } => {
                println!(
                    "{seq:>5} | WindowEvicted   | level={level} evicted={evicted} \
                     disorder={disorder:.3}"
                );
            }
            TelemetryEvent::KnowledgePreserved { seq, entries, disorder } => {
                println!("{seq:>5} | KnowledgeSaved  | entries={entries} disorder={disorder:.3}");
            }
            _ => {}
        }
    }

    // ---- Exports --------------------------------------------------------
    let snapshot = TelemetrySnapshot::capture(learner.telemetry());
    let json_path = std::path::Path::new("results/TELEMETRY_observe_drift.json");
    let prom_path = std::path::Path::new("results/TELEMETRY_observe_drift.prom");
    if let Err(e) = snapshot.write_json(json_path) {
        eprintln!("FAIL: writing JSON snapshot: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = freewayml::telemetry::write_prometheus(learner.telemetry(), prom_path) {
        eprintln!("FAIL: writing Prometheus page: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nwrote {} and {}", json_path.display(), prom_path.display());

    // ---- Ground-truth checks (CI gate) ----------------------------------
    let severe_truth: Vec<u64> =
        phase_by_seq.iter().filter(|(_, p)| p.is_severe()).map(|(s, _)| *s).collect();
    println!("\nground-truth severe batches: {severe_truth:?}");
    println!("DriftDetected batches:       {drift_seqs:?}");

    let mut failures = Vec::new();
    if drift_seqs.is_empty() {
        failures.push("no DriftDetected events were emitted".to_string());
    }
    for seq in &severe_truth {
        if !drift_seqs.contains(seq) {
            failures.push(format!("severe batch {seq} produced no DriftDetected event"));
        }
    }
    let batches_total =
        snapshot.metrics.counters.get("freeway_batches_total").copied().unwrap_or(0);
    if batches_total != batches as u64 {
        failures.push(format!("freeway_batches_total = {batches_total}, expected {batches}"));
    }
    if snapshot.events.is_empty() {
        failures.push("snapshot carries no events".to_string());
    }

    if failures.is_empty() {
        println!("\nPASS: drift timeline matches pattern-B/C ground truth");
        ExitCode::SUCCESS
    } else {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        ExitCode::FAILURE
    }
}
