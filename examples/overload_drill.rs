//! Overload drill for the admission-controlled runtime.
//!
//! Drives the virtual-time overload simulator: a 4× burst arrival
//! schedule against a server that can sustain only the baseline rate,
//! fronted by a shedding admission controller and the graceful
//! degradation ladder. Prints the admission ledger, the ladder's
//! transition timeline, and the prequential accuracy under load, then
//! writes the deterministic report to `results/OVERLOAD_drill.json`
//! (byte-identical across runs on the same seed).
//!
//! ```sh
//! cargo run --release --example overload_drill
//! ```

use std::fs;
use std::path::Path;

use freewayml::chaos::{simulate_overload, BurstSchedule, SimOverloadConfig};
use freewayml::core::admission::AdmissionPolicy;
use freewayml::core::degrade::LadderConfig;
use freewayml::prelude::*;
use freewayml::streams::datasets::electricity;

fn main() {
    let stream_seed = 2121;
    let config = SimOverloadConfig {
        schedule: BurstSchedule { base: 1, burst: 4, period: 30, duty: 5 },
        ticks: 120,
        batch_size: 96,
        queue_capacity: 8,
        service_per_tick: 1.25,
        degraded_speedup: 2.0,
        policy: AdmissionPolicy::SheddingNewest,
        ladder: Some(LadderConfig::default()),
    };

    let mut stream = electricity(stream_seed);
    let learner = PipelineBuilder::new(ModelSpec::lr(stream.num_features(), stream.num_classes()))
        .with_config(FreewayConfig { pca_warmup_rows: 192, mini_batch: 96, ..Default::default() })
        .build_learner()
        .expect("valid configuration");
    let report = simulate_overload(&mut stream, learner, &config);

    println!(
        "arrivals: {} offered over {} ticks ({}x burst every {} ticks)",
        report.offered, config.ticks, config.schedule.burst, config.schedule.period
    );
    println!(
        "admission: {} admitted, {} shed, queue peak {}/{}",
        report.admitted,
        report.shed_total(),
        report.queue_peak,
        config.queue_capacity
    );
    for (reason, count) in &report.shed_by_reason {
        println!("  shed [{reason}]: {count}");
    }
    println!("service by ladder level:");
    for (level, count) in &report.processed_by_level {
        println!("  {level:<14} {count} batches");
    }
    println!("ladder transitions:");
    for t in &report.transitions {
        println!("  tick {:>3}: {} -> {}", t.tick, t.from, t.to);
    }
    println!(
        "prequential accuracy under overload: {:.4} ({}/{} scored)",
        report.accuracy(),
        report.correct,
        report.scored
    );

    let out = Path::new("results").join("OVERLOAD_drill.json");
    fs::create_dir_all("results").expect("results directory");
    fs::write(&out, report.deterministic_json() + "\n").expect("write drill artifact");
    println!("\nwrote {}", out.display());
}
