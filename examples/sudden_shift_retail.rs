//! A "Black Friday" scenario: one unforeseen, massive sudden shift.
//!
//! The paper motivates Pattern B with retail events where transaction
//! distributions surge into territory no model has seen. This example
//! builds a custom drift program — a long calm stretch, then one fresh
//! sudden shift — and shows coherent experience clustering carrying
//! inference through the batches where the trained models are useless.
//!
//! ```sh
//! cargo run --release --example sudden_shift_retail
//! ```

use freewayml::prelude::*;
use freewayml::streams::concept::GmmConcept;
use freewayml::streams::datasets::{Segment, SimulatedDataset};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let seed = 11;
    let batch_size = 256;

    // Custom workload: 30 calm batches of regular retail traffic, then
    // Black Friday (a fresh concept), then a calm hold.
    let mut rng = StdRng::seed_from_u64(seed);
    let regular = GmmConcept::random(12, 3, 2, 3.5, 1.0, &mut rng);
    let program = vec![
        Segment::Localized { amplitude: 0.25, batches: 30 },
        Segment::SwitchFresh { batches: 15 },
        Segment::SwitchTo { index: 0, batches: 15 },
    ];
    let mut stream = SimulatedDataset::new("Retail", vec![regular], program, 3.5, 1.0, 2, seed)
        .with_label_noise(0.1);

    let spec = ModelSpec::mlp(12, vec![32], 3);
    let mut learner =
        Learner::new(spec, FreewayConfig { mini_batch: batch_size, ..Default::default() });

    println!("batch | phase             | detected     | strategy  | accuracy");
    println!("------+-------------------+--------------+-----------+---------");
    for i in 0..60 {
        let batch = stream.next_batch(batch_size);
        let report = learner.process(&batch);
        let correct = report.predictions.iter().zip(batch.labels()).filter(|(p, t)| p == t).count();
        let acc = correct as f64 / batch.len() as f64;
        let interesting = !matches!(batch.phase, DriftPhase::SlightLocalized)
            || report.strategy != Strategy::Ensemble;
        if interesting || i % 10 == 0 {
            println!(
                "{i:>5} | {:<17} | {:<12} | {:<9} | {:>6.1}%",
                format!("{:?}", batch.phase),
                report.pattern.map_or("warm-up".into(), |p| p.tag().to_string()),
                report.strategy.tag(),
                acc * 100.0
            );
        }
    }
    println!("\nThe Sudden batch routes through CEC (clusters mapped by the");
    println!("most recent labeled points); the return to regular traffic is");
    println!("detected as reoccurring and answered from stored knowledge.");
}
