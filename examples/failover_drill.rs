//! Liveness and failover drill: stall → recover → crash-loop → fence →
//! reroute, with knowledge-warm failover and a fault-free twin.
//!
//! Five acts on a 3-shard [`ShardedPipeline`] with a journal and a stall
//! watchdog armed:
//!
//! 1. **Warmup** — three tenants (hash-pinned to distinct shards) each
//!    learn their own concept; window completions publish into the
//!    cross-shard knowledge registry.
//! 2. **Stall** — shard 0's worker wedges mid-batch. The watchdog
//!    detects the missing heartbeat progress, forces a recovery through
//!    checkpoint-restore + journal-replay, and the in-flight batch is
//!    delivered anyway (zero lost).
//! 3. **Crash-loop** — shard 0's worker panics repeatedly until its
//!    restart budget is exhausted. Instead of erroring the router, the
//!    shard is **fenced**: healthy shards keep running, and the fenced
//!    shard's registry entries stay readable.
//! 4. **Reroute** — the fenced tenant's keys deterministically fail over
//!    to a surviving shard, whose learner meets an unseen concept and
//!    warm-starts from the fenced shard's published knowledge
//!    (Pattern-C reuse) instead of relearning.
//! 5. **Twin** — the identical batch schedule replayed fault-free; the
//!    drill passes only if faulted accuracy lands within three points of
//!    the twin on the surviving traffic.
//!
//! A virtual-time watchdog simulation (same decision logic, pure ticks)
//! rides along. Every batch runs feed → barrier lock-step, so the report
//! written to `results/FAILOVER_drill.json` is byte-identical across
//! runs on the same seed.
//!
//! ```sh
//! cargo run --release --example failover_drill
//! ```

use std::collections::HashMap;
use std::fmt::Write as _;
use std::fs;
use std::path::Path;
use std::time::Duration;

use freewayml::chaos::{simulate_stall, SimStallConfig};
use freewayml::core::admission::{AdmissionConfig, AdmissionPolicy};
use freewayml::core::failover_shard;
use freewayml::prelude::*;
use freewayml::streams::concept::{stream_rng, GmmConcept};

const SHARDS: usize = 3;
const DIM: usize = 6;
const BATCH_SIZE: usize = 64;
const WARM_ROUNDS: usize = 20;
const STALL_ROUNDS: usize = 4;
const REROUTE_ROUNDS: usize = 24;
const MAX_RESTARTS: usize = 2;

fn build(journal: Option<JournalConfig>) -> ShardedPipeline {
    let mut builder = PipelineBuilder::new(ModelSpec::lr(DIM, 2))
        .with_config(FreewayConfig {
            pca_warmup_rows: 64,
            mini_batch: BATCH_SIZE,
            asw_max_batches: 3,
            beta: 0.9,
            ..Default::default()
        })
        .with_queue_depth(32)
        .with_checkpoint_every(4)
        .with_max_restarts(MAX_RESTARTS)
        .with_stall_deadline(Duration::from_millis(60))
        .admission(AdmissionConfig {
            policy: AdmissionPolicy::Block,
            ladder: None,
            ..Default::default()
        })
        .shards(SHARDS);
    if let Some(config) = journal {
        builder = builder.journal(config);
    }
    builder.build_sharded().expect("valid configuration")
}

/// First key at/after `start` routing to `target` under [`SHARDS`].
fn key_for_shard(target: usize, start: u64) -> u64 {
    (start..start + 4096).find(|k| shard_for(*k, SHARDS) == target).expect("keys cover shards")
}

/// The full batch schedule, generated up-front so the faulted run and
/// its fault-free twin consume byte-identical inputs in the same order.
struct Schedule {
    feeds: Vec<KeyedBatch>,
    labels: HashMap<u64, Vec<usize>>,
    /// Index of the single batch fed *behind* the injected stall.
    stall_at: usize,
    /// Feed index at which the crash-loop (act 3) happens.
    fence_at: usize,
}

fn schedule(keys: &[u64; SHARDS], reroute_partner: usize) -> Schedule {
    let mut rng = stream_rng(2026);
    let concepts: Vec<GmmConcept> = (0..SHARDS)
        .map(|i| {
            let mut c = GmmConcept::random(DIM, 2, 2, 4.0, 0.6, &mut rng);
            c.translate(&[40.0 * i as f64; DIM]);
            c
        })
        .collect();

    let mut feeds = Vec::new();
    let mut labels = HashMap::new();
    let mut seq = 0u64;
    let mut push = |tenant: usize,
                    feeds: &mut Vec<KeyedBatch>,
                    labels: &mut HashMap<u64, Vec<usize>>,
                    rng: &mut rand::rngs::StdRng| {
        let (x, y) = concepts[tenant].sample_batch(BATCH_SIZE, rng);
        labels.insert(seq, y.clone());
        feeds.push(KeyedBatch {
            key: keys[tenant],
            batch: Batch::labeled(x, y, seq, DriftPhase::Stable),
        });
        seq += 1;
    };

    // Act 1: warmup, all tenants in lock-step.
    for _ in 0..WARM_ROUNDS {
        for tenant in 0..SHARDS {
            push(tenant, &mut feeds, &mut labels, &mut rng);
        }
    }
    // Act 2: one tenant-0 batch is fed behind the stall, then a few
    // post-recovery rounds prove the shard is healthy again.
    let stall_at = feeds.len();
    push(0, &mut feeds, &mut labels, &mut rng);
    for _ in 0..STALL_ROUNDS {
        for tenant in 0..SHARDS {
            push(tenant, &mut feeds, &mut labels, &mut rng);
        }
    }
    // Act 3 feeds nothing (the crash-loop runs at a quiescent point).
    let fence_at = feeds.len();
    // Act 4: the fenced tenant keeps emitting concept 0 (now rerouted);
    // the surviving tenant that does NOT own the failover shard runs
    // alongside, so the failover shard sees exactly one new concept.
    for _ in 0..REROUTE_ROUNDS {
        push(0, &mut feeds, &mut labels, &mut rng);
        push(reroute_partner, &mut feeds, &mut labels, &mut rng);
    }
    Schedule { feeds, labels, stall_at, fence_at }
}

/// Prequential accuracy ledger: score every delivered output against the
/// schedule's labels.
#[derive(Default)]
struct Ledger {
    per_seq: HashMap<u64, (usize, usize)>,
}

impl Ledger {
    fn score(&mut self, outputs: &[(usize, freewayml::core::PipelineOutput)], schedule: &Schedule) {
        for (_, out) in outputs {
            let (Some(report), Some(labels)) = (&out.report, schedule.labels.get(&out.seq)) else {
                continue;
            };
            let correct = report.predictions.iter().zip(labels).filter(|(p, y)| p == y).count();
            self.per_seq.insert(out.seq, (correct, labels.len()));
        }
    }
}

fn main() {
    let keys: [u64; SHARDS] = [key_for_shard(0, 0), key_for_shard(1, 0), key_for_shard(2, 0)];
    let mut fenced_mask = [false; SHARDS];
    fenced_mask[0] = true;
    let failover_target = failover_shard(keys[0], &fenced_mask).expect("two shards survive");
    // The surviving tenant that does not own the failover shard.
    let reroute_partner = (1..SHARDS).find(|s| *s != failover_target).expect("three shards");
    println!(
        "tenants: keys {keys:?}; on fence, key {} fails over shard 0 -> {failover_target}",
        keys[0]
    );

    let plan = schedule(&keys, reroute_partner);

    // ---- Faulted run -------------------------------------------------
    let dir = std::env::temp_dir().join(format!("freeway-failover-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).expect("temp dir");
    let mut pipeline = build(Some(JournalConfig::new(dir.join("ingest.wal"))));
    let mut faulted = Ledger::default();

    // Act 1: warmup.
    let mut idx = 0;
    while idx < plan.stall_at {
        pipeline.feed_prequential(plan.feeds[idx].clone()).expect("router alive");
        faulted.score(&pipeline.barrier().expect("shards alive"), &plan);
        idx += 1;
    }
    let registry_before: usize = {
        let (_, view) = pipeline.shared().view();
        view.len()
    };
    println!("act 1: {WARM_ROUNDS} warm rounds/tenant, registry holds {registry_before} entries");

    // Act 2: wedge shard 0's worker for far longer than the deadline and
    // feed one batch behind the stall; the barrier's liveness sweep
    // detects the frozen heartbeat and forces a recovery, and the
    // journal replays the in-flight batch.
    pipeline.inject_worker_stall(0, Duration::from_secs(30), false).expect("stall injection");
    pipeline.feed_prequential(plan.feeds[idx].clone()).expect("router alive");
    faulted.score(&pipeline.barrier().expect("watchdog recovers the stall"), &plan);
    idx += 1;
    let stalls_seen = pipeline.shard(0).supervisor().stats().worker_stalls;
    let restarts_after_stall = pipeline.shard(0).supervisor().stats().restarts;
    while idx < plan.fence_at {
        pipeline.feed_prequential(plan.feeds[idx].clone()).expect("router alive");
        faulted.score(&pipeline.barrier().expect("shards alive"), &plan);
        idx += 1;
    }
    println!(
        "act 2: watchdog fired {stalls_seen} time(s); forced recovery used restart \
         {restarts_after_stall}/{MAX_RESTARTS}; stalled batch delivered"
    );

    // Act 3: crash-loop shard 0 at quiescent points until the restart
    // budget is exhausted and the router fences it.
    let mut panics = 0usize;
    while !pipeline.is_fenced(0) {
        pipeline.inject_worker_panic(0).expect("panic injection survivable");
        panics += 1;
        let mut spins = 0u32;
        while !pipeline.is_fenced(0) {
            let restarts = pipeline.shard(0).supervisor().stats().restarts;
            pipeline.try_recv().expect("router alive");
            if !pipeline.is_fenced(0) && pipeline.shard(0).supervisor().stats().restarts > restarts
            {
                break; // restarted within budget; panic again
            }
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            }
        }
    }
    let stats: Vec<_> = (0..SHARDS).map(|i| pipeline.shard(i).supervisor().stats()).collect();
    let fenced_list = pipeline.fenced_shards();
    let registry_after: usize = {
        let (_, view) = pipeline.shared().view();
        view.len()
    };
    println!(
        "act 3: {panics} panic(s) exhausted the budget; fenced shards {:?}; \
         registry still readable with {registry_after} entries",
        pipeline.fenced_shards()
    );

    // Act 4: the fenced tenant's traffic reroutes; the failover shard
    // meets concept 0 cold and warm-starts from shard 0's registry entry.
    let routed = pipeline.route_for_key(keys[0]).expect("survivors remain");
    assert_eq!(routed, failover_target, "live routing matches the pure failover function");
    let mut reroute_strategies: Vec<&'static str> = Vec::new();
    while idx < plan.feeds.len() {
        pipeline.feed_prequential(plan.feeds[idx].clone()).expect("router alive");
        let outputs = pipeline.barrier().expect("survivors alive");
        for (_, out) in &outputs {
            if let Some(report) = &out.report {
                if plan.feeds[idx].key == keys[0] {
                    reroute_strategies.push(report.strategy().tag());
                }
            }
        }
        faulted.score(&outputs, &plan);
        idx += 1;
    }
    let run = pipeline.finish().expect("a fenced shard does not break finish");
    let hits = run.shards[failover_target].learner().shared_hits();
    println!(
        "act 4: key {} rerouted to shard {failover_target}, {hits} knowledge hit(s), \
         strategies {reroute_strategies:?}",
        keys[0]
    );

    // ---- Fault-free twin ---------------------------------------------
    let mut twin = build(None);
    let mut clean = Ledger::default();
    for feed in &plan.feeds {
        twin.feed_prequential(feed.clone()).expect("router alive");
        clean.score(&twin.barrier().expect("shards alive"), &plan);
    }
    twin.finish().expect("clean finish");

    // Paired accuracy over the seqs both runs scored, split into the
    // *surviving* traffic (batches whose routing the fence never
    // touched: every tenant pre-fence, healthy tenants throughout) and
    // the *rerouted* traffic (the fenced tenant's post-fence batches,
    // answered by the failover shard's knowledge-warmed learner).
    let rerouted_seq =
        |seq: u64| seq >= plan.fence_at as u64 && plan.feeds[seq as usize].key == keys[0];
    let (mut fc, mut ft, mut cc, mut ct) = (0usize, 0usize, 0usize, 0usize);
    let (mut rc, mut rt, mut rcc, mut rct) = (0usize, 0usize, 0usize, 0usize);
    let mut paired = 0usize;
    for (seq, (correct, total)) in &faulted.per_seq {
        if let Some((c2, t2)) = clean.per_seq.get(seq) {
            paired += 1;
            if rerouted_seq(*seq) {
                rc += correct;
                rt += total;
                rcc += c2;
                rct += t2;
            } else {
                fc += correct;
                ft += total;
                cc += c2;
                ct += t2;
            }
        }
    }
    if std::env::var("FAILOVER_DEBUG").is_ok() {
        let missing: Vec<u64> =
            clean.per_seq.keys().filter(|s| !faulted.per_seq.contains_key(s)).copied().collect();
        let missing_f: Vec<u64> =
            faulted.per_seq.keys().filter(|s| !clean.per_seq.contains_key(s)).copied().collect();
        println!(
            "debug: faulted scored {} seqs, clean {} seqs; clean-only {missing:?}, faulted-only {missing_f:?}",
            faulted.per_seq.len(),
            clean.per_seq.len()
        );
        for seq in plan.fence_at as u64..plan.feeds.len() as u64 {
            let f = faulted.per_seq.get(&seq);
            let c = clean.per_seq.get(&seq);
            println!(
                "debug: seq {seq} key {} faulted {f:?} clean {c:?}",
                plan.feeds[seq as usize].key
            );
        }
    }
    let acc = |c: usize, t: usize| if t == 0 { 0.0 } else { c as f64 / t as f64 };
    let (faulted_acc, clean_acc) = (acc(fc, ft), acc(cc, ct));
    let gap = (clean_acc - faulted_acc).abs();
    let (rerouted_acc, rerouted_clean_acc) = (acc(rc, rt), acc(rcc, rct));
    println!(
        "twin: surviving traffic {faulted_acc:.4} vs fault-free {clean_acc:.4} over {paired} \
         paired seqs (gap {gap:.4}); rerouted traffic {rerouted_acc:.4} vs {rerouted_clean_acc:.4} \
         had the fenced shard lived"
    );
    assert!(gap <= 0.03, "surviving-traffic accuracy drifted more than 3 points: {gap:.4}");
    assert!(stats.iter().all(|s| s.lost_in_flight == 0), "journal replay loses nothing");

    // ---- Virtual-time watchdog simulation ----------------------------
    let sim_config = SimStallConfig {
        ticks: 3_000,
        arrival_every: 4,
        service_ticks: 6,
        poll_every: 5,
        deadline_ticks: 40,
        stalls: vec![(300, 400), (1_200, 350), (2_100, 500)],
    };
    let sim = simulate_stall(&sim_config);
    println!(
        "sim: {} batches, {} detections, {} false positives, worst latency {} ticks",
        sim.processed,
        sim.detections.len(),
        sim.false_positives,
        sim.max_detection_latency
    );

    // ---- Deterministic artifact --------------------------------------
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"shards\": {SHARDS},");
    let _ = writeln!(json, "  \"tenant_keys\": [{}, {}, {}],", keys[0], keys[1], keys[2]);
    let _ = writeln!(json, "  \"warm_rounds\": {WARM_ROUNDS},");
    let _ = writeln!(json, "  \"stall_batch_seq\": {},", plan.stall_at);
    let _ = writeln!(json, "  \"worker_stalls\": {stalls_seen},");
    let _ = writeln!(json, "  \"restarts_after_stall\": {restarts_after_stall},");
    let _ = writeln!(json, "  \"crash_loop_panics\": {panics},");
    let restarts: Vec<String> = stats.iter().map(|s| s.restarts.to_string()).collect();
    let _ = writeln!(json, "  \"restarts\": [{}],", restarts.join(", "));
    let lost: Vec<String> = stats.iter().map(|s| s.lost_in_flight.to_string()).collect();
    let _ = writeln!(json, "  \"lost_in_flight\": [{}],", lost.join(", "));
    let fenced: Vec<String> = fenced_list.iter().map(|s| s.to_string()).collect();
    let _ = writeln!(json, "  \"fenced_shards\": [{}],", fenced.join(", "));
    let _ = writeln!(json, "  \"failover_target\": {failover_target},");
    let _ = writeln!(json, "  \"registry_entries_before_fence\": {registry_before},");
    let _ = writeln!(json, "  \"registry_entries_after_fence\": {registry_after},");
    let _ = writeln!(json, "  \"cross_shard_hits\": {hits},");
    let strategies: Vec<String> = reroute_strategies.iter().map(|s| format!("\"{s}\"")).collect();
    let _ = writeln!(json, "  \"reroute_strategies\": [{}],", strategies.join(", "));
    let _ = writeln!(json, "  \"paired_seqs\": {paired},");
    let _ = writeln!(json, "  \"surviving_accuracy\": {faulted_acc:.4},");
    let _ = writeln!(json, "  \"surviving_fault_free_accuracy\": {clean_acc:.4},");
    let _ = writeln!(json, "  \"surviving_accuracy_gap\": {gap:.4},");
    let _ = writeln!(json, "  \"rerouted_accuracy\": {rerouted_acc:.4},");
    let _ = writeln!(json, "  \"rerouted_fault_free_accuracy\": {rerouted_clean_acc:.4},");
    let trajectory: Vec<String> = (plan.fence_at as u64..plan.feeds.len() as u64)
        .filter(|seq| rerouted_seq(*seq))
        .filter_map(|seq| faulted.per_seq.get(&seq))
        .map(|(c, t)| format!("{:.4}", acc(*c, *t)))
        .collect();
    let _ = writeln!(json, "  \"rerouted_trajectory\": [{}],", trajectory.join(", "));
    let _ = writeln!(json, "  \"simulation\": {{");
    let _ = writeln!(json, "    \"ticks\": {},", sim_config.ticks);
    let _ = writeln!(json, "    \"deadline_ticks\": {},", sim_config.deadline_ticks);
    let _ = writeln!(json, "    \"poll_every\": {},", sim_config.poll_every);
    let _ = writeln!(json, "    \"processed\": {},", sim.processed);
    let detections: Vec<String> = sim
        .detections
        .iter()
        .map(|d| format!("[{}, {}]", d.tick, d.stall.map_or(-1, |s| s as i64)))
        .collect();
    let _ = writeln!(json, "    \"detections\": [{}],", detections.join(", "));
    let _ = writeln!(json, "    \"false_positives\": {},", sim.false_positives);
    let _ = writeln!(json, "    \"recovered\": {},", sim.recovered);
    let _ = writeln!(json, "    \"max_detection_latency\": {}", sim.max_detection_latency);
    let _ = writeln!(json, "  }}");
    json.push('}');
    json.push('\n');

    let out = Path::new("results").join("FAILOVER_drill.json");
    fs::create_dir_all("results").expect("results directory");
    fs::write(&out, json).expect("write drill artifact");
    println!("\nwrote {}", out.display());
    let _ = fs::remove_dir_all(&dir);
}
