//! Electricity price-trend forecasting with cyclic regimes.
//!
//! Electricity demand cycles through daily regimes with a slow seasonal
//! trend (the paper's Elec2 workload). This example contrasts the
//! *stability* of FreewayML against the plain streaming model: both
//! reach similar average accuracy on calm stretches, but the plain
//! model's accuracy whipsaws at regime changes while FreewayML's
//! strategy selector absorbs them.
//!
//! ```sh
//! cargo run --release --example electricity_forecast
//! ```

use freewayml::baselines::{PlainSgd, StreamingLearner};
use freewayml::eval::{global_accuracy, stability_index};
use freewayml::prelude::*;
use freewayml::streams::datasets;

fn sparkline(values: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (max - min).max(1e-9);
    values.iter().map(|v| BARS[(((v - min) / span) * 7.0).round() as usize]).collect()
}

fn main() {
    let seed = 7;
    let batch_size = 256;
    let batches = 100;

    let mut stream_a = datasets::electricity(seed);
    let mut stream_b = datasets::electricity(seed);
    let spec = ModelSpec::mlp(stream_a.num_features(), vec![32], stream_a.num_classes());

    let mut freeway =
        Learner::new(spec.clone(), FreewayConfig { mini_batch: batch_size, ..Default::default() });
    let mut plain = PlainSgd::new(spec, seed);

    let mut freeway_accs = Vec::new();
    let mut plain_accs = Vec::new();
    for _ in 0..batches {
        let batch = stream_a.next_batch(batch_size);
        let report = freeway.process(&batch);
        let correct = report.predictions.iter().zip(batch.labels()).filter(|(p, t)| p == t).count();
        freeway_accs.push(correct as f64 / batch.len() as f64);

        let batch_b = stream_b.next_batch(batch_size);
        let preds = plain.infer(&batch_b.x);
        let correct_b = preds.iter().zip(batch_b.labels()).filter(|(p, t)| p == t).count();
        plain.train(&batch_b.x, batch_b.labels());
        plain_accs.push(correct_b as f64 / batch_b.len() as f64);
    }

    println!("Electricity price-trend stream ({batches} batches x {batch_size})\n");
    println!("plain     {}", sparkline(&plain_accs));
    println!("freewayml {}", sparkline(&freeway_accs));
    println!();
    println!(
        "plain:     G_acc = {:.2}%  SI = {:.3}",
        global_accuracy(&plain_accs) * 100.0,
        stability_index(&plain_accs)
    );
    println!(
        "freewayml: G_acc = {:.2}%  SI = {:.3}",
        global_accuracy(&freeway_accs) * 100.0,
        stability_index(&freeway_accs)
    );

    // Worst single-batch drop — the "sudden decline" the paper targets.
    let worst = |accs: &[f64]| accs.windows(2).map(|w| w[0] - w[1]).fold(f64::MIN, f64::max);
    println!(
        "\nworst batch-to-batch accuracy drop: plain {:.1} pts, freewayml {:.1} pts",
        worst(&plain_accs) * 100.0,
        worst(&freeway_accs) * 100.0
    );
}
