#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green, in fail-fast order.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== cargo clippy =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "ci.sh: all green"
