#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green, in fail-fast order.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== alloc regression gate (zero-allocation hot path) =="
cargo test -q -p freeway-eval --features alloc-metrics --test alloc_regression

echo "== cargo clippy =="
# redundant_clone is allow-by-default (nursery); promote it to warn
# *before* `-D warnings` so the group elevation turns it into an error.
cargo clippy --workspace --all-targets -- -W clippy::redundant_clone -D warnings

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "ci.sh: all green"
