#!/usr/bin/env bash
# Tier-1 gate: everything a PR must keep green, in fail-fast order.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== alloc regression gate (zero-allocation hot path) =="
cargo test -q -p freeway-eval --features alloc-metrics --test alloc_regression

echo "== chaos recovery gate (fault-tolerant runtime) =="
cargo test -q -p freeway-chaos --test recovery

echo "== telemetry gate (drift-event observability) =="
# The observe_drift example self-checks (exit code) that the detected
# drift timeline covers the generator's ground truth and writes both
# export formats; the JSON re-parse below asserts the exported snapshot
# independently records at least one DriftDetected event.
cargo run --release --example observe_drift > /dev/null
python3 - <<'PY'
import json
with open("results/TELEMETRY_observe_drift.json") as fh:
    snapshot = json.load(fh)
drifts = [e for e in snapshot["events"] if "DriftDetected" in e]
assert drifts, "exported snapshot carries no DriftDetected events"
assert snapshot["metrics"]["counters"]["freeway_events_drift_detected_total"] >= len(drifts) > 0
print(f"telemetry gate: {len(drifts)} DriftDetected event(s) in exported snapshot")
PY

echo "== overload gate (admission control + degradation ladder) =="
# The overload integration drill asserts bounded producer latency and
# memory, zero stalls, and the prequential-accuracy envelope under a 4x
# burst; the checkpoint-corruption drill asserts restore falls back past
# a trashed newest generation. Release build: the drill budgets real
# wall-clock stage times, which debug-profile compute would blow. The
# drill example then re-writes its deterministic artifact and the diff
# asserts byte-stability.
cargo test -q --release -p freeway-chaos --test overload
cargo run --release --example overload_drill > /dev/null
cp results/OVERLOAD_drill.json /tmp/overload_drill_ci.json
cargo run --release --example overload_drill > /dev/null
diff /tmp/overload_drill_ci.json results/OVERLOAD_drill.json
rm -f /tmp/overload_drill_ci.json
echo "overload gate: drill green, artifact byte-stable"

echo "== throughput regression gate (single-core kernel floor) =="
# bench_throughput --quick sweeps StreamingLR at batch 256 over pools
# [1, 2] and emits one machine-readable JSON line; the gate fails when
# the serial FreewayML point drops below the checked-in floor. The floor
# (results/BENCH_floor.json) is set well under the measured steady state
# so host noise passes but losing the kernel/pool optimisations does not.
cargo build --release -q -p freeway-eval --features alloc-metrics
./target/release/bench_throughput --quick | tail -n 1 > /tmp/bench_quick_ci.json
python3 - <<'PY'
import json
floor = json.load(open("results/BENCH_floor.json"))
bench = json.load(open("/tmp/bench_quick_ci.json"))
match = [
    p for p in bench["points"]
    if p["system"] == "FreewayML"
    and p["model"] == floor["model"]
    and p["batch_size"] == floor["batch_size"]
    and p["threads"] == floor["threads"]
]
assert match, f"quick bench emitted no point matching the floor spec {floor}"
got = match[0]["items_per_sec"]
need = floor["min_items_per_sec"]
assert got >= need, f"FreewayML throughput regressed: {got:,.0f} items/s < floor {need:,.0f}"
assert bench["kernel_microbench"], "quick bench carries no kernel microbench section"
print(f"throughput gate: FreewayML {got:,.0f} items/s >= floor {need:,.0f}")
PY
rm -f /tmp/bench_quick_ci.json

echo "== sharded runtime gate (routing, crash isolation, shard scaling) =="
# The keyed shard drill asserts a worker panic on one shard restarts
# only that shard (healthy-shard transcript and registry byte-equal to
# a fault-free run); the sharded drill example re-writes its
# deterministic artifact and the diff asserts byte-stability; the quick
# shard sweep drives 1024 interleaved keyed streams through 1 and 2
# shards and gates the scaling ratio — only on hosts with >= 2 cores,
# since shard workers cannot scale past the physical core budget.
cargo test -q --release -p freeway-chaos --test keyed_shard
cargo run --release --example sharded_drill > /dev/null
cp results/SHARDED_drill.json /tmp/sharded_drill_ci.json
cargo run --release --example sharded_drill > /dev/null
diff /tmp/sharded_drill_ci.json results/SHARDED_drill.json
rm -f /tmp/sharded_drill_ci.json
./target/release/bench_throughput --quick --shards 1,2 --keys 1024 \
    | tail -n 1 > /tmp/shard_quick_ci.json
python3 - <<'PY'
import json, os
bench = json.load(open("/tmp/shard_quick_ci.json"))
points = {p["shards"]: p for p in bench["shard_scaling"]}
assert 1 in points and 2 in points, f"shard sweep missing counts: {sorted(points)}"
for p in points.values():
    assert p["keys"] >= 1024, f"sweep ran {p['keys']} keyed streams, need >= 1024"
    assert p["items_per_sec"] > 0, f"non-positive throughput at {p['shards']} shard(s)"
ratio = points[2]["items_per_sec"] / points[1]["items_per_sec"]
cores = os.cpu_count() or 1
if cores >= 2:
    assert ratio >= 1.6, (
        f"2-shard scaling regressed: {ratio:.2f}x over 1 shard "
        f"(need >= 1.6x on this {cores}-core host)"
    )
    print(f"sharded gate: 2 shards = {ratio:.2f}x of 1 shard on {cores} cores")
else:
    print(
        f"sharded gate: scaling ratio {ratio:.2f}x recorded, 1.6x assertion "
        f"skipped (single-core host cannot scale shard workers)"
    )
PY
rm -f /tmp/shard_quick_ci.json
echo "sharded gate: crash isolation green, drill artifact byte-stable"

echo "== journal gate (durable ingest + effectively-once replay) =="
# The torn-write proptest cuts a journal at every byte of its tail frame
# and asserts recovery is always the framed prefix; the journaled crash
# drill asserts a two-panic run and a single-shard-panic 2-shard run both
# lose zero batches and reproduce the fault-free transcript byte-for-byte;
# the drill artifact is re-written and diffed for byte-stability.
cargo test -q --release -p freeway-core --test journal_recovery
cargo run --release --example chaos_drill -- --journal > /dev/null
cp results/JOURNAL_drill.json /tmp/journal_drill_ci.json
cargo run --release --example chaos_drill -- --journal > /dev/null
diff /tmp/journal_drill_ci.json results/JOURNAL_drill.json
rm -f /tmp/journal_drill_ci.json
python3 - <<'PY'
import json
drill = json.load(open("results/JOURNAL_drill.json"))
plain, sharded = drill["plain"], drill["sharded"]
assert plain["lost_in_flight"] == 0, f"plain drill lost batches: {plain}"
assert plain["transcript_matches_fault_free"], "plain transcript diverged"
assert plain["replay_exercised"], "crash drill never exercised replay"
assert plain["replayed_outputs_all_suppressed"], "a replayed output was delivered twice"
assert plain["journal_appended"] == plain["accepted"], "an accepted batch skipped the journal"
assert sharded["lost_in_flight"] == [0, 0], f"a shard lost batches: {sharded}"
assert sharded["victim_transcript_matches"], "victim shard transcript diverged"
assert sharded["healthy_transcript_matches"], "healthy shard transcript diverged"
assert sharded["replay_confined_to_victim"], "replay leaked to the healthy shard"
print(
    "journal gate: replay exercised, 0 lost, "
    "transcripts byte-equal to fault-free, artifact byte-stable"
)
PY

echo "== serving gate (multi-client facade + label regimes) =="
# The serve suite proves concurrent sessions match a serialized oracle;
# the label-regime suite proves delayed/partial labels stay within the
# accuracy budget. The serving drill (8 clients x 2 shards under mixed
# label schedules) internally asserts zero panics, oracle equality, the
# 3-point accuracy budget, and a bounded p99 submit latency; its
# artifact is re-written and diffed for byte-stability, then the JSON
# re-parse asserts the recorded invariants independently.
cargo test -q --release -p freeway-core --test serve
cargo test -q --release -p freeway-chaos --test label_regime
cargo run --release --example serving_drill > /dev/null
cp results/SERVING_drill.json /tmp/serving_drill_ci.json
cargo run --release --example serving_drill > /dev/null
diff /tmp/serving_drill_ci.json results/SERVING_drill.json
rm -f /tmp/serving_drill_ci.json
python3 - <<'PY'
import json
drill = json.load(open("results/SERVING_drill.json"))
assert drill["clients"] >= 8, f"drill ran {drill['clients']} clients, need >= 8"
assert drill["shards"] == 2, f"drill ran {drill['shards']} shards, need 2"
assert all(p == 0 for p in drill["worker_panics"]), f"worker panics: {drill['worker_panics']}"
assert drill["shed"] == 0 and drill["quarantined"] == 0, "drill shed or quarantined batches"
assert drill["oracle_match"] is True, "concurrent transcripts diverged from the oracle"
assert all(a > 0 for a in drill["per_shard_admitted"]), "a shard sat idle"
gap = drill["full_accuracy"] - drill["regime_accuracy"]
assert gap <= 0.03, f"label-regime accuracy gap {gap:.4f} blew the 3-point budget"
print(
    f"serving gate: {drill['clients']} clients over {drill['shards']} shards, "
    f"oracle match, regime gap {gap:+.4f}"
)
PY

echo "== failover gate (liveness watchdog + shard fencing) =="
# The liveness suite proves the watchdog never declares a slow-but-
# progressing worker stalled (proptest) and that fenced-shard routing is
# deterministic and survivor-only; the stall/fence suite proves forced
# recovery of a hung or livelocked worker is effectively-once under a
# journal and that the serving facade sheds stranded work with typed
# retryable notices. The failover drill (stall -> recover -> crash-loop
# -> fence -> reroute) re-writes its deterministic artifact, the diff
# asserts byte-stability, and the JSON re-parse asserts the recorded
# invariants independently: the drill completing at all is the
# zero-process-panics claim, healthy shards never restart, and nothing
# is lost anywhere (journal replay covers even the fenced shard).
cargo test -q --release -p freeway-core --test liveness
cargo test -q --release -p freeway-chaos --test stall_fence
cargo run --release --example failover_drill > /dev/null
cp results/FAILOVER_drill.json /tmp/failover_drill_ci.json
cargo run --release --example failover_drill > /dev/null
diff /tmp/failover_drill_ci.json results/FAILOVER_drill.json
rm -f /tmp/failover_drill_ci.json
python3 - <<'PY'
import json
drill = json.load(open("results/FAILOVER_drill.json"))
assert drill["worker_stalls"] == 1, f"watchdog fired {drill['worker_stalls']} time(s), want 1"
assert drill["fenced_shards"] == [0], f"fence landed on the wrong shard: {drill['fenced_shards']}"
assert drill["restarts"][1:] == [0, 0], f"a healthy shard restarted: {drill['restarts']}"
assert all(lost == 0 for lost in drill["lost_in_flight"]), (
    f"batches lost in flight: {drill['lost_in_flight']}"
)
assert drill["failover_target"] in (1, 2), f"rerouted to a dead shard: {drill}"
assert drill["surviving_accuracy_gap"] <= 0.03, (
    f"surviving-traffic gap {drill['surviving_accuracy_gap']} blew the 3-point budget"
)
assert drill["registry_entries_after_fence"] == drill["registry_entries_before_fence"] > 0, (
    "fencing changed the knowledge registry"
)
assert drill["cross_shard_hits"] >= 1, "failover never reused the fenced shard's knowledge"
sim = drill["simulation"]
assert sim["false_positives"] == 0, f"virtual-time watchdog false-fired: {sim}"
assert sim["recovered"] == len(sim["detections"]) == 3, f"missed stall windows: {sim}"
print(
    f"failover gate: fence on shard 0, reroute -> {drill['failover_target']}, "
    f"surviving gap {drill['surviving_accuracy_gap']:+.4f}, 0 lost, artifact byte-stable"
)
PY

echo "== cargo doc (telemetry + builder API docs must be warning-free) =="
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "== unwrap/expect audit (runtime crates must not panic) =="
# The supervised runtime's library code may not unwrap/expect its way
# past errors; tests keep their expects (cfg(test) code is not linted
# because only the lib target is checked, and --no-deps keeps the audit
# scoped to the listed crates). freeway-chaos rides along: the fault
# injector and overload harness run inside the same process as the
# runtime they are drilling.
cargo clippy -q -p freeway-core --lib --no-deps -- \
    -W clippy::unwrap_used -W clippy::expect_used -D warnings
cargo clippy -q -p freeway-chaos --lib --no-deps -- \
    -W clippy::unwrap_used -W clippy::expect_used -D warnings

echo "== cargo clippy =="
# redundant_clone is allow-by-default (nursery); promote it to warn
# *before* `-D warnings` so the group elevation turns it into an error.
cargo clippy --workspace --all-targets -- -W clippy::redundant_clone -D warnings

echo "== cargo fmt --check =="
cargo fmt --all --check

echo "ci.sh: all green"
