//! # FreewayML
//!
//! An adaptive and stable streaming-learning framework for dynamic data
//! streams — a from-scratch Rust reproduction of *"FreewayML: An Adaptive
//! and Stable Streaming Learning Framework for Dynamic Data Streams"*
//! (ICDE 2025).
//!
//! Streaming models are sensitive and lightweight; when the data
//! distribution drifts they fluctuate, collapse, or forget. FreewayML
//! watches the stream's *shift graph* — the trajectory of PCA-projected
//! batch means — classifies every batch's drift pattern, and routes
//! inference through the mechanism built for that pattern:
//!
//! | Pattern | Shift | Mechanism |
//! |---------|-------|-----------|
//! | A (slight) | `M ≤ α` | multi-time-granularity model ensemble |
//! | B (sudden) | `M > α` | coherent experience clustering |
//! | C (reoccurring) | `M > α`, `d_h < d_t` | historical knowledge reuse |
//!
//! ## Quickstart
//!
//! ```
//! use freewayml::prelude::*;
//!
//! // A drifting stream (rotating hyperplane, 10 features).
//! let mut stream = Hyperplane::new(10, 0.02, 0.05, 42);
//!
//! // One builder describes the whole deployment: model, configuration,
//! // and (optionally) a telemetry sink recording the event stream.
//! let (builder, sink) = PipelineBuilder::new(ModelSpec::mlp(10, vec![32], 2)).recording();
//! let mut learner = builder
//!     .with_config(FreewayConfig { mini_batch: 256, ..Default::default() })
//!     .build_learner()
//!     .expect("valid configuration");
//!
//! // Prequential loop: test, then train, on every batch.
//! let mut correct = 0usize;
//! let mut total = 0usize;
//! for _ in 0..30 {
//!     let batch = stream.next_batch(256);
//!     let report = learner.process(&batch);
//!     correct += report
//!         .predictions()
//!         .iter()
//!         .zip(batch.labels())
//!         .filter(|(p, t)| p == t)
//!         .count();
//!     total += batch.len();
//! }
//! assert!(correct as f64 / total as f64 > 0.5);
//! // Every batch dispatched exactly one strategy — observable as events.
//! let dispatched = sink
//!     .events()
//!     .iter()
//!     .filter(|e| matches!(e, TelemetryEvent::StrategyDispatched { .. }))
//!     .count();
//! assert_eq!(dispatched, 30);
//! ```
//!
//! ## Crate map
//!
//! This facade re-exports the workspace:
//!
//! * [`core`] (`freeway-core`) — the learner, ASW, knowledge store,
//!   strategy selector, pipeline;
//! * [`ml`] (`freeway-ml`) — models (LR / MLP / CNN), optimizers,
//!   snapshots;
//! * [`streams`] (`freeway-streams`) — benchmark generators and simulated
//!   datasets;
//! * [`drift`] (`freeway-drift`) — shift graph, pattern classifier,
//!   ADWIN;
//! * [`cluster`] (`freeway-cluster`) — k-means and coherent experience
//!   clustering;
//! * [`baselines`] (`freeway-baselines`) — Flink ML / Spark MLlib / Alink /
//!   River / Camel / A-GEM re-implementations;
//! * [`eval`] (`freeway-eval`) — the prequential harness and every
//!   table/figure runner;
//! * [`chaos`] (`freeway-chaos`) — deterministic fault injection and
//!   recovery drills for the supervised runtime;
//! * [`telemetry`] (`freeway-telemetry`) — metrics registry, structured
//!   event stream, and Prometheus/JSON exporters;
//! * [`linalg`] (`freeway-linalg`) — the dense math substrate.

#![warn(missing_docs)]

pub use freeway_baselines as baselines;
pub use freeway_chaos as chaos;
pub use freeway_cluster as cluster;
pub use freeway_core as core;
pub use freeway_drift as drift;
pub use freeway_eval as eval;
pub use freeway_linalg as linalg;
pub use freeway_ml as ml;
pub use freeway_streams as streams;
pub use freeway_telemetry as telemetry;

/// The commonly used types in one import.
pub mod prelude {
    pub use freeway_baselines::{FreewaySystem, StreamingLearner};
    pub use freeway_chaos::{LabelSchedule, LabelScheduler};
    pub use freeway_core::{
        shard_for, ClientSession, FreewayConfig, FreewayError, InferenceReport, JournalConfig,
        JournalStats, Learner, Pipeline, PipelineBuilder, ServeError, Service, ServiceConfig,
        ServiceHandle, ServiceReport, SessionOutput, ShardedPipeline, ShardedRun, SharedKnowledge,
        Strategy, SubmitOutcome, SupervisedPipeline, SupervisorConfig,
    };
    pub use freeway_drift::ShiftPattern;
    pub use freeway_linalg::Matrix;
    pub use freeway_ml::{Model, ModelSpec};
    pub use freeway_streams::{
        Batch, DriftPhase, Hyperplane, InterleavedKeyed, KeyedBatch, Sea, StreamGenerator,
    };
    pub use freeway_telemetry::{
        RecordingSink, Stage, Telemetry, TelemetryEvent, TelemetrySink, TelemetrySnapshot,
    };
}
