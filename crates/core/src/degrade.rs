//! The graceful-degradation ladder (overload protection).
//!
//! Under sustained overload a streaming learner must not stall ingestion
//! or grow latency without bound; the paper's own strategy taxonomy
//! suggests the alternative — when the system cannot afford the full
//! reaction, run a cheaper one. The ladder makes that explicit with four
//! service levels, ordered from full fidelity to none:
//!
//! 1. [`DegradationLevel::Full`] — full strategy dispatch, every
//!    granularity level trains;
//! 2. [`DegradationLevel::ShortOnly`] — multi-granularity retrain is
//!    skipped: only the short model trains, windows stop accumulating
//!    (the cheapest adaptation that still tracks the stream);
//! 3. [`DegradationLevel::InferenceOnly`] — training freezes entirely;
//!    the frozen ensemble keeps serving predictions;
//! 4. [`DegradationLevel::Shed`] — even inference is load we cannot
//!    afford; the admission controller drops incoming batches.
//!
//! [`DegradationLadder::observe`] drives the level from a normalized
//! pressure signal (queue fill plus per-stage timing overruns, computed
//! by the admission controller) with *hysteresis*: a level change needs
//! `dwell_down` consecutive observations above the downgrade threshold
//! (or `dwell_up` below the upgrade threshold), and the two thresholds
//! are separated, so an oscillating load does not flap the ladder. Every
//! transition is emitted as [`TelemetryEvent::DegradationChanged`].
//!
//! The current level is published through a [`DegradationHandle`] — an
//! atomic shared with the [`crate::learner::Learner`] on the worker
//! thread, read with one relaxed load per batch (no locks, no
//! allocation, so the zero-alloc hot-path gate is untouched).

use freeway_telemetry::{Telemetry, TelemetryEvent};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;

/// Service level of the learner under overload, best first.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[non_exhaustive]
pub enum DegradationLevel {
    /// Full strategy dispatch; every granularity level trains.
    Full,
    /// Only the short-granularity model trains; long windows idle.
    ShortOnly,
    /// Training frozen; the ensemble serves inference only.
    InferenceOnly,
    /// Incoming batches are shed at admission.
    Shed,
}

impl DegradationLevel {
    /// Every level, best first (the ladder steps through this order).
    pub const ALL: [DegradationLevel; 4] = [
        DegradationLevel::Full,
        DegradationLevel::ShortOnly,
        DegradationLevel::InferenceOnly,
        DegradationLevel::Shed,
    ];

    /// Static tag used in telemetry events and experiment output.
    pub fn tag(self) -> &'static str {
        match self {
            Self::Full => "full",
            Self::ShortOnly => "short-only",
            Self::InferenceOnly => "inference-only",
            Self::Shed => "shed",
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            Self::Full => 0,
            Self::ShortOnly => 1,
            Self::InferenceOnly => 2,
            Self::Shed => 3,
        }
    }

    fn from_u8(value: u8) -> Self {
        match value {
            0 => Self::Full,
            1 => Self::ShortOnly,
            2 => Self::InferenceOnly,
            _ => Self::Shed,
        }
    }

    /// One step worse (saturates at [`Self::Shed`]).
    pub fn worse(self) -> Self {
        Self::from_u8((self.as_u8() + 1).min(3))
    }

    /// One step better (saturates at [`Self::Full`]).
    pub fn better(self) -> Self {
        Self::from_u8(self.as_u8().saturating_sub(1))
    }
}

/// Shared, lock-free view of the current [`DegradationLevel`].
///
/// The admission controller (producer side) writes it; the learner
/// (worker side) reads it once per batch. Cloning shares the cell.
#[derive(Clone, Debug)]
pub struct DegradationHandle {
    level: Arc<AtomicU8>,
}

impl Default for DegradationHandle {
    fn default() -> Self {
        Self::new()
    }
}

impl DegradationHandle {
    /// A handle starting at [`DegradationLevel::Full`].
    pub fn new() -> Self {
        Self { level: Arc::new(AtomicU8::new(0)) }
    }

    /// Current level (one relaxed load).
    #[inline]
    pub fn level(&self) -> DegradationLevel {
        DegradationLevel::from_u8(self.level.load(Ordering::Relaxed))
    }

    /// Publishes a new level (one relaxed store).
    #[inline]
    pub fn set(&self, level: DegradationLevel) {
        self.level.store(level.as_u8(), Ordering::Relaxed);
    }
}

/// Hysteresis constants for the ladder.
#[derive(Clone, Copy, Debug)]
pub struct LadderConfig {
    /// Pressure above which the ladder counts toward a downgrade.
    /// Pressure is normalized occupancy: 1.0 means the queue plus
    /// backlog are completely full.
    pub downgrade_above: f64,
    /// Pressure below which the ladder counts toward an upgrade. Must be
    /// strictly below `downgrade_above`; the gap is the hysteresis band.
    pub upgrade_below: f64,
    /// Consecutive over-threshold observations required to step down.
    pub dwell_down: u32,
    /// Consecutive under-threshold observations required to step up.
    /// Deliberately larger than `dwell_down` by default: reacting to
    /// overload must be fast, trusting a recovery should be slow.
    pub dwell_up: u32,
}

impl Default for LadderConfig {
    fn default() -> Self {
        Self { downgrade_above: 0.85, upgrade_below: 0.35, dwell_down: 2, dwell_up: 4 }
    }
}

impl LadderConfig {
    /// Validates the thresholds and dwell counts.
    ///
    /// # Errors
    /// A message naming the offending field, in the builder's
    /// `InvalidConfig` style.
    pub fn check(&self) -> Result<(), String> {
        if !(self.downgrade_above.is_finite() && (0.0..=1.0).contains(&self.downgrade_above)) {
            return Err("ladder downgrade_above must be in [0, 1]".to_owned());
        }
        if !(self.upgrade_below.is_finite() && self.upgrade_below >= 0.0) {
            return Err("ladder upgrade_below must be finite and non-negative".to_owned());
        }
        if self.upgrade_below >= self.downgrade_above {
            return Err(
                "ladder upgrade_below must be strictly below downgrade_above (hysteresis band)"
                    .to_owned(),
            );
        }
        if self.dwell_down == 0 || self.dwell_up == 0 {
            return Err("ladder dwell counts must be positive".to_owned());
        }
        Ok(())
    }
}

/// The stateful ladder: pressure observations in, level transitions out.
#[derive(Debug)]
pub struct DegradationLadder {
    config: LadderConfig,
    handle: DegradationHandle,
    telemetry: Telemetry,
    above_streak: u32,
    below_streak: u32,
    transitions: u64,
}

impl DegradationLadder {
    /// Creates a ladder publishing into `handle` and announcing
    /// transitions on `telemetry`.
    pub fn new(config: LadderConfig, handle: DegradationHandle, telemetry: Telemetry) -> Self {
        Self { config, handle, telemetry, above_streak: 0, below_streak: 0, transitions: 0 }
    }

    /// The shared level cell (clone to hand to a learner).
    pub fn handle(&self) -> &DegradationHandle {
        &self.handle
    }

    /// Current level.
    pub fn level(&self) -> DegradationLevel {
        self.handle.level()
    }

    /// Total transitions performed (both directions).
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Feeds one pressure observation (normalized occupancy, 1.0 = the
    /// queue and backlog are full) stamped with the batch sequence number
    /// it was measured at. Steps the ladder at most one level per call,
    /// after the configured dwell, and emits
    /// [`TelemetryEvent::DegradationChanged`] on every transition.
    /// Returns the level in force after the observation.
    pub fn observe(&mut self, seq: u64, pressure: f64) -> DegradationLevel {
        let level = self.handle.level();
        if pressure > self.config.downgrade_above {
            self.below_streak = 0;
            self.above_streak += 1;
            if self.above_streak >= self.config.dwell_down && level != DegradationLevel::Shed {
                self.above_streak = 0;
                return self.transition(seq, level, level.worse());
            }
        } else if pressure < self.config.upgrade_below {
            self.above_streak = 0;
            self.below_streak += 1;
            if self.below_streak >= self.config.dwell_up && level != DegradationLevel::Full {
                self.below_streak = 0;
                return self.transition(seq, level, level.better());
            }
        } else {
            // Inside the hysteresis band: hold the level, reset both
            // streaks so a boundary-straddling load cannot creep over a
            // dwell count one observation at a time.
            self.above_streak = 0;
            self.below_streak = 0;
        }
        level
    }

    fn transition(
        &mut self,
        seq: u64,
        from: DegradationLevel,
        to: DegradationLevel,
    ) -> DegradationLevel {
        self.handle.set(to);
        self.transitions += 1;
        self.telemetry.emit(TelemetryEvent::DegradationChanged {
            seq,
            from: from.tag(),
            to: to.tag(),
        });
        to
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freeway_telemetry::TelemetrySink;

    fn ladder() -> DegradationLadder {
        DegradationLadder::new(
            LadderConfig::default(),
            DegradationHandle::new(),
            Telemetry::disabled(),
        )
    }

    #[test]
    fn levels_step_in_order_and_saturate() {
        assert_eq!(DegradationLevel::Full.worse(), DegradationLevel::ShortOnly);
        assert_eq!(DegradationLevel::ShortOnly.worse(), DegradationLevel::InferenceOnly);
        assert_eq!(DegradationLevel::InferenceOnly.worse(), DegradationLevel::Shed);
        assert_eq!(DegradationLevel::Shed.worse(), DegradationLevel::Shed);
        assert_eq!(DegradationLevel::Full.better(), DegradationLevel::Full);
        assert_eq!(DegradationLevel::Shed.better(), DegradationLevel::InferenceOnly);
    }

    #[test]
    fn downgrade_needs_the_dwell() {
        let mut l = ladder();
        assert_eq!(l.observe(0, 0.95), DegradationLevel::Full, "one spike is not enough");
        assert_eq!(l.observe(1, 0.95), DegradationLevel::ShortOnly, "dwell_down = 2 reached");
        assert_eq!(l.transitions(), 1);
    }

    #[test]
    fn upgrade_needs_the_longer_dwell() {
        let mut l = ladder();
        l.observe(0, 0.95);
        l.observe(1, 0.95);
        assert_eq!(l.level(), DegradationLevel::ShortOnly);
        for seq in 2..5 {
            assert_eq!(l.observe(seq, 0.1), DegradationLevel::ShortOnly, "dwell_up = 4 pending");
        }
        assert_eq!(l.observe(5, 0.1), DegradationLevel::Full);
    }

    #[test]
    fn hysteresis_band_holds_and_resets_streaks() {
        let mut l = ladder();
        l.observe(0, 0.95);
        // A band observation between spikes must reset the streak: the
        // next spike starts the dwell over instead of completing it.
        l.observe(1, 0.5);
        assert_eq!(l.observe(2, 0.95), DegradationLevel::Full);
        assert_eq!(l.observe(3, 0.95), DegradationLevel::ShortOnly);
    }

    #[test]
    fn sustained_overload_walks_all_the_way_to_shed() {
        let mut l = ladder();
        for seq in 0..20 {
            l.observe(seq, 1.0);
        }
        assert_eq!(l.level(), DegradationLevel::Shed);
        for seq in 20..40 {
            l.observe(seq, 1.0);
        }
        assert_eq!(l.level(), DegradationLevel::Shed, "saturates, never wraps");
    }

    #[test]
    fn transitions_are_emitted_with_level_tags() {
        let (telemetry, sink) = Telemetry::recording();
        let mut l =
            DegradationLadder::new(LadderConfig::default(), DegradationHandle::new(), telemetry);
        l.observe(0, 0.9);
        l.observe(1, 0.9);
        let events = sink.events();
        assert_eq!(events.len(), 1);
        match events[0] {
            TelemetryEvent::DegradationChanged { seq, from, to } => {
                assert_eq!(seq, 1);
                assert_eq!(from, "full");
                assert_eq!(to, "short-only");
            }
            other => panic!("expected DegradationChanged, got {other:?}"),
        }
    }

    #[test]
    fn square_wave_pressure_yields_exactly_one_downgrade_and_one_upgrade() {
        let (telemetry, sink) = Telemetry::recording();
        let mut l =
            DegradationLadder::new(LadderConfig::default(), DegradationHandle::new(), telemetry);
        // One square wave — three observations of overload, seven of calm
        // — with a single-observation spike after recovery that the
        // hysteresis dwell must swallow. The timeline has four threshold
        // crossings but the ladder may move exactly twice.
        let wave: &[f64] = &[0.95, 0.95, 0.95, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.95, 0.1];
        for (seq, &pressure) in wave.iter().enumerate() {
            l.observe(seq as u64, pressure);
        }
        assert_eq!(l.level(), DegradationLevel::Full, "the wave ends recovered");
        assert_eq!(l.transitions(), 2);
        let events = sink.events();
        assert_eq!(events.len(), 2, "exactly one downgrade and one upgrade: {events:?}");
        assert!(matches!(
            events[0],
            TelemetryEvent::DegradationChanged { seq: 1, from: "full", to: "short-only" }
        ));
        assert!(matches!(
            events[1],
            TelemetryEvent::DegradationChanged { seq: 6, from: "short-only", to: "full" }
        ));
    }

    #[test]
    fn config_validation_names_the_field() {
        let bad = LadderConfig { upgrade_below: 0.9, ..Default::default() };
        assert!(bad.check().unwrap_err().contains("upgrade_below"));
        let bad = LadderConfig { dwell_down: 0, ..Default::default() };
        assert!(bad.check().unwrap_err().contains("dwell"));
        assert!(LadderConfig::default().check().is_ok());
    }

    #[test]
    fn handle_is_shared_across_clones() {
        let h = DegradationHandle::new();
        let h2 = h.clone();
        h.set(DegradationLevel::InferenceOnly);
        assert_eq!(h2.level(), DegradationLevel::InferenceOnly);
    }
}
