//! Durable ingest journal: a segmented, append-only write-ahead log for
//! admitted batches.
//!
//! The supervised runtime's recovery model without a journal is
//! at-most-once: a worker crash discards every in-flight batch and merely
//! counts it (`SupervisorStats::lost_in_flight`). The journal upgrades
//! that to *effectively once*: every batch that clears admission is
//! framed and appended here **after** it is handed to the worker, so a
//! restart can restore the last durable checkpoint and re-feed exactly
//! the journaled batches above it, suppressing outputs that were already
//! delivered (seq-based dedup in the supervisor).
//!
//! # On-disk format
//!
//! A journal is a directory of segment files `<stem>.<index>.<ext>`
//! (index 0 is the *oldest* — the opposite convention from
//! [`crate::CheckpointStore`], whose generation 0 is the newest; journal
//! indices only grow, so truncation is a plain unlink of the low
//! indices). Each segment is a run of frames:
//!
//! ```text
//! [len: u32 LE] [crc: u32 LE] [payload: len bytes]
//! ```
//!
//! where `crc` is the checkpoint envelope's CRC32 ([`crate::crc32`])
//! over the payload, and the payload is a JSON [`JournalRecord`]. A
//! frame is valid only if its length is sane, its payload is complete,
//! its checksum matches, and the payload decodes — anything less is
//! treated as a torn tail.
//!
//! # Torn-tail tolerance
//!
//! [`Journal::open`] scans every segment front to back and truncates at
//! the first invalid frame: a crash mid-append (or a partial page
//! flush) costs the torn frame and nothing before it. Corruption in a
//! *non-last* segment additionally drops every later segment — records
//! after a hole cannot be replayed in order, and replay must be a
//! contiguous prefix of what was admitted.
//!
//! # Fsync policy
//!
//! Appends write immediately (so same-process readers always see every
//! frame via the page cache) but fsync on a cadence:
//! `fsync_every_n_appends × sync_backoff`. The backoff doubles (capped)
//! whenever a sync fails or exceeds [`JournalConfig::slow_sync_budget`],
//! and resets on a fast success — a persistently slow disk degrades
//! durability granularity instead of stalling ingest, mirroring the
//! checkpoint-cadence backoff in the supervisor. The write itself runs
//! under the configured [`RetryPolicy`].

use crate::error::FreewayError;
use crate::persistence::crc32;
use crate::retry::RetryPolicy;
use freeway_linalg::Matrix;
use freeway_streams::{Batch, DriftPhase};
use serde::{Deserialize, Serialize};
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Upper bound on a single frame's payload; a length field above this is
/// corruption, not a record.
const MAX_FRAME_BYTES: u32 = 1 << 30;

/// Frame header size: `len` + `crc`, both `u32` little-endian.
const FRAME_HEADER_BYTES: usize = 8;

/// Cap on the fsync-cadence backoff multiplier (same cap as the
/// supervisor's checkpoint-cadence backoff).
const MAX_SYNC_BACKOFF: u64 = 64;

/// Where and how the ingest journal persists.
#[derive(Clone, Debug)]
pub struct JournalConfig {
    /// Base path, e.g. `dir/journal.wal`; segments land next to it as
    /// `journal.0.wal`, `journal.1.wal`, …
    pub path: PathBuf,
    /// Rotate to a new segment once the active one exceeds this size.
    pub segment_max_bytes: u64,
    /// Fsync after this many appends (1 = every append). Scaled by the
    /// slow-disk backoff; see the module docs.
    pub fsync_every_n_appends: u64,
    /// A sync slower than this doubles the cadence backoff.
    pub slow_sync_budget: Duration,
    /// Retry schedule for the append write itself.
    pub append_retry: RetryPolicy,
}

impl JournalConfig {
    /// A config with production defaults rooted at `path`.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self {
            path: path.into(),
            segment_max_bytes: 4 << 20,
            fsync_every_n_appends: 8,
            slow_sync_budget: Duration::from_millis(50),
            append_retry: RetryPolicy::default(),
        }
    }
}

/// One journaled batch: everything needed to reconstruct the admitted
/// [`Batch`] plus which supervisor entry point it took.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JournalRecord {
    /// The batch's sequence number.
    pub seq: u64,
    /// Whether the batch was fed prequentially (test-then-train) rather
    /// than as a plain train/infer command.
    pub prequential: bool,
    /// Ground-truth drift phase tag carried by the batch.
    pub phase: DriftPhase,
    /// Labels, when the batch had them.
    pub labels: Option<Vec<usize>>,
    /// Feature rows.
    pub x: Matrix,
}

impl JournalRecord {
    /// Reconstructs the admitted batch.
    pub fn to_batch(&self) -> Batch {
        Batch { x: self.x.clone(), labels: self.labels.clone(), seq: self.seq, phase: self.phase }
    }
}

/// Builds the complete on-disk frame (header + payload) for `batch`
/// without consuming it. Callers frame *before* handing the batch to the
/// worker and append the bytes only after the hand-off succeeds.
pub fn frame_batch(batch: &Batch, prequential: bool) -> Vec<u8> {
    let record = JournalRecord {
        seq: batch.seq,
        prequential,
        phase: batch.phase,
        labels: batch.labels.clone(),
        x: batch.x.clone(),
    };
    // Audited: encoding plain structs of numbers to an in-memory buffer
    // has no failure path (same contract as Checkpoint::to_json).
    #[allow(clippy::expect_used)]
    let payload = serde_json::to_vec(&record).expect("journal record serialises");
    let mut frame = Vec::with_capacity(FRAME_HEADER_BYTES + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Counters describing one journal's lifetime (monotone; recovery
/// counters are set once at open).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// Frames appended since open.
    pub appended: u64,
    /// Fsync calls issued since open.
    pub synced: u64,
    /// Syncs that failed or blew the slow-sync budget.
    pub slow_syncs: u64,
    /// Fully-framed records found on disk at open.
    pub recovered_records: u64,
    /// Torn-tail bytes discarded at open.
    pub torn_bytes_dropped: u64,
    /// Segment files unlinked by checkpoint-coordinated truncation.
    pub truncated_segments: u64,
}

/// A sealed (non-active) segment's replay metadata.
#[derive(Clone, Debug)]
struct SegmentMeta {
    index: u64,
    path: PathBuf,
    /// Highest seq in the segment; `None` for an empty segment.
    last_seq: Option<u64>,
}

/// The segmented write-ahead log. Owned by the supervisor when
/// journaling is enabled; see the module docs for format and policy.
pub struct Journal {
    config: JournalConfig,
    sealed: Vec<SegmentMeta>,
    active: File,
    active_index: u64,
    active_path: PathBuf,
    active_bytes: u64,
    active_last_seq: Option<u64>,
    /// Appends since the last fsync.
    pending_appends: u64,
    /// Cadence multiplier; doubles on slow/failed sync, resets on fast
    /// success.
    sync_backoff: u64,
    stats: JournalStats,
    /// Chaos hook: artificial delay (ms) injected before every fsync.
    chaos_sync_delay_ms: Arc<AtomicU64>,
}

/// What a front-to-back scan of one segment found.
struct SegmentScan {
    records: Vec<JournalRecord>,
    /// Byte offset of the first invalid frame (= file length when the
    /// whole segment is clean).
    valid_bytes: u64,
    torn: bool,
}

fn scan_segment_bytes(bytes: &[u8]) -> SegmentScan {
    let mut records = Vec::new();
    let mut offset = 0usize;
    while bytes.len() - offset >= FRAME_HEADER_BYTES {
        let len = u32::from_le_bytes([
            bytes[offset],
            bytes[offset + 1],
            bytes[offset + 2],
            bytes[offset + 3],
        ]);
        let crc = u32::from_le_bytes([
            bytes[offset + 4],
            bytes[offset + 5],
            bytes[offset + 6],
            bytes[offset + 7],
        ]);
        if len > MAX_FRAME_BYTES {
            break;
        }
        let start = offset + FRAME_HEADER_BYTES;
        let end = start + len as usize;
        if end > bytes.len() {
            break;
        }
        let payload = &bytes[start..end];
        if crc32(payload) != crc {
            break;
        }
        match serde_json::from_slice::<JournalRecord>(payload) {
            Ok(record) => records.push(record),
            Err(_) => break,
        }
        offset = end;
    }
    SegmentScan { records, valid_bytes: offset as u64, torn: offset < bytes.len() }
}

impl Journal {
    /// Opens (or creates) the journal rooted at `config.path`, scanning
    /// existing segments oldest-first and truncating the torn tail; see
    /// the module docs for the recovery rules. The scanned records are
    /// returned so the caller can replay them without a second pass.
    ///
    /// # Errors
    /// [`FreewayError::Io`] when the directory or a segment cannot be
    /// read, created, or truncated.
    pub fn open(config: JournalConfig) -> Result<(Self, Vec<JournalRecord>), FreewayError> {
        if let Some(dir) = config.path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        let mut indices = Self::existing_segment_indices(&config)?;
        indices.sort_unstable();

        let mut stats = JournalStats::default();
        let mut recovered = Vec::new();
        let mut metas: Vec<SegmentMeta> = Vec::new();
        let mut torn_at: Option<usize> = None;
        for (position, &index) in indices.iter().enumerate() {
            let path = segment_path(&config.path, index);
            let bytes = std::fs::read(&path)?;
            let scan = scan_segment_bytes(&bytes);
            if scan.torn {
                stats.torn_bytes_dropped += bytes.len() as u64 - scan.valid_bytes;
                let file = OpenOptions::new().write(true).open(&path)?;
                file.set_len(scan.valid_bytes)?;
                file.sync_all()?;
            }
            let last_seq = scan.records.last().map(|r| r.seq);
            stats.recovered_records += scan.records.len() as u64;
            recovered.extend(scan.records);
            metas.push(SegmentMeta { index, path, last_seq });
            if scan.torn {
                torn_at = Some(position);
                break;
            }
        }
        // Records after a hole cannot be replayed contiguously: drop
        // every segment beyond the first torn one.
        if let Some(position) = torn_at {
            for &index in &indices[position + 1..] {
                let _ = std::fs::remove_file(segment_path(&config.path, index));
            }
        }

        let (active_index, active_meta) = match metas.pop() {
            Some(meta) => (meta.index, Some(meta)),
            None => (0, None),
        };
        let active_path = segment_path(&config.path, active_index);
        let active = OpenOptions::new().create(true).append(true).open(&active_path)?;
        let active_bytes = active.metadata()?.len();
        let journal = Self {
            config,
            sealed: metas,
            active,
            active_index,
            active_path,
            active_bytes,
            active_last_seq: active_meta.and_then(|m| m.last_seq),
            pending_appends: 0,
            sync_backoff: 1,
            stats,
            chaos_sync_delay_ms: Arc::new(AtomicU64::new(0)),
        };
        Ok((journal, recovered))
    }

    fn existing_segment_indices(config: &JournalConfig) -> Result<Vec<u64>, FreewayError> {
        let (stem, ext) = stem_and_ext(&config.path);
        let dir = match config.path.parent() {
            Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
            _ => PathBuf::from("."),
        };
        let mut indices = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let name = entry?.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(rest) = name.strip_prefix(&format!("{stem}.")) else { continue };
            let Some(middle) = rest.strip_suffix(&format!(".{ext}")) else { continue };
            if let Ok(index) = middle.parse::<u64>() {
                indices.push(index);
            }
        }
        Ok(indices)
    }

    /// Appends one pre-framed record (see [`frame_batch`]) under the
    /// configured retry policy, rotating segments and syncing on cadence.
    /// Returns whether this append flushed the segment to disk.
    ///
    /// # Errors
    /// [`FreewayError::Io`] when the write still fails after the retry
    /// budget. Sync failures are *not* errors — they degrade the fsync
    /// cadence instead (see the module docs).
    pub fn append_frame(&mut self, seq: u64, frame: &[u8]) -> Result<bool, FreewayError> {
        if self.active_bytes > 0
            && self.active_bytes.saturating_add(frame.len() as u64) > self.config.segment_max_bytes
        {
            self.rotate()?;
        }
        let retry = self.config.append_retry;
        let (file, bytes) = (&mut self.active, frame);
        retry.run(|| file.write_all(bytes))?;
        self.active_bytes += frame.len() as u64;
        self.active_last_seq = Some(seq);
        self.stats.appended += 1;
        self.pending_appends += 1;
        let cadence = self.config.fsync_every_n_appends.max(1).saturating_mul(self.sync_backoff);
        let mut synced = false;
        if self.pending_appends >= cadence {
            self.sync_with_budget();
            synced = true;
        }
        Ok(synced)
    }

    /// Seals the active segment (final fsync, best-effort) and starts the
    /// next one.
    fn rotate(&mut self) -> Result<(), FreewayError> {
        let _ = self.active.sync_all();
        self.sealed.push(SegmentMeta {
            index: self.active_index,
            path: self.active_path.clone(),
            last_seq: self.active_last_seq,
        });
        self.active_index += 1;
        self.active_path = segment_path(&self.config.path, self.active_index);
        self.active = OpenOptions::new().create(true).append(true).open(&self.active_path)?;
        self.active_bytes = 0;
        self.active_last_seq = None;
        self.pending_appends = 0;
        Ok(())
    }

    /// Fsyncs the active segment, timing it against the slow-sync budget:
    /// a failure or an over-budget sync doubles the cadence backoff, a
    /// fast success resets it.
    fn sync_with_budget(&mut self) {
        let started = Instant::now();
        let delay = self.chaos_sync_delay_ms.load(Ordering::Relaxed);
        if delay > 0 {
            std::thread::sleep(Duration::from_millis(delay));
        }
        let ok = self.active.sync_all().is_ok();
        self.stats.synced += 1;
        self.pending_appends = 0;
        if !ok || started.elapsed() > self.config.slow_sync_budget {
            self.stats.slow_syncs += 1;
            self.sync_backoff = (self.sync_backoff * 2).min(MAX_SYNC_BACKOFF);
        } else {
            self.sync_backoff = 1;
        }
    }

    /// Forces a durability point (used by `finish` and tests);
    /// best-effort, feeds the same backoff accounting as cadence syncs.
    pub fn sync(&mut self) {
        self.sync_with_budget();
    }

    /// Re-reads every retained record with `seq > above` (all records
    /// when `above` is `None`), oldest first, from disk — unsynced
    /// appends are still visible through the page cache within the
    /// writing process.
    ///
    /// # Errors
    /// [`FreewayError::Io`] when a segment cannot be read.
    pub fn records_above(&self, above: Option<u64>) -> Result<Vec<JournalRecord>, FreewayError> {
        let mut records = Vec::new();
        for meta in &self.sealed {
            let bytes = std::fs::read(&meta.path)?;
            records.extend(scan_segment_bytes(&bytes).records);
        }
        let bytes = std::fs::read(&self.active_path)?;
        records.extend(scan_segment_bytes(&bytes).records);
        if let Some(floor) = above {
            records.retain(|r| r.seq > floor);
        }
        Ok(records)
    }

    /// Checkpoint-coordinated truncation: unlinks every *sealed* segment
    /// whose records all have `seq <= below` (the active segment is never
    /// dropped). Returns the number of segments removed.
    ///
    /// # Errors
    /// [`FreewayError::Io`] when an unlink fails.
    pub fn truncate_below(&mut self, below: u64) -> Result<u64, FreewayError> {
        let mut removed = 0u64;
        while let Some(meta) = self.sealed.first() {
            let fully_below = meta.last_seq.is_none_or(|last| last <= below);
            if !fully_below {
                break;
            }
            std::fs::remove_file(&meta.path)?;
            self.sealed.remove(0);
            removed += 1;
        }
        self.stats.truncated_segments += removed;
        Ok(removed)
    }

    /// Lowest retained segment index. `0` means the journal still reaches
    /// back to the run's first admitted batch (genesis), so a fresh
    /// learner plus a full replay reconstructs the exact state.
    pub fn lowest_segment_index(&self) -> u64 {
        self.sealed.first().map_or(self.active_index, |m| m.index)
    }

    /// Highest journaled sequence number, if any record is retained.
    pub fn last_seq(&self) -> Option<u64> {
        self.active_last_seq.or_else(|| self.sealed.iter().rev().find_map(|m| m.last_seq))
    }

    /// Number of retained segment files (sealed + active).
    pub fn num_segments(&self) -> usize {
        self.sealed.len() + 1
    }

    /// Lifetime counters.
    pub fn stats(&self) -> JournalStats {
        self.stats
    }

    /// Current fsync-cadence backoff multiplier (1 = healthy disk).
    pub fn sync_backoff(&self) -> u64 {
        self.sync_backoff
    }

    /// Chaos hook: the shared handle that injects a per-fsync delay
    /// (milliseconds), for drilling the slow-disk degradation path.
    pub fn chaos_sync_delay_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.chaos_sync_delay_ms)
    }
}

fn stem_and_ext(path: &std::path::Path) -> (String, String) {
    let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("journal").to_string();
    let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("wal").to_string();
    (stem, ext)
}

/// Path of segment `index` for a journal rooted at `base`.
pub fn segment_path(base: &std::path::Path, index: u64) -> PathBuf {
    let (stem, ext) = stem_and_ext(base);
    base.with_file_name(format!("{stem}.{index}.{ext}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use freeway_streams::DriftPhase;

    fn temp_journal_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("freeway-journal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        dir
    }

    fn tiny_batch(seq: u64) -> Batch {
        let x = Matrix::from_rows(&[vec![seq as f64, 1.0], vec![2.0, 3.0]]);
        Batch::labeled(x, vec![0, 1], seq, DriftPhase::Stable)
    }

    fn config(dir: &std::path::Path) -> JournalConfig {
        JournalConfig { fsync_every_n_appends: 2, ..JournalConfig::new(dir.join("journal.wal")) }
    }

    #[test]
    fn append_then_reopen_roundtrips_records() {
        let dir = temp_journal_dir("roundtrip");
        let (mut journal, recovered) = Journal::open(config(&dir)).expect("open");
        assert!(recovered.is_empty());
        for seq in 0..5u64 {
            let frame = frame_batch(&tiny_batch(seq), seq % 2 == 0);
            journal.append_frame(seq, &frame).expect("append");
        }
        assert_eq!(journal.last_seq(), Some(4));
        drop(journal);

        let (journal, recovered) = Journal::open(config(&dir)).expect("reopen");
        assert_eq!(recovered.len(), 5);
        for (i, record) in recovered.iter().enumerate() {
            assert_eq!(record.seq, i as u64);
            assert_eq!(record.prequential, i % 2 == 0);
            let batch = record.to_batch();
            assert_eq!(batch.labels.as_deref(), Some(&[0usize, 1][..]));
            assert_eq!(batch.x, tiny_batch(i as u64).x);
        }
        assert_eq!(journal.stats().recovered_records, 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn records_above_filters_and_sees_unsynced_appends() {
        let dir = temp_journal_dir("filter");
        let cfg =
            JournalConfig { fsync_every_n_appends: 1000, ..JournalConfig::new(dir.join("j.wal")) };
        let (mut journal, _) = Journal::open(cfg).expect("open");
        for seq in 0..6u64 {
            let frame = frame_batch(&tiny_batch(seq), false);
            let synced = journal.append_frame(seq, &frame).expect("append");
            assert!(!synced, "cadence of 1000 must not sync on append {seq}");
        }
        let all = journal.records_above(None).expect("read");
        assert_eq!(all.len(), 6, "unsynced frames are visible to the writing process");
        let above = journal.records_above(Some(3)).expect("read");
        assert_eq!(above.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![4, 5]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = temp_journal_dir("torn");
        let (mut journal, _) = Journal::open(config(&dir)).expect("open");
        for seq in 0..3u64 {
            let frame = frame_batch(&tiny_batch(seq), false);
            journal.append_frame(seq, &frame).expect("append");
        }
        drop(journal);

        // Tear the tail: chop the last 5 bytes off the only segment.
        let seg = segment_path(&dir.join("journal.wal"), 0);
        let bytes = std::fs::read(&seg).expect("read");
        std::fs::write(&seg, &bytes[..bytes.len() - 5]).expect("truncate");

        let clean_prefix: usize =
            (0..2u64).map(|seq| frame_batch(&tiny_batch(seq), false).len()).sum();
        let (journal, recovered) = Journal::open(config(&dir)).expect("reopen");
        assert_eq!(recovered.len(), 2, "fully-framed prefix survives");
        assert_eq!(journal.stats().torn_bytes_dropped as usize, bytes.len() - 5 - clean_prefix);
        // The truncated file is clean again: a third open finds no tear.
        drop(journal);
        let (journal, recovered) = Journal::open(config(&dir)).expect("third open");
        assert_eq!(recovered.len(), 2);
        assert_eq!(journal.stats().torn_bytes_dropped, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_mid_frame_drops_suffix_and_later_segments() {
        let dir = temp_journal_dir("midframe");
        let cfg = JournalConfig {
            segment_max_bytes: 1, // force a rotation per append
            ..config(&dir)
        };
        let (mut journal, _) = Journal::open(cfg.clone()).expect("open");
        for seq in 0..3u64 {
            let frame = frame_batch(&tiny_batch(seq), false);
            journal.append_frame(seq, &frame).expect("append");
        }
        assert_eq!(journal.num_segments(), 3);
        drop(journal);

        // Flip one payload byte in the middle segment: its record dies,
        // and segment 2 (after the hole) must be dropped wholesale.
        let seg1 = segment_path(&cfg.path, 1);
        let mut bytes = std::fs::read(&seg1).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&seg1, &bytes).expect("write");

        let (journal, recovered) = Journal::open(cfg.clone()).expect("reopen");
        assert_eq!(recovered.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![0]);
        assert!(!segment_path(&cfg.path, 2).exists(), "post-hole segment unlinked");
        assert_eq!(journal.last_seq(), Some(0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_and_truncate_below_drop_only_sealed_covered_segments() {
        let dir = temp_journal_dir("truncate");
        let cfg = JournalConfig { segment_max_bytes: 1, ..config(&dir) };
        let (mut journal, _) = Journal::open(cfg).expect("open");
        for seq in 0..4u64 {
            let frame = frame_batch(&tiny_batch(seq), false);
            journal.append_frame(seq, &frame).expect("append");
        }
        assert_eq!(journal.num_segments(), 4);
        assert_eq!(journal.lowest_segment_index(), 0);

        // Checkpoint covers seq 1: segments 0 and 1 go, 2 stays (its
        // record has seq 2 > 1), the active one is untouchable.
        let removed = journal.truncate_below(1).expect("truncate");
        assert_eq!(removed, 2);
        assert_eq!(journal.lowest_segment_index(), 2);
        assert_eq!(
            journal.records_above(None).expect("read").iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![2, 3]
        );
        // Even a checkpoint above everything never drops the active segment.
        let removed = journal.truncate_below(100).expect("truncate");
        assert_eq!(removed, 1);
        assert_eq!(journal.num_segments(), 1);
        assert_eq!(journal.last_seq(), Some(3));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn slow_sync_degrades_cadence_then_recovers() {
        let dir = temp_journal_dir("slowsync");
        let cfg = JournalConfig {
            fsync_every_n_appends: 1,
            slow_sync_budget: Duration::from_millis(5),
            ..JournalConfig::new(dir.join("j.wal"))
        };
        let (mut journal, _) = Journal::open(cfg).expect("open");
        let delay = journal.chaos_sync_delay_handle();
        delay.store(10, Ordering::Relaxed);
        let frame = frame_batch(&tiny_batch(0), false);
        assert!(journal.append_frame(0, &frame).expect("append"), "cadence 1 syncs");
        assert_eq!(journal.sync_backoff(), 2, "slow sync doubles the backoff");
        // Backoff 2 means the next append does NOT sync...
        let frame = frame_batch(&tiny_batch(1), false);
        assert!(!journal.append_frame(1, &frame).expect("append"));
        // ...and a fast sync resets it.
        delay.store(0, Ordering::Relaxed);
        let frame = frame_batch(&tiny_batch(2), false);
        assert!(journal.append_frame(2, &frame).expect("append"));
        assert_eq!(journal.sync_backoff(), 1);
        assert!(journal.stats().slow_syncs >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
