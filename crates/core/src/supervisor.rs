//! The supervised pipeline: checkpointed auto-restart + poison quarantine.
//!
//! [`SupervisedPipeline`] wraps the same worker-thread architecture as
//! [`crate::pipeline::Pipeline`] in a fault boundary:
//!
//! * every batch passes the [`BatchGuard`] **before** touching the
//!   channel; poison batches land in a bounded, counted [`Quarantine`]
//!   instead of panicking inside the math substrate;
//! * the worker captures a [`Checkpoint`] every
//!   `checkpoint_every_n_batches` accepted batches (persisted atomically
//!   to disk when a path is configured);
//! * a worker panic is detected at the channel boundary, the crashed
//!   thread is joined for its panic message, and a fresh worker is
//!   spawned from the last checkpoint — up to `max_restarts` times;
//! * without a journal, batches in flight at the moment of a crash are
//!   *lost, not replayed* (streaming semantics: the stream has moved
//!   on), and the loss is counted in
//!   [`SupervisorStats::lost_in_flight`];
//! * with [`SupervisorConfig::journal`] set, every accepted batch is
//!   appended to a durable [`crate::journal::Journal`] after the worker
//!   hand-off, and restart becomes restore-then-replay: the replay base
//!   checkpoint is restored, journaled batches above it are re-fed
//!   synchronously (shared-registry publishes muted, telemetry muted,
//!   outputs deduplicated by seq against what was already delivered),
//!   and `lost_in_flight` stays zero — effectively-once semantics. The
//!   base advances, and old journal segments are dropped, only when a
//!   checkpoint is *durably persisted* to disk; a run without a
//!   checkpoint path replays from genesis, which reconstructs the
//!   worker's exact state (cadence checkpoints are deliberately lossy
//!   about PCA/shift-tracker state, a genesis replay is not).
//!
//! The supervisor is single-threaded on the caller side: `feed`,
//! `try_recv`, and `finish` take `&mut self` so restart bookkeeping
//! needs no locking.

use crate::degrade::{DegradationHandle, DegradationLevel};
use crate::error::{panic_message, FreewayError};
use crate::guard::{BatchFault, BatchGuard, GuardPolicy, Quarantine};
use crate::journal::{frame_batch, Journal, JournalConfig, JournalRecord, JournalStats};
use crate::learner::Learner;
use crate::liveness::{HeartbeatLedger, WatchdogState, WorkerStage};
use crate::persistence::{Checkpoint, CheckpointStore};
use crate::pipeline::PipelineOutput;
use crate::retry::RetryPolicy;
use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError, TrySendError};
use freeway_streams::Batch;
use freeway_telemetry::{Counter, Telemetry, TelemetryEvent, DURATION_SECONDS_BOUNDS};
use std::collections::{BTreeSet, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Supervision policy knobs.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Bound on both channels (backpressure), as in the plain pipeline.
    pub queue_depth: usize,
    /// A checkpoint is captured after every this-many accepted batches.
    pub checkpoint_every_n_batches: usize,
    /// When set, every checkpoint is also persisted here atomically
    /// (write temp, fsync, rename). Persistence failures are counted and
    /// logged, never fatal — the in-memory checkpoint still updates.
    pub checkpoint_path: Option<PathBuf>,
    /// How many poison batches the dead-letter buffer retains (all are
    /// counted regardless).
    pub quarantine_capacity: usize,
    /// Worker crashes tolerated before the supervisor gives up with
    /// [`FreewayError::RestartsExhausted`].
    pub max_restarts: usize,
    /// Reject duplicate / regressing sequence numbers at the guard.
    /// Disable for sources that legitimately re-emit (cycling files).
    pub check_seq: bool,
    /// How many on-disk checkpoint generations to retain when
    /// `checkpoint_path` is set (`checkpoint.0.json` newest). Restore
    /// falls back to the newest generation passing CRC and validation.
    pub checkpoint_generations: usize,
    /// Retry schedule wrapped around each checkpoint persistence attempt
    /// (exponential backoff with deterministic jitter). Transient disk
    /// stalls retry in place; a persistently failing disk degrades the
    /// checkpoint *cadence* instead of killing the worker.
    pub persist_retry: RetryPolicy,
    /// When set, every accepted batch is journaled and crash recovery
    /// replays instead of dropping in-flight work (see the module docs
    /// for the effectively-once contract). `None` (the default) keeps
    /// the journal-free path byte-identical to previous builds.
    pub journal: Option<JournalConfig>,
    /// When set, [`SupervisedPipeline::check_liveness`] arms a stall
    /// watchdog: a worker with work pending whose heartbeat makes no
    /// progress for this long is forcibly recovered through the same
    /// checkpoint-restore + journal-replay path as a crash, counted
    /// against the restart budget. A slow-but-progressing worker is
    /// never killed — only a fully wedged one. `None` (the default)
    /// disables the watchdog.
    pub stall_deadline: Option<Duration>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            queue_depth: 32,
            checkpoint_every_n_batches: 8,
            checkpoint_path: None,
            quarantine_capacity: 64,
            max_restarts: 3,
            check_seq: true,
            checkpoint_generations: 3,
            persist_retry: RetryPolicy::default(),
            journal: None,
            stall_deadline: None,
        }
    }
}

/// Counters describing one supervised run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SupervisorStats {
    /// Batches that passed the guard and reached the worker.
    pub accepted: u64,
    /// Batches rejected by the guard and quarantined.
    pub quarantined: u64,
    /// Worker crashes observed (restarted or not).
    pub worker_panics: u64,
    /// Successful checkpoint restarts performed.
    pub restarts: usize,
    /// Checkpoints captured from the worker.
    pub checkpoints_taken: u64,
    /// Checkpoints also persisted to disk.
    pub checkpoints_persisted: u64,
    /// Disk persistence failures (non-fatal; in-memory state kept).
    pub checkpoint_persist_failures: u64,
    /// Accepted batches whose results were lost to a crash. Without a
    /// journal this is streaming at-most-once accounting; with one, it
    /// counts only what replay could not recover (zero on a healthy
    /// journal).
    pub lost_in_flight: u64,
    /// Journaled batches re-fed during crash recoveries.
    pub replayed: u64,
    /// Replayed batches whose outputs were suppressed because they had
    /// already been delivered before the crash (seq-based dedup).
    pub replay_suppressed: u64,
    /// Stalls declared by the liveness watchdog (each one forced a
    /// recovery counted in `restarts`, or exhausted the budget).
    pub worker_stalls: u64,
}

/// What happened to a batch offered to [`SupervisedPipeline::feed`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum FeedOutcome {
    /// The batch passed validation and reached the worker.
    Accepted,
    /// The batch was rejected and sits in the quarantine.
    Quarantined(BatchFault),
}

/// What happened to a batch offered to the non-blocking
/// [`SupervisedPipeline::try_feed`].
#[derive(Debug)]
#[non_exhaustive]
pub enum TryFeedOutcome {
    /// The batch passed validation and reached the worker.
    Accepted,
    /// The batch was rejected and sits in the quarantine.
    Quarantined(BatchFault),
    /// The worker queue is full; the batch comes back to the caller
    /// untouched (the guard watermark did not advance, so it can be
    /// re-offered later without tripping duplicate-seq detection).
    Full(Batch),
}

/// Everything a finished supervised run hands back.
pub struct FinishedRun {
    /// The learner, recovered from the last checkpoint if the worker was
    /// dead at finish time.
    pub learner: Learner,
    /// All outputs not yet consumed via `recv`/`try_recv`, in order.
    pub outputs: Vec<PipelineOutput>,
    /// Run counters.
    pub stats: SupervisorStats,
    /// The dead-letter buffer with every retained poison batch.
    pub quarantine: Quarantine,
    /// Journal counters (appends, syncs, recovered records, truncated
    /// segments); `None` when journaling was not configured. The journal
    /// is fsynced before these are captured, so they describe a fully
    /// durable log.
    pub journal: Option<JournalStats>,
}

enum SupCommand {
    Batch(Batch),
    Prequential(Batch),
    /// Capture and send back a checkpoint of the current learner state.
    Checkpoint,
    /// Chaos hook: panic deterministically inside the worker.
    InjectPanic,
    /// Chaos hook: stop making progress for this many nanoseconds
    /// (`u64::MAX` = until fenced), either parked in short sleeps or
    /// livelocked in a spin loop. No heartbeat lands while it runs, so
    /// the watchdog sees exactly what a wedged worker looks like.
    InjectStall {
        nanos: u64,
        livelock: bool,
    },
}

enum WorkerMsg {
    Output(PipelineOutput),
    Checkpoint(Box<Checkpoint>),
}

struct Worker {
    input: Sender<SupCommand>,
    output: Receiver<WorkerMsg>,
    handle: JoinHandle<Result<Learner, String>>,
    /// Progress ledger the worker thread beats after every completed
    /// command; the watchdog reads it from the supervisor side.
    heartbeat: HeartbeatLedger,
    /// Raised by forced stall recovery after the handle is abandoned: a
    /// zombie worker that eventually wakes up sees it and exits instead
    /// of ghost-writing into channels nobody reads.
    fence: Arc<AtomicBool>,
}

fn spawn_worker(
    mut learner: Learner,
    queue_depth: usize,
    chaos_delay: Arc<AtomicU64>,
    initial_last_seq: Option<u64>,
) -> Worker {
    let telemetry = learner.telemetry().clone();
    let (in_tx, in_rx) = bounded::<SupCommand>(queue_depth);
    // One extra slot per possible in-flight checkpoint reply so a
    // checkpoint command never wedges behind a full output queue.
    let (out_tx, out_rx) = bounded::<WorkerMsg>(queue_depth + 1);
    let heartbeat = HeartbeatLedger::new();
    let fence = Arc::new(AtomicBool::new(false));
    let ledger = heartbeat.clone();
    let fenced = fence.clone();
    let handle = std::thread::spawn(move || {
        catch_unwind(AssertUnwindSafe(move || {
            // Highest batch seq processed; stamped onto checkpoints as
            // the journal replay floor. Seeded with the replay
            // high-water mark on post-recovery respawns.
            let mut last_seq = initial_last_seq;
            loop {
                // Queue wait is the ingest stage, as in the plain pipeline.
                let cmd = {
                    ledger.set_stage(WorkerStage::Idle);
                    let _span = telemetry.time(freeway_telemetry::Stage::Ingest);
                    match in_rx.recv() {
                        Ok(cmd) => cmd,
                        Err(_) => break,
                    }
                };
                if fenced.load(Ordering::Relaxed) {
                    break;
                }
                // Chaos hook: an artificially slowed worker turns any
                // stream into an overload, exercising backpressure,
                // shedding, and the degradation ladder for real. The
                // delay models the train stage, so it shrinks with the
                // service level: degraded levels skip (most of) training
                // and genuinely run faster.
                if matches!(cmd, SupCommand::Batch(_) | SupCommand::Prequential(_)) {
                    let nanos = chaos_delay.load(Ordering::Relaxed);
                    if nanos > 0 {
                        let scaled = match learner.degradation_level() {
                            DegradationLevel::Full => nanos,
                            DegradationLevel::ShortOnly => nanos / 2,
                            DegradationLevel::InferenceOnly | DegradationLevel::Shed => nanos / 8,
                        };
                        std::thread::sleep(std::time::Duration::from_nanos(scaled));
                    }
                }
                let msg = match cmd {
                    SupCommand::Batch(batch) => {
                        ledger.set_stage(WorkerStage::Train);
                        telemetry.batch_started(batch.seq);
                        last_seq = Some(batch.seq);
                        let report = match batch.labels.as_deref() {
                            Some(labels) => {
                                learner.train(&batch.x, labels);
                                None
                            }
                            None => Some(learner.infer(&batch.x)),
                        };
                        WorkerMsg::Output(PipelineOutput { seq: batch.seq, report })
                    }
                    SupCommand::Prequential(batch) => {
                        ledger.set_stage(WorkerStage::Train);
                        last_seq = Some(batch.seq);
                        let report = learner.process(&batch);
                        WorkerMsg::Output(PipelineOutput { seq: batch.seq, report: Some(report) })
                    }
                    SupCommand::Checkpoint => {
                        ledger.set_stage(WorkerStage::Checkpoint);
                        let mut checkpoint = Checkpoint::capture(&learner);
                        checkpoint.journal_seq = last_seq;
                        WorkerMsg::Checkpoint(Box::new(checkpoint))
                    }
                    SupCommand::InjectPanic => panic!("injected worker panic (chaos)"),
                    SupCommand::InjectStall { nanos, livelock } => {
                        // A deliberately heartbeat-free window: the only
                        // exits are the budget elapsing or the fence
                        // going up after a forced recovery.
                        ledger.set_stage(WorkerStage::ChaosStall);
                        let started = Instant::now();
                        let budget = Duration::from_nanos(nanos);
                        while started.elapsed() < budget && !fenced.load(Ordering::Relaxed) {
                            if livelock {
                                std::hint::spin_loop();
                            } else {
                                std::thread::sleep(Duration::from_micros(200));
                            }
                        }
                        if fenced.load(Ordering::Relaxed) {
                            break;
                        }
                        // Survived a bounded stall: progress resumes.
                        ledger.beat(None);
                        continue;
                    }
                };
                if out_tx.send(msg).is_err() {
                    break;
                }
                ledger.beat(last_seq);
            }
            learner
        }))
        .map_err(panic_message)
    });
    Worker { input: in_tx, output: out_rx, handle, heartbeat, fence }
}

/// Everything the supervisor keeps per enabled journal.
struct JournalState {
    journal: Journal,
    /// Replay base: restoring this checkpoint and re-feeding every
    /// journaled record above `base.journal_seq` reproduces the
    /// crashed worker's exact state. Advances only when a checkpoint is
    /// durably persisted to disk (never on in-memory cadence captures),
    /// so a run without a checkpoint path replays from genesis.
    base: Checkpoint,
    /// Seqs whose outputs have already been delivered toward the
    /// caller; replay re-feeds these for state but suppresses their
    /// outputs (seq-based dedup). Pruned below the truncation floor.
    produced: BTreeSet<u64>,
    /// Wall-clock cost of each restore-then-replay recovery.
    recovery_seconds: freeway_telemetry::Histogram,
}

/// Outcome of one synchronous replay pass (see [`replay_into`]).
struct ReplaySummary {
    replayed: u64,
    suppressed: u64,
    /// Outputs delivered now that were lost with the crashed worker.
    recovered: u64,
    last_seq: Option<u64>,
}

/// Re-feeds `records` into `learner` exactly as the worker loop would
/// have, routing each output through seq-based dedup: already-delivered
/// seqs are suppressed, the rest land on `pending` in order. The caller
/// is responsible for muting the learner's telemetry and shared-registry
/// publishes around this call (replayed work already had its side
/// effects the first time).
fn replay_into(
    learner: &mut Learner,
    records: &[JournalRecord],
    produced: &mut BTreeSet<u64>,
    pending: &mut VecDeque<PipelineOutput>,
) -> ReplaySummary {
    let mut summary = ReplaySummary { replayed: 0, suppressed: 0, recovered: 0, last_seq: None };
    for record in records {
        let batch = record.to_batch();
        let report = if record.prequential {
            Some(learner.process(&batch))
        } else {
            match batch.labels.as_deref() {
                Some(labels) => {
                    learner.train(&batch.x, labels);
                    None
                }
                None => Some(learner.infer(&batch.x)),
            }
        };
        summary.replayed += 1;
        summary.last_seq = Some(record.seq);
        if produced.contains(&record.seq) {
            summary.suppressed += 1;
        } else {
            produced.insert(record.seq);
            pending.push_back(PipelineOutput { seq: record.seq, report });
            summary.recovered += 1;
        }
    }
    summary
}

/// A fault-tolerant pipeline around a [`Learner`].
pub struct SupervisedPipeline {
    config: SupervisorConfig,
    worker: Option<Worker>,
    guard: BatchGuard,
    quarantine: Quarantine,
    /// Outputs drained from the worker but not yet handed to the caller.
    pending: VecDeque<PipelineOutput>,
    /// The restart point. Seeded with a checkpoint of the initial
    /// learner, so recovery is possible before the first cadence point.
    last_checkpoint: Checkpoint,
    stats: SupervisorStats,
    /// Accepted batches whose outputs have not been observed yet.
    in_flight: usize,
    /// Checkpoint requests sent but not yet answered. Counted separately
    /// from `in_flight` (which is batch accounting) so the watchdog sees
    /// a worker wedged mid-checkpoint as owing work too.
    checkpoints_in_flight: usize,
    accepted_since_checkpoint: usize,
    /// A checkpoint request that could not be enqueued without blocking
    /// (non-blocking feed path); sent opportunistically later.
    checkpoint_due: bool,
    /// Cadence multiplier, doubled on persistence failure and reset on
    /// success: a sick disk is asked for checkpoints less often instead
    /// of stalling or killing a healthy worker.
    cadence_backoff: usize,
    /// Chaos hook shared with the worker thread: nanoseconds of
    /// artificial delay before each train/infer command (0 = off).
    chaos_train_delay: Arc<AtomicU64>,
    /// Chaos hook: artificial delay injected before each checkpoint
    /// persistence attempt, simulating a slow disk.
    chaos_persist_delay: Arc<AtomicU64>,
    /// When set, a restored learner is re-attached to this shared
    /// degradation level so overload service levels survive restarts.
    degradation: Option<DegradationHandle>,
    /// When set, a restored learner is re-joined to the cross-shard
    /// knowledge registry as this shard, so one shard's crash never
    /// disconnects it from the fleet's preserved concepts.
    shared: Option<(crate::knowledge::SharedKnowledge, usize)>,
    /// Shared with the learner: quarantine/checkpoint/restart events are
    /// emitted here so fault handling is observable from the outside.
    telemetry: Telemetry,
    /// The durable ingest journal and its replay bookkeeping; `None`
    /// when journaling is not configured (the default, byte-identical
    /// legacy path).
    journal: Option<JournalState>,
    /// Exported restart counter (`freeway_worker_restarts_total`).
    restarts_counter: Counter,
    /// Exported loss counter (`freeway_lost_in_flight_total`).
    lost_counter: Counter,
    /// Exported stall counter (`freeway_worker_stalls_total`).
    stalls_counter: Counter,
    /// Wall-clock cost of each forced stall recovery
    /// (`freeway_stall_recovery_seconds`).
    stall_recovery_seconds: freeway_telemetry::Histogram,
    /// Stall detector, armed lazily on the first [`Self::check_liveness`]
    /// call when `stall_deadline` is configured; reset on every respawn
    /// so a fresh worker gets a full deadline.
    watchdog: Option<WatchdogState>,
    /// Monotonic origin for watchdog ticks (nanoseconds since here).
    watchdog_origin: Instant,
}

impl SupervisedPipeline {
    /// Spawns the supervised worker. The guard's policy (feature width,
    /// class count) is derived from the learner's model spec, and the
    /// learner's [`Telemetry`] handle is shared by the supervisor so
    /// quarantine, checkpoint, and restart events land on the same stream
    /// as the learner's own.
    ///
    /// # Errors
    /// [`FreewayError::InvalidConfig`] when `queue_depth` or
    /// `checkpoint_every_n_batches` is zero.
    pub fn with_learner(learner: Learner, config: SupervisorConfig) -> Result<Self, FreewayError> {
        if config.queue_depth == 0 {
            return Err(FreewayError::InvalidConfig("queue depth must be positive".to_owned()));
        }
        if config.checkpoint_every_n_batches == 0 {
            return Err(FreewayError::InvalidConfig(
                "checkpoint cadence must be positive".to_owned(),
            ));
        }
        let policy = GuardPolicy {
            expected_features: learner.spec().features(),
            num_classes: learner.spec().classes(),
            check_seq: config.check_seq,
        };
        let guard = BatchGuard::new(policy);
        let quarantine = Quarantine::new(config.quarantine_capacity);
        if config.checkpoint_generations == 0 {
            return Err(FreewayError::InvalidConfig(
                "checkpoint generations must be positive".to_owned(),
            ));
        }
        let mut learner = learner;
        let last_checkpoint = Checkpoint::capture(&learner);
        let telemetry = learner.telemetry().clone();
        let restarts_counter = telemetry.counter("freeway_worker_restarts_total");
        let lost_counter = telemetry.counter("freeway_lost_in_flight_total");
        let stalls_counter = telemetry.counter("freeway_worker_stalls_total");
        let stall_recovery_seconds =
            telemetry.histogram("freeway_stall_recovery_seconds", DURATION_SECONDS_BOUNDS);
        let chaos_train_delay = Arc::new(AtomicU64::new(0));
        let mut stats = SupervisorStats::default();
        // With a journal configured, a non-empty log means the previous
        // process died with work admitted but not durably checkpointed:
        // recover its exact state before spawning the worker. Outputs of
        // replayed batches were delivered by the previous incarnation, so
        // every one of them is suppressed here.
        let mut startup_seq = None;
        let journal = match config.journal.clone() {
            None => None,
            Some(journal_config) => {
                if journal_config.segment_max_bytes == 0 {
                    return Err(FreewayError::InvalidConfig(
                        "journal segment size must be positive".to_owned(),
                    ));
                }
                if journal_config.fsync_every_n_appends == 0 {
                    return Err(FreewayError::InvalidConfig(
                        "journal fsync cadence must be positive".to_owned(),
                    ));
                }
                let (journal, recovered) = Journal::open(journal_config)?;
                let recovery_seconds = telemetry
                    .histogram("freeway_journal_recovery_seconds", DURATION_SECONDS_BOUNDS);
                let mut base = last_checkpoint.clone();
                let mut produced = BTreeSet::new();
                if !recovered.is_empty() {
                    let started = Instant::now();
                    // Genesis journal (lowest segment index 0): the fresh
                    // learner plus a full replay IS the crashed process's
                    // state. A truncated journal needs the disk
                    // checkpoint that justified the truncation.
                    let records: Vec<JournalRecord> = if journal.lowest_segment_index() == 0 {
                        recovered
                    } else {
                        let Some(path) = config.checkpoint_path.as_ref() else {
                            return Err(FreewayError::InvalidConfig(
                                "journal history is truncated below a checkpoint; \
                                     recovering it requires checkpoint_path"
                                    .to_owned(),
                            ));
                        };
                        let store =
                            CheckpointStore::new(path.clone(), config.checkpoint_generations);
                        let (loaded, _generation) = store.load_newest()?;
                        let floor = loaded.journal_seq;
                        base = loaded;
                        learner = base.restore()?;
                        match floor {
                            Some(floor) => {
                                recovered.into_iter().filter(|r| r.seq > floor).collect()
                            }
                            None => recovered,
                        }
                    };
                    learner.attach_telemetry(Telemetry::disabled());
                    learner.set_shared_publish_muted(true);
                    for record in &records {
                        produced.insert(record.seq);
                    }
                    let mut discarded = VecDeque::new();
                    let summary =
                        replay_into(&mut learner, &records, &mut produced, &mut discarded);
                    learner.set_shared_publish_muted(false);
                    learner.attach_telemetry(telemetry.clone());
                    stats.replayed += summary.replayed;
                    stats.replay_suppressed += summary.suppressed;
                    startup_seq = summary.last_seq;
                    recovery_seconds.record(started.elapsed().as_secs_f64());
                    telemetry.emit(TelemetryEvent::JournalReplayed {
                        seq: summary.last_seq.unwrap_or(0),
                        replayed: summary.replayed,
                        suppressed: summary.suppressed,
                    });
                }
                Some(JournalState { journal, base, produced, recovery_seconds })
            }
        };
        let worker =
            Some(spawn_worker(learner, config.queue_depth, chaos_train_delay.clone(), startup_seq));
        Ok(Self {
            config,
            worker,
            guard,
            quarantine,
            pending: VecDeque::new(),
            last_checkpoint,
            stats,
            in_flight: 0,
            checkpoints_in_flight: 0,
            accepted_since_checkpoint: 0,
            checkpoint_due: false,
            cadence_backoff: 1,
            chaos_train_delay,
            chaos_persist_delay: Arc::new(AtomicU64::new(0)),
            degradation: None,
            shared: None,
            telemetry,
            journal,
            restarts_counter,
            lost_counter,
            stalls_counter,
            stall_recovery_seconds,
            watchdog: None,
            watchdog_origin: Instant::now(),
        })
    }

    /// Feeds a batch, routed by labeledness. Poison batches are
    /// quarantined (an `Ok` outcome — the pipeline survived them).
    ///
    /// # Errors
    /// [`FreewayError::RestartsExhausted`] when the worker kept crashing
    /// past the restart budget, [`FreewayError::Checkpoint`] if the
    /// restart checkpoint itself failed to restore.
    pub fn feed(&mut self, batch: Batch) -> Result<FeedOutcome, FreewayError> {
        self.submit(batch, false)
    }

    /// Feeds a prequential batch (infer-then-train on the same data).
    ///
    /// # Errors
    /// As [`Self::feed`].
    pub fn feed_prequential(&mut self, batch: Batch) -> Result<FeedOutcome, FreewayError> {
        self.submit(batch, true)
    }

    fn submit(&mut self, batch: Batch, prequential: bool) -> Result<FeedOutcome, FreewayError> {
        if let Err(fault) = self.guard.admit(&batch) {
            self.stats.quarantined += 1;
            self.telemetry
                .emit(TelemetryEvent::BatchQuarantined { seq: batch.seq, fault: fault.tag() });
            self.quarantine.push(batch, fault.clone());
            return Ok(FeedOutcome::Quarantined(fault));
        }
        // Absorb finished work first so checkpoint results (and their
        // disk verdicts) are applied promptly, not only at finish.
        self.absorb_available()?;
        let seq = batch.seq;
        // Frame before the batch moves into the command; the append
        // itself happens only after the hand-off succeeds (a restart
        // mid-send re-sends the batch, so journaling it early would
        // replay it on top of the re-send).
        let frame = self.journal.as_ref().map(|_| frame_batch(&batch, prequential));
        let cmd =
            if prequential { SupCommand::Prequential(batch) } else { SupCommand::Batch(batch) };
        self.send_with_recovery(cmd)?;
        self.note_accepted();
        self.journal_append(seq, frame);
        if self.checkpoint_due {
            self.checkpoint_due = false;
            self.send_with_recovery(SupCommand::Checkpoint)?;
            self.checkpoints_in_flight += 1;
        }
        Ok(FeedOutcome::Accepted)
    }

    /// Shared bookkeeping after a batch actually reached the worker.
    /// The checkpoint cadence is the configured one times the current
    /// disk-backoff multiplier; the request itself is only *flagged*
    /// here so the non-blocking path can defer it.
    fn note_accepted(&mut self) {
        self.in_flight += 1;
        self.stats.accepted += 1;
        self.accepted_since_checkpoint += 1;
        let cadence = self.config.checkpoint_every_n_batches.saturating_mul(self.cadence_backoff);
        if self.accepted_since_checkpoint >= cadence {
            self.accepted_since_checkpoint = 0;
            self.checkpoint_due = true;
        }
    }

    /// Non-blocking feed, routed by labeledness: the admission
    /// controller's primitive. Never waits on the worker — a full queue
    /// hands the batch straight back as [`TryFeedOutcome::Full`] so the
    /// caller can shed, backlog, or retry under its own policy. A dead
    /// worker is restarted (the restarted queue is empty, so the retry
    /// then succeeds or the restart budget errors out).
    ///
    /// # Errors
    /// As [`Self::feed`].
    pub fn try_feed(&mut self, batch: Batch) -> Result<TryFeedOutcome, FreewayError> {
        self.try_submit(batch, false)
    }

    /// Non-blocking prequential feed; see [`Self::try_feed`].
    ///
    /// # Errors
    /// As [`Self::feed`].
    pub fn try_feed_prequential(&mut self, batch: Batch) -> Result<TryFeedOutcome, FreewayError> {
        self.try_submit(batch, true)
    }

    fn try_submit(
        &mut self,
        batch: Batch,
        prequential: bool,
    ) -> Result<TryFeedOutcome, FreewayError> {
        // Inspect without advancing the watermark: a Full outcome must
        // leave the guard willing to see this seq again.
        if let Err(fault) = self.guard.inspect(&batch) {
            self.stats.quarantined += 1;
            self.telemetry
                .emit(TelemetryEvent::BatchQuarantined { seq: batch.seq, fault: fault.tag() });
            self.quarantine.push(batch, fault.clone());
            return Ok(TryFeedOutcome::Quarantined(fault));
        }
        // Absorb whatever the worker already produced — freeing output
        // slots is what lets a busy worker drain its input queue.
        self.absorb_available()?;
        let seq = batch.seq;
        let frame = self.journal.as_ref().map(|_| frame_batch(&batch, prequential));
        let mut cmd =
            if prequential { SupCommand::Prequential(batch) } else { SupCommand::Batch(batch) };
        loop {
            let Some(worker) = self.worker.as_ref() else {
                return Err(FreewayError::WorkerUnavailable);
            };
            match worker.input.try_send(cmd) {
                Ok(()) => break,
                Err(TrySendError::Full(returned)) => {
                    let batch = match returned {
                        SupCommand::Batch(b) | SupCommand::Prequential(b) => b,
                        // Only batch commands enter this loop.
                        _ => return Err(FreewayError::WorkerUnavailable),
                    };
                    return Ok(TryFeedOutcome::Full(batch));
                }
                Err(TrySendError::Disconnected(returned)) => {
                    cmd = returned;
                    self.restart_worker()?;
                }
            }
        }
        self.guard.accept(seq);
        self.note_accepted();
        self.journal_append(seq, frame);
        self.flush_due_checkpoint();
        Ok(TryFeedOutcome::Accepted)
    }

    /// Opportunistically sends a deferred checkpoint request; if the
    /// queue is still full the flag stays set for the next call.
    fn flush_due_checkpoint(&mut self) {
        if !self.checkpoint_due {
            return;
        }
        if let Some(worker) = self.worker.as_ref() {
            if worker.input.try_send(SupCommand::Checkpoint).is_ok() {
                self.checkpoint_due = false;
                self.checkpoints_in_flight += 1;
            }
        }
    }

    /// Drains every worker message currently available, without
    /// blocking. A detected disconnect restarts the worker.
    fn absorb_available(&mut self) -> Result<(), FreewayError> {
        loop {
            let Some(worker) = self.worker.as_ref() else { return Ok(()) };
            match worker.output.try_recv() {
                Ok(msg) => self.handle_msg(msg),
                Err(TryRecvError::Empty) => return Ok(()),
                Err(TryRecvError::Disconnected) => {
                    self.restart_worker()?;
                    return Ok(());
                }
            }
        }
    }

    /// Batches accepted but not yet answered by the worker.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// The configured channel bound (capacity of the worker queue).
    pub fn queue_depth(&self) -> usize {
        self.config.queue_depth
    }

    /// Chaos hook: every subsequent train/infer command sleeps this long
    /// inside the worker before running, simulating an overloaded or
    /// degraded compute stage. Survives worker restarts. Zero disables.
    pub fn set_chaos_train_delay(&self, delay: std::time::Duration) {
        self.chaos_train_delay
            .store(delay.as_nanos().min(u128::from(u64::MAX)) as u64, Ordering::Relaxed);
    }

    /// Chaos hook: every subsequent checkpoint persistence sleeps this
    /// long first, simulating a slow disk. Zero disables.
    pub fn set_chaos_persist_delay(&self, delay: std::time::Duration) {
        self.chaos_persist_delay
            .store(delay.as_nanos().min(u128::from(u64::MAX)) as u64, Ordering::Relaxed);
    }

    /// Chaos hook: every subsequent journal fsync sleeps this long first,
    /// simulating a slow disk. The delay counts against the slow-sync
    /// budget, so a sustained one degrades the fsync cadence instead of
    /// stalling ingest. No-op without a journal; zero disables.
    pub fn set_chaos_journal_sync_delay(&self, delay: std::time::Duration) {
        if let Some(state) = self.journal.as_ref() {
            state
                .journal
                .chaos_sync_delay_handle()
                .store(delay.as_millis().min(u128::from(u64::MAX)) as u64, Ordering::Relaxed);
        }
    }

    /// Journal counters so far (`None` without a journal).
    pub fn journal_stats(&self) -> Option<JournalStats> {
        self.journal.as_ref().map(|state| state.journal.stats())
    }

    /// The journal's current fsync-cadence backoff multiplier (1 =
    /// healthy disk, doubled per slow/failed sync); `None` without a
    /// journal.
    pub fn journal_sync_backoff(&self) -> Option<u64> {
        self.journal.as_ref().map(|state| state.journal.sync_backoff())
    }

    /// Shares the overload degradation level with this supervisor so a
    /// learner restored after a crash re-attaches to it (the live
    /// learner must have been attached before the pipeline was built —
    /// [`crate::PipelineBuilder`] wires both ends).
    pub fn set_degradation_handle(&mut self, handle: DegradationHandle) {
        self.degradation = Some(handle);
    }

    /// Registers the cross-shard knowledge registry this pipeline's
    /// learner belongs to (as `shard`), so a learner restored after a
    /// crash is re-joined to it — like the degradation handle, the live
    /// learner must have been attached before the worker was spawned;
    /// [`crate::PipelineBuilder::build_sharded`] wires both ends.
    pub fn set_shared_knowledge(
        &mut self,
        shared: crate::knowledge::SharedKnowledge,
        shard: usize,
    ) {
        self.shared = Some((shared, shard));
    }

    /// Current checkpoint-cadence multiplier (1 = healthy disk; doubles
    /// per persistence failure, resets on success).
    pub fn cadence_backoff(&self) -> usize {
        self.cadence_backoff
    }

    /// The telemetry handle shared with the worker thread.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Chaos hook: makes the worker panic on its next command, exercising
    /// the real crash-detection and restart path end to end.
    ///
    /// # Errors
    /// As [`Self::feed`].
    pub fn inject_worker_panic(&mut self) -> Result<(), FreewayError> {
        self.send_with_recovery(SupCommand::InjectPanic)
    }

    /// Delivers a command, recovering along the way: a full queue blocks
    /// on draining one worker message (backpressure), a disconnected
    /// queue means the worker died — restart it and retry.
    fn send_with_recovery(&mut self, mut cmd: SupCommand) -> Result<(), FreewayError> {
        loop {
            let Some(worker) = self.worker.as_ref() else {
                return Err(FreewayError::WorkerUnavailable);
            };
            match worker.input.try_send(cmd) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Full(returned)) => {
                    cmd = returned;
                    self.pump_one_blocking()?;
                }
                Err(TrySendError::Disconnected(returned)) => {
                    cmd = returned;
                    self.restart_worker()?;
                }
            }
        }
    }

    /// Waits for one worker message and absorbs it; a disconnect is a
    /// crash — restart. With a stall deadline configured the wait is a
    /// polling loop that keeps the watchdog running, so backpressure
    /// against a wedged worker ends in forced recovery instead of a
    /// deadlock (the respawned worker's queue is empty, which unblocks
    /// the caller's retry).
    fn pump_one_blocking(&mut self) -> Result<(), FreewayError> {
        if self.config.stall_deadline.is_none() {
            let Some(worker) = self.worker.as_ref() else {
                return Err(FreewayError::WorkerUnavailable);
            };
            return match worker.output.recv() {
                Ok(msg) => {
                    self.handle_msg(msg);
                    Ok(())
                }
                Err(_) => self.restart_worker(),
            };
        }
        loop {
            let Some(worker) = self.worker.as_ref() else {
                return Err(FreewayError::WorkerUnavailable);
            };
            match worker.output.try_recv() {
                Ok(msg) => {
                    self.handle_msg(msg);
                    return Ok(());
                }
                Err(TryRecvError::Disconnected) => return self.restart_worker(),
                Err(TryRecvError::Empty) => {
                    if self.check_liveness()? {
                        // Forced recovery emptied the queue; the caller's
                        // pending send now has room.
                        return Ok(());
                    }
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
        }
    }

    /// Appends one framed batch to the journal (when enabled). Append
    /// failures are logged, never fatal: ingest continues and only the
    /// replay guarantee degrades for the unjournaled window.
    fn journal_append(&mut self, seq: u64, frame: Option<Vec<u8>>) {
        let Some(state) = self.journal.as_mut() else { return };
        let Some(frame) = frame else { return };
        match state.journal.append_frame(seq, &frame) {
            Ok(synced) => {
                self.telemetry.emit(TelemetryEvent::JournalAppended {
                    seq,
                    bytes: frame.len() as u64,
                    synced,
                });
            }
            Err(e) => eprintln!("freeway-core: journal append failed (batch not durable): {e}"),
        }
    }

    fn handle_msg(&mut self, msg: WorkerMsg) {
        match msg {
            WorkerMsg::Output(out) => {
                self.in_flight = self.in_flight.saturating_sub(1);
                if let Some(state) = self.journal.as_mut() {
                    // Delivered toward the caller: a future replay of
                    // this seq must be state-only (output suppressed).
                    state.produced.insert(out.seq);
                }
                self.pending.push_back(out);
            }
            WorkerMsg::Checkpoint(cp) => {
                self.checkpoints_in_flight = self.checkpoints_in_flight.saturating_sub(1);
                self.install_checkpoint(*cp);
            }
        }
    }

    fn install_checkpoint(&mut self, checkpoint: Checkpoint) {
        self.stats.checkpoints_taken += 1;
        let mut persisted = false;
        if let Some(path) = self.config.checkpoint_path.as_ref() {
            let delay = self.chaos_persist_delay.load(Ordering::Relaxed);
            if delay > 0 {
                std::thread::sleep(std::time::Duration::from_nanos(delay));
            }
            let store = CheckpointStore::new(path.clone(), self.config.checkpoint_generations);
            match self.config.persist_retry.run(|| store.save(&checkpoint)) {
                Ok(()) => {
                    self.stats.checkpoints_persisted += 1;
                    self.cadence_backoff = 1;
                    persisted = true;
                }
                Err(e) => {
                    // Persistence failing must not take down a healthy
                    // pipeline: the in-memory checkpoint still advances,
                    // and the sick disk gets asked less often.
                    self.stats.checkpoint_persist_failures += 1;
                    self.cadence_backoff = (self.cadence_backoff * 2).min(64);
                    eprintln!("freeway-core: checkpoint persistence failed (state kept): {e}");
                }
            }
        }
        self.telemetry
            .emit(TelemetryEvent::CheckpointWritten { seq: self.telemetry.seq(), persisted });
        // Only a *durably persisted* checkpoint may advance the replay
        // base and truncate journal history below it: an in-memory
        // cadence capture dies with the process, so truncating on it
        // would leave an unrecoverable hole after a crash.
        if persisted {
            if let Some(state) = self.journal.as_mut() {
                state.base = checkpoint.clone();
                if let Some(floor) = checkpoint.journal_seq {
                    match state.journal.truncate_below(floor) {
                        Ok(removed) if removed > 0 => {
                            self.telemetry.emit(TelemetryEvent::JournalTruncated {
                                seq: floor,
                                segments: removed,
                            });
                        }
                        Ok(_) => {}
                        Err(e) => {
                            eprintln!("freeway-core: journal truncation failed (log kept): {e}")
                        }
                    }
                    // Seqs at or below the floor can never replay again.
                    state.produced = state.produced.split_off(&(floor + 1));
                }
            }
        }
        self.last_checkpoint = checkpoint;
    }

    /// Restores the given checkpoint and re-wires the restored learner to
    /// this supervisor's telemetry stream and shared degradation level,
    /// announcing the restore.
    fn restore_checkpoint_from(&self, checkpoint: &Checkpoint) -> Result<Learner, FreewayError> {
        let mut learner = checkpoint.restore()?;
        learner.attach_telemetry(self.telemetry.clone());
        if let Some(handle) = self.degradation.as_ref() {
            learner.attach_degradation(handle.clone());
        }
        if let Some((shared, shard)) = self.shared.as_ref() {
            learner.attach_shared_knowledge(shared, *shard);
        }
        self.telemetry.emit(TelemetryEvent::CheckpointRestored { seq: self.telemetry.seq() });
        Ok(learner)
    }

    /// Restores the last checkpoint; see [`Self::restore_checkpoint_from`].
    fn restore_checkpoint(&self) -> Result<Learner, FreewayError> {
        self.restore_checkpoint_from(&self.last_checkpoint)
    }

    /// Produces the learner to respawn after a crash. With a journal,
    /// this is restore-the-base-then-replay: journaled records above the
    /// base are re-fed synchronously (telemetry and shared-registry
    /// publishes muted — the crashed worker already had those side
    /// effects), outputs the crashed worker never delivered land on
    /// `pending` via seq-based dedup, and the loss shrinks by exactly
    /// what replay recovered. Without a journal the last checkpoint is
    /// restored and the in-flight work is genuinely lost.
    ///
    /// Returns `(learner, net_lost, respawn_seq)` where `respawn_seq`
    /// seeds the new worker's checkpoint stamping.
    fn recover_learner(&mut self, lost: u64) -> Result<(Learner, u64, Option<u64>), FreewayError> {
        let journal_parts = self.journal.as_mut().map(|state| {
            let base = state.base.clone();
            let records = state.journal.records_above(base.journal_seq);
            let produced = std::mem::take(&mut state.produced);
            (base, records, produced)
        });
        let Some((base, records, mut produced)) = journal_parts else {
            let learner = self.restore_checkpoint()?;
            return Ok((learner, lost, self.last_checkpoint.journal_seq));
        };
        let records = match records {
            Ok(records) => records,
            Err(e) => {
                // An unreadable journal degrades to the journal-free
                // contract: restore the newest checkpoint, count the
                // loss honestly.
                eprintln!("freeway-core: journal replay failed ({e}); restoring checkpoint only");
                if let Some(state) = self.journal.as_mut() {
                    state.produced = produced;
                }
                let learner = self.restore_checkpoint()?;
                return Ok((learner, lost, self.last_checkpoint.journal_seq));
            }
        };
        let started = Instant::now();
        let mut learner = self.restore_checkpoint_from(&base)?;
        learner.attach_telemetry(Telemetry::disabled());
        learner.set_shared_publish_muted(true);
        let summary = replay_into(&mut learner, &records, &mut produced, &mut self.pending);
        learner.set_shared_publish_muted(false);
        learner.attach_telemetry(self.telemetry.clone());
        self.stats.replayed += summary.replayed;
        self.stats.replay_suppressed += summary.suppressed;
        let net_lost = lost.saturating_sub(summary.recovered);
        let respawn_seq = summary.last_seq.or(base.journal_seq);
        if let Some(state) = self.journal.as_mut() {
            state.produced = produced;
            state.recovery_seconds.record(started.elapsed().as_secs_f64());
        }
        self.telemetry.emit(TelemetryEvent::JournalReplayed {
            seq: summary.last_seq.unwrap_or(0),
            replayed: summary.replayed,
            suppressed: summary.suppressed,
        });
        Ok((learner, net_lost, respawn_seq))
    }

    /// Reaps a dead worker and spawns a replacement from the last
    /// checkpoint. Outputs the dead worker already produced are kept;
    /// batches still in its queue are counted as lost.
    fn restart_worker(&mut self) -> Result<(), FreewayError> {
        let Some(Worker { input, output, handle, .. }) = self.worker.take() else {
            return Err(FreewayError::WorkerUnavailable);
        };
        drop(input);
        // Everything the worker managed to emit before dying survives.
        while let Ok(msg) = output.recv() {
            self.handle_msg(msg);
        }
        let panic = match handle.join() {
            Ok(Err(panic)) => panic,
            Err(payload) => panic_message(payload),
            Ok(Ok(learner)) => {
                // A clean exit while we hold the sender should be
                // impossible; salvage the freshest state anyway.
                self.last_checkpoint = Checkpoint::capture(&learner);
                "worker exited unexpectedly".to_string()
            }
        };
        self.stats.worker_panics += 1;
        let lost = self.in_flight as u64;
        self.in_flight = 0;
        self.checkpoints_in_flight = 0;
        self.accepted_since_checkpoint = 0;
        self.complete_restart(panic, lost)
    }

    /// Shared tail of every recovery (crash or forced stall): charge the
    /// restart budget, recover the learner (journal replay when enabled),
    /// and respawn. The caller has already reaped or abandoned the old
    /// worker and zeroed `in_flight`.
    fn complete_restart(&mut self, panic: String, lost: u64) -> Result<(), FreewayError> {
        self.watchdog = None;
        if self.stats.restarts >= self.config.max_restarts {
            // Past the budget nothing replays: the loss is real.
            self.stats.lost_in_flight += lost;
            self.lost_counter.add(lost);
            return Err(FreewayError::RestartsExhausted {
                attempts: self.stats.restarts,
                last_panic: panic,
            });
        }
        self.stats.restarts += 1;
        self.restarts_counter.inc();
        let (learner, net_lost, respawn_seq) = self.recover_learner(lost)?;
        self.stats.lost_in_flight += net_lost;
        self.lost_counter.add(net_lost);
        self.telemetry.emit(TelemetryEvent::WorkerRestarted {
            restarts: self.stats.restarts as u64,
            lost_in_flight: net_lost,
        });
        self.worker = Some(spawn_worker(
            learner,
            self.config.queue_depth,
            self.chaos_train_delay.clone(),
            respawn_seq,
        ));
        Ok(())
    }

    /// Polls the liveness watchdog, forcing recovery of a stalled worker.
    ///
    /// A no-op (always `Ok(false)`) unless
    /// [`SupervisorConfig::stall_deadline`] is set. Otherwise this first
    /// absorbs available worker output (the cheapest progress signal),
    /// then feeds the heartbeat ledger into the watchdog: a worker with
    /// work pending whose progress epoch has not advanced for a full
    /// deadline is declared stalled and forcibly recovered — emitting
    /// [`TelemetryEvent::WorkerStalled`] / `WorkerRecovered`, charging
    /// the restart budget, and replaying the journal when enabled.
    /// Returns `Ok(true)` when a stall was recovered this call.
    ///
    /// Callers with a deadline configured should poll this from their
    /// drain loops (the admitted, sharded, and serving layers all do).
    ///
    /// # Errors
    /// [`FreewayError::RestartsExhausted`] when the forced recovery blows
    /// the budget; restore errors as [`Self::feed`].
    pub fn check_liveness(&mut self) -> Result<bool, FreewayError> {
        let Some(deadline) = self.config.stall_deadline else {
            return Ok(false);
        };
        self.absorb_available()?;
        let Some(worker) = self.worker.as_ref() else {
            return Ok(false);
        };
        let epoch = worker.heartbeat.epoch();
        let pending = (self.in_flight + self.checkpoints_in_flight) as u64;
        let now = self.watchdog_origin.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let deadline_ticks = deadline.as_nanos().min(u128::from(u64::MAX)) as u64;
        let watchdog = self.watchdog.get_or_insert_with(|| WatchdogState::new(deadline_ticks));
        if !watchdog.observe(now, epoch, pending) {
            return Ok(false);
        }
        self.force_restart_stalled(now)?;
        Ok(true)
    }

    /// Forced recovery of a stalled worker. Unlike a crash, the thread is
    /// still running and can be neither joined nor drained blocking: raise
    /// the fence (so the zombie exits if it ever wakes), drop our channel
    /// ends, keep whatever output it already produced, abandon the
    /// handle, and restart from the last checkpoint exactly as the crash
    /// path does.
    fn force_restart_stalled(&mut self, now: u64) -> Result<(), FreewayError> {
        let Some(Worker { input, output, handle, heartbeat, fence }) = self.worker.take() else {
            return Err(FreewayError::WorkerUnavailable);
        };
        fence.store(true, Ordering::Release);
        drop(input);
        while let Ok(msg) = output.try_recv() {
            self.handle_msg(msg);
        }
        drop(output);
        drop(handle);
        let stalled_seq = heartbeat.last_seq().unwrap_or(0);
        let stage = heartbeat.stage().tag();
        let stalled_for = self.watchdog.as_ref().map(|w| w.stalled_for(now)).unwrap_or(0);
        self.stats.worker_stalls += 1;
        self.stalls_counter.inc();
        self.telemetry.emit(TelemetryEvent::WorkerStalled { seq: stalled_seq, stage });
        let started = Instant::now();
        let lost = self.in_flight as u64;
        self.in_flight = 0;
        self.checkpoints_in_flight = 0;
        self.accepted_since_checkpoint = 0;
        self.complete_restart(
            format!(
                "worker stalled in stage `{stage}` (no progress for {}ms, deadline {}ms)",
                stalled_for / 1_000_000,
                self.config.stall_deadline.map(|d| d.as_millis()).unwrap_or(0),
            ),
            lost,
        )?;
        self.stall_recovery_seconds.record(started.elapsed().as_secs_f64());
        self.telemetry.emit(TelemetryEvent::WorkerRecovered {
            seq: stalled_seq,
            restarts: self.stats.restarts as u64,
        });
        Ok(())
    }

    /// Chaos hook: makes the worker stop progressing on its next command
    /// for `duration` (pass `Duration::MAX` for an unbounded hang that
    /// only forced recovery clears), as a parked hang or a spinning
    /// livelock. Exercises the real stall-detection and forced-recovery
    /// path end to end.
    ///
    /// # Errors
    /// As [`Self::feed`].
    pub fn inject_worker_stall(
        &mut self,
        duration: Duration,
        livelock: bool,
    ) -> Result<(), FreewayError> {
        let nanos = duration.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.send_with_recovery(SupCommand::InjectStall { nanos, livelock })
    }

    /// The live worker's heartbeat ledger, when a worker is running.
    /// Observational: drills and dashboards read progress epoch, last
    /// seq, and stage from it.
    pub fn heartbeat(&self) -> Option<&HeartbeatLedger> {
        self.worker.as_ref().map(|w| &w.heartbeat)
    }

    /// Receives the next output without blocking; absorbs checkpoint
    /// messages and restarts a crashed worker along the way.
    ///
    /// # Errors
    /// As [`Self::feed`] when a crash is detected and recovery fails.
    pub fn try_recv(&mut self) -> Result<Option<PipelineOutput>, FreewayError> {
        loop {
            if let Some(out) = self.pending.pop_front() {
                return Ok(Some(out));
            }
            let Some(worker) = self.worker.as_ref() else {
                return Ok(None);
            };
            match worker.output.try_recv() {
                Ok(msg) => self.handle_msg(msg),
                Err(TryRecvError::Empty) => return Ok(None),
                Err(TryRecvError::Disconnected) => {
                    self.restart_worker()?;
                    return Ok(None);
                }
            }
        }
    }

    /// Receives the next output, blocking while results are outstanding.
    ///
    /// # Errors
    /// [`FreewayError::WorkerUnavailable`] when nothing is in flight
    /// (results of batches lost to a crash are never produced — check
    /// [`Self::stats`]); restart errors as [`Self::feed`].
    pub fn recv(&mut self) -> Result<PipelineOutput, FreewayError> {
        loop {
            if let Some(out) = self.pending.pop_front() {
                return Ok(out);
            }
            if self.in_flight == 0 {
                return Err(FreewayError::WorkerUnavailable);
            }
            self.pump_one_blocking()?;
        }
    }

    /// Run counters so far.
    pub fn stats(&self) -> SupervisorStats {
        self.stats
    }

    /// The dead-letter buffer (counted, bounded).
    pub fn quarantine(&self) -> &Quarantine {
        &self.quarantine
    }

    /// The most recent checkpoint (the restart point).
    pub fn last_checkpoint(&self) -> &Checkpoint {
        &self.last_checkpoint
    }

    /// Stops the worker and returns the learner plus every unconsumed
    /// output. If the worker is dead at finish time (crashed on its final
    /// batches, or the restart budget ran out), the learner is recovered
    /// from the last checkpoint instead of failing the whole run.
    ///
    /// # Errors
    /// [`FreewayError::Checkpoint`] only when that final checkpoint
    /// recovery itself fails.
    pub fn finish(mut self) -> Result<FinishedRun, FreewayError> {
        // With a watchdog armed, the blocking drain below could hang on a
        // wedged worker: run the liveness loop until nothing is owed (a
        // stall forces recovery; an exhausted budget leaves the worker
        // `None` and the checkpoint path below takes over), then raise
        // the fence so an injected idle-stall exits instead of outliving
        // the join.
        if self.config.stall_deadline.is_some() {
            while let Ok(progressed) = self.check_liveness() {
                if self.worker.is_none() || self.in_flight + self.checkpoints_in_flight == 0 {
                    break;
                }
                if !progressed {
                    std::thread::sleep(Duration::from_micros(50));
                }
            }
            if let Some(worker) = self.worker.as_ref() {
                worker.fence.store(true, Ordering::Release);
            }
        }
        let learner = match self.worker.take() {
            Some(Worker { input, output, handle, .. }) => {
                drop(input);
                while let Ok(msg) = output.recv() {
                    self.handle_msg(msg);
                }
                match handle.join() {
                    Ok(Ok(learner)) => learner,
                    Ok(Err(panic)) => self.finish_recover(panic)?,
                    Err(payload) => {
                        let panic = panic_message(payload);
                        self.finish_recover(panic)?
                    }
                }
            }
            None => self.restore_checkpoint()?,
        };
        let journal = self.journal.as_mut().map(|state| {
            // Make everything admitted this run durable before handing
            // the stats out.
            state.journal.sync();
            state.journal.stats()
        });
        Ok(FinishedRun {
            learner,
            outputs: std::mem::take(&mut self.pending).into(),
            stats: self.stats,
            quarantine: self.quarantine.clone(),
            journal,
        })
    }

    /// Dead-worker recovery at finish time: counts the crash, recovers
    /// the learner (replaying the journal when enabled — recovered
    /// outputs still land in the finished run), and surfaces the
    /// residual loss.
    fn finish_recover(&mut self, panic: String) -> Result<Learner, FreewayError> {
        self.stats.worker_panics += 1;
        let lost = self.in_flight as u64;
        self.in_flight = 0;
        self.checkpoints_in_flight = 0;
        eprintln!("freeway-core: worker dead at finish ({panic}); recovering");
        let (learner, net_lost, _respawn_seq) = self.recover_learner(lost)?;
        self.stats.lost_in_flight += net_lost;
        self.lost_counter.add(net_lost);
        Ok(learner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FreewayConfig;
    use freeway_linalg::Matrix;
    use freeway_ml::ModelSpec;
    use freeway_streams::concept::{stream_rng, GmmConcept};
    use freeway_streams::DriftPhase;

    fn learner() -> Learner {
        Learner::new(
            ModelSpec::lr(4, 2),
            FreewayConfig { pca_warmup_rows: 32, mini_batch: 64, ..Default::default() },
        )
    }

    fn config() -> SupervisorConfig {
        SupervisorConfig { checkpoint_every_n_batches: 3, ..Default::default() }
    }

    fn drain(p: &mut SupervisedPipeline, into: &mut Vec<PipelineOutput>) {
        while let Ok(Some(out)) = p.try_recv() {
            into.push(out);
        }
    }

    #[test]
    fn clean_stream_flows_like_the_plain_pipeline() {
        let mut rng = stream_rng(21);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let mut sup = SupervisedPipeline::with_learner(learner(), config()).expect("spawn");
        let mut outputs = Vec::new();
        for i in 0..12 {
            let (x, y) = concept.sample_batch(64, &mut rng);
            let outcome = sup
                .feed_prequential(Batch::labeled(x, y, i, DriftPhase::Stable))
                .expect("healthy pipeline");
            assert_eq!(outcome, FeedOutcome::Accepted);
            drain(&mut sup, &mut outputs);
        }
        let run = sup.finish().expect("clean finish");
        outputs.extend(run.outputs);
        assert_eq!(outputs.len(), 12, "one output per accepted batch");
        assert_eq!(run.stats.accepted, 12);
        assert_eq!(run.stats.restarts, 0);
        assert_eq!(run.stats.quarantined, 0);
        assert!(run.stats.checkpoints_taken >= 3, "cadence 3 over 12 batches");
        assert!(run.quarantine.is_empty());
    }

    #[test]
    fn poison_batches_are_quarantined_not_fed() {
        let mut rng = stream_rng(22);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let mut sup = SupervisedPipeline::with_learner(learner(), config()).expect("spawn");
        let (x, y) = concept.sample_batch(64, &mut rng);
        sup.feed_prequential(Batch::labeled(x, y, 0, DriftPhase::Stable)).expect("clean");

        let mut nan = concept.sample_batch(64, &mut rng).0;
        nan.row_mut(3)[1] = f64::NAN;
        let outcome = sup
            .feed_prequential(Batch::unlabeled(nan, 1, DriftPhase::Stable))
            .expect("quarantine is not an error");
        assert!(matches!(outcome, FeedOutcome::Quarantined(BatchFault::NonFiniteFeature { .. })));

        let wide = Batch::unlabeled(Matrix::zeros(8, 7), 2, DriftPhase::Stable);
        assert!(matches!(
            sup.feed(wide).expect("quarantine is not an error"),
            FeedOutcome::Quarantined(BatchFault::WidthMismatch { found: 7, expected: 4 })
        ));

        let run = sup.finish().expect("finish");
        assert_eq!(run.stats.accepted, 1);
        assert_eq!(run.stats.quarantined, 2);
        assert_eq!(run.quarantine.total(), 2);
        assert_eq!(run.stats.restarts, 0, "poison never reached the worker");
        assert_eq!(run.outputs.len(), 1);
    }

    /// Spins on `try_recv` until the supervisor has performed `target`
    /// restarts (crash detection happens at the channel boundary, so the
    /// test must give the supervisor a chance to observe the disconnect).
    fn wait_for_restarts(
        sup: &mut SupervisedPipeline,
        target: usize,
        outputs: &mut Vec<PipelineOutput>,
    ) {
        while sup.stats().restarts < target {
            match sup.try_recv() {
                Ok(Some(out)) => outputs.push(out),
                Ok(None) => std::thread::yield_now(),
                Err(e) => panic!("recovery failed while waiting for restart: {e}"),
            }
        }
    }

    #[test]
    fn injected_panic_restarts_from_checkpoint_and_stream_continues() {
        let mut rng = stream_rng(23);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let mut sup = SupervisedPipeline::with_learner(learner(), config()).expect("spawn");
        let mut outputs = Vec::new();
        for i in 0..6 {
            let (x, y) = concept.sample_batch(64, &mut rng);
            sup.feed_prequential(Batch::labeled(x, y, i, DriftPhase::Stable)).expect("healthy");
            drain(&mut sup, &mut outputs);
        }
        sup.inject_worker_panic().expect("inject");
        wait_for_restarts(&mut sup, 1, &mut outputs);
        for i in 6..12 {
            let (x, y) = concept.sample_batch(64, &mut rng);
            sup.feed_prequential(Batch::labeled(x, y, i, DriftPhase::Stable))
                .expect("restart absorbs the crash");
            drain(&mut sup, &mut outputs);
        }
        let run = sup.finish().expect("finish");
        outputs.extend(run.outputs);
        assert_eq!(run.stats.restarts, 1, "exactly one restart: {:?}", run.stats);
        assert_eq!(run.stats.worker_panics, 1);
        assert!(run.stats.checkpoints_taken >= 1, "restart had a checkpoint to use");
        // Every post-restart batch reached the fresh worker and produced
        // its output (nothing was in flight when they were fed).
        let post_restart = outputs.iter().filter(|o| o.seq >= 6).count();
        assert_eq!(post_restart, 6, "stream flowed after recovery");
    }

    #[test]
    fn restart_budget_exhaustion_is_an_error_and_finish_still_recovers() {
        let mut rng = stream_rng(24);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let mut sup = SupervisedPipeline::with_learner(
            learner(),
            SupervisorConfig { max_restarts: 1, ..config() },
        )
        .expect("spawn");
        let mut outputs = Vec::new();
        let (x, y) = concept.sample_batch(64, &mut rng);
        sup.feed_prequential(Batch::labeled(x, y, 0, DriftPhase::Stable)).expect("healthy");
        sup.inject_worker_panic().expect("first crash scheduled");
        wait_for_restarts(&mut sup, 1, &mut outputs);
        // Second crash exceeds max_restarts = 1: the next recovery
        // attempt must surface RestartsExhausted instead of respawning.
        sup.inject_worker_panic().expect("second crash scheduled");
        let err = loop {
            match sup.try_recv() {
                Ok(Some(out)) => outputs.push(out),
                Ok(None) => std::thread::yield_now(),
                Err(e) => break e,
            }
        };
        assert!(
            matches!(err, FreewayError::RestartsExhausted { attempts: 1, .. }),
            "expected RestartsExhausted, got {err:?}"
        );
        // With the budget spent, feeding errors too (worker is gone).
        let (x, y) = concept.sample_batch(64, &mut rng);
        assert!(matches!(
            sup.feed_prequential(Batch::labeled(x, y, 1, DriftPhase::Stable)),
            Err(FreewayError::WorkerUnavailable)
        ));
        // The run still finishes by recovering state from the checkpoint.
        let run = sup.finish().expect("finish recovers from checkpoint");
        assert_eq!(run.stats.restarts, 1);
        assert_eq!(run.stats.worker_panics, 2);
    }

    #[test]
    fn checkpoints_persist_to_disk_at_cadence() {
        let dir = std::env::temp_dir().join("freeway-supervisor-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("sup-ckpt.json");
        let _ = std::fs::remove_file(&path);

        let mut rng = stream_rng(25);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let mut sup = SupervisedPipeline::with_learner(
            learner(),
            SupervisorConfig {
                checkpoint_every_n_batches: 2,
                checkpoint_path: Some(path.clone()),
                ..Default::default()
            },
        )
        .expect("spawn");
        for i in 0..6 {
            let (x, y) = concept.sample_batch(64, &mut rng);
            sup.feed_prequential(Batch::labeled(x, y, i, DriftPhase::Stable)).expect("healthy");
        }
        let run = sup.finish().expect("finish");
        assert!(run.stats.checkpoints_persisted >= 1, "{:?}", run.stats);
        assert_eq!(run.stats.checkpoint_persist_failures, 0);
        let store = CheckpointStore::new(path, SupervisorConfig::default().checkpoint_generations);
        assert!(store.generation_path(0).exists(), "newest generation on disk");
        let (loaded, generation) =
            store.load_newest().expect("persisted checkpoint loads and validates");
        assert_eq!(generation, 0);
        assert_eq!(loaded.spec, *run.learner.spec());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn try_feed_full_queue_returns_the_batch_and_keeps_the_guard_open() {
        let mut rng = stream_rng(27);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let mut sup = SupervisedPipeline::with_learner(
            learner(),
            SupervisorConfig { queue_depth: 1, ..config() },
        )
        .expect("spawn");
        // Slow the worker so the 1-deep queue reliably fills.
        sup.set_chaos_train_delay(std::time::Duration::from_millis(30));
        let mut full_batch = None;
        let mut accepted = 0u64;
        for i in 0..50 {
            let (x, y) = concept.sample_batch(32, &mut rng);
            match sup.try_feed_prequential(Batch::labeled(x, y, i, DriftPhase::Stable)) {
                Ok(TryFeedOutcome::Accepted) => accepted += 1,
                Ok(TryFeedOutcome::Full(batch)) => {
                    full_batch = Some(batch);
                    break;
                }
                other => panic!("unexpected outcome: {other:?}"),
            }
        }
        let bounced = full_batch.expect("a 1-deep queue with a 30ms worker must fill");
        // The bounced batch can be re-offered without a duplicate-seq
        // quarantine once the queue drains.
        sup.set_chaos_train_delay(std::time::Duration::ZERO);
        loop {
            match sup.try_feed_prequential(bounced.clone()).expect("healthy") {
                TryFeedOutcome::Accepted => break,
                TryFeedOutcome::Full(_) => std::thread::sleep(std::time::Duration::from_millis(1)),
                TryFeedOutcome::Quarantined(fault) => {
                    panic!("re-offer after Full must not quarantine: {fault:?}")
                }
            }
        }
        let run = sup.finish().expect("finish");
        assert_eq!(run.stats.accepted, accepted + 1);
        assert_eq!(run.stats.quarantined, 0);
    }

    #[test]
    fn try_feed_still_quarantines_poison() {
        let mut sup = SupervisedPipeline::with_learner(learner(), config()).expect("spawn");
        let wide = Batch::unlabeled(Matrix::zeros(8, 7), 0, DriftPhase::Stable);
        assert!(matches!(
            sup.try_feed(wide).expect("quarantine is not an error"),
            TryFeedOutcome::Quarantined(BatchFault::WidthMismatch { found: 7, expected: 4 })
        ));
        let run = sup.finish().expect("finish");
        assert_eq!(run.stats.quarantined, 1);
    }

    #[test]
    fn failing_disk_degrades_cadence_instead_of_killing_the_run() {
        let dir = std::env::temp_dir().join("freeway-supervisor-sickdisk");
        let _ = std::fs::remove_dir_all(&dir);
        // The directory deliberately does not exist: every persistence
        // attempt fails, exercising retry exhaustion + cadence backoff.
        let path = dir.join("nope").join("ckpt.json");
        let mut rng = stream_rng(28);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let mut sup = SupervisedPipeline::with_learner(
            learner(),
            SupervisorConfig {
                checkpoint_every_n_batches: 2,
                checkpoint_path: Some(path),
                persist_retry: RetryPolicy {
                    max_attempts: 2,
                    base_delay: std::time::Duration::from_micros(50),
                    max_delay: std::time::Duration::from_micros(100),
                    seed: 7,
                },
                ..Default::default()
            },
        )
        .expect("spawn");
        let mut received = 0u64;
        for i in 0..12 {
            let (x, y) = concept.sample_batch(64, &mut rng);
            sup.feed_prequential(Batch::labeled(x, y, i, DriftPhase::Stable))
                .expect("persist failures must not fail the feed");
        }
        // Drain every in-flight result so the checkpoint verdicts queued
        // behind them are applied before we look at the backoff.
        while sup.recv().is_ok() {
            received += 1;
        }
        assert!(sup.cadence_backoff() > 1, "cadence degraded after persist failures");
        let run = sup.finish().expect("finish");
        assert!(run.stats.checkpoint_persist_failures >= 1, "{:?}", run.stats);
        assert_eq!(run.stats.checkpoints_persisted, 0);
        assert_eq!(run.stats.worker_panics, 0, "the worker never noticed the sick disk");
        assert_eq!(received + run.outputs.len() as u64 + run.stats.lost_in_flight, 12);
    }

    #[test]
    fn journaled_restart_replays_lost_in_flight_batches() {
        let dir =
            std::env::temp_dir().join(format!("freeway-journal-restart-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        let mut rng = stream_rng(29);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let mut sup = SupervisedPipeline::with_learner(
            learner(),
            SupervisorConfig {
                journal: Some(JournalConfig::new(dir.join("ingest.wal"))),
                ..config()
            },
        )
        .expect("spawn");
        let mut outputs = Vec::new();
        for i in 0..4 {
            let (x, y) = concept.sample_batch(64, &mut rng);
            sup.feed_prequential(Batch::labeled(x, y, i, DriftPhase::Stable)).expect("healthy");
            drain(&mut sup, &mut outputs);
        }
        // The panic command queues ahead of batch 4, so the crash
        // deterministically takes an admitted batch down with it.
        sup.inject_worker_panic().expect("inject");
        let (x, y) = concept.sample_batch(64, &mut rng);
        sup.feed_prequential(Batch::labeled(x, y, 4, DriftPhase::Stable)).expect("fed");
        wait_for_restarts(&mut sup, 1, &mut outputs);
        for i in 5..8 {
            let (x, y) = concept.sample_batch(64, &mut rng);
            sup.feed_prequential(Batch::labeled(x, y, i, DriftPhase::Stable)).expect("healthy");
            drain(&mut sup, &mut outputs);
        }
        let run = sup.finish().expect("finish");
        outputs.extend(run.outputs);
        assert_eq!(run.stats.restarts, 1, "{:?}", run.stats);
        assert_eq!(run.stats.lost_in_flight, 0, "replay recovers everything: {:?}", run.stats);
        assert!(run.stats.replayed >= 1, "{:?}", run.stats);
        let seqs: Vec<u64> = outputs.iter().map(|o| o.seq).collect();
        assert_eq!(seqs, (0..8).collect::<Vec<u64>>(), "every batch exactly once, in order");
        let journal = run.journal.expect("journal stats present");
        assert_eq!(journal.appended, 8);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn startup_recovery_replays_a_previous_processes_journal() {
        let dir =
            std::env::temp_dir().join(format!("freeway-journal-startup-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        let journal = JournalConfig::new(dir.join("ingest.wal"));
        let mut rng = stream_rng(30);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        // First incarnation: admit five batches, then die without a
        // clean finish (the journal is the only durable trace).
        let mut batches = Vec::new();
        for i in 0..8 {
            let (x, y) = concept.sample_batch(64, &mut rng);
            batches.push(Batch::labeled(x, y, i, DriftPhase::Stable));
        }
        {
            let mut sup = SupervisedPipeline::with_learner(
                learner(),
                SupervisorConfig { journal: Some(journal.clone()), ..config() },
            )
            .expect("spawn");
            for batch in batches.iter().take(5) {
                sup.feed_prequential(batch.clone()).expect("healthy");
            }
            // Dropped without finish(): a process crash from the
            // journal's point of view.
        }
        // Second incarnation: genesis replay reconstructs the state,
        // suppressing every already-delivered output.
        let mut sup = SupervisedPipeline::with_learner(
            learner(),
            SupervisorConfig { journal: Some(journal), ..config() },
        )
        .expect("recovering spawn");
        assert_eq!(sup.stats().replayed, 5, "{:?}", sup.stats());
        assert_eq!(sup.stats().replay_suppressed, 5, "{:?}", sup.stats());
        for batch in batches.iter().skip(5) {
            sup.feed_prequential(batch.clone()).expect("healthy");
        }
        let run = sup.finish().expect("finish");
        assert_eq!(run.outputs.len(), 3, "only post-recovery outputs are delivered");
        assert_eq!(run.stats.accepted, 3);
        assert_eq!(run.stats.lost_in_flight, 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sequence_faults_are_quarantined_when_enabled() {
        let mut rng = stream_rng(26);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let mut sup = SupervisedPipeline::with_learner(learner(), config()).expect("spawn");
        let (x, y) = concept.sample_batch(64, &mut rng);
        let batch = Batch::labeled(x, y, 5, DriftPhase::Stable);
        sup.feed_prequential(batch.clone()).expect("clean");
        assert!(matches!(
            sup.feed_prequential(batch).expect("quarantine is not an error"),
            FeedOutcome::Quarantined(BatchFault::DuplicateSeq { seq: 5 })
        ));
        let run = sup.finish().expect("finish");
        assert_eq!(run.stats.quarantined, 1);
    }
}
