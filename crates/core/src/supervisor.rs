//! The supervised pipeline: checkpointed auto-restart + poison quarantine.
//!
//! [`SupervisedPipeline`] wraps the same worker-thread architecture as
//! [`crate::pipeline::Pipeline`] in a fault boundary:
//!
//! * every batch passes the [`BatchGuard`] **before** touching the
//!   channel; poison batches land in a bounded, counted [`Quarantine`]
//!   instead of panicking inside the math substrate;
//! * the worker captures a [`Checkpoint`] every
//!   `checkpoint_every_n_batches` accepted batches (persisted atomically
//!   to disk when a path is configured);
//! * a worker panic is detected at the channel boundary, the crashed
//!   thread is joined for its panic message, and a fresh worker is
//!   spawned from the last checkpoint — up to `max_restarts` times;
//! * batches in flight at the moment of a crash are *lost, not replayed*
//!   (streaming semantics: the stream has moved on), and the loss is
//!   counted in [`SupervisorStats::lost_in_flight`].
//!
//! The supervisor is single-threaded on the caller side: `feed`,
//! `try_recv`, and `finish` take `&mut self` so restart bookkeeping
//! needs no locking.

use crate::degrade::{DegradationHandle, DegradationLevel};
use crate::error::{panic_message, FreewayError};
use crate::guard::{BatchFault, BatchGuard, GuardPolicy, Quarantine};
use crate::learner::Learner;
use crate::persistence::{Checkpoint, CheckpointStore};
use crate::pipeline::PipelineOutput;
use crate::retry::RetryPolicy;
use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError, TrySendError};
use freeway_streams::Batch;
use freeway_telemetry::{Telemetry, TelemetryEvent};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Supervision policy knobs.
#[derive(Clone, Debug)]
pub struct SupervisorConfig {
    /// Bound on both channels (backpressure), as in the plain pipeline.
    pub queue_depth: usize,
    /// A checkpoint is captured after every this-many accepted batches.
    pub checkpoint_every_n_batches: usize,
    /// When set, every checkpoint is also persisted here atomically
    /// (write temp, fsync, rename). Persistence failures are counted and
    /// logged, never fatal — the in-memory checkpoint still updates.
    pub checkpoint_path: Option<PathBuf>,
    /// How many poison batches the dead-letter buffer retains (all are
    /// counted regardless).
    pub quarantine_capacity: usize,
    /// Worker crashes tolerated before the supervisor gives up with
    /// [`FreewayError::RestartsExhausted`].
    pub max_restarts: usize,
    /// Reject duplicate / regressing sequence numbers at the guard.
    /// Disable for sources that legitimately re-emit (cycling files).
    pub check_seq: bool,
    /// How many on-disk checkpoint generations to retain when
    /// `checkpoint_path` is set (`checkpoint.0.json` newest). Restore
    /// falls back to the newest generation passing CRC and validation.
    pub checkpoint_generations: usize,
    /// Retry schedule wrapped around each checkpoint persistence attempt
    /// (exponential backoff with deterministic jitter). Transient disk
    /// stalls retry in place; a persistently failing disk degrades the
    /// checkpoint *cadence* instead of killing the worker.
    pub persist_retry: RetryPolicy,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        Self {
            queue_depth: 32,
            checkpoint_every_n_batches: 8,
            checkpoint_path: None,
            quarantine_capacity: 64,
            max_restarts: 3,
            check_seq: true,
            checkpoint_generations: 3,
            persist_retry: RetryPolicy::default(),
        }
    }
}

/// Counters describing one supervised run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SupervisorStats {
    /// Batches that passed the guard and reached the worker.
    pub accepted: u64,
    /// Batches rejected by the guard and quarantined.
    pub quarantined: u64,
    /// Worker crashes observed (restarted or not).
    pub worker_panics: u64,
    /// Successful checkpoint restarts performed.
    pub restarts: usize,
    /// Checkpoints captured from the worker.
    pub checkpoints_taken: u64,
    /// Checkpoints also persisted to disk.
    pub checkpoints_persisted: u64,
    /// Disk persistence failures (non-fatal; in-memory state kept).
    pub checkpoint_persist_failures: u64,
    /// Accepted batches whose results were lost to a crash (streaming
    /// semantics: lost batches are not replayed).
    pub lost_in_flight: u64,
}

/// What happened to a batch offered to [`SupervisedPipeline::feed`].
#[derive(Clone, Debug, PartialEq)]
pub enum FeedOutcome {
    /// The batch passed validation and reached the worker.
    Accepted,
    /// The batch was rejected and sits in the quarantine.
    Quarantined(BatchFault),
}

/// What happened to a batch offered to the non-blocking
/// [`SupervisedPipeline::try_feed`].
#[derive(Debug)]
pub enum TryFeedOutcome {
    /// The batch passed validation and reached the worker.
    Accepted,
    /// The batch was rejected and sits in the quarantine.
    Quarantined(BatchFault),
    /// The worker queue is full; the batch comes back to the caller
    /// untouched (the guard watermark did not advance, so it can be
    /// re-offered later without tripping duplicate-seq detection).
    Full(Batch),
}

/// Everything a finished supervised run hands back.
pub struct FinishedRun {
    /// The learner, recovered from the last checkpoint if the worker was
    /// dead at finish time.
    pub learner: Learner,
    /// All outputs not yet consumed via `recv`/`try_recv`, in order.
    pub outputs: Vec<PipelineOutput>,
    /// Run counters.
    pub stats: SupervisorStats,
    /// The dead-letter buffer with every retained poison batch.
    pub quarantine: Quarantine,
}

enum SupCommand {
    Batch(Batch),
    Prequential(Batch),
    /// Capture and send back a checkpoint of the current learner state.
    Checkpoint,
    /// Chaos hook: panic deterministically inside the worker.
    InjectPanic,
}

enum WorkerMsg {
    Output(PipelineOutput),
    Checkpoint(Box<Checkpoint>),
}

struct Worker {
    input: Sender<SupCommand>,
    output: Receiver<WorkerMsg>,
    handle: JoinHandle<Result<Learner, String>>,
}

fn spawn_worker(mut learner: Learner, queue_depth: usize, chaos_delay: Arc<AtomicU64>) -> Worker {
    let telemetry = learner.telemetry().clone();
    let (in_tx, in_rx) = bounded::<SupCommand>(queue_depth);
    // One extra slot per possible in-flight checkpoint reply so a
    // checkpoint command never wedges behind a full output queue.
    let (out_tx, out_rx) = bounded::<WorkerMsg>(queue_depth + 1);
    let handle = std::thread::spawn(move || {
        catch_unwind(AssertUnwindSafe(move || {
            loop {
                // Queue wait is the ingest stage, as in the plain pipeline.
                let cmd = {
                    let _span = telemetry.time(freeway_telemetry::Stage::Ingest);
                    match in_rx.recv() {
                        Ok(cmd) => cmd,
                        Err(_) => break,
                    }
                };
                // Chaos hook: an artificially slowed worker turns any
                // stream into an overload, exercising backpressure,
                // shedding, and the degradation ladder for real. The
                // delay models the train stage, so it shrinks with the
                // service level: degraded levels skip (most of) training
                // and genuinely run faster.
                if matches!(cmd, SupCommand::Batch(_) | SupCommand::Prequential(_)) {
                    let nanos = chaos_delay.load(Ordering::Relaxed);
                    if nanos > 0 {
                        let scaled = match learner.degradation_level() {
                            DegradationLevel::Full => nanos,
                            DegradationLevel::ShortOnly => nanos / 2,
                            DegradationLevel::InferenceOnly | DegradationLevel::Shed => nanos / 8,
                        };
                        std::thread::sleep(std::time::Duration::from_nanos(scaled));
                    }
                }
                let msg = match cmd {
                    SupCommand::Batch(batch) => {
                        telemetry.batch_started(batch.seq);
                        let report = match batch.labels.as_deref() {
                            Some(labels) => {
                                learner.train(&batch.x, labels);
                                None
                            }
                            None => Some(learner.infer(&batch.x)),
                        };
                        WorkerMsg::Output(PipelineOutput { seq: batch.seq, report })
                    }
                    SupCommand::Prequential(batch) => {
                        let report = learner.process(&batch);
                        WorkerMsg::Output(PipelineOutput { seq: batch.seq, report: Some(report) })
                    }
                    SupCommand::Checkpoint => {
                        WorkerMsg::Checkpoint(Box::new(Checkpoint::capture(&learner)))
                    }
                    SupCommand::InjectPanic => panic!("injected worker panic (chaos)"),
                };
                if out_tx.send(msg).is_err() {
                    break;
                }
            }
            learner
        }))
        .map_err(panic_message)
    });
    Worker { input: in_tx, output: out_rx, handle }
}

/// A fault-tolerant pipeline around a [`Learner`].
pub struct SupervisedPipeline {
    config: SupervisorConfig,
    worker: Option<Worker>,
    guard: BatchGuard,
    quarantine: Quarantine,
    /// Outputs drained from the worker but not yet handed to the caller.
    pending: VecDeque<PipelineOutput>,
    /// The restart point. Seeded with a checkpoint of the initial
    /// learner, so recovery is possible before the first cadence point.
    last_checkpoint: Checkpoint,
    stats: SupervisorStats,
    /// Accepted batches whose outputs have not been observed yet.
    in_flight: usize,
    accepted_since_checkpoint: usize,
    /// A checkpoint request that could not be enqueued without blocking
    /// (non-blocking feed path); sent opportunistically later.
    checkpoint_due: bool,
    /// Cadence multiplier, doubled on persistence failure and reset on
    /// success: a sick disk is asked for checkpoints less often instead
    /// of stalling or killing a healthy worker.
    cadence_backoff: usize,
    /// Chaos hook shared with the worker thread: nanoseconds of
    /// artificial delay before each train/infer command (0 = off).
    chaos_train_delay: Arc<AtomicU64>,
    /// Chaos hook: artificial delay injected before each checkpoint
    /// persistence attempt, simulating a slow disk.
    chaos_persist_delay: Arc<AtomicU64>,
    /// When set, a restored learner is re-attached to this shared
    /// degradation level so overload service levels survive restarts.
    degradation: Option<DegradationHandle>,
    /// When set, a restored learner is re-joined to the cross-shard
    /// knowledge registry as this shard, so one shard's crash never
    /// disconnects it from the fleet's preserved concepts.
    shared: Option<(crate::knowledge::SharedKnowledge, usize)>,
    /// Shared with the learner: quarantine/checkpoint/restart events are
    /// emitted here so fault handling is observable from the outside.
    telemetry: Telemetry,
}

impl SupervisedPipeline {
    /// Spawns the supervised worker. The guard's policy (feature width,
    /// class count) is derived from the learner's model spec, and the
    /// learner's [`Telemetry`] handle is shared by the supervisor so
    /// quarantine, checkpoint, and restart events land on the same stream
    /// as the learner's own.
    ///
    /// # Errors
    /// [`FreewayError::InvalidConfig`] when `queue_depth` or
    /// `checkpoint_every_n_batches` is zero.
    pub fn with_learner(learner: Learner, config: SupervisorConfig) -> Result<Self, FreewayError> {
        if config.queue_depth == 0 {
            return Err(FreewayError::InvalidConfig("queue depth must be positive".to_owned()));
        }
        if config.checkpoint_every_n_batches == 0 {
            return Err(FreewayError::InvalidConfig(
                "checkpoint cadence must be positive".to_owned(),
            ));
        }
        let policy = GuardPolicy {
            expected_features: learner.spec().features(),
            num_classes: learner.spec().classes(),
            check_seq: config.check_seq,
        };
        let guard = BatchGuard::new(policy);
        let quarantine = Quarantine::new(config.quarantine_capacity);
        if config.checkpoint_generations == 0 {
            return Err(FreewayError::InvalidConfig(
                "checkpoint generations must be positive".to_owned(),
            ));
        }
        let last_checkpoint = Checkpoint::capture(&learner);
        let telemetry = learner.telemetry().clone();
        let chaos_train_delay = Arc::new(AtomicU64::new(0));
        let worker = Some(spawn_worker(learner, config.queue_depth, chaos_train_delay.clone()));
        Ok(Self {
            config,
            worker,
            guard,
            quarantine,
            pending: VecDeque::new(),
            last_checkpoint,
            stats: SupervisorStats::default(),
            in_flight: 0,
            accepted_since_checkpoint: 0,
            checkpoint_due: false,
            cadence_backoff: 1,
            chaos_train_delay,
            chaos_persist_delay: Arc::new(AtomicU64::new(0)),
            degradation: None,
            shared: None,
            telemetry,
        })
    }

    /// Legacy panicking constructor.
    ///
    /// # Panics
    /// When `queue_depth` or `checkpoint_every_n_batches` is zero (the
    /// historical `assert!`s).
    #[deprecated(
        since = "0.1.0",
        note = "use SupervisedPipeline::with_learner or crate::PipelineBuilder"
    )]
    pub fn spawn(learner: Learner, config: SupervisorConfig) -> Self {
        match Self::with_learner(learner, config) {
            Ok(pipeline) => pipeline,
            Err(err) => panic!("{err}"),
        }
    }

    /// Feeds a batch, routed by labeledness. Poison batches are
    /// quarantined (an `Ok` outcome — the pipeline survived them).
    ///
    /// # Errors
    /// [`FreewayError::RestartsExhausted`] when the worker kept crashing
    /// past the restart budget, [`FreewayError::Checkpoint`] if the
    /// restart checkpoint itself failed to restore.
    pub fn feed(&mut self, batch: Batch) -> Result<FeedOutcome, FreewayError> {
        self.submit(batch, false)
    }

    /// Feeds a prequential batch (infer-then-train on the same data).
    ///
    /// # Errors
    /// As [`Self::feed`].
    pub fn feed_prequential(&mut self, batch: Batch) -> Result<FeedOutcome, FreewayError> {
        self.submit(batch, true)
    }

    fn submit(&mut self, batch: Batch, prequential: bool) -> Result<FeedOutcome, FreewayError> {
        if let Err(fault) = self.guard.admit(&batch) {
            self.stats.quarantined += 1;
            self.telemetry
                .emit(TelemetryEvent::BatchQuarantined { seq: batch.seq, fault: fault.tag() });
            self.quarantine.push(batch, fault.clone());
            return Ok(FeedOutcome::Quarantined(fault));
        }
        // Absorb finished work first so checkpoint results (and their
        // disk verdicts) are applied promptly, not only at finish.
        self.absorb_available()?;
        let cmd =
            if prequential { SupCommand::Prequential(batch) } else { SupCommand::Batch(batch) };
        self.send_with_recovery(cmd)?;
        self.note_accepted();
        if self.checkpoint_due {
            self.checkpoint_due = false;
            self.send_with_recovery(SupCommand::Checkpoint)?;
        }
        Ok(FeedOutcome::Accepted)
    }

    /// Shared bookkeeping after a batch actually reached the worker.
    /// The checkpoint cadence is the configured one times the current
    /// disk-backoff multiplier; the request itself is only *flagged*
    /// here so the non-blocking path can defer it.
    fn note_accepted(&mut self) {
        self.in_flight += 1;
        self.stats.accepted += 1;
        self.accepted_since_checkpoint += 1;
        let cadence = self.config.checkpoint_every_n_batches.saturating_mul(self.cadence_backoff);
        if self.accepted_since_checkpoint >= cadence {
            self.accepted_since_checkpoint = 0;
            self.checkpoint_due = true;
        }
    }

    /// Non-blocking feed, routed by labeledness: the admission
    /// controller's primitive. Never waits on the worker — a full queue
    /// hands the batch straight back as [`TryFeedOutcome::Full`] so the
    /// caller can shed, backlog, or retry under its own policy. A dead
    /// worker is restarted (the restarted queue is empty, so the retry
    /// then succeeds or the restart budget errors out).
    ///
    /// # Errors
    /// As [`Self::feed`].
    pub fn try_feed(&mut self, batch: Batch) -> Result<TryFeedOutcome, FreewayError> {
        self.try_submit(batch, false)
    }

    /// Non-blocking prequential feed; see [`Self::try_feed`].
    ///
    /// # Errors
    /// As [`Self::feed`].
    pub fn try_feed_prequential(&mut self, batch: Batch) -> Result<TryFeedOutcome, FreewayError> {
        self.try_submit(batch, true)
    }

    fn try_submit(
        &mut self,
        batch: Batch,
        prequential: bool,
    ) -> Result<TryFeedOutcome, FreewayError> {
        // Inspect without advancing the watermark: a Full outcome must
        // leave the guard willing to see this seq again.
        if let Err(fault) = self.guard.inspect(&batch) {
            self.stats.quarantined += 1;
            self.telemetry
                .emit(TelemetryEvent::BatchQuarantined { seq: batch.seq, fault: fault.tag() });
            self.quarantine.push(batch, fault.clone());
            return Ok(TryFeedOutcome::Quarantined(fault));
        }
        // Absorb whatever the worker already produced — freeing output
        // slots is what lets a busy worker drain its input queue.
        self.absorb_available()?;
        let seq = batch.seq;
        let mut cmd =
            if prequential { SupCommand::Prequential(batch) } else { SupCommand::Batch(batch) };
        loop {
            let Some(worker) = self.worker.as_ref() else {
                return Err(FreewayError::WorkerUnavailable);
            };
            match worker.input.try_send(cmd) {
                Ok(()) => break,
                Err(TrySendError::Full(returned)) => {
                    let batch = match returned {
                        SupCommand::Batch(b) | SupCommand::Prequential(b) => b,
                        // Only batch commands enter this loop.
                        _ => return Err(FreewayError::WorkerUnavailable),
                    };
                    return Ok(TryFeedOutcome::Full(batch));
                }
                Err(TrySendError::Disconnected(returned)) => {
                    cmd = returned;
                    self.restart_worker()?;
                }
            }
        }
        self.guard.accept(seq);
        self.note_accepted();
        self.flush_due_checkpoint();
        Ok(TryFeedOutcome::Accepted)
    }

    /// Opportunistically sends a deferred checkpoint request; if the
    /// queue is still full the flag stays set for the next call.
    fn flush_due_checkpoint(&mut self) {
        if !self.checkpoint_due {
            return;
        }
        if let Some(worker) = self.worker.as_ref() {
            if worker.input.try_send(SupCommand::Checkpoint).is_ok() {
                self.checkpoint_due = false;
            }
        }
    }

    /// Drains every worker message currently available, without
    /// blocking. A detected disconnect restarts the worker.
    fn absorb_available(&mut self) -> Result<(), FreewayError> {
        loop {
            let Some(worker) = self.worker.as_ref() else { return Ok(()) };
            match worker.output.try_recv() {
                Ok(msg) => self.handle_msg(msg),
                Err(TryRecvError::Empty) => return Ok(()),
                Err(TryRecvError::Disconnected) => {
                    self.restart_worker()?;
                    return Ok(());
                }
            }
        }
    }

    /// Batches accepted but not yet answered by the worker.
    pub fn in_flight(&self) -> usize {
        self.in_flight
    }

    /// The configured channel bound (capacity of the worker queue).
    pub fn queue_depth(&self) -> usize {
        self.config.queue_depth
    }

    /// Chaos hook: every subsequent train/infer command sleeps this long
    /// inside the worker before running, simulating an overloaded or
    /// degraded compute stage. Survives worker restarts. Zero disables.
    pub fn set_chaos_train_delay(&self, delay: std::time::Duration) {
        self.chaos_train_delay
            .store(delay.as_nanos().min(u128::from(u64::MAX)) as u64, Ordering::Relaxed);
    }

    /// Chaos hook: every subsequent checkpoint persistence sleeps this
    /// long first, simulating a slow disk. Zero disables.
    pub fn set_chaos_persist_delay(&self, delay: std::time::Duration) {
        self.chaos_persist_delay
            .store(delay.as_nanos().min(u128::from(u64::MAX)) as u64, Ordering::Relaxed);
    }

    /// Shares the overload degradation level with this supervisor so a
    /// learner restored after a crash re-attaches to it (the live
    /// learner must have been attached before the pipeline was built —
    /// [`crate::PipelineBuilder`] wires both ends).
    pub fn set_degradation_handle(&mut self, handle: DegradationHandle) {
        self.degradation = Some(handle);
    }

    /// Registers the cross-shard knowledge registry this pipeline's
    /// learner belongs to (as `shard`), so a learner restored after a
    /// crash is re-joined to it — like the degradation handle, the live
    /// learner must have been attached before the worker was spawned;
    /// [`crate::PipelineBuilder::build_sharded`] wires both ends.
    pub fn set_shared_knowledge(
        &mut self,
        shared: crate::knowledge::SharedKnowledge,
        shard: usize,
    ) {
        self.shared = Some((shared, shard));
    }

    /// Current checkpoint-cadence multiplier (1 = healthy disk; doubles
    /// per persistence failure, resets on success).
    pub fn cadence_backoff(&self) -> usize {
        self.cadence_backoff
    }

    /// The telemetry handle shared with the worker thread.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Chaos hook: makes the worker panic on its next command, exercising
    /// the real crash-detection and restart path end to end.
    ///
    /// # Errors
    /// As [`Self::feed`].
    pub fn inject_worker_panic(&mut self) -> Result<(), FreewayError> {
        self.send_with_recovery(SupCommand::InjectPanic)
    }

    /// Delivers a command, recovering along the way: a full queue blocks
    /// on draining one worker message (backpressure), a disconnected
    /// queue means the worker died — restart it and retry.
    fn send_with_recovery(&mut self, mut cmd: SupCommand) -> Result<(), FreewayError> {
        loop {
            let Some(worker) = self.worker.as_ref() else {
                return Err(FreewayError::WorkerUnavailable);
            };
            match worker.input.try_send(cmd) {
                Ok(()) => return Ok(()),
                Err(TrySendError::Full(returned)) => {
                    cmd = returned;
                    self.pump_one_blocking()?;
                }
                Err(TrySendError::Disconnected(returned)) => {
                    cmd = returned;
                    self.restart_worker()?;
                }
            }
        }
    }

    /// Waits for one worker message and absorbs it; a disconnect is a
    /// crash — restart.
    fn pump_one_blocking(&mut self) -> Result<(), FreewayError> {
        let Some(worker) = self.worker.as_ref() else {
            return Err(FreewayError::WorkerUnavailable);
        };
        match worker.output.recv() {
            Ok(msg) => {
                self.handle_msg(msg);
                Ok(())
            }
            Err(_) => self.restart_worker(),
        }
    }

    fn handle_msg(&mut self, msg: WorkerMsg) {
        match msg {
            WorkerMsg::Output(out) => {
                self.in_flight = self.in_flight.saturating_sub(1);
                self.pending.push_back(out);
            }
            WorkerMsg::Checkpoint(cp) => self.install_checkpoint(*cp),
        }
    }

    fn install_checkpoint(&mut self, checkpoint: Checkpoint) {
        self.stats.checkpoints_taken += 1;
        let mut persisted = false;
        if let Some(path) = self.config.checkpoint_path.as_ref() {
            let delay = self.chaos_persist_delay.load(Ordering::Relaxed);
            if delay > 0 {
                std::thread::sleep(std::time::Duration::from_nanos(delay));
            }
            let store = CheckpointStore::new(path.clone(), self.config.checkpoint_generations);
            match self.config.persist_retry.run(|| store.save(&checkpoint)) {
                Ok(()) => {
                    self.stats.checkpoints_persisted += 1;
                    self.cadence_backoff = 1;
                    persisted = true;
                }
                Err(e) => {
                    // Persistence failing must not take down a healthy
                    // pipeline: the in-memory checkpoint still advances,
                    // and the sick disk gets asked less often.
                    self.stats.checkpoint_persist_failures += 1;
                    self.cadence_backoff = (self.cadence_backoff * 2).min(64);
                    eprintln!("freeway-core: checkpoint persistence failed (state kept): {e}");
                }
            }
        }
        self.telemetry
            .emit(TelemetryEvent::CheckpointWritten { seq: self.telemetry.seq(), persisted });
        self.last_checkpoint = checkpoint;
    }

    /// Restores the last checkpoint and re-wires the restored learner to
    /// this supervisor's telemetry stream and shared degradation level,
    /// announcing the restore.
    fn restore_checkpoint(&self) -> Result<Learner, FreewayError> {
        let mut learner = self.last_checkpoint.restore()?;
        learner.attach_telemetry(self.telemetry.clone());
        if let Some(handle) = self.degradation.as_ref() {
            learner.attach_degradation(handle.clone());
        }
        if let Some((shared, shard)) = self.shared.as_ref() {
            learner.attach_shared_knowledge(shared, *shard);
        }
        self.telemetry.emit(TelemetryEvent::CheckpointRestored { seq: self.telemetry.seq() });
        Ok(learner)
    }

    /// Reaps a dead worker and spawns a replacement from the last
    /// checkpoint. Outputs the dead worker already produced are kept;
    /// batches still in its queue are counted as lost.
    fn restart_worker(&mut self) -> Result<(), FreewayError> {
        let Some(Worker { input, output, handle }) = self.worker.take() else {
            return Err(FreewayError::WorkerUnavailable);
        };
        drop(input);
        // Everything the worker managed to emit before dying survives.
        while let Ok(msg) = output.recv() {
            self.handle_msg(msg);
        }
        let panic = match handle.join() {
            Ok(Err(panic)) => panic,
            Err(payload) => panic_message(payload),
            Ok(Ok(learner)) => {
                // A clean exit while we hold the sender should be
                // impossible; salvage the freshest state anyway.
                self.last_checkpoint = Checkpoint::capture(&learner);
                "worker exited unexpectedly".to_string()
            }
        };
        self.stats.worker_panics += 1;
        let lost = self.in_flight as u64;
        self.stats.lost_in_flight += lost;
        self.in_flight = 0;
        self.accepted_since_checkpoint = 0;
        if self.stats.restarts >= self.config.max_restarts {
            return Err(FreewayError::RestartsExhausted {
                attempts: self.stats.restarts,
                last_panic: panic,
            });
        }
        self.stats.restarts += 1;
        let learner = self.restore_checkpoint()?;
        self.telemetry.emit(TelemetryEvent::WorkerRestarted {
            restarts: self.stats.restarts as u64,
            lost_in_flight: lost,
        });
        self.worker =
            Some(spawn_worker(learner, self.config.queue_depth, self.chaos_train_delay.clone()));
        Ok(())
    }

    /// Receives the next output without blocking; absorbs checkpoint
    /// messages and restarts a crashed worker along the way.
    ///
    /// # Errors
    /// As [`Self::feed`] when a crash is detected and recovery fails.
    pub fn try_recv(&mut self) -> Result<Option<PipelineOutput>, FreewayError> {
        loop {
            if let Some(out) = self.pending.pop_front() {
                return Ok(Some(out));
            }
            let Some(worker) = self.worker.as_ref() else {
                return Ok(None);
            };
            match worker.output.try_recv() {
                Ok(msg) => self.handle_msg(msg),
                Err(TryRecvError::Empty) => return Ok(None),
                Err(TryRecvError::Disconnected) => {
                    self.restart_worker()?;
                    return Ok(None);
                }
            }
        }
    }

    /// Receives the next output, blocking while results are outstanding.
    ///
    /// # Errors
    /// [`FreewayError::WorkerUnavailable`] when nothing is in flight
    /// (results of batches lost to a crash are never produced — check
    /// [`Self::stats`]); restart errors as [`Self::feed`].
    pub fn recv(&mut self) -> Result<PipelineOutput, FreewayError> {
        loop {
            if let Some(out) = self.pending.pop_front() {
                return Ok(out);
            }
            if self.in_flight == 0 {
                return Err(FreewayError::WorkerUnavailable);
            }
            self.pump_one_blocking()?;
        }
    }

    /// Run counters so far.
    pub fn stats(&self) -> SupervisorStats {
        self.stats
    }

    /// The dead-letter buffer (counted, bounded).
    pub fn quarantine(&self) -> &Quarantine {
        &self.quarantine
    }

    /// The most recent checkpoint (the restart point).
    pub fn last_checkpoint(&self) -> &Checkpoint {
        &self.last_checkpoint
    }

    /// Stops the worker and returns the learner plus every unconsumed
    /// output. If the worker is dead at finish time (crashed on its final
    /// batches, or the restart budget ran out), the learner is recovered
    /// from the last checkpoint instead of failing the whole run.
    ///
    /// # Errors
    /// [`FreewayError::Checkpoint`] only when that final checkpoint
    /// recovery itself fails.
    pub fn finish(mut self) -> Result<FinishedRun, FreewayError> {
        let learner = match self.worker.take() {
            Some(Worker { input, output, handle }) => {
                drop(input);
                while let Ok(msg) = output.recv() {
                    self.handle_msg(msg);
                }
                match handle.join() {
                    Ok(Ok(learner)) => learner,
                    Ok(Err(panic)) => {
                        self.stats.worker_panics += 1;
                        self.stats.lost_in_flight += self.in_flight as u64;
                        eprintln!("freeway-core: worker dead at finish ({panic}); recovering");
                        self.restore_checkpoint()?
                    }
                    Err(payload) => {
                        let panic = panic_message(payload);
                        self.stats.worker_panics += 1;
                        self.stats.lost_in_flight += self.in_flight as u64;
                        eprintln!("freeway-core: worker dead at finish ({panic}); recovering");
                        self.restore_checkpoint()?
                    }
                }
            }
            None => self.restore_checkpoint()?,
        };
        Ok(FinishedRun {
            learner,
            outputs: std::mem::take(&mut self.pending).into(),
            stats: self.stats,
            quarantine: self.quarantine.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FreewayConfig;
    use freeway_linalg::Matrix;
    use freeway_ml::ModelSpec;
    use freeway_streams::concept::{stream_rng, GmmConcept};
    use freeway_streams::DriftPhase;

    fn learner() -> Learner {
        Learner::new(
            ModelSpec::lr(4, 2),
            FreewayConfig { pca_warmup_rows: 32, mini_batch: 64, ..Default::default() },
        )
    }

    fn config() -> SupervisorConfig {
        SupervisorConfig { checkpoint_every_n_batches: 3, ..Default::default() }
    }

    fn drain(p: &mut SupervisedPipeline, into: &mut Vec<PipelineOutput>) {
        while let Ok(Some(out)) = p.try_recv() {
            into.push(out);
        }
    }

    #[test]
    fn clean_stream_flows_like_the_plain_pipeline() {
        let mut rng = stream_rng(21);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let mut sup = SupervisedPipeline::with_learner(learner(), config()).expect("spawn");
        let mut outputs = Vec::new();
        for i in 0..12 {
            let (x, y) = concept.sample_batch(64, &mut rng);
            let outcome = sup
                .feed_prequential(Batch::labeled(x, y, i, DriftPhase::Stable))
                .expect("healthy pipeline");
            assert_eq!(outcome, FeedOutcome::Accepted);
            drain(&mut sup, &mut outputs);
        }
        let run = sup.finish().expect("clean finish");
        outputs.extend(run.outputs);
        assert_eq!(outputs.len(), 12, "one output per accepted batch");
        assert_eq!(run.stats.accepted, 12);
        assert_eq!(run.stats.restarts, 0);
        assert_eq!(run.stats.quarantined, 0);
        assert!(run.stats.checkpoints_taken >= 3, "cadence 3 over 12 batches");
        assert!(run.quarantine.is_empty());
    }

    #[test]
    fn poison_batches_are_quarantined_not_fed() {
        let mut rng = stream_rng(22);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let mut sup = SupervisedPipeline::with_learner(learner(), config()).expect("spawn");
        let (x, y) = concept.sample_batch(64, &mut rng);
        sup.feed_prequential(Batch::labeled(x, y, 0, DriftPhase::Stable)).expect("clean");

        let mut nan = concept.sample_batch(64, &mut rng).0;
        nan.row_mut(3)[1] = f64::NAN;
        let outcome = sup
            .feed_prequential(Batch::unlabeled(nan, 1, DriftPhase::Stable))
            .expect("quarantine is not an error");
        assert!(matches!(outcome, FeedOutcome::Quarantined(BatchFault::NonFiniteFeature { .. })));

        let wide = Batch::unlabeled(Matrix::zeros(8, 7), 2, DriftPhase::Stable);
        assert!(matches!(
            sup.feed(wide).expect("quarantine is not an error"),
            FeedOutcome::Quarantined(BatchFault::WidthMismatch { found: 7, expected: 4 })
        ));

        let run = sup.finish().expect("finish");
        assert_eq!(run.stats.accepted, 1);
        assert_eq!(run.stats.quarantined, 2);
        assert_eq!(run.quarantine.total(), 2);
        assert_eq!(run.stats.restarts, 0, "poison never reached the worker");
        assert_eq!(run.outputs.len(), 1);
    }

    /// Spins on `try_recv` until the supervisor has performed `target`
    /// restarts (crash detection happens at the channel boundary, so the
    /// test must give the supervisor a chance to observe the disconnect).
    fn wait_for_restarts(
        sup: &mut SupervisedPipeline,
        target: usize,
        outputs: &mut Vec<PipelineOutput>,
    ) {
        while sup.stats().restarts < target {
            match sup.try_recv() {
                Ok(Some(out)) => outputs.push(out),
                Ok(None) => std::thread::yield_now(),
                Err(e) => panic!("recovery failed while waiting for restart: {e}"),
            }
        }
    }

    #[test]
    fn injected_panic_restarts_from_checkpoint_and_stream_continues() {
        let mut rng = stream_rng(23);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let mut sup = SupervisedPipeline::with_learner(learner(), config()).expect("spawn");
        let mut outputs = Vec::new();
        for i in 0..6 {
            let (x, y) = concept.sample_batch(64, &mut rng);
            sup.feed_prequential(Batch::labeled(x, y, i, DriftPhase::Stable)).expect("healthy");
            drain(&mut sup, &mut outputs);
        }
        sup.inject_worker_panic().expect("inject");
        wait_for_restarts(&mut sup, 1, &mut outputs);
        for i in 6..12 {
            let (x, y) = concept.sample_batch(64, &mut rng);
            sup.feed_prequential(Batch::labeled(x, y, i, DriftPhase::Stable))
                .expect("restart absorbs the crash");
            drain(&mut sup, &mut outputs);
        }
        let run = sup.finish().expect("finish");
        outputs.extend(run.outputs);
        assert_eq!(run.stats.restarts, 1, "exactly one restart: {:?}", run.stats);
        assert_eq!(run.stats.worker_panics, 1);
        assert!(run.stats.checkpoints_taken >= 1, "restart had a checkpoint to use");
        // Every post-restart batch reached the fresh worker and produced
        // its output (nothing was in flight when they were fed).
        let post_restart = outputs.iter().filter(|o| o.seq >= 6).count();
        assert_eq!(post_restart, 6, "stream flowed after recovery");
    }

    #[test]
    fn restart_budget_exhaustion_is_an_error_and_finish_still_recovers() {
        let mut rng = stream_rng(24);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let mut sup = SupervisedPipeline::with_learner(
            learner(),
            SupervisorConfig { max_restarts: 1, ..config() },
        )
        .expect("spawn");
        let mut outputs = Vec::new();
        let (x, y) = concept.sample_batch(64, &mut rng);
        sup.feed_prequential(Batch::labeled(x, y, 0, DriftPhase::Stable)).expect("healthy");
        sup.inject_worker_panic().expect("first crash scheduled");
        wait_for_restarts(&mut sup, 1, &mut outputs);
        // Second crash exceeds max_restarts = 1: the next recovery
        // attempt must surface RestartsExhausted instead of respawning.
        sup.inject_worker_panic().expect("second crash scheduled");
        let err = loop {
            match sup.try_recv() {
                Ok(Some(out)) => outputs.push(out),
                Ok(None) => std::thread::yield_now(),
                Err(e) => break e,
            }
        };
        assert!(
            matches!(err, FreewayError::RestartsExhausted { attempts: 1, .. }),
            "expected RestartsExhausted, got {err:?}"
        );
        // With the budget spent, feeding errors too (worker is gone).
        let (x, y) = concept.sample_batch(64, &mut rng);
        assert!(matches!(
            sup.feed_prequential(Batch::labeled(x, y, 1, DriftPhase::Stable)),
            Err(FreewayError::WorkerUnavailable)
        ));
        // The run still finishes by recovering state from the checkpoint.
        let run = sup.finish().expect("finish recovers from checkpoint");
        assert_eq!(run.stats.restarts, 1);
        assert_eq!(run.stats.worker_panics, 2);
    }

    #[test]
    fn checkpoints_persist_to_disk_at_cadence() {
        let dir = std::env::temp_dir().join("freeway-supervisor-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("sup-ckpt.json");
        let _ = std::fs::remove_file(&path);

        let mut rng = stream_rng(25);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let mut sup = SupervisedPipeline::with_learner(
            learner(),
            SupervisorConfig {
                checkpoint_every_n_batches: 2,
                checkpoint_path: Some(path.clone()),
                ..Default::default()
            },
        )
        .expect("spawn");
        for i in 0..6 {
            let (x, y) = concept.sample_batch(64, &mut rng);
            sup.feed_prequential(Batch::labeled(x, y, i, DriftPhase::Stable)).expect("healthy");
        }
        let run = sup.finish().expect("finish");
        assert!(run.stats.checkpoints_persisted >= 1, "{:?}", run.stats);
        assert_eq!(run.stats.checkpoint_persist_failures, 0);
        let store = CheckpointStore::new(path, SupervisorConfig::default().checkpoint_generations);
        assert!(store.generation_path(0).exists(), "newest generation on disk");
        let (loaded, generation) =
            store.load_newest().expect("persisted checkpoint loads and validates");
        assert_eq!(generation, 0);
        assert_eq!(loaded.spec, *run.learner.spec());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn try_feed_full_queue_returns_the_batch_and_keeps_the_guard_open() {
        let mut rng = stream_rng(27);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let mut sup = SupervisedPipeline::with_learner(
            learner(),
            SupervisorConfig { queue_depth: 1, ..config() },
        )
        .expect("spawn");
        // Slow the worker so the 1-deep queue reliably fills.
        sup.set_chaos_train_delay(std::time::Duration::from_millis(30));
        let mut full_batch = None;
        let mut accepted = 0u64;
        for i in 0..50 {
            let (x, y) = concept.sample_batch(32, &mut rng);
            match sup.try_feed_prequential(Batch::labeled(x, y, i, DriftPhase::Stable)) {
                Ok(TryFeedOutcome::Accepted) => accepted += 1,
                Ok(TryFeedOutcome::Full(batch)) => {
                    full_batch = Some(batch);
                    break;
                }
                other => panic!("unexpected outcome: {other:?}"),
            }
        }
        let bounced = full_batch.expect("a 1-deep queue with a 30ms worker must fill");
        // The bounced batch can be re-offered without a duplicate-seq
        // quarantine once the queue drains.
        sup.set_chaos_train_delay(std::time::Duration::ZERO);
        loop {
            match sup.try_feed_prequential(bounced.clone()).expect("healthy") {
                TryFeedOutcome::Accepted => break,
                TryFeedOutcome::Full(_) => std::thread::sleep(std::time::Duration::from_millis(1)),
                TryFeedOutcome::Quarantined(fault) => {
                    panic!("re-offer after Full must not quarantine: {fault:?}")
                }
            }
        }
        let run = sup.finish().expect("finish");
        assert_eq!(run.stats.accepted, accepted + 1);
        assert_eq!(run.stats.quarantined, 0);
    }

    #[test]
    fn try_feed_still_quarantines_poison() {
        let mut sup = SupervisedPipeline::with_learner(learner(), config()).expect("spawn");
        let wide = Batch::unlabeled(Matrix::zeros(8, 7), 0, DriftPhase::Stable);
        assert!(matches!(
            sup.try_feed(wide).expect("quarantine is not an error"),
            TryFeedOutcome::Quarantined(BatchFault::WidthMismatch { found: 7, expected: 4 })
        ));
        let run = sup.finish().expect("finish");
        assert_eq!(run.stats.quarantined, 1);
    }

    #[test]
    fn failing_disk_degrades_cadence_instead_of_killing_the_run() {
        let dir = std::env::temp_dir().join("freeway-supervisor-sickdisk");
        let _ = std::fs::remove_dir_all(&dir);
        // The directory deliberately does not exist: every persistence
        // attempt fails, exercising retry exhaustion + cadence backoff.
        let path = dir.join("nope").join("ckpt.json");
        let mut rng = stream_rng(28);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let mut sup = SupervisedPipeline::with_learner(
            learner(),
            SupervisorConfig {
                checkpoint_every_n_batches: 2,
                checkpoint_path: Some(path),
                persist_retry: RetryPolicy {
                    max_attempts: 2,
                    base_delay: std::time::Duration::from_micros(50),
                    max_delay: std::time::Duration::from_micros(100),
                    seed: 7,
                },
                ..Default::default()
            },
        )
        .expect("spawn");
        let mut received = 0u64;
        for i in 0..12 {
            let (x, y) = concept.sample_batch(64, &mut rng);
            sup.feed_prequential(Batch::labeled(x, y, i, DriftPhase::Stable))
                .expect("persist failures must not fail the feed");
        }
        // Drain every in-flight result so the checkpoint verdicts queued
        // behind them are applied before we look at the backoff.
        while sup.recv().is_ok() {
            received += 1;
        }
        assert!(sup.cadence_backoff() > 1, "cadence degraded after persist failures");
        let run = sup.finish().expect("finish");
        assert!(run.stats.checkpoint_persist_failures >= 1, "{:?}", run.stats);
        assert_eq!(run.stats.checkpoints_persisted, 0);
        assert_eq!(run.stats.worker_panics, 0, "the worker never noticed the sick disk");
        assert_eq!(received + run.outputs.len() as u64 + run.stats.lost_in_flight, 12);
    }

    #[test]
    fn sequence_faults_are_quarantined_when_enabled() {
        let mut rng = stream_rng(26);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let mut sup = SupervisedPipeline::with_learner(learner(), config()).expect("spawn");
        let (x, y) = concept.sample_batch(64, &mut rng);
        let batch = Batch::labeled(x, y, 5, DriftPhase::Stable);
        sup.feed_prequential(batch.clone()).expect("clean");
        assert!(matches!(
            sup.feed_prequential(batch).expect("quarantine is not an error"),
            FeedOutcome::Quarantined(BatchFault::DuplicateSeq { seq: 5 })
        ));
        let run = sup.finish().expect("finish");
        assert_eq!(run.stats.quarantined, 1);
    }
}
