//! The public FreewayML API.
//!
//! [`Learner`] mirrors the paper's constructor template
//! (`Learner(Model, ModelNum, MiniBatch, KdgBuffer, ExpBuffer, α)`) and
//! wires the strategy selector to the three mechanisms: on each inference
//! batch exactly **one** strategy runs (slight → ensemble, sudden → CEC,
//! reoccurring → knowledge reuse), while every training batch updates the
//! multi-granularity models regardless (§V-A).

use crate::config::FreewayConfig;
use crate::degrade::{DegradationHandle, DegradationLevel};
use crate::error::FreewayError;
use crate::granularity::MultiGranularity;
use crate::knowledge::{KnowledgeStore, SharedKnowledge, SharedReader};
use crate::selector::{Decision, StrategySelector};
use freeway_cluster::{CoherentExperience, ExperienceBuffer};
use freeway_drift::ShiftPattern;
use freeway_linalg::{vector, Matrix};
use freeway_ml::{ModelSnapshot, ModelSpec};
use freeway_streams::Batch;
use freeway_telemetry::{Stage, Telemetry, TelemetryEvent};

/// Which mechanism produced a batch's predictions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Strategy {
    /// Multi-granularity Gaussian-kernel ensemble (Pattern A / warm-up).
    Ensemble,
    /// Coherent experience clustering (Pattern B).
    Clustering,
    /// Historical knowledge reuse (Pattern C).
    KnowledgeReuse,
}

impl Strategy {
    /// Display tag used in experiment output.
    pub fn tag(self) -> &'static str {
        match self {
            Self::Ensemble => "ensemble",
            Self::Clustering => "cec",
            Self::KnowledgeReuse => "knowledge",
        }
    }
}

/// Outcome of one inference batch.
#[derive(Clone, Debug)]
pub struct InferenceReport {
    /// Hard class predictions, one per input row.
    pub predictions: Vec<usize>,
    /// Strategy that produced them.
    pub strategy: Strategy,
    /// Classified pattern (`None` during PCA warm-up).
    pub pattern: Option<ShiftPattern>,
    /// Shift severity `M` (0 during warm-up).
    pub severity: f64,
    /// Shift distance `d_t` (0 during warm-up).
    pub distance: f64,
    /// True when the shift tracker is running on a degraded (identity)
    /// PCA projection after a numerical failure — predictions still
    /// flow, but pattern routing is less trustworthy until re-warm-up.
    pub degraded: bool,
    /// Overload service level in force when this batch was answered
    /// ([`DegradationLevel::Full`] unless an admission controller has
    /// stepped the ladder down).
    pub degradation: DegradationLevel,
}

impl InferenceReport {
    /// Hard class predictions, one per input row.
    pub fn predictions(&self) -> &[usize] {
        &self.predictions
    }

    /// Strategy that produced the predictions.
    pub fn strategy(&self) -> Strategy {
        self.strategy
    }

    /// Classified pattern (`None` during PCA warm-up).
    pub fn pattern(&self) -> Option<ShiftPattern> {
        self.pattern
    }

    /// Shift severity `M` (0 during warm-up).
    pub fn severity(&self) -> f64 {
        self.severity
    }

    /// Shift distance `d_t` (0 during warm-up).
    pub fn distance(&self) -> f64 {
        self.distance
    }

    /// True when predictions were produced on a degraded (identity) PCA
    /// projection. Mirrored on the event stream as
    /// [`TelemetryEvent::InferenceDegraded`] so harnesses can assert on
    /// degradation without reaching into report internals.
    pub fn is_degraded(&self) -> bool {
        self.degraded
    }

    /// Overload service level in force when this batch was answered.
    pub fn degradation(&self) -> DegradationLevel {
        self.degradation
    }
}

/// Counters of how often each strategy served an inference batch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StrategyStats {
    /// Batches served by the multi-granularity ensemble.
    pub ensemble: usize,
    /// Batches served by coherent experience clustering.
    pub clustering: usize,
    /// Batches served by historical knowledge reuse.
    pub knowledge: usize,
}

impl StrategyStats {
    /// Total inference batches recorded.
    pub fn total(&self) -> usize {
        self.ensemble + self.clustering + self.knowledge
    }
}

/// The adaptive, stable streaming learner.
///
/// ```
/// use freeway_core::{FreewayConfig, Learner};
/// use freeway_ml::ModelSpec;
/// use freeway_streams::{Hyperplane, StreamGenerator};
///
/// let mut stream = Hyperplane::new(10, 0.02, 0.05, 42);
/// let mut learner = Learner::new(
///     ModelSpec::lr(10, 2),
///     FreewayConfig { mini_batch: 128, pca_warmup_rows: 128, ..Default::default() },
/// );
/// for _ in 0..5 {
///     let batch = stream.next_batch(128);
///     let report = learner.process(&batch);
///     assert_eq!(report.predictions.len(), 128);
/// }
/// assert_eq!(learner.strategy_stats().total(), 5);
/// ```
pub struct Learner {
    config: FreewayConfig,
    spec: ModelSpec,
    selector: StrategySelector,
    granularity: MultiGranularity,
    knowledge: KnowledgeStore,
    experience: ExperienceBuffer,
    cec: CoherentExperience,
    stats: StrategyStats,
    telemetry: Telemetry,
    /// Shared overload service level, written by an admission
    /// controller's degradation ladder and read (one relaxed load) at
    /// the top of every train call. Defaults to a private handle pinned
    /// at [`DegradationLevel::Full`], so standalone learners behave
    /// exactly as before.
    degradation: DegradationHandle,
    /// Cross-shard knowledge registry handle; `None` outside a sharded
    /// runtime, in which case no publish or lookup ever happens and the
    /// learner is byte-identical to the unsharded one.
    shared: Option<SharedReader>,
    /// Training batches seen — the stable half of this shard's
    /// `(seq, shard)` ordering key in the shared registry.
    batches_trained: u64,
    /// Inference batches answered from a *foreign* shard's shared entry.
    shared_hits: u64,
    /// Unlabeled batches that still trained the short model via CEC
    /// pseudo-labels (continuous low-label mode; see
    /// [`FreewayConfig::enable_pseudo_labels`]).
    pseudo_trained: u64,
    /// When set, preservations are NOT mirrored into the shared registry.
    /// The supervisor flips this during journal replay: the original
    /// publishes survived the in-process crash, so re-publishing them
    /// would be a side effect the fault-free run never had.
    shared_publish_muted: bool,
}

impl Learner {
    /// Creates a learner for the given model architecture.
    ///
    /// # Panics
    /// On invalid configuration; use [`Learner::try_new`] (or
    /// [`crate::PipelineBuilder`]) for a fallible construction path.
    pub fn new(spec: ModelSpec, config: FreewayConfig) -> Self {
        match Self::try_new(spec, config, Telemetry::disabled()) {
            Ok(learner) => learner,
            Err(err) => panic!("{err}"),
        }
    }

    /// Fallible constructor with an observability handle: per-stage timing
    /// spans, shift gauges, and drift/strategy events flow into
    /// `telemetry` (pass [`Telemetry::disabled`] for a zero-overhead
    /// no-op).
    ///
    /// # Errors
    /// [`FreewayError::InvalidConfig`] when the configuration violates a
    /// constraint (the message names the offending field).
    pub fn try_new(
        spec: ModelSpec,
        config: FreewayConfig,
        telemetry: Telemetry,
    ) -> Result<Self, FreewayError> {
        config.check().map_err(FreewayError::InvalidConfig)?;
        // Size the process-wide worker pool (FREEWAY_THREADS still wins).
        freeway_linalg::pool::configure(config.num_threads);
        let selector = StrategySelector::with_telemetry(&config, telemetry.clone());
        let mut granularity = MultiGranularity::new(spec.clone(), &config);
        granularity.attach_telemetry(&telemetry);
        let mut knowledge = KnowledgeStore::new(config.kdg_buffer);
        knowledge.attach_telemetry(telemetry.clone());
        let experience =
            ExperienceBuffer::new(config.experience_points(), Some(config.exp_buffer as u64 * 4));
        let cec = CoherentExperience::with_recent(
            spec.classes() * config.cec_cluster_multiplier.max(1),
            config.mini_batch.max(1),
            config.cec_min_purity,
            config.seed ^ 0xCEC,
        );
        Ok(Self {
            config,
            spec,
            selector,
            granularity,
            knowledge,
            experience,
            cec,
            stats: StrategyStats::default(),
            telemetry,
            degradation: DegradationHandle::new(),
            shared: None,
            batches_trained: 0,
            shared_hits: 0,
            pseudo_trained: 0,
            shared_publish_muted: false,
        })
    }

    /// The paper's constructor template:
    /// `Learner(Model, ModelNum, MiniBatch, KdgBuffer, ExpBuffer, α)`.
    pub fn paper_interface(
        model: ModelSpec,
        model_num: usize,
        mini_batch: usize,
        kdg_buffer: usize,
        exp_buffer: usize,
        alpha: f64,
    ) -> Self {
        let config = FreewayConfig {
            model_num,
            mini_batch,
            kdg_buffer,
            exp_buffer,
            alpha,
            ..Default::default()
        };
        Self::new(model, config)
    }

    /// Configuration in force.
    pub fn config(&self) -> &FreewayConfig {
        &self.config
    }

    /// Model architecture.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// Knowledge store (space studies read this).
    pub fn knowledge(&self) -> &KnowledgeStore {
        &self.knowledge
    }

    /// Strategy selector (shift-graph introspection).
    pub fn selector(&self) -> &StrategySelector {
        &self.selector
    }

    /// Multi-granularity bank (ablations poke at this).
    pub fn granularity(&self) -> &MultiGranularity {
        &self.granularity
    }

    /// How often each strategy has served inference so far.
    pub fn strategy_stats(&self) -> StrategyStats {
        self.stats
    }

    /// The observability handle this learner reports into (disabled by
    /// default; pipelines clone this to share one event stream).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Re-attaches an observability handle after construction, re-wiring
    /// every sub-component (used when a learner is rebuilt from a
    /// checkpoint and must keep reporting into the supervisor's sink).
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.selector.attach_telemetry(telemetry.clone());
        self.granularity.attach_telemetry(&telemetry);
        self.knowledge.attach_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// Rate-aware adjuster hook: accelerate ASW decay under pressure.
    pub fn set_decay_multiplier(&mut self, multiplier: f64) {
        self.granularity.set_decay_multiplier(multiplier);
    }

    /// Shares an overload degradation level with this learner: training
    /// is gated on the handle's current [`DegradationLevel`] from the
    /// next batch on. Wired by [`crate::PipelineBuilder`] when admission
    /// control is configured.
    pub fn attach_degradation(&mut self, handle: DegradationHandle) {
        self.degradation = handle;
    }

    /// Current overload service level (from the attached handle).
    pub fn degradation_level(&self) -> DegradationLevel {
        self.degradation.level()
    }

    /// Joins this learner to a cross-shard knowledge registry as `shard`:
    /// window-completion preservations are additionally published to the
    /// registry, and severe-shift inference first probes other shards'
    /// entries (sharded Pattern-C warm start). Wired by
    /// [`crate::PipelineBuilder::build_sharded`].
    pub fn attach_shared_knowledge(&mut self, shared: &SharedKnowledge, shard: usize) {
        self.shared = Some(shared.reader(shard));
    }

    /// Inference batches answered from a foreign shard's shared entry.
    pub fn shared_hits(&self) -> u64 {
        self.shared_hits
    }

    /// Unlabeled batches that trained the short model via CEC
    /// pseudo-labels. Zero unless
    /// [`FreewayConfig::enable_pseudo_labels`] is set.
    pub fn pseudo_trained(&self) -> u64 {
        self.pseudo_trained
    }

    /// Mutes (or unmutes) mirroring preservations into the shared
    /// registry. Used by the supervisor while re-feeding journaled
    /// batches after a crash: the crashed worker's publishes are still in
    /// the registry, so replay must not repeat them.
    pub fn set_shared_publish_muted(&mut self, muted: bool) {
        self.shared_publish_muted = muted;
    }

    /// Training batches seen (the shared-registry ordering seq).
    pub fn batches_trained(&self) -> u64 {
        self.batches_trained
    }

    /// Projects a batch mean into shift-graph coordinates (zeros during
    /// warm-up, when no PCA exists yet).
    fn project(&self, x: &Matrix) -> Vec<f64> {
        match self.selector.tracker().pca() {
            Some(pca) => pca.project_mean(&x.column_means()),
            // The warm-up placeholder must match the dimension PCA will
            // actually fit, which is capped by the feature count (e.g.
            // SEA has 3 features but the default asks for 4 components).
            None => vec![0.0; self.config.pca_components.min(self.spec.features())],
        }
    }

    /// Handles one **inference** batch: classifies its shift pattern and
    /// runs exactly one strategy.
    pub fn infer(&mut self, x: &Matrix) -> InferenceReport {
        let report = {
            let _span = self.telemetry.time(Stage::Infer);
            self.infer_inner(x)
        };
        match report.strategy {
            Strategy::Ensemble => self.stats.ensemble += 1,
            Strategy::Clustering => self.stats.clustering += 1,
            Strategy::KnowledgeReuse => self.stats.knowledge += 1,
        }
        if self.telemetry.enabled() {
            let seq = self.telemetry.seq();
            self.telemetry.emit(TelemetryEvent::StrategyDispatched {
                seq,
                strategy: report.strategy.tag(),
                pattern: report.pattern.map_or("warmup", ShiftPattern::tag),
            });
            if report.degraded {
                self.telemetry.emit(TelemetryEvent::InferenceDegraded {
                    seq,
                    strategy: report.strategy.tag(),
                });
            }
        }
        report
    }

    fn infer_inner(&mut self, x: &Matrix) -> InferenceReport {
        let degradation = self.degradation.level();
        let decision = self.selector.observe(x);
        let degraded = self.selector.tracker().pca().is_some_and(|p| p.degraded());
        match decision {
            None => {
                // PCA warm-up: only the ensemble exists. This is the only
                // arm that needs its own projection — a ready selector
                // already projected the batch into `measurement.projected`,
                // so projecting up front would duplicate the column-means
                // and PCA work on every post-warmup batch.
                let projected = self.project(x);
                let predictions = self.granularity.predict(x, &projected);
                InferenceReport {
                    predictions,
                    strategy: Strategy::Ensemble,
                    pattern: None,
                    severity: 0.0,
                    distance: 0.0,
                    degraded,
                    degradation,
                }
            }
            Some(Decision { pattern, measurement }) => {
                let (predictions, strategy) = match pattern {
                    ShiftPattern::Slight => {
                        (self.granularity.predict(x, &measurement.projected), Strategy::Ensemble)
                    }
                    ShiftPattern::Sudden => {
                        self.granularity.handle_severe_shift();
                        self.infer_sudden(x, &measurement.projected)
                    }
                    ShiftPattern::Reoccurring => {
                        self.granularity.handle_severe_shift();
                        // Reuse is gated twice: the paper's `d_h < d_t`
                        // (already part of the classification) plus an
                        // absolute bound — moving to the matched
                        // distribution must itself look like a *slight*
                        // shift, otherwise the "match" is a projection
                        // coincidence and the snapshot would mispredict.
                        let slight_bound =
                            measurement.history_mean + self.config.alpha * measurement.history_std;
                        self.infer_reoccurring(
                            x,
                            &measurement.projected,
                            measurement.distance.min(slight_bound),
                        )
                    }
                };
                InferenceReport {
                    predictions,
                    strategy,
                    pattern: Some(pattern),
                    severity: measurement.severity,
                    distance: measurement.distance,
                    degraded,
                    degradation,
                }
            }
        }
    }

    /// Cross-shard Pattern-C probe: when a severe shift lands on this
    /// shard, another tenant's shard may already hold the post-shift
    /// concept. Tried before CEC arbitration because a matching foreign
    /// snapshot is trained knowledge, not a cold-start reconstruction.
    ///
    /// The probe sits on `infer_sudden` (not only the Reoccurring arm)
    /// deliberately: a concept that is *recurring globally* but *new to
    /// this shard* classifies as Sudden here — the local tracker has no
    /// history of it — and that is exactly the case the shared registry
    /// exists for. The evidence gate mirrors the local reuse gate: the
    /// restored snapshot must score at least as well as the live ensemble
    /// on the freshest labeled points.
    fn try_shared_reuse(
        &mut self,
        x: &Matrix,
        projected: &[f64],
    ) -> Option<(Vec<usize>, Strategy)> {
        if self.shared.is_none() || !self.config.enable_knowledge {
            return None;
        }
        // Fingerprints live in raw feature space (per-shard PCA bases are
        // incomparable), so the lookup key is the raw batch mean.
        let fingerprint = x.column_means();
        let (entry, distance) = self.shared.as_mut()?.nearest_foreign(&fingerprint)?;
        let probe = self.cec.max_experience;
        let (gx, gy) = self.experience.snapshot_recent(probe);
        if gy.is_empty() {
            return None;
        }
        let restored = entry.snapshot.restore();
        let restored_preds = restored.predict(&gx);
        let restored_score =
            restored_preds.iter().zip(&gy).filter(|(p, t)| p == t).count() as f64 / gy.len() as f64;
        let ens = self.granularity.predict(&gx, projected);
        let ensemble_score =
            ens.iter().zip(&gy).filter(|(p, t)| p == t).count() as f64 / gy.len() as f64;
        if restored_score < ensemble_score {
            return None;
        }
        self.shared_hits += 1;
        if self.telemetry.enabled() {
            self.telemetry.emit(TelemetryEvent::SharedKnowledgeHit {
                seq: self.telemetry.seq(),
                shard: self.shared.as_ref().map_or(0, |r| r.shard()) as u64,
                source_shard: entry.shard as u64,
                distance,
            });
        }
        let probs = restored.predict_proba(x);
        let preds = probs.row_iter().map(|r| vector::argmax(r).unwrap_or(0)).collect();
        Some((preds, Strategy::KnowledgeReuse))
    }

    fn infer_sudden(&mut self, x: &Matrix, projected: &[f64]) -> (Vec<usize>, Strategy) {
        if let Some(reused) = self.try_shared_reuse(x, projected) {
            return reused;
        }
        if !self.config.enable_cec {
            return (self.granularity.predict(x, projected), Strategy::Ensemble);
        }
        match self.cec.predict_scored(x, &self.experience) {
            Some((preds, purity)) => {
                // Evidence-based arbitration: the freshest labeled points
                // already carry the post-shift distribution (continuity
                // hypothesis). CEC's purity *is* its accuracy on the
                // guidance slice (guidance points inherit their cluster's
                // majority label), so scoring the ensemble on the same
                // slice makes the comparison apples-to-apples.
                let probe = self.cec.max_experience;
                let (gx, gy) = self.experience.snapshot_recent(probe);
                let ensemble_score = if gy.is_empty() {
                    0.0
                } else {
                    let ens = self.granularity.predict(&gx, projected);
                    ens.iter().zip(&gy).filter(|(p, t)| p == t).count() as f64 / gy.len() as f64
                };
                if purity > ensemble_score {
                    (preds, Strategy::Clustering)
                } else {
                    (self.granularity.predict(x, projected), Strategy::Ensemble)
                }
            }
            // No coherent experience yet: the ensemble is the only option.
            None => (self.granularity.predict(x, projected), Strategy::Ensemble),
        }
    }

    fn infer_reoccurring(
        &mut self,
        x: &Matrix,
        projected: &[f64],
        distance: f64,
    ) -> (Vec<usize>, Strategy) {
        if !self.config.enable_knowledge {
            return self.infer_sudden(x, projected);
        }
        // Knowledge must also beat the nearest *live* model's fingerprint:
        // if a current model is as close to this data as the snapshot is,
        // restoring the snapshot can only lose (it is older).
        let live_bound = self.granularity.nearest_live_distance(projected).unwrap_or(f64::INFINITY);
        if let Some(entry) = self.knowledge.match_knowledge(projected, distance.min(live_bound)) {
            // Read-only reuse: the matched snapshot answers this batch.
            // Overwriting the live models would destroy their current
            // adaptation whenever a match is a false positive, so reuse
            // stays inference-side and incremental training continues
            // uninterrupted (§IV-D only requires the knowledge to serve
            // the reoccurring distribution).
            let restored = entry.snapshot.restore();
            // Evidence check: a genuine reoccurrence means the freshest
            // labeled points (continuity hypothesis) come from the
            // distribution the snapshot was trained on, so the snapshot
            // must score well on them. A projection-collision false match
            // fails here and falls through to the Pattern-B path.
            let probe = self.cec.max_experience;
            let (gx, gy) = self.experience.snapshot_recent(probe);
            if !gy.is_empty() {
                let restored_preds = restored.predict(&gx);
                let restored_score = restored_preds.iter().zip(&gy).filter(|(p, t)| p == t).count()
                    as f64
                    / gy.len() as f64;
                let ens = self.granularity.predict(&gx, projected);
                let ensemble_score =
                    ens.iter().zip(&gy).filter(|(p, t)| p == t).count() as f64 / gy.len() as f64;
                if restored_score < ensemble_score {
                    return self.infer_sudden(x, projected);
                }
            }
            let probs = restored.predict_proba(x);
            let preds = probs.row_iter().map(|r| vector::argmax(r).unwrap_or(0)).collect();
            (preds, Strategy::KnowledgeReuse)
        } else {
            // No matching knowledge: Pattern C degenerates to Pattern B.
            self.infer_sudden(x, projected)
        }
    }

    /// Handles one **training** batch: always updates the
    /// multi-granularity models, maintains coherent experience, and
    /// preserves knowledge at window completions (§V-A).
    pub fn train(&mut self, x: &Matrix, labels: &[usize]) {
        assert_eq!(x.rows(), labels.len(), "label count mismatch");
        let _span = self.telemetry.time(Stage::Train);
        self.batches_trained += 1;
        let degradation = self.degradation.level();
        if matches!(degradation, DegradationLevel::InferenceOnly | DegradationLevel::Shed) {
            // Training frozen under overload: the ensemble keeps serving
            // from its current parameters; no window, experience, or
            // knowledge state moves, so recovery resumes cleanly.
            return;
        }
        // A training-only stream must still warm up PCA; observe() during
        // warm-up only accumulates rows (it reports nothing), and once the
        // selector is ready the inference stream owns all observations.
        if !self.selector.is_ready() {
            let _ = self.selector.observe(x);
        }
        let projected = self.project(x);
        if degradation == DegradationLevel::ShortOnly {
            // Overload ladder step 1: skip the multi-granularity retrain;
            // only the cheap short model tracks the stream. Experience
            // maintenance stays (CEC must keep working under pressure —
            // severe shifts do not wait for the load to clear), but
            // window completions cannot happen, so knowledge
            // preservation is naturally paused.
            self.granularity.train_short_only(x, labels, &projected);
            self.experience.tick();
            self.experience.push_batch(x, labels);
            return;
        }
        self.granularity.train(x, labels, &projected);

        // Maintain the coherent-experience buffer from the training stream.
        self.experience.tick();
        self.experience.push_batch(x, labels);

        // Knowledge preservation on window completion, gated by disorder.
        if !self.config.enable_knowledge {
            let _ = self.granularity.take_completed_disorder();
            return;
        }
        if let Some(disorder) = self.granularity.take_completed_disorder() {
            let (mu_d, _) = self.selector.tracker().history_stats();
            let dedup_radius = self.config.kdg_dedup_scale * mu_d;
            // High disorder ⇒ the stable long model; low disorder ⇒ the
            // stream just moved directionally, the long window blurred
            // that trajectory, so preserve the information-rich short
            // model (its distribution is the current one; preserving both
            // under one fingerprint would just thrash the dedup slot).
            let model = if disorder > self.config.beta {
                self.granularity.long_model()
            } else {
                self.granularity.short_model()
            };
            self.knowledge.preserve_dedup(
                projected,
                model,
                self.spec.clone(),
                disorder,
                dedup_radius,
            );
            // Mirror the preservation into the cross-shard registry so
            // other tenants' shards can warm-start on this concept. The
            // fingerprint is the raw batch mean (shared space); `seq` is
            // this shard's train counter, giving the registry its stable
            // `(seq, shard)` ordering key.
            if let Some(reader) = self.shared.as_ref().filter(|_| !self.shared_publish_muted) {
                let model = if disorder > self.config.beta {
                    self.granularity.long_model()
                } else {
                    self.granularity.short_model()
                };
                reader.publish(
                    self.batches_trained,
                    x.column_means(),
                    ModelSnapshot::capture(self.spec.clone(), model),
                    disorder,
                    dedup_radius,
                );
            }
        }
    }

    /// Loads a checkpoint's models and knowledge into this learner (see
    /// [`crate::persistence::Checkpoint`] for what is and is not carried
    /// across restarts).
    ///
    /// # Errors
    /// [`crate::FreewayError::Checkpoint`] when the checkpoint's shape
    /// does not fit this learner; nothing is applied on rejection.
    pub fn restore_from(
        &mut self,
        checkpoint: &crate::persistence::Checkpoint,
    ) -> Result<(), crate::error::FreewayError> {
        self.granularity.set_level_parameters(&checkpoint.level_parameters)?;
        for (distribution, snapshot, disorder) in &checkpoint.knowledge {
            self.knowledge.restore_entry(distribution.clone(), snapshot.clone(), *disorder);
        }
        Ok(())
    }

    /// Prequential step: infer on the batch, then (if labeled) train on
    /// it. Returns the inference report.
    ///
    /// Unlabeled batches may still train when
    /// [`FreewayConfig::enable_pseudo_labels`] is set: CEC clusters the
    /// batch against the coherent-experience buffer and, when its purity
    /// clears [`FreewayConfig::pseudo_label_min_purity`], the cluster
    /// labels update the short model only. This extends the paper's
    /// Pattern-B pseudo-labeling (§IV-C) to a continuous low-label mode:
    /// under delayed or partial label arrival the short model keeps
    /// tracking the stream instead of freezing until labels land.
    pub fn process(&mut self, batch: &Batch) -> InferenceReport {
        self.telemetry.batch_started(batch.seq);
        let report = self.infer(&batch.x);
        if let Some(labels) = batch.labels.as_deref() {
            self.train(&batch.x, labels);
        } else {
            self.maybe_pseudo_train(&batch.x);
        }
        report
    }

    /// Pseudo-label training on an unlabeled batch (continuous low-label
    /// mode). Guarded so that it is a no-op unless explicitly enabled:
    ///
    /// - CEC must produce a clustering whose purity clears the configured
    ///   floor — low-purity clusterings are exactly the ones whose
    ///   majority labels would poison the model.
    /// - Only the short model trains (`train_short_only`): a wrong
    ///   pseudo-label washes out of the short window quickly, whereas the
    ///   long model and knowledge store would fossilize it.
    /// - The experience buffer is **not** touched: pseudo-labels feeding
    ///   the very buffer CEC clusters against would self-reinforce, so
    ///   guidance stays genuinely labeled.
    fn maybe_pseudo_train(&mut self, x: &Matrix) {
        if !self.config.enable_pseudo_labels || !self.config.enable_cec {
            return;
        }
        if !self.selector.is_ready() {
            return;
        }
        let degradation = self.degradation.level();
        if matches!(degradation, DegradationLevel::InferenceOnly | DegradationLevel::Shed) {
            return;
        }
        let Some((preds, purity)) = self.cec.predict_scored(x, &self.experience) else {
            return;
        };
        if purity < self.config.pseudo_label_min_purity {
            return;
        }
        let _span = self.telemetry.time(Stage::Train);
        let projected = self.project(x);
        self.granularity.train_short_only(x, &preds, &projected);
        self.pseudo_trained += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freeway_streams::concept::{stream_rng, GmmConcept};
    use freeway_streams::DriftPhase;

    fn config() -> FreewayConfig {
        FreewayConfig {
            pca_warmup_rows: 64,
            mini_batch: 128,
            asw_max_batches: 3,
            learning_rate: 0.3,
            ..Default::default()
        }
    }

    fn run_stream(
        learner: &mut Learner,
        concept: &GmmConcept,
        rng: &mut rand::rngs::StdRng,
        batches: usize,
        size: usize,
    ) -> Vec<InferenceReport> {
        (0..batches)
            .map(|i| {
                let (x, y) = concept.sample_batch(size, rng);
                let b = Batch::labeled(x, y, i as u64, DriftPhase::Stable);
                learner.process(&b)
            })
            .collect()
    }

    #[test]
    fn pseudo_labels_train_only_when_enabled_and_pure() {
        let run = |enable: bool| {
            let mut rng = stream_rng(77);
            let concept = GmmConcept::random(6, 2, 2, 8.0, 0.4, &mut rng);
            let cfg = FreewayConfig {
                enable_pseudo_labels: enable,
                pseudo_label_min_purity: 0.5,
                ..config()
            };
            let mut learner = Learner::new(ModelSpec::lr(6, 2), cfg);
            // Labeled warm-up readies PCA and fills the experience buffer
            // CEC clusters against.
            for i in 0..6u64 {
                let (x, y) = concept.sample_batch(128, &mut rng);
                learner.process(&Batch::labeled(x, y, i, DriftPhase::Stable));
            }
            assert_eq!(learner.pseudo_trained(), 0, "labeled batches never pseudo-train");
            for i in 6..16u64 {
                let (x, _) = concept.sample_batch(128, &mut rng);
                learner.process(&Batch::unlabeled(x, i, DriftPhase::Stable));
            }
            learner.pseudo_trained()
        };
        assert_eq!(run(false), 0, "pseudo-labeling is opt-in");
        assert!(run(true) > 0, "well-separated unlabeled batches should pseudo-train");
    }

    #[test]
    fn paper_interface_sets_fields() {
        let l = Learner::paper_interface(ModelSpec::lr(4, 2), 2, 512, 15, 8, 2.5);
        assert_eq!(l.config().model_num, 2);
        assert_eq!(l.config().mini_batch, 512);
        assert_eq!(l.config().kdg_buffer, 15);
        assert_eq!(l.config().exp_buffer, 8);
        assert!((l.config().alpha - 2.5).abs() < 1e-12);
    }

    #[test]
    fn learns_a_stable_stream() {
        let mut rng = stream_rng(10);
        let concept = GmmConcept::random(6, 2, 2, 4.0, 0.6, &mut rng);
        let mut learner = Learner::new(ModelSpec::lr(6, 2), config());
        let _ = run_stream(&mut learner, &concept, &mut rng, 25, 128);
        // Accuracy on a fresh batch from the same concept.
        let (x, y) = concept.sample_batch(256, &mut rng);
        let report = learner.infer(&x);
        let correct = report.predictions.iter().zip(&y).filter(|(p, t)| p == t).count();
        assert!(
            correct as f64 / y.len() as f64 > 0.8,
            "stable stream accuracy {correct}/{}",
            y.len()
        );
    }

    #[test]
    fn sudden_shift_triggers_clustering() {
        // Seed chosen so the generated GMM geometry is one where the CEC
        // purity check beats the degraded ensemble under the vendored
        // `rand` stand-in (whose stream differs from crates.io `rand`);
        // the severity detection itself fires for every seed.
        let mut rng = stream_rng(5);
        let mut concept = GmmConcept::random(6, 2, 2, 4.0, 0.6, &mut rng);
        let mut learner = Learner::new(ModelSpec::lr(6, 2), config());
        let _ = run_stream(&mut learner, &concept, &mut rng, 20, 128);
        concept.translate(&[30.0; 6]);
        let (x, y) = concept.sample_batch(128, &mut rng);
        let b = Batch::labeled(x, y, 99, DriftPhase::Sudden);
        let report = learner.process(&b);
        assert!(
            matches!(report.strategy, Strategy::Clustering | Strategy::KnowledgeReuse),
            "severe shift must leave the ensemble, got {:?}",
            report.strategy
        );
        assert!(report.severity > 1.96);
    }

    #[test]
    fn reoccurring_shift_reuses_knowledge() {
        let mut rng = stream_rng(12);
        let concept = GmmConcept::random(6, 2, 2, 4.0, 0.6, &mut rng);
        let mut cfg = config();
        cfg.beta = 0.9; // force both-save path frequently
        let mut learner = Learner::new(ModelSpec::lr(6, 2), cfg);
        // Home phase: long enough to preserve knowledge.
        let _ = run_stream(&mut learner, &concept, &mut rng, 25, 128);
        assert!(!learner.knowledge().is_empty(), "window completions must preserve");
        // Away phase.
        let mut away = concept.clone();
        away.translate(&[40.0; 6]);
        let _ = run_stream(&mut learner, &away, &mut rng, 10, 128);
        // Return home: the jump back should match stored knowledge.
        let (x, y) = concept.sample_batch(128, &mut rng);
        let b = Batch::labeled(x, y, 999, DriftPhase::Reoccurring);
        let report = learner.process(&b);
        assert_eq!(report.pattern, Some(ShiftPattern::Reoccurring));
        assert_eq!(report.strategy, Strategy::KnowledgeReuse);
    }

    #[test]
    fn exactly_one_strategy_per_inference() {
        // The report carries a single strategy; across a mixed stream all
        // three appear (selector routes, never blends).
        let mut rng = stream_rng(13);
        let concept = GmmConcept::random(6, 2, 2, 4.0, 0.6, &mut rng);
        let mut learner = Learner::new(ModelSpec::lr(6, 2), config());
        let reports = run_stream(&mut learner, &concept, &mut rng, 30, 128);
        for r in &reports {
            assert_eq!(r.predictions.len(), 128);
        }
        let ensemble_count = reports.iter().filter(|r| r.strategy == Strategy::Ensemble).count();
        assert!(ensemble_count > reports.len() / 2, "stable stream is mostly ensemble");
    }

    #[test]
    fn unlabeled_batches_do_not_train() {
        let mut rng = stream_rng(14);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let mut learner = Learner::new(ModelSpec::lr(4, 2), config());
        let (x, y) = concept.sample_batch(256, &mut rng);
        let b = Batch::labeled(x, y, 0, DriftPhase::Stable);
        learner.process(&b);
        let params_before = learner.granularity().short_model().parameters();
        let (x2, _) = concept.sample_batch(128, &mut rng);
        let unlabeled = Batch::unlabeled(x2, 1, DriftPhase::Stable);
        learner.process(&unlabeled);
        assert_eq!(
            learner.granularity().short_model().parameters(),
            params_before,
            "inference-only batches must not move parameters"
        );
    }

    #[test]
    fn degradation_gates_training_but_not_inference() {
        use crate::degrade::{DegradationHandle, DegradationLevel};
        let mut rng = stream_rng(16);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let mut learner = Learner::new(ModelSpec::lr(4, 2), config());
        let handle = DegradationHandle::new();
        learner.attach_degradation(handle.clone());
        let _ = run_stream(&mut learner, &concept, &mut rng, 5, 128);

        // Inference-only: parameters must not move, predictions must flow.
        handle.set(DegradationLevel::InferenceOnly);
        let before = learner.granularity().short_model().parameters();
        let (x, y) = concept.sample_batch(128, &mut rng);
        let report = learner.process(&Batch::labeled(x, y, 100, DriftPhase::Stable));
        assert_eq!(report.predictions.len(), 128);
        assert_eq!(report.degradation(), DegradationLevel::InferenceOnly);
        assert_eq!(
            learner.granularity().short_model().parameters(),
            before,
            "frozen training must not move parameters"
        );

        // Short-only: the short model moves again.
        handle.set(DegradationLevel::ShortOnly);
        let (x, y) = concept.sample_batch(128, &mut rng);
        let report = learner.process(&Batch::labeled(x, y, 101, DriftPhase::Stable));
        assert_eq!(report.degradation(), DegradationLevel::ShortOnly);
        assert_ne!(
            learner.granularity().short_model().parameters(),
            before,
            "short-only must keep tracking the stream"
        );

        // Recovery: full service resumes.
        handle.set(DegradationLevel::Full);
        let (x, y) = concept.sample_batch(128, &mut rng);
        let report = learner.process(&Batch::labeled(x, y, 102, DriftPhase::Stable));
        assert_eq!(report.degradation(), DegradationLevel::Full);
    }

    #[test]
    fn knowledge_space_is_measurable() {
        let mut rng = stream_rng(15);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let mut learner = Learner::new(ModelSpec::lr(4, 2), config());
        let _ = run_stream(&mut learner, &concept, &mut rng, 30, 128);
        if !learner.knowledge().is_empty() {
            assert!(learner.knowledge().space_bytes() > 0);
        }
    }
}

#[cfg(test)]
mod stats_tests {
    use super::*;
    use freeway_streams::concept::{stream_rng, GmmConcept};
    use freeway_streams::DriftPhase;

    #[test]
    fn strategy_stats_count_every_inference() {
        let mut rng = stream_rng(77);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let mut learner = Learner::new(
            ModelSpec::lr(4, 2),
            FreewayConfig { mini_batch: 64, pca_warmup_rows: 64, ..Default::default() },
        );
        for i in 0..15 {
            let (x, y) = concept.sample_batch(64, &mut rng);
            learner.process(&Batch::labeled(x, y, i, DriftPhase::Stable));
        }
        let stats = learner.strategy_stats();
        assert_eq!(stats.total(), 15, "every process() infers exactly once");
        assert!(stats.ensemble >= 10, "stable stream is mostly ensemble: {stats:?}");
    }

    #[test]
    fn three_level_learner_works_end_to_end() {
        let mut rng = stream_rng(78);
        let concept = GmmConcept::random(4, 2, 2, 3.0, 0.5, &mut rng);
        let mut learner = Learner::new(
            ModelSpec::lr(4, 2),
            FreewayConfig {
                model_num: 3,
                mini_batch: 64,
                pca_warmup_rows: 64,
                asw_max_batches: 2,
                ..Default::default()
            },
        );
        for i in 0..20 {
            let (x, y) = concept.sample_batch(64, &mut rng);
            let report = learner.process(&Batch::labeled(x, y, i, DriftPhase::Stable));
            assert_eq!(report.predictions.len(), 64);
        }
        assert_eq!(learner.granularity().num_levels(), 3);
    }
}
