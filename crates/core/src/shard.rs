//! The sharded multi-tenant scale-out runtime.
//!
//! [`ShardedPipeline`] hash-routes keyed batches across N shards, each a
//! full [`AdmittedPipeline`] (supervised worker + admission control +
//! degradation ladder) driving its own [`crate::Learner`]. The shards
//! are tied together by two shared structures:
//!
//! * one [`Telemetry`] handle — counters and events from every shard
//!   land on a single stream, so fleet observability is the same code
//!   path as single-pipeline observability;
//! * one [`SharedKnowledge`] registry — concepts preserved on any shard
//!   are visible to Pattern-C lookup on every other shard (lock-free on
//!   the read path; see [`crate::knowledge`] for the concurrency
//!   contract).
//!
//! Routing is `mix64(key) % n` ([`shard_for`]): a hand-rolled SplitMix64
//! finalizer rather than `std`'s hasher, so the key→shard mapping is
//! stable across Rust releases and platforms — per-tenant placement is
//! part of the reproducibility surface.
//!
//! Thread budget: the kernel worker pool is process-wide and shared by
//! all shards, so shard workers and pool threads draw on one core
//! budget. [`crate::PipelineBuilder::build_sharded`] validates the split
//! (serial kernels per shard by default); see
//! [`crate::FreewayConfig::num_threads`] for the policy.

use crate::admission::{
    AdmissionOutcome, AdmissionStats, AdmittedPipeline, AdmittedRun, ShedReason,
};
use crate::error::FreewayError;
use crate::knowledge::SharedKnowledge;
use crate::pipeline::PipelineOutput;
use freeway_streams::keyed::{mix64, KeyedBatch};
use freeway_telemetry::{Counter, Telemetry, TelemetryEvent};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// The shard a key routes to: `mix64(key) % num_shards`.
///
/// # Panics
/// Panics when `num_shards` is zero.
pub fn shard_for(key: u64, num_shards: usize) -> usize {
    assert!(num_shards > 0, "num_shards must be positive");
    (mix64(key) % num_shards as u64) as usize
}

/// Salt separating the failover hash from the primary placement hash, so
/// the keys of a fenced shard spread over the survivors instead of
/// clumping. An arbitrary odd constant — changing it changes failover
/// placement, which is part of the reproducibility surface like
/// [`shard_for`] itself.
const FAILOVER_SALT: u64 = 0x9e37_79b9_7f4a_7c15;

/// Deterministic fallback routing under fencing: the shard `key` is
/// served by given the current fenced set (`fenced[i]` = shard `i` is
/// fenced), or `None` when every shard is fenced.
///
/// Invariants, release-stable like [`shard_for`]:
///
/// * a key whose primary shard ([`shard_for`]) is healthy always routes
///   to that primary — fencing *other* shards never moves it;
/// * a key whose primary is fenced routes to a surviving shard chosen by
///   a salted re-hash over the survivor list, so the same `(key,
///   fenced-set)` always yields the same adoptive shard, and a fenced
///   shard's keys spread across all survivors.
///
/// # Panics
/// Panics when `fenced` is empty.
pub fn failover_shard(key: u64, fenced: &[bool]) -> Option<usize> {
    assert!(!fenced.is_empty(), "fenced set must cover at least one shard");
    let primary = shard_for(key, fenced.len());
    if !fenced[primary] {
        return Some(primary);
    }
    let survivors: Vec<usize> = (0..fenced.len()).filter(|&shard| !fenced[shard]).collect();
    if survivors.is_empty() {
        return None;
    }
    let pick = (mix64(mix64(key) ^ FAILOVER_SALT) % survivors.len() as u64) as usize;
    Some(survivors[pick])
}

/// N admitted pipelines behind one hash router, sharing one telemetry
/// stream and one cross-shard knowledge registry. Construct via
/// [`crate::PipelineBuilder::shards`] + `build_sharded`.
pub struct ShardedPipeline {
    shards: Vec<AdmittedPipeline>,
    shared: SharedKnowledge,
    telemetry: Telemetry,
    /// Round-robin scan position for [`Self::try_recv`] fairness.
    recv_cursor: usize,
    /// Fence state per shard (`true` = restart budget exhausted, keys
    /// rerouted). Monotone: a fence is never lowered within a run.
    fenced: Vec<bool>,
    /// Outputs rescued from an aborted [`Self::barrier_deadline`]; served
    /// before fresh shard output so a timed-out drain loses nothing.
    stash: VecDeque<(usize, PipelineOutput)>,
    /// Exported fence counter (`freeway_shards_fenced_total`).
    fenced_counter: Counter,
}

impl ShardedPipeline {
    pub(crate) fn new(
        shards: Vec<AdmittedPipeline>,
        shared: SharedKnowledge,
        telemetry: Telemetry,
    ) -> Self {
        let fenced = vec![false; shards.len()];
        let fenced_counter = telemetry.counter("freeway_shards_fenced_total");
        Self {
            shards,
            shared,
            telemetry,
            recv_cursor: 0,
            fenced,
            stash: VecDeque::new(),
            fenced_counter,
        }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard `key` routes to when every shard is healthy (primary
    /// placement; fencing-blind). See [`Self::route_for_key`] for the
    /// fence-aware route.
    pub fn shard_for_key(&self, key: u64) -> usize {
        shard_for(key, self.shards.len())
    }

    /// The shard `key` is served by under the current fence set
    /// ([`failover_shard`]).
    ///
    /// # Errors
    /// [`FreewayError::WorkerUnavailable`] when every shard is fenced —
    /// terminal: retries cannot succeed within this runtime.
    pub fn route_for_key(&self, key: u64) -> Result<usize, FreewayError> {
        failover_shard(key, &self.fenced).ok_or(FreewayError::WorkerUnavailable)
    }

    /// Indices of fenced shards, ascending.
    pub fn fenced_shards(&self) -> Vec<usize> {
        (0..self.fenced.len()).filter(|&shard| self.fenced[shard]).collect()
    }

    /// Whether `shard` is fenced.
    pub fn is_fenced(&self, shard: usize) -> bool {
        self.fenced[shard]
    }

    /// Raises the fence on one shard: its backlog is shed as
    /// [`ShedReason::Fenced`], its keys reroute to survivors from the
    /// next feed on, and its [`SharedKnowledge`] sub-list stays readable
    /// so adopting shards warm-start Pattern-C reuse from the concepts it
    /// preserved.
    fn fence_shard(&mut self, shard: usize) {
        if self.fenced[shard] {
            return;
        }
        self.fenced[shard] = true;
        self.shards[shard].fence();
        self.fenced_counter.inc();
        self.telemetry
            .emit(TelemetryEvent::ShardFenced { seq: self.telemetry.seq(), shard: shard as u64 });
    }

    /// The cross-shard knowledge registry.
    pub fn shared(&self) -> &SharedKnowledge {
        &self.shared
    }

    /// The telemetry handle shared by every shard.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Direct access to one shard (tests, drills, per-shard stats).
    pub fn shard(&mut self, shard: usize) -> &mut AdmittedPipeline {
        &mut self.shards[shard]
    }

    /// Routes a training/inference batch to its key's serving shard
    /// (primary, or the deterministic failover shard when the primary is
    /// fenced). A shard that exhausts its restart budget *during* this
    /// feed is fenced in place: the triggering batch is reported as
    /// `Shed(Fenced)` (it was handed to a worker that died past the
    /// budget — nothing replays it) and subsequent feeds for its keys
    /// reroute to survivors.
    ///
    /// # Errors
    /// As [`AdmittedPipeline::feed`] on the routed shard, except restart
    /// exhaustion (absorbed into a fence);
    /// [`FreewayError::WorkerUnavailable`] when every shard is fenced.
    pub fn feed(&mut self, batch: KeyedBatch) -> Result<(usize, AdmissionOutcome), FreewayError> {
        let shard = self.route_for_key(batch.key)?;
        let seq = batch.batch.seq;
        match self.shards[shard].feed(batch.batch) {
            Ok(outcome) => Ok((shard, outcome)),
            Err(FreewayError::RestartsExhausted { .. }) => {
                self.shards[shard].note_fenced_drop(seq);
                self.fence_shard(shard);
                Ok((shard, AdmissionOutcome::Shed(ShedReason::Fenced)))
            }
            Err(e) => Err(e),
        }
    }

    /// Routes a prequential batch to its key's serving shard; fencing
    /// semantics as [`Self::feed`].
    ///
    /// # Errors
    /// As [`Self::feed`].
    pub fn feed_prequential(
        &mut self,
        batch: KeyedBatch,
    ) -> Result<(usize, AdmissionOutcome), FreewayError> {
        let shard = self.route_for_key(batch.key)?;
        let seq = batch.batch.seq;
        match self.shards[shard].feed_prequential(batch.batch) {
            Ok(outcome) => Ok((shard, outcome)),
            Err(FreewayError::RestartsExhausted { .. }) => {
                self.shards[shard].note_fenced_drop(seq);
                self.fence_shard(shard);
                Ok((shard, AdmissionOutcome::Shed(ShedReason::Fenced)))
            }
            Err(e) => Err(e),
        }
    }

    /// Receives the next ready output from any shard without blocking,
    /// scanning round-robin from the last served shard so no shard can
    /// starve the drain. Outputs a fenced shard's worker produced before
    /// dying are still delivered here; a shard discovered exhausted
    /// during the scan is fenced rather than erroring the drain.
    ///
    /// # Errors
    /// As [`AdmittedPipeline::try_recv`] on the failing shard (restart
    /// exhaustion excepted).
    pub fn try_recv(&mut self) -> Result<Option<(usize, PipelineOutput)>, FreewayError> {
        if let Some(entry) = self.stash.pop_front() {
            return Ok(Some(entry));
        }
        let n = self.shards.len();
        for step in 0..n {
            let shard = (self.recv_cursor + step) % n;
            match self.shards[shard].try_recv() {
                Ok(Some(out)) => {
                    self.recv_cursor = (shard + 1) % n;
                    return Ok(Some((shard, out)));
                }
                Ok(None) => {}
                Err(FreewayError::RestartsExhausted { .. }) => self.fence_shard(shard),
                Err(e) => return Err(e),
            }
        }
        Ok(None)
    }

    /// Polls every unfenced shard's stall watchdog
    /// ([`AdmittedPipeline::check_liveness`]); a shard whose forced
    /// recovery exhausts its restart budget is fenced. Returns the number
    /// of stalled workers recovered this call. A no-op (always `Ok(0)`)
    /// unless a stall deadline is configured.
    ///
    /// # Errors
    /// Non-exhaustion recovery failures, as
    /// [`AdmittedPipeline::check_liveness`].
    pub fn check_liveness(&mut self) -> Result<usize, FreewayError> {
        let mut recovered = 0;
        for shard in 0..self.shards.len() {
            if self.fenced[shard] {
                continue;
            }
            match self.shards[shard].check_liveness() {
                Ok(true) => recovered += 1,
                Ok(false) => {}
                Err(FreewayError::RestartsExhausted { .. }) => self.fence_shard(shard),
                Err(e) => return Err(e),
            }
        }
        Ok(recovered)
    }

    /// One non-blocking drain pass over shard `i`: pulls every ready
    /// output, polls the stall watchdog, fences on exhaustion. Returns
    /// whether the shard is quiescent (a fenced shard is quiescent once
    /// its surviving outputs are drained).
    fn drain_shard_step(
        &mut self,
        i: usize,
        outputs: &mut Vec<(usize, PipelineOutput)>,
    ) -> Result<bool, FreewayError> {
        loop {
            match self.shards[i].try_recv() {
                Ok(Some(out)) => outputs.push((i, out)),
                Ok(None) => break,
                Err(FreewayError::RestartsExhausted { .. }) => {
                    self.fence_shard(i);
                    break;
                }
                Err(e) => return Err(e),
            }
        }
        if !self.fenced[i] {
            match self.shards[i].check_liveness() {
                Ok(_) => {}
                Err(FreewayError::RestartsExhausted { .. }) => self.fence_shard(i),
                Err(e) => return Err(e),
            }
        }
        Ok(self.fenced[i]
            || (self.shards[i].backlog_len() == 0 && self.shards[i].supervisor().in_flight() == 0))
    }

    /// Drains every shard to quiescence — backlogs empty, zero batches in
    /// flight — and returns all outputs sorted by `(seq, shard)`.
    ///
    /// This is the deterministic phase boundary: after a barrier the
    /// shared registry holds every preservation the fed batches could
    /// trigger, regardless of worker scheduling, which is what lets
    /// drills and paper tables stay byte-reproducible on a live
    /// multi-threaded runtime.
    ///
    /// With a stall deadline configured the drain doubles as the watchdog
    /// pump: a shard wedged mid-drain is forcibly recovered (or fenced on
    /// budget exhaustion) instead of spinning this loop forever. Without
    /// one, a truly wedged shard hangs this call — use
    /// [`Self::barrier_deadline`] when shutdown must be bounded.
    ///
    /// # Errors
    /// As [`AdmittedPipeline::try_recv`] (restart exhaustion is absorbed
    /// into a fence).
    pub fn barrier(&mut self) -> Result<Vec<(usize, PipelineOutput)>, FreewayError> {
        let mut outputs: Vec<(usize, PipelineOutput)> = self.stash.drain(..).collect();
        for i in 0..self.shards.len() {
            while !self.drain_shard_step(i, &mut outputs)? {
                std::thread::yield_now();
            }
        }
        outputs.sort_by_key(|(shard, out)| (out.seq, *shard));
        Ok(outputs)
    }

    /// [`Self::barrier`] with a wall-clock budget: shards that have not
    /// reached quiescence when it elapses are reported in a typed
    /// [`FreewayError::DrainTimeout`] listing their indices, so shutdown
    /// can never hang on a stalled shard. Outputs already drained are
    /// stashed and re-served by the next `try_recv`/`barrier` call —
    /// a timed-out drain loses nothing.
    ///
    /// # Errors
    /// [`FreewayError::DrainTimeout`] naming the unresponsive shards;
    /// otherwise as [`Self::barrier`].
    pub fn barrier_deadline(
        &mut self,
        budget: Duration,
    ) -> Result<Vec<(usize, PipelineOutput)>, FreewayError> {
        let deadline = Instant::now() + budget;
        let mut outputs: Vec<(usize, PipelineOutput)> = self.stash.drain(..).collect();
        let n = self.shards.len();
        let mut quiescent = vec![false; n];
        loop {
            let mut all = true;
            for (i, done) in quiescent.iter_mut().enumerate() {
                if *done {
                    continue;
                }
                if self.drain_shard_step(i, &mut outputs)? {
                    *done = true;
                } else {
                    all = false;
                }
            }
            if all {
                break;
            }
            if Instant::now() >= deadline {
                self.stash.extend(outputs);
                let shards = (0..n).filter(|&i| !quiescent[i]).collect();
                return Err(FreewayError::DrainTimeout { shards });
            }
            std::thread::yield_now();
        }
        outputs.sort_by_key(|(shard, out)| (out.seq, *shard));
        Ok(outputs)
    }

    /// Aggregated admission counters across all shards (sums; the
    /// backlog peak is the max over shards — peaks do not add).
    pub fn stats(&self) -> AdmissionStats {
        aggregate_stats(self.shards.iter().map(AdmittedPipeline::stats))
    }

    /// Per-shard admission counters, indexed by shard.
    pub fn per_shard_stats(&self) -> Vec<AdmissionStats> {
        self.shards.iter().map(AdmittedPipeline::stats).collect()
    }

    /// Chaos hook: makes one shard's worker panic on its next command,
    /// exercising that shard's crash-restart path while the other shards
    /// and the shared registry keep serving.
    ///
    /// # Errors
    /// As [`crate::SupervisedPipeline::inject_worker_panic`]; restart
    /// exhaustion discovered while delivering the injection fences the
    /// shard instead of erroring.
    pub fn inject_worker_panic(&mut self, shard: usize) -> Result<(), FreewayError> {
        match self.shards[shard].supervisor().inject_worker_panic() {
            Ok(()) => Ok(()),
            Err(FreewayError::RestartsExhausted { .. }) => {
                self.fence_shard(shard);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Chaos hook: schedules a stall (sleep or livelock) of `duration` on
    /// one shard's worker, exercising the watchdog detect → force-restart
    /// path while the other shards keep serving.
    ///
    /// # Errors
    /// As [`crate::SupervisedPipeline::inject_worker_stall`]; restart
    /// exhaustion discovered while delivering the injection fences the
    /// shard instead of erroring.
    pub fn inject_worker_stall(
        &mut self,
        shard: usize,
        duration: Duration,
        livelock: bool,
    ) -> Result<(), FreewayError> {
        match self.shards[shard].supervisor().inject_worker_stall(duration, livelock) {
            Ok(()) => Ok(()),
            Err(FreewayError::RestartsExhausted { .. }) => {
                self.fence_shard(shard);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Finishes every shard and hands back the per-shard runs plus the
    /// shared registry.
    ///
    /// # Errors
    /// As [`AdmittedPipeline::finish`]; the first failing shard aborts
    /// the collection.
    pub fn finish(self) -> Result<ShardedRun, FreewayError> {
        let mut runs = Vec::with_capacity(self.shards.len());
        for shard in self.shards {
            runs.push(shard.finish()?);
        }
        Ok(ShardedRun { shards: runs, shared: self.shared })
    }
}

/// Everything a finished sharded run hands back.
pub struct ShardedRun {
    /// Per-shard admitted runs, indexed by shard.
    pub shards: Vec<AdmittedRun>,
    /// The cross-shard knowledge registry (final state).
    pub shared: SharedKnowledge,
}

impl ShardedRun {
    /// Aggregated admission counters across all shards.
    pub fn admission(&self) -> AdmissionStats {
        aggregate_stats(self.shards.iter().map(|run| run.admission))
    }

    /// Total cross-shard knowledge hits across all shard learners.
    pub fn shared_hits(&self) -> u64 {
        self.shards.iter().map(|run| run.learner().shared_hits()).sum()
    }
}

fn aggregate_stats(stats: impl Iterator<Item = AdmissionStats>) -> AdmissionStats {
    stats.fold(AdmissionStats::default(), |mut acc, s| {
        acc.offered += s.offered;
        acc.admitted += s.admitted;
        acc.shed += s.shed;
        acc.quarantined += s.quarantined;
        acc.backlog_peak = acc.backlog_peak.max(s.backlog_peak);
        acc.degradation_transitions += s.degradation_transitions;
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_for_is_stable_and_covers_all_shards() {
        // Pinned routing: key→shard placement is part of the
        // reproducibility surface.
        assert_eq!(shard_for(0, 4), (0xe220a8397b1dcdaf_u64 % 4) as usize);
        let mut seen = [false; 4];
        for key in 0..64u64 {
            seen[shard_for(key, 4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "64 keys cover 4 shards: {seen:?}");
    }

    #[test]
    fn aggregate_sums_counters_and_maxes_peak() {
        let a = AdmissionStats {
            offered: 3,
            admitted: 2,
            shed: 1,
            quarantined: 0,
            backlog_peak: 5,
            degradation_transitions: 1,
        };
        let b = AdmissionStats {
            offered: 4,
            admitted: 4,
            shed: 0,
            quarantined: 1,
            backlog_peak: 2,
            degradation_transitions: 0,
        };
        let total = aggregate_stats([a, b].into_iter());
        assert_eq!(total.offered, 7);
        assert_eq!(total.admitted, 6);
        assert_eq!(total.shed, 1);
        assert_eq!(total.quarantined, 1);
        assert_eq!(total.backlog_peak, 5);
        assert_eq!(total.degradation_transitions, 1);
    }
}
