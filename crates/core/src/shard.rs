//! The sharded multi-tenant scale-out runtime.
//!
//! [`ShardedPipeline`] hash-routes keyed batches across N shards, each a
//! full [`AdmittedPipeline`] (supervised worker + admission control +
//! degradation ladder) driving its own [`crate::Learner`]. The shards
//! are tied together by two shared structures:
//!
//! * one [`Telemetry`] handle — counters and events from every shard
//!   land on a single stream, so fleet observability is the same code
//!   path as single-pipeline observability;
//! * one [`SharedKnowledge`] registry — concepts preserved on any shard
//!   are visible to Pattern-C lookup on every other shard (lock-free on
//!   the read path; see [`crate::knowledge`] for the concurrency
//!   contract).
//!
//! Routing is `mix64(key) % n` ([`shard_for`]): a hand-rolled SplitMix64
//! finalizer rather than `std`'s hasher, so the key→shard mapping is
//! stable across Rust releases and platforms — per-tenant placement is
//! part of the reproducibility surface.
//!
//! Thread budget: the kernel worker pool is process-wide and shared by
//! all shards, so shard workers and pool threads draw on one core
//! budget. [`crate::PipelineBuilder::build_sharded`] validates the split
//! (serial kernels per shard by default); see
//! [`crate::FreewayConfig::num_threads`] for the policy.

use crate::admission::{AdmissionOutcome, AdmissionStats, AdmittedPipeline, AdmittedRun};
use crate::error::FreewayError;
use crate::knowledge::SharedKnowledge;
use crate::pipeline::PipelineOutput;
use freeway_streams::keyed::{mix64, KeyedBatch};
use freeway_telemetry::Telemetry;

/// The shard a key routes to: `mix64(key) % num_shards`.
///
/// # Panics
/// Panics when `num_shards` is zero.
pub fn shard_for(key: u64, num_shards: usize) -> usize {
    assert!(num_shards > 0, "num_shards must be positive");
    (mix64(key) % num_shards as u64) as usize
}

/// N admitted pipelines behind one hash router, sharing one telemetry
/// stream and one cross-shard knowledge registry. Construct via
/// [`crate::PipelineBuilder::shards`] + `build_sharded`.
pub struct ShardedPipeline {
    shards: Vec<AdmittedPipeline>,
    shared: SharedKnowledge,
    telemetry: Telemetry,
    /// Round-robin scan position for [`Self::try_recv`] fairness.
    recv_cursor: usize,
}

impl ShardedPipeline {
    pub(crate) fn new(
        shards: Vec<AdmittedPipeline>,
        shared: SharedKnowledge,
        telemetry: Telemetry,
    ) -> Self {
        Self { shards, shared, telemetry, recv_cursor: 0 }
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The shard `key` routes to.
    pub fn shard_for_key(&self, key: u64) -> usize {
        shard_for(key, self.shards.len())
    }

    /// The cross-shard knowledge registry.
    pub fn shared(&self) -> &SharedKnowledge {
        &self.shared
    }

    /// The telemetry handle shared by every shard.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Direct access to one shard (tests, drills, per-shard stats).
    pub fn shard(&mut self, shard: usize) -> &mut AdmittedPipeline {
        &mut self.shards[shard]
    }

    /// Routes a training/inference batch to its key's shard.
    ///
    /// # Errors
    /// As [`AdmittedPipeline::feed`] on the routed shard.
    pub fn feed(&mut self, batch: KeyedBatch) -> Result<(usize, AdmissionOutcome), FreewayError> {
        let shard = self.shard_for_key(batch.key);
        let outcome = self.shards[shard].feed(batch.batch)?;
        Ok((shard, outcome))
    }

    /// Routes a prequential batch to its key's shard.
    ///
    /// # Errors
    /// As [`AdmittedPipeline::feed_prequential`] on the routed shard.
    pub fn feed_prequential(
        &mut self,
        batch: KeyedBatch,
    ) -> Result<(usize, AdmissionOutcome), FreewayError> {
        let shard = self.shard_for_key(batch.key);
        let outcome = self.shards[shard].feed_prequential(batch.batch)?;
        Ok((shard, outcome))
    }

    /// Receives the next ready output from any shard without blocking,
    /// scanning round-robin from the last served shard so no shard can
    /// starve the drain.
    ///
    /// # Errors
    /// As [`AdmittedPipeline::try_recv`] on the failing shard.
    pub fn try_recv(&mut self) -> Result<Option<(usize, PipelineOutput)>, FreewayError> {
        let n = self.shards.len();
        for step in 0..n {
            let shard = (self.recv_cursor + step) % n;
            if let Some(out) = self.shards[shard].try_recv()? {
                self.recv_cursor = (shard + 1) % n;
                return Ok(Some((shard, out)));
            }
        }
        Ok(None)
    }

    /// Drains every shard to quiescence — backlogs empty, zero batches in
    /// flight — and returns all outputs sorted by `(seq, shard)`.
    ///
    /// This is the deterministic phase boundary: after a barrier the
    /// shared registry holds every preservation the fed batches could
    /// trigger, regardless of worker scheduling, which is what lets
    /// drills and paper tables stay byte-reproducible on a live
    /// multi-threaded runtime.
    ///
    /// # Errors
    /// As [`AdmittedPipeline::try_recv`] (including restart exhaustion on
    /// a crashed shard).
    pub fn barrier(&mut self) -> Result<Vec<(usize, PipelineOutput)>, FreewayError> {
        let mut outputs = Vec::new();
        for (i, shard) in self.shards.iter_mut().enumerate() {
            loop {
                while let Some(out) = shard.try_recv()? {
                    outputs.push((i, out));
                }
                if shard.backlog_len() == 0 && shard.supervisor().in_flight() == 0 {
                    break;
                }
                std::thread::yield_now();
            }
        }
        outputs.sort_by_key(|(shard, out)| (out.seq, *shard));
        Ok(outputs)
    }

    /// Aggregated admission counters across all shards (sums; the
    /// backlog peak is the max over shards — peaks do not add).
    pub fn stats(&self) -> AdmissionStats {
        aggregate_stats(self.shards.iter().map(AdmittedPipeline::stats))
    }

    /// Per-shard admission counters, indexed by shard.
    pub fn per_shard_stats(&self) -> Vec<AdmissionStats> {
        self.shards.iter().map(AdmittedPipeline::stats).collect()
    }

    /// Chaos hook: makes one shard's worker panic on its next command,
    /// exercising that shard's crash-restart path while the other shards
    /// and the shared registry keep serving.
    ///
    /// # Errors
    /// As [`crate::SupervisedPipeline::inject_worker_panic`].
    pub fn inject_worker_panic(&mut self, shard: usize) -> Result<(), FreewayError> {
        self.shards[shard].supervisor().inject_worker_panic()
    }

    /// Finishes every shard and hands back the per-shard runs plus the
    /// shared registry.
    ///
    /// # Errors
    /// As [`AdmittedPipeline::finish`]; the first failing shard aborts
    /// the collection.
    pub fn finish(self) -> Result<ShardedRun, FreewayError> {
        let mut runs = Vec::with_capacity(self.shards.len());
        for shard in self.shards {
            runs.push(shard.finish()?);
        }
        Ok(ShardedRun { shards: runs, shared: self.shared })
    }
}

/// Everything a finished sharded run hands back.
pub struct ShardedRun {
    /// Per-shard admitted runs, indexed by shard.
    pub shards: Vec<AdmittedRun>,
    /// The cross-shard knowledge registry (final state).
    pub shared: SharedKnowledge,
}

impl ShardedRun {
    /// Aggregated admission counters across all shards.
    pub fn admission(&self) -> AdmissionStats {
        aggregate_stats(self.shards.iter().map(|run| run.admission))
    }

    /// Total cross-shard knowledge hits across all shard learners.
    pub fn shared_hits(&self) -> u64 {
        self.shards.iter().map(|run| run.learner().shared_hits()).sum()
    }
}

fn aggregate_stats(stats: impl Iterator<Item = AdmissionStats>) -> AdmissionStats {
    stats.fold(AdmissionStats::default(), |mut acc, s| {
        acc.offered += s.offered;
        acc.admitted += s.admitted;
        acc.shed += s.shed;
        acc.quarantined += s.quarantined;
        acc.backlog_peak = acc.backlog_peak.max(s.backlog_peak);
        acc.degradation_transitions += s.degradation_transitions;
        acc
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_for_is_stable_and_covers_all_shards() {
        // Pinned routing: key→shard placement is part of the
        // reproducibility surface.
        assert_eq!(shard_for(0, 4), (0xe220a8397b1dcdaf_u64 % 4) as usize);
        let mut seen = [false; 4];
        for key in 0..64u64 {
            seen[shard_for(key, 4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "64 keys cover 4 shards: {seen:?}");
    }

    #[test]
    fn aggregate_sums_counters_and_maxes_peak() {
        let a = AdmissionStats {
            offered: 3,
            admitted: 2,
            shed: 1,
            quarantined: 0,
            backlog_peak: 5,
            degradation_transitions: 1,
        };
        let b = AdmissionStats {
            offered: 4,
            admitted: 4,
            shed: 0,
            quarantined: 1,
            backlog_peak: 2,
            degradation_transitions: 0,
        };
        let total = aggregate_stats([a, b].into_iter());
        assert_eq!(total.offered, 7);
        assert_eq!(total.admitted, 6);
        assert_eq!(total.shed, 1);
        assert_eq!(total.quarantined, 1);
        assert_eq!(total.backlog_peak, 5);
        assert_eq!(total.degradation_transitions, 1);
    }
}
