//! Historical knowledge preservation and reuse (§IV-D).
//!
//! Knowledge is a `(d_i, k_i)` pair: a distribution fingerprint (the
//! projected mean at save time) and a model snapshot. Preservation is
//! gated by the ASW disorder: high disorder ⇒ save the stable long model;
//! low disorder ⇒ the stream just finished a directional move, so the
//! short model holds information the window blurred — save it too.
//!
//! When the in-memory buffer reaches its `KdgBuffer` capacity, the older
//! half is serialised to the archive (the paper writes it to local
//! storage; we keep the encoded bytes, which is what the Table IV space
//! study measures either way).

use bytes::Bytes;
use freeway_linalg::vector;
use freeway_ml::{Model, ModelSnapshot, ModelSpec};
use freeway_telemetry::{Telemetry, TelemetryEvent};

/// One preserved `(d_i, k_i)` pair.
#[derive(Clone, Debug)]
pub struct KnowledgeEntry {
    /// Distribution fingerprint: projected mean at preservation time.
    pub distribution: Vec<f64>,
    /// The reusable model parameters.
    pub snapshot: ModelSnapshot,
    /// ASW disorder at preservation time (provenance, used by ablations).
    pub disorder: f64,
}

/// The `KdgBuffer`: bounded in-memory knowledge plus a byte archive.
pub struct KnowledgeStore {
    entries: Vec<KnowledgeEntry>,
    capacity: usize,
    archive: Vec<Bytes>,
    telemetry: Telemetry,
}

impl KnowledgeStore {
    /// Creates a store keeping at most `capacity` entries in memory.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            archive: Vec::new(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches an observability handle: every preservation emits a
    /// [`TelemetryEvent::KnowledgePreserved`].
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Number of in-memory entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no in-memory entries exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of archived (serialised) entries.
    pub fn archived(&self) -> usize {
        self.archive.len()
    }

    /// Preserves a knowledge pair, spilling the older half to the archive
    /// when full (§V-A3).
    pub fn preserve(
        &mut self,
        distribution: Vec<f64>,
        model: &dyn Model,
        spec: ModelSpec,
        disorder: f64,
    ) {
        self.preserve_dedup(distribution, model, spec, disorder, 0.0);
    }

    /// Preserves a knowledge pair, *replacing* the nearest existing entry
    /// when it lies within `dedup_radius` instead of appending.
    ///
    /// Streams spend most of their time inside one distribution, so naive
    /// appending fills the buffer with near-duplicates of the current
    /// concept and spills the distinct old concepts that reoccurring
    /// shifts need — the opposite of the paper's "balance knowledge
    /// coverage and knowledge quality". Deduplication keeps one fresh
    /// entry per distribution region.
    pub fn preserve_dedup(
        &mut self,
        distribution: Vec<f64>,
        model: &dyn Model,
        spec: ModelSpec,
        disorder: f64,
        dedup_radius: f64,
    ) {
        let snapshot = ModelSnapshot::capture(spec, model);
        if dedup_radius > 0.0 {
            let nearest = self
                .entries
                .iter()
                .enumerate()
                .map(|(i, e)| (i, vector::euclidean_distance(&e.distribution, &distribution)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            if let Some((idx, dist)) = nearest {
                if dist <= dedup_radius {
                    self.entries[idx] = KnowledgeEntry { distribution, snapshot, disorder };
                    self.emit_preserved(disorder);
                    return;
                }
            }
        }
        if self.entries.len() >= self.capacity {
            let spill = self.capacity / 2;
            for entry in self.entries.drain(..spill.max(1)) {
                self.archive.push(entry.snapshot.to_bytes());
            }
        }
        self.entries.push(KnowledgeEntry { distribution, snapshot, disorder });
        self.emit_preserved(disorder);
    }

    fn emit_preserved(&self, disorder: f64) {
        self.telemetry.emit(TelemetryEvent::KnowledgePreserved {
            seq: self.telemetry.seq(),
            entries: self.entries.len(),
            disorder,
        });
    }

    /// Finds the in-memory entry whose distribution is nearest to
    /// `projected`, returning it with the distance.
    pub fn nearest(&self, projected: &[f64]) -> Option<(&KnowledgeEntry, f64)> {
        self.entries
            .iter()
            .map(|e| (e, vector::euclidean_distance(&e.distribution, projected)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// The knowledge-match rule of §IV-D: reuse the nearest entry only if
    /// its distance beats the current shift distance `d_t`.
    pub fn match_knowledge(
        &self,
        projected: &[f64],
        current_shift: f64,
    ) -> Option<&KnowledgeEntry> {
        self.nearest(projected).and_then(
            |(entry, dist)| {
                if dist < current_shift {
                    Some(entry)
                } else {
                    None
                }
            },
        )
    }

    /// Total bytes of all knowledge (in-memory entries encoded + archive)
    /// — the quantity Table IV reports.
    pub fn space_bytes(&self) -> usize {
        let live: usize = self.entries.iter().map(|e| e.snapshot.size_bytes()).sum();
        let archived: usize = self.archive.iter().map(Bytes::len).sum();
        live + archived
    }

    /// Read-only view of the in-memory entries (oldest first).
    pub fn entries(&self) -> &[KnowledgeEntry] {
        &self.entries
    }

    /// Re-inserts a checkpointed entry verbatim (capacity still applies;
    /// overflow spills to the archive as usual).
    pub fn restore_entry(
        &mut self,
        distribution: Vec<f64>,
        snapshot: ModelSnapshot,
        disorder: f64,
    ) {
        if self.entries.len() >= self.capacity {
            let spill = self.capacity / 2;
            for entry in self.entries.drain(..spill.max(1)) {
                self.archive.push(entry.snapshot.to_bytes());
            }
        }
        self.entries.push(KnowledgeEntry { distribution, snapshot, disorder });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(n: usize, capacity: usize) -> KnowledgeStore {
        let spec = ModelSpec::lr(3, 2);
        let mut s = KnowledgeStore::new(capacity);
        for i in 0..n {
            let model = spec.build(i as u64);
            s.preserve(vec![i as f64, 0.0], model.as_ref(), spec.clone(), 0.5);
        }
        s
    }

    #[test]
    fn preserve_and_nearest() {
        let s = store_with(5, 10);
        let (entry, dist) = s.nearest(&[2.2, 0.0]).expect("non-empty");
        assert_eq!(entry.distribution, vec![2.0, 0.0]);
        assert!((dist - 0.2).abs() < 1e-12);
    }

    #[test]
    fn match_requires_beating_current_shift() {
        let s = store_with(3, 10);
        // Nearest entry is at distance 0.5; only reuse when d_t > 0.5.
        assert!(s.match_knowledge(&[1.5, 0.0], 0.4).is_none());
        assert!(s.match_knowledge(&[1.5, 0.0], 0.6).is_some());
    }

    #[test]
    fn overflow_spills_older_half_to_archive() {
        let s = store_with(6, 4);
        // Inserting the 5th entry spilled 2; the 6th fits.
        assert_eq!(s.archived(), 2);
        assert!(s.len() <= 4);
        // Oldest surviving distribution is not 0 or 1 (they were spilled).
        assert!(s.entries()[0].distribution[0] >= 2.0);
    }

    #[test]
    fn space_grows_with_entries() {
        let s1 = store_with(1, 100);
        let s5 = store_with(5, 100);
        assert!(s5.space_bytes() > 4 * s1.space_bytes());
    }

    #[test]
    fn archive_counts_toward_space() {
        let spilled = store_with(6, 4);
        let unspilled = store_with(6, 100);
        // Spilling changes representation, not the order of magnitude.
        let ratio = spilled.space_bytes() as f64 / unspilled.space_bytes() as f64;
        assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn restored_snapshot_predicts_like_original() {
        let spec = ModelSpec::lr(3, 2);
        let mut s = KnowledgeStore::new(4);
        let mut model = spec.build(7);
        let x = freeway_linalg::Matrix::from_rows(&[vec![1.0, -1.0, 0.5]]);
        let g = model.gradient(&x, &[1], None);
        model.apply_update(&g.iter().map(|v| -0.2 * v).collect::<Vec<_>>());
        s.preserve(vec![0.0, 0.0], model.as_ref(), spec, 0.1);
        let restored = s.entries()[0].snapshot.restore();
        assert_eq!(restored.predict(&x), model.predict(&x));
    }

    #[test]
    fn empty_store_matches_nothing() {
        let s = KnowledgeStore::new(3);
        assert!(s.nearest(&[0.0]).is_none());
        assert!(s.match_knowledge(&[0.0], 100.0).is_none());
        assert!(s.is_empty());
    }
}
