//! Historical knowledge preservation and reuse (§IV-D).
//!
//! Knowledge is a `(d_i, k_i)` pair: a distribution fingerprint (the
//! projected mean at save time) and a model snapshot. Preservation is
//! gated by the ASW disorder: high disorder ⇒ save the stable long model;
//! low disorder ⇒ the stream just finished a directional move, so the
//! short model holds information the window blurred — save it too.
//!
//! When the in-memory buffer reaches its `KdgBuffer` capacity, the older
//! half is serialised to the archive (the paper writes it to local
//! storage; we keep the encoded bytes, which is what the Table IV space
//! study measures either way).

use bytes::Bytes;
use freeway_linalg::vector;
use freeway_ml::{Model, ModelSnapshot, ModelSpec};
use freeway_telemetry::{Telemetry, TelemetryEvent};
use parking_lot::{Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// One preserved `(d_i, k_i)` pair.
#[derive(Clone, Debug)]
pub struct KnowledgeEntry {
    /// Distribution fingerprint: projected mean at preservation time.
    pub distribution: Vec<f64>,
    /// The reusable model parameters.
    pub snapshot: ModelSnapshot,
    /// ASW disorder at preservation time (provenance, used by ablations).
    pub disorder: f64,
}

/// The `KdgBuffer`: bounded in-memory knowledge plus a byte archive.
pub struct KnowledgeStore {
    entries: Vec<KnowledgeEntry>,
    capacity: usize,
    archive: Vec<Bytes>,
    telemetry: Telemetry,
}

impl KnowledgeStore {
    /// Creates a store keeping at most `capacity` entries in memory.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            entries: Vec::with_capacity(capacity),
            capacity,
            archive: Vec::new(),
            telemetry: Telemetry::disabled(),
        }
    }

    /// Attaches an observability handle: every preservation emits a
    /// [`TelemetryEvent::KnowledgePreserved`].
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// Number of in-memory entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no in-memory entries exist.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of archived (serialised) entries.
    pub fn archived(&self) -> usize {
        self.archive.len()
    }

    /// Preserves a knowledge pair, spilling the older half to the archive
    /// when full (§V-A3).
    pub fn preserve(
        &mut self,
        distribution: Vec<f64>,
        model: &dyn Model,
        spec: ModelSpec,
        disorder: f64,
    ) {
        self.preserve_dedup(distribution, model, spec, disorder, 0.0);
    }

    /// Preserves a knowledge pair, *replacing* the nearest existing entry
    /// when it lies within `dedup_radius` instead of appending.
    ///
    /// Streams spend most of their time inside one distribution, so naive
    /// appending fills the buffer with near-duplicates of the current
    /// concept and spills the distinct old concepts that reoccurring
    /// shifts need — the opposite of the paper's "balance knowledge
    /// coverage and knowledge quality". Deduplication keeps one fresh
    /// entry per distribution region.
    pub fn preserve_dedup(
        &mut self,
        distribution: Vec<f64>,
        model: &dyn Model,
        spec: ModelSpec,
        disorder: f64,
        dedup_radius: f64,
    ) {
        let snapshot = ModelSnapshot::capture(spec, model);
        if dedup_radius > 0.0 {
            let nearest = self
                .entries
                .iter()
                .enumerate()
                .map(|(i, e)| (i, vector::euclidean_distance(&e.distribution, &distribution)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            if let Some((idx, dist)) = nearest {
                if dist <= dedup_radius {
                    self.entries[idx] = KnowledgeEntry { distribution, snapshot, disorder };
                    self.emit_preserved(disorder);
                    return;
                }
            }
        }
        if self.entries.len() >= self.capacity {
            let spill = self.capacity / 2;
            for entry in self.entries.drain(..spill.max(1)) {
                self.archive.push(entry.snapshot.to_bytes());
            }
        }
        self.entries.push(KnowledgeEntry { distribution, snapshot, disorder });
        self.emit_preserved(disorder);
    }

    fn emit_preserved(&self, disorder: f64) {
        self.telemetry.emit(TelemetryEvent::KnowledgePreserved {
            seq: self.telemetry.seq(),
            entries: self.entries.len(),
            disorder,
        });
    }

    /// Finds the in-memory entry whose distribution is nearest to
    /// `projected`, returning it with the distance.
    pub fn nearest(&self, projected: &[f64]) -> Option<(&KnowledgeEntry, f64)> {
        self.entries
            .iter()
            .map(|e| (e, vector::euclidean_distance(&e.distribution, projected)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// The knowledge-match rule of §IV-D: reuse the nearest entry only if
    /// its distance beats the current shift distance `d_t`.
    pub fn match_knowledge(
        &self,
        projected: &[f64],
        current_shift: f64,
    ) -> Option<&KnowledgeEntry> {
        self.nearest(projected).and_then(
            |(entry, dist)| {
                if dist < current_shift {
                    Some(entry)
                } else {
                    None
                }
            },
        )
    }

    /// Total bytes of all knowledge (in-memory entries encoded + archive)
    /// — the quantity Table IV reports.
    pub fn space_bytes(&self) -> usize {
        let live: usize = self.entries.iter().map(|e| e.snapshot.size_bytes()).sum();
        let archived: usize = self.archive.iter().map(Bytes::len).sum();
        live + archived
    }

    /// Read-only view of the in-memory entries (oldest first).
    pub fn entries(&self) -> &[KnowledgeEntry] {
        &self.entries
    }

    /// Re-inserts a checkpointed entry verbatim (capacity still applies;
    /// overflow spills to the archive as usual).
    pub fn restore_entry(
        &mut self,
        distribution: Vec<f64>,
        snapshot: ModelSnapshot,
        disorder: f64,
    ) {
        if self.entries.len() >= self.capacity {
            let spill = self.capacity / 2;
            for entry in self.entries.drain(..spill.max(1)) {
                self.archive.push(entry.snapshot.to_bytes());
            }
        }
        self.entries.push(KnowledgeEntry { distribution, snapshot, disorder });
    }
}

/// One entry of the cross-shard knowledge registry.
///
/// Unlike [`KnowledgeEntry`], the fingerprint is the **raw feature-space
/// batch mean**, not a PCA projection: every shard fits its own PCA basis,
/// so projected coordinates are incomparable across shards while raw
/// means live in the one space all shards share.
#[derive(Clone, Debug)]
pub struct SharedEntry {
    /// Raw feature-space mean of the batch that triggered preservation.
    pub fingerprint: Vec<f64>,
    /// The reusable model parameters.
    pub snapshot: ModelSnapshot,
    /// ASW disorder at preservation time (provenance).
    pub disorder: f64,
    /// Shard that preserved this entry.
    pub shard: usize,
    /// The preserving shard's local train-batch counter — the stable half
    /// of the `(seq, shard)` ordering key.
    pub seq: u64,
}

/// Writer-side state: one append-ordered sub-list per shard. Each shard's
/// sub-list is a pure function of that shard's own publish sequence
/// (dedup and the per-shard cap never look at other shards), which is
/// what makes the merged view interleaving-independent.
#[derive(Default)]
struct SharedWriter {
    per_shard: Vec<Vec<SharedEntry>>,
    published: u64,
}

struct SharedInner {
    /// Bumped under the write lock on every view swap; readers poll it
    /// without taking any lock.
    epoch: AtomicU64,
    /// COW snapshot of the merged view. Readers clone the `Arc` (two
    /// atomic ops) and then search entirely lock-free.
    view: RwLock<Arc<Vec<SharedEntry>>>,
    writer: Mutex<SharedWriter>,
    capacity: usize,
}

/// Concurrent cross-shard knowledge registry (the sharded runtime's
/// §IV-D store).
///
/// Concurrency contract:
/// * **Reads are lock-free in steady state.** Shards hold a
///   [`SharedReader`] that caches the current view `Arc` and its epoch;
///   a lookup only touches the registry when the epoch atomic says the
///   view moved.
/// * **Writes are copy-on-write.** A publish rebuilds the merged view
///   and swaps the `Arc` under a write lock held for the swap only.
/// * **Content is interleaving-independent.** Each shard's contribution
///   depends only on its own publish order (single producer per shard);
///   the merged view is the global top-`capacity` of the per-shard
///   sub-lists by the stable ordering key `(seq, shard)` descending.
///   Any arrival interleaving of the same per-shard sequences converges
///   to the same view — paper tables stay byte-reproducible.
#[derive(Clone)]
pub struct SharedKnowledge {
    inner: Arc<SharedInner>,
}

impl SharedKnowledge {
    /// Creates a registry whose merged view keeps at most `capacity`
    /// entries (each shard also contributes at most `capacity`).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        Self {
            inner: Arc::new(SharedInner {
                epoch: AtomicU64::new(0),
                view: RwLock::new(Arc::new(Vec::new())),
                writer: Mutex::new(SharedWriter::default()),
                capacity,
            }),
        }
    }

    /// Current view epoch (bumped on every publish that changes the view).
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::Acquire)
    }

    /// Entries in the merged view.
    pub fn len(&self) -> usize {
        self.inner.view.read().len()
    }

    /// True when no shard has published yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total publish calls across all shards.
    pub fn published(&self) -> u64 {
        self.inner.writer.lock().published
    }

    /// Consistent `(epoch, view)` pair, read under the read lock so the
    /// epoch always matches the view it stamps.
    pub fn view(&self) -> (u64, Arc<Vec<SharedEntry>>) {
        let guard = self.inner.view.read();
        (self.inner.epoch.load(Ordering::Acquire), Arc::clone(&guard))
    }

    /// Publishes one preserved concept from `shard`.
    ///
    /// Dedup is same-shard only: when the shard's own nearest prior entry
    /// lies within `dedup_radius`, it is replaced (the replacement carries
    /// the new `seq`). Cross-shard entries never interact except through
    /// capacity eviction, which keeps the global top-`capacity` by
    /// `(seq, shard)` descending.
    pub fn publish(
        &self,
        shard: usize,
        seq: u64,
        fingerprint: Vec<f64>,
        snapshot: ModelSnapshot,
        disorder: f64,
        dedup_radius: f64,
    ) {
        let mut writer = self.inner.writer.lock();
        writer.published += 1;
        if writer.per_shard.len() <= shard {
            writer.per_shard.resize_with(shard + 1, Vec::new);
        }
        let own = &mut writer.per_shard[shard];
        if dedup_radius > 0.0 {
            let nearest = own
                .iter()
                .enumerate()
                .map(|(i, e)| (i, vector::euclidean_distance(&e.fingerprint, &fingerprint)))
                .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
            if let Some((idx, dist)) = nearest {
                if dist <= dedup_radius {
                    own.remove(idx);
                }
            }
        }
        own.push(SharedEntry { fingerprint, snapshot, disorder, shard, seq });
        if own.len() > self.inner.capacity {
            own.remove(0);
        }
        // Rebuild the merged view: global top-capacity, newest first.
        let mut merged: Vec<SharedEntry> = writer.per_shard.iter().flatten().cloned().collect();
        merged.sort_by_key(|b| std::cmp::Reverse((b.seq, b.shard)));
        merged.truncate(self.inner.capacity);
        let mut view = self.inner.view.write();
        *view = Arc::new(merged);
        self.inner.epoch.fetch_add(1, Ordering::Release);
    }

    /// Creates `shard`'s cached read handle.
    pub fn reader(&self, shard: usize) -> SharedReader {
        SharedReader { shared: self.clone(), shard, epoch: 0, cache: Arc::new(Vec::new()) }
    }
}

impl std::fmt::Debug for SharedKnowledge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedKnowledge")
            .field("len", &self.len())
            .field("epoch", &self.epoch())
            .finish()
    }
}

/// One shard's cached read handle into a [`SharedKnowledge`] registry.
///
/// Holds the last seen view `Arc`; lookups re-read the registry only when
/// the epoch atomic moved, so the steady-state read path takes no lock.
pub struct SharedReader {
    shared: SharedKnowledge,
    shard: usize,
    epoch: u64,
    cache: Arc<Vec<SharedEntry>>,
}

impl SharedReader {
    /// The shard this reader belongs to (its own entries are excluded
    /// from lookups).
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// The underlying registry.
    pub fn shared(&self) -> &SharedKnowledge {
        &self.shared
    }

    fn refresh(&mut self) {
        if self.shared.epoch() != self.epoch {
            let (epoch, view) = self.shared.view();
            self.epoch = epoch;
            self.cache = view;
        }
    }

    /// Nearest entry preserved by a *different* shard, with its raw
    /// feature-space distance. Excluding own-shard entries keeps a
    /// 1-shard run byte-identical to the unsharded pipeline (the lookup
    /// can never fire) and makes every hit a genuine cross-shard reuse.
    pub fn nearest_foreign(&mut self, fingerprint: &[f64]) -> Option<(SharedEntry, f64)> {
        self.refresh();
        self.cache
            .iter()
            .filter(|e| e.shard != self.shard)
            .map(|e| (e, vector::euclidean_distance(&e.fingerprint, fingerprint)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(e, d)| (e.clone(), d))
    }

    /// Publishes on behalf of this reader's shard.
    pub fn publish(
        &self,
        seq: u64,
        fingerprint: Vec<f64>,
        snapshot: ModelSnapshot,
        disorder: f64,
        dedup_radius: f64,
    ) {
        self.shared.publish(self.shard, seq, fingerprint, snapshot, disorder, dedup_radius);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(n: usize, capacity: usize) -> KnowledgeStore {
        let spec = ModelSpec::lr(3, 2);
        let mut s = KnowledgeStore::new(capacity);
        for i in 0..n {
            let model = spec.build(i as u64);
            s.preserve(vec![i as f64, 0.0], model.as_ref(), spec.clone(), 0.5);
        }
        s
    }

    #[test]
    fn preserve_and_nearest() {
        let s = store_with(5, 10);
        let (entry, dist) = s.nearest(&[2.2, 0.0]).expect("non-empty");
        assert_eq!(entry.distribution, vec![2.0, 0.0]);
        assert!((dist - 0.2).abs() < 1e-12);
    }

    #[test]
    fn match_requires_beating_current_shift() {
        let s = store_with(3, 10);
        // Nearest entry is at distance 0.5; only reuse when d_t > 0.5.
        assert!(s.match_knowledge(&[1.5, 0.0], 0.4).is_none());
        assert!(s.match_knowledge(&[1.5, 0.0], 0.6).is_some());
    }

    #[test]
    fn overflow_spills_older_half_to_archive() {
        let s = store_with(6, 4);
        // Inserting the 5th entry spilled 2; the 6th fits.
        assert_eq!(s.archived(), 2);
        assert!(s.len() <= 4);
        // Oldest surviving distribution is not 0 or 1 (they were spilled).
        assert!(s.entries()[0].distribution[0] >= 2.0);
    }

    #[test]
    fn space_grows_with_entries() {
        let s1 = store_with(1, 100);
        let s5 = store_with(5, 100);
        assert!(s5.space_bytes() > 4 * s1.space_bytes());
    }

    #[test]
    fn archive_counts_toward_space() {
        let spilled = store_with(6, 4);
        let unspilled = store_with(6, 100);
        // Spilling changes representation, not the order of magnitude.
        let ratio = spilled.space_bytes() as f64 / unspilled.space_bytes() as f64;
        assert!((0.8..1.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn restored_snapshot_predicts_like_original() {
        let spec = ModelSpec::lr(3, 2);
        let mut s = KnowledgeStore::new(4);
        let mut model = spec.build(7);
        let x = freeway_linalg::Matrix::from_rows(&[vec![1.0, -1.0, 0.5]]);
        let g = model.gradient(&x, &[1], None);
        model.apply_update(&g.iter().map(|v| -0.2 * v).collect::<Vec<_>>());
        s.preserve(vec![0.0, 0.0], model.as_ref(), spec, 0.1);
        let restored = s.entries()[0].snapshot.restore();
        assert_eq!(restored.predict(&x), model.predict(&x));
    }

    #[test]
    fn empty_store_matches_nothing() {
        let s = KnowledgeStore::new(3);
        assert!(s.nearest(&[0.0]).is_none());
        assert!(s.match_knowledge(&[0.0], 100.0).is_none());
        assert!(s.is_empty());
    }

    fn snap(seed: u64) -> ModelSnapshot {
        let spec = ModelSpec::lr(2, 2);
        let model = spec.build(seed);
        ModelSnapshot::capture(spec, model.as_ref())
    }

    fn view_key(shared: &SharedKnowledge) -> Vec<(u64, usize, Vec<f64>)> {
        let (_, view) = shared.view();
        view.iter().map(|e| (e.seq, e.shard, e.fingerprint.clone())).collect()
    }

    #[test]
    fn shared_view_is_interleaving_independent() {
        // Three shards, fixed per-shard publish sequences; every arrival
        // interleaving must converge to the same merged view.
        let per_shard: Vec<Vec<(u64, Vec<f64>)>> = vec![
            vec![(1, vec![0.0, 0.0]), (4, vec![0.1, 0.0]), (7, vec![9.0, 9.0])],
            vec![(2, vec![5.0, 5.0]), (3, vec![5.05, 5.0]), (9, vec![-4.0, 1.0])],
            vec![(5, vec![2.0, -2.0]), (6, vec![7.0, 7.0])],
        ];
        // Interleavings as sequences of shard indices (each shard's own
        // publishes stay in order — single producer per shard).
        let orders: Vec<Vec<usize>> = vec![
            vec![0, 0, 0, 1, 1, 1, 2, 2],
            vec![2, 1, 0, 1, 2, 0, 1, 0],
            vec![1, 2, 1, 0, 0, 2, 1, 0],
        ];
        let mut views = Vec::new();
        for order in &orders {
            let shared = SharedKnowledge::new(4);
            let mut cursors = vec![0usize; per_shard.len()];
            for &s in order {
                let (seq, fp) = per_shard[s][cursors[s]].clone();
                cursors[s] += 1;
                shared.publish(s, seq, fp, snap(seq), 0.5, 0.2);
            }
            assert_eq!(shared.len(), 4);
            views.push(view_key(&shared));
        }
        assert_eq!(views[0], views[1]);
        assert_eq!(views[0], views[2]);
        // Newest-first by (seq, shard): seq 9, 7, 6, 5 survive at cap 4.
        let seqs: Vec<u64> = views[0].iter().map(|(s, _, _)| *s).collect();
        assert_eq!(seqs, vec![9, 7, 6, 5]);
    }

    #[test]
    fn shared_dedup_is_same_shard_only() {
        let shared = SharedKnowledge::new(8);
        shared.publish(0, 1, vec![1.0, 1.0], snap(1), 0.5, 0.5);
        // Shard 1 publishes *at the same point*: no dedup across shards.
        shared.publish(1, 1, vec![1.0, 1.0], snap(2), 0.5, 0.5);
        assert_eq!(shared.len(), 2);
        // Shard 0 republishes nearby: replaces its own entry.
        shared.publish(0, 5, vec![1.1, 1.0], snap(3), 0.5, 0.5);
        assert_eq!(shared.len(), 2);
        let (_, view) = shared.view();
        let shard0: Vec<_> = view.iter().filter(|e| e.shard == 0).collect();
        assert_eq!(shard0.len(), 1);
        assert_eq!(shard0[0].seq, 5);
    }

    #[test]
    fn reader_excludes_own_shard_and_tracks_epoch() {
        let shared = SharedKnowledge::new(8);
        let mut reader = shared.reader(0);
        assert!(reader.nearest_foreign(&[0.0, 0.0]).is_none());
        shared.publish(0, 1, vec![0.0, 0.0], snap(1), 0.5, 0.0);
        // Own-shard entry is invisible to the reader.
        assert!(reader.nearest_foreign(&[0.0, 0.0]).is_none());
        shared.publish(1, 1, vec![3.0, 4.0], snap(2), 0.5, 0.0);
        let (entry, dist) = reader.nearest_foreign(&[0.0, 0.0]).expect("foreign entry");
        assert_eq!(entry.shard, 1);
        assert!((dist - 5.0).abs() < 1e-12);
        // Cache refresh happened exactly because the epoch moved.
        assert_eq!(reader.epoch, shared.epoch());
    }

    #[test]
    fn shared_restored_snapshot_predicts_like_original() {
        let spec = ModelSpec::lr(3, 2);
        let mut model = spec.build(7);
        let x = freeway_linalg::Matrix::from_rows(&[vec![1.0, -1.0, 0.5]]);
        let g = model.gradient(&x, &[1], None);
        model.apply_update(&g.iter().map(|v| -0.2 * v).collect::<Vec<_>>());
        let shared = SharedKnowledge::new(4);
        shared.publish(2, 1, vec![0.0; 3], ModelSnapshot::capture(spec, model.as_ref()), 0.1, 0.0);
        let mut reader = shared.reader(0);
        let (entry, _) = reader.nearest_foreign(&[0.0; 3]).expect("published");
        assert_eq!(entry.snapshot.restore().predict(&x), model.predict(&x));
    }
}
