//! Rate-aware adjuster (§V-B).
//!
//! Inference and training compete for resources during fast streams. The
//! adjuster maps observed flow rate and window (queue) pressure to two
//! knobs:
//!
//! * an **inference boost** — how many pending inference batches to
//!   consume per scheduling tick (raised when pressure is low, so pending
//!   data drains quickly);
//! * a **decay multiplier** — applied to the ASW so that, beyond a rate
//!   threshold, window contents decay faster and long-model updates fire
//!   less often, lowering resource competition.

/// Tuning for the rate-aware adjuster.
#[derive(Clone, Debug)]
pub struct RateAdjusterParams {
    /// Pressure below which inference frequency is boosted.
    pub low_pressure: f64,
    /// Pressure above which inference frequency is reduced to baseline.
    pub high_pressure: f64,
    /// Maximum batches consumed per tick at minimal pressure.
    pub max_inference_boost: usize,
    /// Flow rate (items/s) beyond which ASW decay accelerates.
    pub rate_threshold: f64,
    /// Decay multiplier applied at or above twice the rate threshold.
    pub max_decay_multiplier: f64,
}

impl Default for RateAdjusterParams {
    fn default() -> Self {
        Self {
            low_pressure: 0.25,
            high_pressure: 0.75,
            max_inference_boost: 4,
            rate_threshold: 50_000.0,
            max_decay_multiplier: 3.0,
        }
    }
}

/// The adjuster's verdict for one scheduling tick.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Adjustment {
    /// Inference batches to consume this tick (≥ 1).
    pub inference_batches: usize,
    /// Multiplier to apply to ASW decay (≥ 1).
    pub decay_multiplier: f64,
}

/// Maps (pressure, rate) to scheduling adjustments.
#[derive(Clone, Debug, Default)]
pub struct RateAwareAdjuster {
    params: RateAdjusterParams,
}

impl RateAwareAdjuster {
    /// Creates an adjuster.
    pub fn new(params: RateAdjusterParams) -> Self {
        assert!(params.low_pressure < params.high_pressure, "thresholds must be ordered");
        assert!(params.max_inference_boost >= 1, "boost must be at least 1");
        assert!(params.max_decay_multiplier >= 1.0, "decay multiplier must be at least 1");
        Self { params }
    }

    /// Computes the adjustment for the current queue pressure (`[0, 1]`)
    /// and observed flow rate (items per simulated second).
    pub fn adjust(&self, pressure: f64, rate: f64) -> Adjustment {
        let p = &self.params;
        let pressure = pressure.clamp(0.0, 1.0);

        // Inference frequency: linear ramp from max boost (at/below the
        // low threshold) down to 1 (at/above the high threshold).
        let inference_batches = if pressure <= p.low_pressure {
            p.max_inference_boost
        } else if pressure >= p.high_pressure {
            1
        } else {
            let t = (pressure - p.low_pressure) / (p.high_pressure - p.low_pressure);
            let boost = p.max_inference_boost as f64 * (1.0 - t);
            boost.round().max(1.0) as usize
        };

        // Decay multiplier: 1 below the rate threshold, ramping to the
        // maximum at twice the threshold.
        let decay_multiplier = if rate <= p.rate_threshold {
            1.0
        } else {
            let t = ((rate - p.rate_threshold) / p.rate_threshold).min(1.0);
            1.0 + t * (p.max_decay_multiplier - 1.0)
        };

        Adjustment { inference_batches, decay_multiplier }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adjuster() -> RateAwareAdjuster {
        RateAwareAdjuster::new(RateAdjusterParams::default())
    }

    #[test]
    fn low_pressure_boosts_inference() {
        let a = adjuster().adjust(0.1, 1000.0);
        assert_eq!(a.inference_batches, 4);
        assert_eq!(a.decay_multiplier, 1.0);
    }

    #[test]
    fn high_pressure_runs_at_baseline() {
        let a = adjuster().adjust(0.9, 1000.0);
        assert_eq!(a.inference_batches, 1);
    }

    #[test]
    fn mid_pressure_interpolates() {
        let a = adjuster().adjust(0.5, 1000.0);
        assert!(a.inference_batches >= 1 && a.inference_batches <= 4);
    }

    #[test]
    fn fast_rate_raises_decay() {
        let slow = adjuster().adjust(0.5, 10_000.0);
        let fast = adjuster().adjust(0.5, 100_000.0);
        let very_fast = adjuster().adjust(0.5, 1_000_000.0);
        assert_eq!(slow.decay_multiplier, 1.0);
        assert!(fast.decay_multiplier > 1.0);
        assert_eq!(very_fast.decay_multiplier, 3.0, "capped at the maximum");
    }

    #[test]
    fn pressure_is_clamped() {
        let a = adjuster().adjust(7.0, 0.0);
        assert_eq!(a.inference_batches, 1);
        let b = adjuster().adjust(-3.0, 0.0);
        assert_eq!(b.inference_batches, 4);
    }

    #[test]
    #[should_panic(expected = "ordered")]
    fn rejects_inverted_thresholds() {
        RateAwareAdjuster::new(RateAdjusterParams {
            low_pressure: 0.9,
            high_pressure: 0.1,
            ..Default::default()
        });
    }
}
