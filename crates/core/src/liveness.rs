//! Worker liveness: heartbeat progress ledger and stall watchdog.
//!
//! The supervisor (PR 3) recovers workers that *crash* — the panic tears
//! down the channel and the restart machinery notices immediately. A worker
//! that silently *hangs* (stalled disk, livelock, pathological batch) is
//! invisible to that path: the channels stay open, `in_flight` stays
//! pinned, and every drain loop above it spins forever. This module adds
//! the detection half of forced stall recovery:
//!
//! * [`HeartbeatLedger`] — a tiny shared ledger the worker thread bumps
//!   after every completed command (relaxed atomics, no locks, no
//!   syscalls). It records a monotonically increasing *progress epoch*,
//!   the last batch seq the worker finished, and the stage it is currently
//!   executing.
//! * [`WatchdogState`] — a pure, tick-driven state machine the supervisor
//!   polls from [`check_liveness`]. It declares a stall **only** when work
//!   is pending *and* the progress epoch has not advanced for a full
//!   configured deadline. A slow-but-progressing worker (e.g. one behind a
//!   slow-disk checkpoint cadence backoff) keeps advancing its epoch and
//!   is therefore never declared stalled, no matter how slow it gets.
//!
//! The watchdog is deliberately pure — it consumes `(now_tick, epoch,
//! pending)` observations and returns a verdict — so the false-positive
//! property is proptestable without threads and the chaos crate can drive
//! it under virtual time.
//!
//! [`check_liveness`]: crate::supervisor::SupervisedPipeline::check_liveness

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

/// Stage a worker reported itself in at its last heartbeat.
///
/// Stored in the ledger as a single byte; purely observational (telemetry
/// and drill output) — the watchdog verdict depends only on the progress
/// epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum WorkerStage {
    /// Blocked on the command channel waiting for work.
    Idle,
    /// Executing a train / prequential command.
    Train,
    /// Snapshotting learner state for a checkpoint.
    Checkpoint,
    /// Executing an injected chaos stall (drills only).
    ChaosStall,
}

impl WorkerStage {
    /// Stable lowercase tag for telemetry and drill JSON.
    pub fn tag(self) -> &'static str {
        match self {
            WorkerStage::Idle => "idle",
            WorkerStage::Train => "train",
            WorkerStage::Checkpoint => "checkpoint",
            WorkerStage::ChaosStall => "chaos-stall",
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            WorkerStage::Idle => 0,
            WorkerStage::Train => 1,
            WorkerStage::Checkpoint => 2,
            WorkerStage::ChaosStall => 3,
        }
    }

    fn from_u8(raw: u8) -> Self {
        match raw {
            1 => WorkerStage::Train,
            2 => WorkerStage::Checkpoint,
            3 => WorkerStage::ChaosStall,
            _ => WorkerStage::Idle,
        }
    }
}

#[derive(Debug, Default)]
struct LedgerInner {
    /// Bumped once per completed command. The only field the watchdog
    /// consults; everything else is observability.
    epoch: AtomicU64,
    /// Last batch seq the worker finished, offset by one (0 = none yet).
    last_seq: AtomicU64,
    /// Current [`WorkerStage`] as a byte.
    stage: AtomicU8,
}

/// Shared per-worker progress ledger.
///
/// Cloning is cheap (`Arc`); the worker thread holds one clone and beats
/// it, the supervisor holds the other and reads it. All accesses are
/// relaxed: the watchdog only needs *eventual* visibility of progress, and
/// its deadline (milliseconds) dwarfs any propagation delay.
#[derive(Clone, Debug, Default)]
pub struct HeartbeatLedger {
    inner: Arc<LedgerInner>,
}

impl HeartbeatLedger {
    /// Fresh ledger at epoch 0, no seq, [`WorkerStage::Idle`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one unit of progress: a command was fully processed.
    ///
    /// `seq` is the batch seq that completed, when the command carried one
    /// (checkpoints and chaos commands do not).
    pub fn beat(&self, seq: Option<u64>) {
        if let Some(seq) = seq {
            self.inner.last_seq.store(seq + 1, Ordering::Relaxed);
        }
        self.inner.epoch.fetch_add(1, Ordering::Relaxed);
    }

    /// Record the stage the worker is entering. Not a progress signal.
    pub fn set_stage(&self, stage: WorkerStage) {
        self.inner.stage.store(stage.as_u8(), Ordering::Relaxed);
    }

    /// Monotonic count of completed commands.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::Relaxed)
    }

    /// Last batch seq the worker completed, if any.
    pub fn last_seq(&self) -> Option<u64> {
        self.inner.last_seq.load(Ordering::Relaxed).checked_sub(1)
    }

    /// Stage reported at the most recent [`set_stage`](Self::set_stage).
    pub fn stage(&self) -> WorkerStage {
        WorkerStage::from_u8(self.inner.stage.load(Ordering::Relaxed))
    }
}

/// Pure stall detector over heartbeat observations.
///
/// Ticks are an abstract monotone unit chosen by the caller — the
/// supervisor feeds nanoseconds from a monotonic clock, the chaos
/// simulator feeds virtual ticks. The contract, independent of unit:
///
/// * **No pending work ⇒ never stalled.** An idle worker parked on its
///   command channel makes no progress by design.
/// * **Epoch advanced since the last observation ⇒ not stalled**, and the
///   progress clock resets.
/// * **Stalled** exactly when work has been pending and the epoch has not
///   moved across observations spanning at least `deadline` ticks.
///
/// The first observation only primes the state (a watchdog attached to an
/// already-busy worker must grant it a full deadline before judging it).
#[derive(Clone, Copy, Debug)]
pub struct WatchdogState {
    deadline: u64,
    last_epoch: u64,
    last_progress: u64,
    primed: bool,
}

impl WatchdogState {
    /// Watchdog with the given stall deadline in ticks.
    ///
    /// A zero deadline would declare a stall on the second observation of
    /// any busy worker; construction clamps it to 1 tick, and the builder
    /// rejects zero `stall_deadline` durations before they get here.
    pub fn new(deadline_ticks: u64) -> Self {
        Self { deadline: deadline_ticks.max(1), last_epoch: 0, last_progress: 0, primed: false }
    }

    /// Feed one observation; returns `true` when the worker is stalled.
    ///
    /// `now` must be monotonically non-decreasing across calls; `epoch` is
    /// the ledger's current progress epoch; `pending` is the number of
    /// commands the worker still owes answers for.
    pub fn observe(&mut self, now: u64, epoch: u64, pending: u64) -> bool {
        if !self.primed {
            self.primed = true;
            self.last_epoch = epoch;
            self.last_progress = now;
            return false;
        }
        if epoch != self.last_epoch {
            self.last_epoch = epoch;
            self.last_progress = now;
            return false;
        }
        if pending == 0 {
            self.last_progress = now;
            return false;
        }
        now.saturating_sub(self.last_progress) >= self.deadline
    }

    /// Ticks since the last observed progress (or priming observation).
    pub fn stalled_for(&self, now: u64) -> u64 {
        now.saturating_sub(self.last_progress)
    }

    /// The configured deadline in ticks.
    pub fn deadline(&self) -> u64 {
        self.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ledger_round_trips_progress() {
        let ledger = HeartbeatLedger::new();
        assert_eq!(ledger.epoch(), 0);
        assert_eq!(ledger.last_seq(), None);
        assert_eq!(ledger.stage(), WorkerStage::Idle);

        ledger.set_stage(WorkerStage::Train);
        ledger.beat(Some(0));
        assert_eq!(ledger.epoch(), 1);
        assert_eq!(ledger.last_seq(), Some(0));
        assert_eq!(ledger.stage(), WorkerStage::Train);

        ledger.beat(None);
        assert_eq!(ledger.epoch(), 2);
        assert_eq!(ledger.last_seq(), Some(0), "seq-less beats keep the last seq");
    }

    #[test]
    fn ledger_clones_share_state() {
        let ledger = HeartbeatLedger::new();
        let clone = ledger.clone();
        clone.beat(Some(7));
        assert_eq!(ledger.epoch(), 1);
        assert_eq!(ledger.last_seq(), Some(7));
    }

    #[test]
    fn idle_worker_is_never_stalled() {
        let mut wd = WatchdogState::new(10);
        assert!(!wd.observe(0, 0, 0));
        for t in 1..1000 {
            assert!(!wd.observe(t, 0, 0), "no pending work must never stall");
        }
    }

    #[test]
    fn progressing_worker_is_never_stalled() {
        let mut wd = WatchdogState::new(10);
        assert!(!wd.observe(0, 0, 3));
        for t in 1..1000u64 {
            // Epoch advances every observation: always progress.
            assert!(!wd.observe(t * 100, t, 3));
        }
    }

    #[test]
    fn stall_declared_only_after_full_deadline() {
        let mut wd = WatchdogState::new(10);
        assert!(!wd.observe(0, 5, 2), "priming observation");
        assert!(!wd.observe(5, 5, 2), "within deadline");
        assert!(!wd.observe(9, 5, 2), "still within deadline");
        assert!(wd.observe(10, 5, 2), "deadline elapsed with pending work");
        assert_eq!(wd.stalled_for(10), 10);
    }

    #[test]
    fn progress_resets_the_deadline() {
        let mut wd = WatchdogState::new(10);
        assert!(!wd.observe(0, 0, 1));
        assert!(!wd.observe(9, 1, 1), "progress just in time");
        assert!(!wd.observe(18, 1, 1), "only 9 ticks since progress");
        assert!(wd.observe(19, 1, 1), "10 ticks since progress");
    }

    #[test]
    fn draining_to_idle_resets_the_deadline() {
        let mut wd = WatchdogState::new(10);
        assert!(!wd.observe(0, 0, 1));
        assert!(!wd.observe(50, 0, 0), "queue drained: idle, not stalled");
        assert!(!wd.observe(55, 0, 1), "new work arrives");
        assert!(!wd.observe(59, 0, 1));
        assert!(wd.observe(60, 0, 1), "deadline counts from the idle reset");
    }

    #[test]
    fn priming_grants_a_full_deadline() {
        let mut wd = WatchdogState::new(10);
        // Attach to a worker that has been busy for ages (epoch 400).
        assert!(!wd.observe(1_000_000, 400, 9));
        assert!(!wd.observe(1_000_009, 400, 9));
        assert!(wd.observe(1_000_010, 400, 9));
    }

    #[test]
    fn zero_deadline_is_clamped() {
        let mut wd = WatchdogState::new(0);
        assert_eq!(wd.deadline(), 1);
        assert!(!wd.observe(0, 0, 1));
        assert!(wd.observe(1, 0, 1));
    }

    #[test]
    fn stage_tags_are_stable() {
        assert_eq!(WorkerStage::Idle.tag(), "idle");
        assert_eq!(WorkerStage::Train.tag(), "train");
        assert_eq!(WorkerStage::Checkpoint.tag(), "checkpoint");
        assert_eq!(WorkerStage::ChaosStall.tag(), "chaos-stall");
    }
}
