//! The adaptive streaming window (§IV-B, Algorithm 1).
//!
//! The ASW feeds the long-granularity model. Each stored batch carries a
//! weight that decays as newer batches arrive; the decay rate of a batch
//! depends on (a) its *distance rank* against the incoming batch — closer
//! batches decay less, keeping the window aligned with the current
//! distribution — and (b) the window's *disorder*: high disorder means the
//! stream is localized (updates are not urgent, decay faster to save
//! work); low disorder means a directional shift is underway (retain the
//! trajectory).

use freeway_drift::disorder::{distance_ranks, normalized_disorder};
use freeway_linalg::{vector, Matrix};
use freeway_telemetry::{Telemetry, TelemetryEvent};
use std::sync::Arc;

/// One batch held in the window.
///
/// Feature rows and labels sit behind `Arc` so that inserting the same
/// incoming batch into several granularity windows (and cloning windows
/// for snapshots) shares one copy instead of deep-cloning the data.
#[derive(Clone, Debug)]
pub struct WindowBatch {
    /// Feature rows (shared).
    pub x: Arc<Matrix>,
    /// Labels (shared).
    pub labels: Arc<[usize]>,
    /// Projected mean `ȳ` of the batch (shift-graph coordinates).
    pub projected: Vec<f64>,
    /// Current decay weight in `(0, 1]`.
    pub weight: f64,
}

/// Decay parameters of the window (a slice of [`crate::FreewayConfig`]).
#[derive(Clone, Debug)]
pub struct AswParams {
    /// Update fires when this many batches are held.
    pub max_batches: usize,
    /// Update fires when this many items are held.
    pub max_items: usize,
    /// Base decay applied to every batch per insertion.
    pub base_decay: f64,
    /// Extra decay for the farthest-ranked batch (linear in rank).
    pub rank_decay: f64,
    /// Multiplier on total decay at disorder 1.0.
    pub disorder_boost: f64,
    /// Batches below this weight are evicted.
    pub min_weight: f64,
}

impl Default for AswParams {
    fn default() -> Self {
        Self {
            max_batches: 8,
            max_items: 16_384,
            base_decay: 0.05,
            rank_decay: 0.15,
            disorder_boost: 1.0,
            min_weight: 0.05,
        }
    }
}

/// The adaptive streaming window.
///
/// ```
/// use freeway_core::asw::{AdaptiveStreamingWindow, AswParams};
/// use freeway_linalg::Matrix;
/// use std::sync::Arc;
///
/// let mut window = AdaptiveStreamingWindow::new(AswParams {
///     max_batches: 2,
///     ..Default::default()
/// });
/// window.insert(Arc::new(Matrix::filled(4, 2, 0.0)), vec![0; 4].into(), vec![0.0, 0.0]);
/// window.insert(Arc::new(Matrix::filled(4, 2, 1.0)), vec![1; 4].into(), vec![1.0, 0.0]);
/// assert!(window.is_full());
/// let (x, labels, weights) = window.drain_for_update().unwrap();
/// assert_eq!(x.rows(), 8);
/// assert_eq!(labels.len(), weights.len());
/// ```
#[derive(Clone, Debug)]
pub struct AdaptiveStreamingWindow {
    params: AswParams,
    batches: Vec<WindowBatch>,
    items: usize,
    last_disorder: f64,
    /// Runtime multiplier on decay, raised by the rate-aware adjuster
    /// under high flow rates (§V-B).
    decay_multiplier: f64,
    telemetry: Telemetry,
    /// Granularity level this window belongs to, for event labeling.
    level: usize,
}

impl AdaptiveStreamingWindow {
    /// Creates an empty window.
    pub fn new(params: AswParams) -> Self {
        assert!(params.max_batches >= 1, "max_batches must be at least 1");
        assert!(params.max_items >= 1, "max_items must be at least 1");
        Self {
            params,
            batches: Vec::new(),
            items: 0,
            last_disorder: 0.0,
            decay_multiplier: 1.0,
            telemetry: Telemetry::disabled(),
            level: 0,
        }
    }

    /// Attaches an observability handle: evictions emit
    /// [`TelemetryEvent::WindowEvicted`] labeled with `level`, and each
    /// insertion updates the disorder gauge.
    pub fn attach_telemetry(&mut self, telemetry: Telemetry, level: usize) {
        self.telemetry = telemetry;
        self.level = level;
    }

    /// Number of batches currently held.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// True when no batches are held.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// Total items currently held.
    pub fn items(&self) -> usize {
        self.items
    }

    /// Disorder of the most recent insertion's distance ranking, in
    /// `[0, 1]` (Equation 11, normalised).
    pub fn disorder(&self) -> f64 {
        self.last_disorder
    }

    /// Sets the runtime decay multiplier (rate-aware adjuster hook).
    pub fn set_decay_multiplier(&mut self, m: f64) {
        assert!(m >= 1.0, "multiplier only ever raises decay");
        self.decay_multiplier = m;
    }

    /// True when the window has reached either bound and the long model
    /// should update (Algorithm 1, line 3).
    pub fn is_full(&self) -> bool {
        self.batches.len() >= self.params.max_batches || self.items >= self.params.max_items
    }

    /// Inserts a batch, decaying existing batches first (Algorithm 1).
    /// The batch data is taken behind `Arc`, so several windows (one per
    /// granularity level) can hold the same incoming batch without
    /// copying it.
    ///
    /// Returns the disorder computed for this insertion.
    pub fn insert(&mut self, x: Arc<Matrix>, labels: Arc<[usize]>, projected: Vec<f64>) -> f64 {
        assert_eq!(x.rows(), labels.len(), "label count mismatch");
        if !self.batches.is_empty() {
            // Shift distances from the incoming batch to each held batch,
            // oldest first.
            let distances: Vec<f64> = self
                .batches
                .iter()
                .map(|b| vector::euclidean_distance(&b.projected, &projected))
                .collect();
            let ranks = distance_ranks(&distances);
            let disorder = normalized_disorder(&ranks);
            self.last_disorder = disorder;

            let n = self.batches.len() as f64;
            for (batch, &rank) in self.batches.iter_mut().zip(&ranks) {
                // rank 0 = farthest ⇒ most decay; nearest decays least.
                let rank_term = self.params.rank_decay * (n - rank as f64) / n.max(1.0);
                let decay = (self.params.base_decay + rank_term)
                    * (1.0 + self.params.disorder_boost * disorder)
                    * self.decay_multiplier;
                batch.weight *= (1.0 - decay).max(0.0);
            }
            // Evict fully decayed batches.
            let min_weight = self.params.min_weight;
            let mut removed_items = 0;
            let before = self.batches.len();
            self.batches.retain(|b| {
                if b.weight < min_weight {
                    removed_items += b.x.rows();
                    false
                } else {
                    true
                }
            });
            self.items -= removed_items;
            let evicted = before - self.batches.len();
            if evicted > 0 {
                self.telemetry.emit(TelemetryEvent::WindowEvicted {
                    seq: self.telemetry.seq(),
                    level: self.level,
                    evicted,
                    disorder,
                });
            }
            self.telemetry.record_disorder(disorder);
        }

        self.items += x.rows();
        self.batches.push(WindowBatch { x, labels, projected, weight: 1.0 });
        self.last_disorder
    }

    /// Weighted mean of the held batches' projections — the `ȳ_ASW` of
    /// Equation 13. `None` when empty.
    pub fn projected_mean(&self) -> Option<Vec<f64>> {
        if self.batches.is_empty() {
            return None;
        }
        let dim = self.batches[0].projected.len();
        let mut acc = vec![0.0; dim];
        let mut total = 0.0;
        for b in &self.batches {
            vector::axpy(&mut acc, b.weight, &b.projected);
            total += b.weight;
        }
        for a in &mut acc {
            *a /= total;
        }
        Some(acc)
    }

    /// Stacks all held data into one training set with per-sample weights
    /// (each sample inherits its batch weight) and clears the window,
    /// keeping the newest batch as the seed of the next window so the long
    /// model never loses continuity.
    ///
    /// Returns `None` when empty.
    pub fn drain_for_update(&mut self) -> Option<(Matrix, Vec<usize>, Vec<f64>)> {
        if self.batches.is_empty() {
            return None;
        }
        let total_rows: usize = self.batches.iter().map(|b| b.x.rows()).sum();
        let dim = self.batches[0].x.cols();
        let mut x = Matrix::zeros(total_rows, dim);
        let mut labels = Vec::with_capacity(total_rows);
        let mut weights = Vec::with_capacity(total_rows);
        let mut r = 0;
        for b in &self.batches {
            for row in b.x.row_iter() {
                x.row_mut(r).copy_from_slice(row);
                r += 1;
            }
            labels.extend_from_slice(&b.labels);
            weights.extend(std::iter::repeat_n(b.weight, b.x.rows()));
        }
        // Seed the next window with the most recent batch at full weight.
        let newest = self.batches.pop()?;
        self.batches.clear();
        self.items = newest.x.rows();
        self.batches.push(WindowBatch { weight: 1.0, ..newest });
        Some((x, labels, weights))
    }

    /// Read-only view of held batches (oldest first).
    pub fn batches(&self) -> &[WindowBatch] {
        &self.batches
    }

    /// Discards all held batches (severe shifts invalidate window
    /// contents: training the long model on a mix of pre- and post-shift
    /// data produces a model that fits neither).
    pub fn clear(&mut self) {
        self.batches.clear();
        self.items = 0;
        self.last_disorder = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch_at(mean: f64, rows: usize) -> (Arc<Matrix>, Arc<[usize]>, Vec<f64>) {
        let x = Arc::new(Matrix::filled(rows, 2, mean));
        let labels: Arc<[usize]> = vec![0; rows].into();
        (x, labels, vec![mean, mean])
    }

    fn window(max_batches: usize) -> AdaptiveStreamingWindow {
        AdaptiveStreamingWindow::new(AswParams { max_batches, ..Default::default() })
    }

    #[test]
    fn fills_and_reports_full() {
        let mut w = window(3);
        for i in 0..3 {
            let (x, y, p) = batch_at(i as f64, 4);
            w.insert(x, y, p);
        }
        assert!(w.is_full());
        assert_eq!(w.items(), 12);
    }

    #[test]
    fn item_bound_triggers_fullness() {
        let mut w = AdaptiveStreamingWindow::new(AswParams {
            max_batches: 100,
            max_items: 10,
            ..Default::default()
        });
        let (x, y, p) = batch_at(0.0, 12);
        w.insert(x, y, p);
        assert!(w.is_full());
    }

    #[test]
    fn closer_batches_decay_less() {
        let mut w = window(10);
        // Two held batches: one far (mean 10), one near (mean 1).
        let (x, y, p) = batch_at(10.0, 4);
        w.insert(x, y, p);
        let (x, y, p) = batch_at(1.0, 4);
        w.insert(x, y, p);
        // Incoming batch at mean 0: the batch at 10 is farther.
        let (x, y, p) = batch_at(0.0, 4);
        w.insert(x, y, p);
        let weights: Vec<f64> = w.batches().iter().map(|b| b.weight).collect();
        // Order: [10-batch, 1-batch, new]; far batch decayed more.
        assert!(weights[0] < weights[1], "far batch must decay more: {weights:?}");
        assert_eq!(weights[2], 1.0, "incoming batch starts at full weight");
    }

    #[test]
    fn directional_stream_has_low_disorder_localized_high() {
        // Directional: batch means march away from the future insert point.
        let mut w = window(20);
        for m in [8.0, 6.0, 4.0, 2.0] {
            let (x, y, p) = batch_at(m, 2);
            w.insert(x, y, p);
        }
        let (x, y, p) = batch_at(0.0, 2);
        let directional_disorder = w.insert(x, y, p);

        let mut w2 = window(20);
        for m in [2.0, 8.0, 1.0, 6.0] {
            let (x, y, p) = batch_at(m, 2);
            w2.insert(x, y, p);
        }
        let (x, y, p) = batch_at(0.0, 2);
        let localized_disorder = w2.insert(x, y, p);

        assert!(
            directional_disorder < localized_disorder,
            "directional {directional_disorder} must be below localized {localized_disorder}"
        );
        assert_eq!(directional_disorder, 0.0, "perfect march is perfectly ordered");
    }

    #[test]
    fn fully_decayed_batches_are_evicted() {
        let mut w = AdaptiveStreamingWindow::new(AswParams {
            max_batches: 100,
            max_items: 1_000_000,
            base_decay: 0.5,
            rank_decay: 0.4,
            disorder_boost: 0.0,
            min_weight: 0.3,
        });
        let (x, y, p) = batch_at(5.0, 4);
        w.insert(x, y, p);
        for i in 0..4 {
            let (x, y, p) = batch_at(i as f64 * 0.1, 4);
            w.insert(x, y, p);
        }
        assert!(
            w.batches().iter().all(|b| b.weight >= 0.3),
            "weights below min_weight must be gone"
        );
        assert!(w.len() < 5, "heavy decay must evict something");
        let items: usize = w.batches().iter().map(|b| b.x.rows()).sum();
        assert_eq!(items, w.items(), "item accounting stays consistent");
    }

    #[test]
    fn projected_mean_weights_by_decay() {
        let mut w = window(10);
        let (x, y, p) = batch_at(0.0, 2);
        w.insert(x, y, p);
        let (x, y, p) = batch_at(4.0, 2);
        w.insert(x, y, p);
        let mean = w.projected_mean().expect("non-empty");
        // Newest batch has weight 1.0, older decayed below 1 ⇒ mean pulls
        // toward 4.0 past the unweighted midpoint of 2.0.
        assert!(mean[0] > 2.0, "weighted mean {mean:?} should lean to the newer batch");
    }

    #[test]
    fn drain_produces_weighted_training_set_and_reseeds() {
        let mut w = window(10);
        let (x, y, p) = batch_at(1.0, 3);
        w.insert(x, y, p);
        let (x, y, p) = batch_at(2.0, 2);
        w.insert(x, y, p);
        let (x, labels, weights) = w.drain_for_update().expect("non-empty");
        assert_eq!(x.rows(), 5);
        assert_eq!(labels.len(), 5);
        assert_eq!(weights.len(), 5);
        // First three rows share the (decayed) older weight; last two are 1.
        assert!(weights[0] < 1.0);
        assert_eq!(weights[3], 1.0);
        // Window reseeded with the newest batch only.
        assert_eq!(w.len(), 1);
        assert_eq!(w.items(), 2);
        assert_eq!(w.batches()[0].weight, 1.0);
    }

    #[test]
    fn drain_on_empty_is_none() {
        let mut w = window(3);
        assert!(w.drain_for_update().is_none());
        assert!(w.projected_mean().is_none());
    }

    #[test]
    fn decay_multiplier_accelerates_decay() {
        let mut slow = window(10);
        let mut fast = window(10);
        fast.set_decay_multiplier(3.0);
        for m in [1.0, 2.0, 3.0] {
            let (x, y, p) = batch_at(m, 2);
            slow.insert(x.clone(), y.clone(), p.clone());
            let (x2, y2, p2) = batch_at(m, 2);
            fast.insert(x2, y2, p2);
        }
        let slow_w = slow.batches()[0].weight;
        let fast_w = fast.batches()[0].weight;
        assert!(fast_w < slow_w, "boosted decay {fast_w} must be below {slow_w}");
    }
}
