//! The strategy selector: shift tracker + pattern classifier (§V-A).

use freeway_drift::{
    classify_and_emit, ShiftMeasurement, ShiftPattern, ShiftTracker, ShiftTrackerConfig,
};
use freeway_linalg::Matrix;
use freeway_telemetry::{Stage, Telemetry};

use crate::config::FreewayConfig;

/// The selector's verdict for one batch.
#[derive(Clone, Debug)]
pub struct Decision {
    /// The classified shift pattern.
    pub pattern: ShiftPattern,
    /// The underlying measurement.
    pub measurement: ShiftMeasurement,
}

/// Observes the inference stream and classifies each batch's shift
/// pattern; `None` during PCA warm-up (the learner treats warm-up batches
/// as slight shifts).
pub struct StrategySelector {
    tracker: ShiftTracker,
    alpha: f64,
    telemetry: Telemetry,
}

impl StrategySelector {
    /// Builds a selector from the learner configuration.
    pub fn new(config: &FreewayConfig) -> Self {
        Self::with_telemetry(config, Telemetry::disabled())
    }

    /// Builds a selector with an observability handle: classification gets
    /// a timing span, severe patterns emit
    /// [`freeway_telemetry::TelemetryEvent::DriftDetected`], and the
    /// underlying tracker records projection/shift spans and gauges.
    pub fn with_telemetry(config: &FreewayConfig, telemetry: Telemetry) -> Self {
        let mut tracker = ShiftTracker::new(ShiftTrackerConfig {
            warmup_rows: config.pca_warmup_rows,
            components: config.pca_components,
            history: config.shift_history,
            recency_decay: config.shift_recency_decay,
            distribution_memory: config.distribution_memory,
            ..Default::default()
        });
        tracker.set_telemetry(telemetry.clone());
        Self { tracker, alpha: config.alpha, telemetry }
    }

    /// Re-attaches an observability handle after construction (checkpoint
    /// restore re-wires the restored learner this way).
    pub fn attach_telemetry(&mut self, telemetry: Telemetry) {
        self.tracker.set_telemetry(telemetry.clone());
        self.telemetry = telemetry;
    }

    /// True once PCA warm-up finished.
    pub fn is_ready(&self) -> bool {
        self.tracker.is_ready()
    }

    /// Classifies one batch; `None` during warm-up.
    pub fn observe(&mut self, x: &Matrix) -> Option<Decision> {
        let measurement = self.tracker.observe(x)?;
        let _span = self.telemetry.time(Stage::Select);
        let pattern = classify_and_emit(&measurement, self.alpha, &self.telemetry);
        Some(Decision { pattern, measurement })
    }

    /// Access to the underlying tracker (experiments read the shift graph
    /// through this).
    pub fn tracker(&self) -> &ShiftTracker {
        &self.tracker
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freeway_streams::concept::{stream_rng, GmmConcept};

    fn config() -> FreewayConfig {
        FreewayConfig { pca_warmup_rows: 64, ..Default::default() }
    }

    #[test]
    fn warmup_then_slight_on_stable_stream() {
        let mut rng = stream_rng(1);
        let concept = GmmConcept::random(5, 2, 2, 3.0, 0.5, &mut rng);
        let mut sel = StrategySelector::new(&config());
        let (b, _) = concept.sample_batch(64, &mut rng);
        assert!(sel.observe(&b).is_none(), "warm-up completes on this batch");
        assert!(sel.is_ready());
        let mut slight = 0;
        let mut total = 0;
        for _ in 0..20 {
            let (b, _) = concept.sample_batch(128, &mut rng);
            if let Some(d) = sel.observe(&b) {
                total += 1;
                if d.pattern == ShiftPattern::Slight {
                    slight += 1;
                }
            }
        }
        assert!(slight * 10 >= total * 7, "stable stream mostly slight: {slight}/{total}");
    }

    #[test]
    fn jump_is_classified_severe() {
        let mut rng = stream_rng(2);
        let mut concept = GmmConcept::random(5, 2, 2, 3.0, 0.5, &mut rng);
        let mut sel = StrategySelector::new(&config());
        for _ in 0..15 {
            let (b, _) = concept.sample_batch(128, &mut rng);
            let _ = sel.observe(&b);
        }
        concept.translate(&[30.0; 5]);
        let (b, _) = concept.sample_batch(128, &mut rng);
        let d = sel.observe(&b).expect("ready");
        assert_ne!(d.pattern, ShiftPattern::Slight, "a 30-unit jump is severe");
    }

    #[test]
    fn return_to_origin_is_reoccurring() {
        let mut rng = stream_rng(3);
        let concept = GmmConcept::random(5, 2, 2, 3.0, 0.5, &mut rng);
        let mut sel = StrategySelector::new(&config());
        for _ in 0..12 {
            let (b, _) = concept.sample_batch(128, &mut rng);
            let _ = sel.observe(&b);
        }
        let mut away = concept.clone();
        away.translate(&[40.0; 5]);
        for _ in 0..8 {
            let (b, _) = away.sample_batch(128, &mut rng);
            let _ = sel.observe(&b);
        }
        let (b, _) = concept.sample_batch(128, &mut rng);
        let d = sel.observe(&b).expect("ready");
        assert_eq!(d.pattern, ShiftPattern::Reoccurring, "M = {}", d.measurement.severity);
    }
}
