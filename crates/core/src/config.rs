//! Configuration for the FreewayML learner.

use freeway_ml::{Adam, Ftrl, Momentum, Optimizer, Sgd};
use serde::{Deserialize, Serialize};

/// Which optimizer drives the granularity models' updates.
///
/// FreewayML's mechanisms are orthogonal to the base trainer; the paper
/// uses mini-batch SGD (the default here), but the framework accepts any
/// of the substrate's optimizers — e.g. FTRL to match an Alink-style
/// deployment.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
#[non_exhaustive]
pub enum OptimizerKind {
    /// Plain SGD (the paper's setting).
    Sgd,
    /// SGD with classical momentum.
    Momentum {
        /// Momentum coefficient in `[0, 1)`.
        mu: f64,
    },
    /// Adam with canonical betas.
    Adam,
    /// FTRL-proximal with light regularisation.
    Ftrl,
}

impl OptimizerKind {
    /// Instantiates the optimizer at the given learning rate.
    pub fn build(self, learning_rate: f64) -> Box<dyn Optimizer> {
        match self {
            Self::Sgd => Box::new(Sgd::new(learning_rate)),
            Self::Momentum { mu } => Box::new(Momentum::new(learning_rate, mu)),
            Self::Adam => Box::new(Adam::new(learning_rate)),
            Self::Ftrl => Box::new(Ftrl::new(learning_rate, 1.0, 0.001, 0.001)),
        }
    }
}

/// All tunables of FreewayML, with the paper's defaults.
///
/// The constructor template in §V is
/// `Learner(Model=model, ModelNum=2, MiniBatch=1024, KdgBuffer=20,
/// ExpBuffer=10, α=1.96)`; the remaining fields parameterise pieces the
/// paper describes qualitatively (ASW bounds, disorder threshold β,
/// ensemble kernel width, decay shape).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct FreewayConfig {
    /// Number of granularity levels (2 = short + long, the default).
    pub model_num: usize,
    /// Mini-batch size the stream is consumed in.
    pub mini_batch: usize,
    /// Maximum knowledge entries kept in memory (`KdgBuffer`).
    pub kdg_buffer: usize,
    /// Experience points retained for CEC, expressed in batches
    /// (`ExpBuffer`); the actual point capacity is
    /// `exp_buffer * mini_batch` rows capped by [`Self::exp_point_cap`].
    pub exp_buffer: usize,
    /// Hard cap on CEC experience points (keeps k-means cheap).
    pub exp_point_cap: usize,
    /// Severity threshold α for pattern classification.
    pub alpha: f64,
    /// Disorder threshold β for knowledge preservation (normalised to
    /// `[0, 1]`).
    pub beta: f64,
    /// Gaussian kernel width σ of the ensemble (Equation 14), expressed
    /// as a multiple of the *typical* shift distance (the weighted history
    /// mean `μ_d`): kernels auto-scale to the stream's own motion, so the
    /// same configuration works across datasets with different feature
    /// scales.
    pub ensemble_sigma: f64,
    /// CEC clusters per class. Real stream classes are multi-modal, so
    /// clustering with exactly one cluster per label (the paper's framing)
    /// under-fits; a small multiple keeps the mapping label-agnostic while
    /// matching the data's mode count.
    pub cec_cluster_multiplier: usize,
    /// Minimum labeled-guidance purity for CEC predictions (see
    /// `freeway_cluster::CoherentExperience::min_purity`); below this the
    /// learner falls back to the ensemble.
    pub cec_min_purity: f64,
    /// Knowledge-preservation dedup radius, as a multiple of the stream's
    /// typical shift distance: a new entry within this radius of an
    /// existing one replaces it, keeping the KdgBuffer covering distinct
    /// distributions instead of near-duplicates of the current one.
    pub kdg_dedup_scale: f64,
    /// ASW: maximum batches before a long-model update fires.
    pub asw_max_batches: usize,
    /// ASW: maximum items before a long-model update fires.
    pub asw_max_items: usize,
    /// ASW: base per-insertion decay rate.
    pub asw_base_decay: f64,
    /// ASW: additional decay for the worst-ranked batch (scaled linearly
    /// by rank).
    pub asw_rank_decay: f64,
    /// ASW: additional decay multiplier at disorder 1.0.
    pub asw_disorder_boost: f64,
    /// ASW: entries whose weight falls below this are dropped.
    pub asw_min_weight: f64,
    /// Learning rate for all granularity models.
    pub learning_rate: f64,
    /// Base optimizer for all granularity models.
    pub optimizer: OptimizerKind,
    /// PCA warm-up rows for the shift tracker.
    pub pca_warmup_rows: usize,
    /// PCA components.
    pub pca_components: usize,
    /// Shift-history length k (Equations 8–9).
    pub shift_history: usize,
    /// Recency decay of shift-history weights.
    pub shift_recency_decay: f64,
    /// Remembered historical distributions for `d_h`.
    pub distribution_memory: usize,
    /// Pre-computing window subsets (1 disables pre-computation).
    pub precompute_subsets: usize,
    /// Gradient passes over the window data when a long-granularity
    /// update fires. One pass per batch would leave the long model far
    /// behind the short one (it updates `asw_max_batches` times less
    /// often); a few passes over the accumulated window keep it a
    /// *stable* peer rather than a stale one.
    pub asw_update_epochs: usize,
    /// Base RNG seed for model initialisation.
    pub seed: u64,
    /// Worker threads for the process-wide pool backing parallel
    /// kernels, ensemble inference, sharded gradients, and async long
    /// updates. `1` (the default) keeps everything serial; `0` means
    /// "all available cores". The `FREEWAY_THREADS` environment
    /// variable, when set, overrides this field.
    ///
    /// **Shard/thread budget policy.** The kernel pool is one per
    /// process, shared by every shard of a
    /// [`crate::shard::ShardedPipeline`], so shard workers and pool
    /// threads draw on a single core budget:
    ///
    /// * With serial kernels (this field at its default `1`), the shard
    ///   workers *are* the parallelism — one core of compute per shard,
    ///   any shard count allowed (workers beyond the core count
    ///   time-slice; they never multiply kernel threads).
    /// * `0` under [`crate::PipelineBuilder::build_sharded`] resolves to
    ///   `cores / shards` (the budget left after one core per shard),
    ///   not "all cores".
    /// * An explicit pooled size (`> 1`) combined with more than one
    ///   shard must satisfy `shards + num_threads <= cores`;
    ///   `build_sharded` rejects oversubscribing splits, because a pool
    ///   contended by N shard workers destroys the near-linear scaling
    ///   the sharded runtime exists for.
    ///
    /// `FREEWAY_THREADS` participates in the same validation — the
    /// override is resolved *before* the budget check, so an environment
    /// variable cannot sneak an oversubscribed split past the builder.
    pub num_threads: usize,
    /// Evaluate ensemble voters concurrently on the worker pool when the
    /// forward passes are large enough to amortise the dispatch. Results
    /// are bit-identical to serial inference (per-voter arithmetic is
    /// unchanged; blending runs in level order on the caller).
    pub parallel_inference: bool,
    /// Compute mini-batch gradients data-parallel in fixed 256-row
    /// shards merged in shard order. Off by default: sharding changes
    /// numerics for batches above one shard (identically for every
    /// thread count).
    pub parallel_gradient: bool,
    /// Run ASW window-completion long-model updates as background pool
    /// jobs: the update trains a snapshot of the level while inference
    /// and short-model training continue on the live model; the result
    /// is swapped in at a later `train` call. Off by default — it makes
    /// *when* a long update lands timing-dependent.
    pub async_long_updates: bool,
    /// Mechanism toggle: coherent experience clustering on Pattern B.
    /// Disabling falls back to the ensemble (per-mechanism studies and
    /// ablations flip this).
    pub enable_cec: bool,
    /// Mechanism toggle: historical knowledge reuse on Pattern C.
    pub enable_knowledge: bool,
    /// Continuous low-label mode: train the short-granularity model on
    /// CEC pseudo-labels for *unlabeled* batches whose cluster purity
    /// clears [`Self::pseudo_label_min_purity`]. The paper uses CEC
    /// labeling only inside Pattern-B handling; this extends it to every
    /// unlabeled batch so delayed/partial-label streams keep adapting
    /// between label deliveries. Off by default — it changes inference
    /// output on unlabeled streams. (`serde` default keeps older
    /// serialized configurations readable.)
    #[serde(default)]
    pub enable_pseudo_labels: bool,
    /// Minimum CEC labeled-guidance purity for a pseudo-label training
    /// pass (stricter than [`Self::cec_min_purity`] by default: training
    /// on wrong labels is worse than predicting with them).
    #[serde(default = "default_pseudo_label_min_purity")]
    pub pseudo_label_min_purity: f64,
}

fn default_pseudo_label_min_purity() -> f64 {
    0.9
}

impl Default for FreewayConfig {
    fn default() -> Self {
        Self {
            model_num: 2,
            mini_batch: 1024,
            kdg_buffer: 20,
            exp_buffer: 10,
            exp_point_cap: 512,
            alpha: 1.96,
            beta: 0.3,
            ensemble_sigma: 0.5,
            cec_cluster_multiplier: 4,
            cec_min_purity: 0.7,
            kdg_dedup_scale: 2.0,
            asw_max_batches: 4,
            asw_max_items: 16_384,
            asw_base_decay: 0.05,
            asw_rank_decay: 0.15,
            asw_disorder_boost: 1.0,
            asw_min_weight: 0.05,
            learning_rate: 0.3,
            optimizer: OptimizerKind::Sgd,
            pca_warmup_rows: 512,
            pca_components: 4,
            shift_history: 20,
            shift_recency_decay: 0.9,
            distribution_memory: 200,
            precompute_subsets: 4,
            asw_update_epochs: 2,
            seed: 42,
            num_threads: 1,
            parallel_inference: true,
            parallel_gradient: false,
            async_long_updates: false,
            enable_cec: true,
            enable_knowledge: true,
            enable_pseudo_labels: false,
            pseudo_label_min_purity: default_pseudo_label_min_purity(),
        }
    }
}

/// Generates consuming `with_*` setters, one per configuration field.
macro_rules! with_setters {
    ($($(#[$meta:meta])* $setter:ident => $field:ident : $ty:ty),* $(,)?) => {
        $(
            $(#[$meta])*
            #[must_use]
            pub fn $setter(mut self, value: $ty) -> Self {
                self.$field = value;
                self
            }
        )*
    };
}

impl FreewayConfig {
    /// Validates internal consistency without panicking.
    ///
    /// Returns a message naming the offending field on the first violated
    /// constraint. This is what [`crate::builder::PipelineBuilder`] calls;
    /// [`Self::validate`] is the panicking form for call sites that treat
    /// a bad configuration as a programmer error.
    pub fn check(&self) -> Result<(), String> {
        fn ensure(ok: bool, msg: &str) -> Result<(), String> {
            if ok {
                Ok(())
            } else {
                Err(msg.to_string())
            }
        }
        ensure(self.model_num >= 1, "model_num must be at least 1")?;
        ensure(self.mini_batch > 0, "mini_batch must be positive")?;
        ensure(self.kdg_buffer > 0, "kdg_buffer must be positive")?;
        ensure(self.alpha > 0.0, "alpha must be positive")?;
        ensure((0.0..=1.0).contains(&self.beta), "beta must be in [0, 1]")?;
        ensure(self.ensemble_sigma > 0.0, "ensemble_sigma must be positive")?;
        ensure(self.asw_max_batches >= 1, "asw_max_batches must be at least 1")?;
        ensure(self.asw_max_items > 0, "asw_max_items must be positive")?;
        ensure((0.0..1.0).contains(&self.asw_base_decay), "asw_base_decay must be in [0, 1)")?;
        ensure(self.asw_min_weight > 0.0, "asw_min_weight must be positive")?;
        ensure(self.learning_rate > 0.0, "learning_rate must be positive")?;
        ensure(self.pca_warmup_rows >= 2, "pca_warmup_rows must be at least 2")?;
        ensure(self.pca_components >= 1, "pca_components must be at least 1")?;
        ensure(self.shift_history >= 2, "shift_history must be at least 2")?;
        ensure(self.precompute_subsets >= 1, "precompute_subsets must be at least 1")?;
        ensure(self.asw_update_epochs >= 1, "asw_update_epochs must be at least 1")?;
        ensure(
            (0.0..=1.0).contains(&self.pseudo_label_min_purity),
            "pseudo_label_min_purity must be in [0, 1]",
        )?;
        Ok(())
    }

    /// Validates internal consistency; call after manual field edits.
    ///
    /// # Panics
    /// Panics on invalid combinations, with a message naming the field.
    pub fn validate(&self) {
        if let Err(msg) = self.check() {
            panic!("{msg}");
        }
    }

    /// The CEC experience capacity in points.
    pub fn experience_points(&self) -> usize {
        (self.exp_buffer * self.mini_batch).min(self.exp_point_cap).max(1)
    }

    with_setters! {
        /// Sets [`Self::model_num`].
        with_model_num => model_num: usize,
        /// Sets [`Self::mini_batch`].
        with_mini_batch => mini_batch: usize,
        /// Sets [`Self::kdg_buffer`].
        with_kdg_buffer => kdg_buffer: usize,
        /// Sets [`Self::exp_buffer`].
        with_exp_buffer => exp_buffer: usize,
        /// Sets [`Self::exp_point_cap`].
        with_exp_point_cap => exp_point_cap: usize,
        /// Sets [`Self::alpha`].
        with_alpha => alpha: f64,
        /// Sets [`Self::beta`].
        with_beta => beta: f64,
        /// Sets [`Self::ensemble_sigma`].
        with_ensemble_sigma => ensemble_sigma: f64,
        /// Sets [`Self::cec_cluster_multiplier`].
        with_cec_cluster_multiplier => cec_cluster_multiplier: usize,
        /// Sets [`Self::cec_min_purity`].
        with_cec_min_purity => cec_min_purity: f64,
        /// Sets [`Self::kdg_dedup_scale`].
        with_kdg_dedup_scale => kdg_dedup_scale: f64,
        /// Sets [`Self::asw_max_batches`].
        with_asw_max_batches => asw_max_batches: usize,
        /// Sets [`Self::asw_max_items`].
        with_asw_max_items => asw_max_items: usize,
        /// Sets [`Self::asw_base_decay`].
        with_asw_base_decay => asw_base_decay: f64,
        /// Sets [`Self::asw_rank_decay`].
        with_asw_rank_decay => asw_rank_decay: f64,
        /// Sets [`Self::asw_disorder_boost`].
        with_asw_disorder_boost => asw_disorder_boost: f64,
        /// Sets [`Self::asw_min_weight`].
        with_asw_min_weight => asw_min_weight: f64,
        /// Sets [`Self::learning_rate`].
        with_learning_rate => learning_rate: f64,
        /// Sets [`Self::optimizer`].
        with_optimizer => optimizer: OptimizerKind,
        /// Sets [`Self::pca_warmup_rows`].
        with_pca_warmup_rows => pca_warmup_rows: usize,
        /// Sets [`Self::pca_components`].
        with_pca_components => pca_components: usize,
        /// Sets [`Self::shift_history`].
        with_shift_history => shift_history: usize,
        /// Sets [`Self::shift_recency_decay`].
        with_shift_recency_decay => shift_recency_decay: f64,
        /// Sets [`Self::distribution_memory`].
        with_distribution_memory => distribution_memory: usize,
        /// Sets [`Self::precompute_subsets`].
        with_precompute_subsets => precompute_subsets: usize,
        /// Sets [`Self::asw_update_epochs`].
        with_asw_update_epochs => asw_update_epochs: usize,
        /// Sets [`Self::seed`].
        with_seed => seed: u64,
        /// Sets [`Self::num_threads`].
        with_num_threads => num_threads: usize,
        /// Sets [`Self::parallel_inference`].
        with_parallel_inference => parallel_inference: bool,
        /// Sets [`Self::parallel_gradient`].
        with_parallel_gradient => parallel_gradient: bool,
        /// Sets [`Self::async_long_updates`].
        with_async_long_updates => async_long_updates: bool,
        /// Sets [`Self::enable_cec`].
        with_enable_cec => enable_cec: bool,
        /// Sets [`Self::enable_knowledge`].
        with_enable_knowledge => enable_knowledge: bool,
        /// Sets [`Self::enable_pseudo_labels`].
        with_enable_pseudo_labels => enable_pseudo_labels: bool,
        /// Sets [`Self::pseudo_label_min_purity`].
        with_pseudo_label_min_purity => pseudo_label_min_purity: f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_template() {
        let c = FreewayConfig::default();
        assert_eq!(c.model_num, 2);
        assert_eq!(c.mini_batch, 1024);
        assert_eq!(c.kdg_buffer, 20);
        assert_eq!(c.exp_buffer, 10);
        assert!((c.alpha - 1.96).abs() < 1e-12);
        c.validate();
    }

    #[test]
    fn experience_points_is_capped() {
        let c = FreewayConfig::default();
        assert_eq!(c.experience_points(), 512, "10 * 1024 capped at 512");
        let small = FreewayConfig { mini_batch: 10, exp_buffer: 3, ..Default::default() };
        assert_eq!(small.experience_points(), 30);
    }

    #[test]
    fn with_setters_update_fields_and_check_reports_errors() {
        let c = FreewayConfig::default()
            .with_alpha(2.5)
            .with_mini_batch(256)
            .with_seed(7)
            .with_enable_cec(false);
        assert!((c.alpha - 2.5).abs() < 1e-12);
        assert_eq!(c.mini_batch, 256);
        assert_eq!(c.seed, 7);
        assert!(!c.enable_cec);
        assert!(c.check().is_ok());

        let err = FreewayConfig::default().with_learning_rate(0.0).check();
        assert!(err.is_err());
        assert!(err.unwrap_err().contains("learning_rate"));
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn validate_rejects_bad_alpha() {
        FreewayConfig { alpha: -1.0, ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "beta")]
    fn validate_rejects_bad_beta() {
        FreewayConfig { beta: 2.0, ..Default::default() }.validate();
    }
}

#[cfg(test)]
mod optimizer_tests {
    use super::*;

    #[test]
    fn every_optimizer_kind_builds_and_steps() {
        for kind in [
            OptimizerKind::Sgd,
            OptimizerKind::Momentum { mu: 0.9 },
            OptimizerKind::Adam,
            OptimizerKind::Ftrl,
        ] {
            let mut opt = kind.build(0.1);
            let delta = opt.step(&[1.0, -2.0], &[0.5, 0.5]);
            assert_eq!(delta.len(), 2, "{kind:?}");
            assert!(delta.iter().all(|d| d.is_finite()));
        }
    }

    #[test]
    fn optimizer_kind_serde_roundtrips() {
        let kind = OptimizerKind::Momentum { mu: 0.8 };
        let json = serde_json::to_string(&kind).unwrap();
        let back: OptimizerKind = serde_json::from_str(&json).unwrap();
        assert_eq!(kind, back);
    }
}
