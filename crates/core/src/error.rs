//! The FreewayML error taxonomy.
//!
//! The runtime's value is the state it accumulates across drifts, so a
//! production deployment must degrade instead of aborting: worker crashes
//! surface as [`FreewayError::WorkerPanicked`] and trigger a checkpoint
//! restart, poison input is quarantined (never fed to the learner), and
//! corrupt checkpoints are rejected with a [`CheckpointError`] naming
//! exactly what disagreed. Every fallible pipeline operation returns
//! `Result<_, FreewayError>`; the only paths that still panic are
//! programmer errors (invalid configurations) caught at construction.

use crate::guard::BatchFault;

/// Alias used by the pipeline API, per the supervised-runtime design:
/// pipeline operations fail with the same taxonomy the rest of the
/// framework uses.
pub type PipelineError = FreewayError;

/// Everything that can go wrong in the hardened runtime.
#[derive(Debug)]
#[non_exhaustive]
pub enum FreewayError {
    /// A configuration or builder combination failed validation; the
    /// message names the offending field.
    InvalidConfig(String),
    /// The worker thread is gone and no restart was attempted (e.g. the
    /// pipeline was already finished).
    WorkerUnavailable,
    /// The worker's input queue is full: transient backpressure, not a
    /// failure. Callers may retry, shed, or block — unlike
    /// [`Self::WorkerUnavailable`], which means the worker is dead and a
    /// retry can never succeed.
    QueueFull,
    /// The worker thread panicked; the message is the panic payload.
    WorkerPanicked(String),
    /// The worker crashed more times than the supervisor allows.
    RestartsExhausted {
        /// Restarts attempted before giving up.
        attempts: usize,
        /// Panic message of the final crash.
        last_panic: String,
    },
    /// A batch failed ingestion validation. The supervised pipeline
    /// quarantines instead of returning this; it surfaces only from
    /// explicit validation calls.
    PoisonBatch {
        /// Sequence number of the offending batch.
        seq: u64,
        /// What was wrong with it.
        fault: BatchFault,
    },
    /// A checkpoint could not be decoded, validated, or restored.
    Checkpoint(CheckpointError),
    /// Filesystem failure while persisting or loading a checkpoint.
    Io(std::io::Error),
    /// A deadline-bounded drain ([`ShardedPipeline::barrier_deadline`])
    /// gave up: the listed shards still owed work when the budget ran
    /// out. The pipeline is untouched — callers may retry, extend the
    /// budget, or escalate to fencing.
    ///
    /// [`ShardedPipeline::barrier_deadline`]:
    ///     crate::shard::ShardedPipeline::barrier_deadline
    DrainTimeout {
        /// Indices of the shards that had not reached quiescence.
        shards: Vec<usize>,
    },
}

/// Why a checkpoint was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum CheckpointError {
    /// The checkpoint's format version is not one this build understands.
    UnsupportedVersion {
        /// Version found in the checkpoint.
        found: u32,
        /// Version this build writes and accepts.
        supported: u32,
    },
    /// Level count differs from what the checkpoint's own config builds.
    LevelCountMismatch {
        /// Levels stored in the checkpoint.
        found: usize,
        /// Levels the configuration constructs.
        expected: usize,
    },
    /// A level's flat parameter vector has the wrong length for the spec.
    ParameterLengthMismatch {
        /// Index of the offending level (0 = short).
        level: usize,
        /// Parameters stored.
        found: usize,
        /// Parameters the spec requires.
        expected: usize,
    },
    /// A preserved knowledge snapshot was captured from a different
    /// architecture than the checkpoint declares.
    SnapshotSpecMismatch {
        /// Index of the offending knowledge entry.
        entry: usize,
    },
    /// The serialized form could not be parsed at all.
    Malformed(String),
    /// The payload's CRC32 does not match the checksum stored alongside
    /// it — the file was truncated or corrupted after it was written.
    CrcMismatch {
        /// Checksum stored in the envelope.
        stored: u32,
        /// Checksum computed over the payload actually read.
        computed: u32,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::UnsupportedVersion { found, supported } => {
                write!(f, "unsupported checkpoint version {found} (this build reads {supported})")
            }
            Self::LevelCountMismatch { found, expected } => {
                write!(f, "checkpoint level count mismatch: {found} stored, {expected} expected")
            }
            Self::ParameterLengthMismatch { level, found, expected } => {
                write!(
                    f,
                    "level {level} parameter length mismatch: {found} stored, {expected} expected"
                )
            }
            Self::SnapshotSpecMismatch { entry } => {
                write!(f, "knowledge entry {entry} was captured from a different model spec")
            }
            Self::Malformed(msg) => write!(f, "malformed checkpoint: {msg}"),
            Self::CrcMismatch { stored, computed } => {
                write!(
                    f,
                    "checkpoint CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
                )
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl std::fmt::Display for FreewayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            Self::WorkerUnavailable => write!(f, "pipeline worker is not running"),
            Self::QueueFull => write!(f, "pipeline queue is full (retryable backpressure)"),
            Self::WorkerPanicked(msg) => write!(f, "pipeline worker panicked: {msg}"),
            Self::RestartsExhausted { attempts, last_panic } => {
                write!(f, "worker restart budget exhausted after {attempts} attempts: {last_panic}")
            }
            Self::PoisonBatch { seq, fault } => write!(f, "poison batch (seq {seq}): {fault}"),
            Self::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
            Self::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            Self::DrainTimeout { shards } => {
                write!(f, "drain deadline elapsed with unresponsive shards {shards:?}")
            }
        }
    }
}

impl std::error::Error for FreewayError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Checkpoint(e) => Some(e),
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CheckpointError> for FreewayError {
    fn from(e: CheckpointError) -> Self {
        Self::Checkpoint(e)
    }
}

impl From<std::io::Error> for FreewayError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// Renders a `catch_unwind` payload as a human-readable message.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = FreewayError::Checkpoint(CheckpointError::UnsupportedVersion {
            found: 9,
            supported: 1,
        });
        let msg = e.to_string();
        assert!(msg.contains("version 9"), "{msg}");

        let e = FreewayError::RestartsExhausted { attempts: 3, last_panic: "boom".into() };
        assert!(e.to_string().contains("3 attempts"));
    }

    #[test]
    fn panic_message_handles_both_payload_kinds() {
        assert_eq!(panic_message(Box::new("static")), "static");
        assert_eq!(panic_message(Box::new(String::from("owned"))), "owned");
        assert_eq!(panic_message(Box::new(42u32)), "non-string panic payload");
    }
}
