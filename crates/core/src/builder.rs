//! The unified construction path for FreewayML pipelines.
//!
//! [`PipelineBuilder`] is the single place where a deployment is
//! described: model architecture, learner configuration, supervision
//! policy, and the telemetry sink are all set **before** anything spawns,
//! so observers see the run from its very first batch. It is the single
//! construction path: the legacy `spawn` constructors were removed, and
//! only [`Learner::new`] remains as a thin convenience wrapper.
//!
//! ```
//! use freeway_core::PipelineBuilder;
//! use freeway_ml::ModelSpec;
//!
//! let (builder, sink) = PipelineBuilder::new(ModelSpec::lr(8, 2)).recording();
//! let mut learner = builder
//!     .with_mini_batch(128)
//!     .with_pca_warmup_rows(128)
//!     .build_learner()
//!     .expect("valid configuration");
//! assert!(learner.telemetry().enabled());
//! assert!(sink.is_empty(), "nothing has run yet");
//! # let _ = &mut learner;
//! ```

use crate::admission::{AdmissionConfig, AdmittedPipeline};
use crate::config::FreewayConfig;
use crate::degrade::DegradationHandle;
use crate::error::FreewayError;
use crate::knowledge::SharedKnowledge;
use crate::learner::Learner;
use crate::pipeline::Pipeline;
use crate::serve::{Service, ServiceConfig};
use crate::shard::ShardedPipeline;
use crate::supervisor::{SupervisedPipeline, SupervisorConfig};
use freeway_ml::ModelSpec;
use freeway_telemetry::{RecordingSink, Telemetry, TelemetrySink};
use std::path::PathBuf;
use std::sync::Arc;

/// Fluent builder producing a [`Learner`], [`Pipeline`], or
/// [`SupervisedPipeline`] from one description.
///
/// Every `with_*` method is by-value (chainable); the `build_*` methods
/// validate the whole description at once and return
/// [`FreewayError::InvalidConfig`] on contradictions instead of
/// panicking mid-construction.
#[derive(Debug)]
pub struct PipelineBuilder {
    spec: ModelSpec,
    config: FreewayConfig,
    supervisor: SupervisorConfig,
    admission: Option<AdmissionConfig>,
    telemetry: Telemetry,
    shards: usize,
    service: Option<ServiceConfig>,
}

impl PipelineBuilder {
    /// Starts a builder for the given model architecture with default
    /// [`FreewayConfig`], default [`SupervisorConfig`], and telemetry
    /// disabled.
    pub fn new(spec: ModelSpec) -> Self {
        Self {
            spec,
            config: FreewayConfig::default(),
            supervisor: SupervisorConfig::default(),
            admission: None,
            telemetry: Telemetry::disabled(),
            shards: 1,
            service: None,
        }
    }

    /// Replaces the whole learner configuration.
    #[must_use]
    pub fn with_config(mut self, config: FreewayConfig) -> Self {
        self.config = config;
        self
    }

    /// Replaces the whole supervision policy (queue depth, checkpoint
    /// cadence, quarantine size, restart budget).
    #[must_use]
    pub fn with_supervisor_config(mut self, supervisor: SupervisorConfig) -> Self {
        self.supervisor = supervisor;
        self
    }

    /// Sets the mini-batch size ([`FreewayConfig::mini_batch`]).
    #[must_use]
    pub fn with_mini_batch(mut self, mini_batch: usize) -> Self {
        self.config.mini_batch = mini_batch;
        self
    }

    /// Sets the PCA warm-up row budget
    /// ([`FreewayConfig::pca_warmup_rows`]).
    #[must_use]
    pub fn with_pca_warmup_rows(mut self, rows: usize) -> Self {
        self.config.pca_warmup_rows = rows;
        self
    }

    /// Sets the channel bound for both spawned-pipeline variants
    /// ([`SupervisorConfig::queue_depth`], and the plain pipeline's
    /// `queue_depth`).
    #[must_use]
    pub fn with_queue_depth(mut self, queue_depth: usize) -> Self {
        self.supervisor.queue_depth = queue_depth;
        self
    }

    /// Sets the checkpoint cadence
    /// ([`SupervisorConfig::checkpoint_every_n_batches`]).
    #[must_use]
    pub fn with_checkpoint_every(mut self, batches: usize) -> Self {
        self.supervisor.checkpoint_every_n_batches = batches;
        self
    }

    /// Persists checkpoints to this path atomically
    /// ([`SupervisorConfig::checkpoint_path`]).
    #[must_use]
    pub fn with_checkpoint_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.supervisor.checkpoint_path = Some(path.into());
        self
    }

    /// Sets the dead-letter buffer size
    /// ([`SupervisorConfig::quarantine_capacity`]).
    #[must_use]
    pub fn with_quarantine_capacity(mut self, capacity: usize) -> Self {
        self.supervisor.quarantine_capacity = capacity;
        self
    }

    /// Sets the worker restart budget
    /// ([`SupervisorConfig::max_restarts`]).
    #[must_use]
    pub fn with_max_restarts(mut self, max_restarts: usize) -> Self {
        self.supervisor.max_restarts = max_restarts;
        self
    }

    /// Arms the liveness watchdog: a worker owing work that makes no
    /// heartbeat progress for this long is declared stalled and forcibly
    /// recovered ([`SupervisorConfig::stall_deadline`]). Off by default.
    #[must_use]
    pub fn with_stall_deadline(mut self, deadline: std::time::Duration) -> Self {
        self.supervisor.stall_deadline = Some(deadline);
        self
    }

    /// Enables or disables sequence-number validation at the guard
    /// ([`SupervisorConfig::check_seq`]).
    #[must_use]
    pub fn with_check_seq(mut self, check_seq: bool) -> Self {
        self.supervisor.check_seq = check_seq;
        self
    }

    /// Attaches a telemetry sink: metrics, stage timings, and the full
    /// event stream flow into it from the first batch onward.
    #[must_use]
    pub fn with_telemetry_sink(mut self, sink: Arc<dyn TelemetrySink>) -> Self {
        self.telemetry = Telemetry::attached(sink);
        self
    }

    /// Attaches a pre-built telemetry handle (shared across components).
    #[must_use]
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Enables the durable ingest journal
    /// ([`SupervisorConfig::journal`]): every accepted batch is appended
    /// to a segmented write-ahead log at the config's path, and crash
    /// recovery replays journaled batches instead of dropping in-flight
    /// work — effectively-once semantics (see the
    /// [`crate::journal`] module docs). Applies to every supervised
    /// build target; [`Self::build_sharded`] gives each shard its own
    /// log at `<path>.shard<i>` so one shard's crash replays only that
    /// shard.
    #[must_use]
    pub fn journal(mut self, config: crate::journal::JournalConfig) -> Self {
        self.supervisor.journal = Some(config);
        self
    }

    /// Puts admission control in front of the supervised pipeline:
    /// overload policy, bounded shed buffer, and (via
    /// [`AdmissionConfig::ladder`]) the graceful-degradation ladder.
    /// Only [`Self::build_admitted`] consumes this; the other build
    /// targets ignore it, so admission stays zero-cost when disabled.
    #[must_use]
    pub fn admission(mut self, config: AdmissionConfig) -> Self {
        self.admission = Some(config);
        self
    }

    /// Sets the shard count for [`Self::build_sharded`]: keyed batches
    /// are hash-routed across `n` independent admitted pipelines sharing
    /// one telemetry stream and one cross-shard knowledge registry. The
    /// other build targets ignore this.
    #[must_use]
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Configures the multi-client serving facade for
    /// [`Self::build_service`] (submit queue depth, retry pacing hint,
    /// feed-order recording). The other build targets ignore this;
    /// `build_service` without it uses [`ServiceConfig::default`].
    #[must_use]
    pub fn service(mut self, config: ServiceConfig) -> Self {
        self.service = Some(config);
        self
    }

    /// Convenience: attaches an in-memory [`RecordingSink`] and hands it
    /// back so the caller can read events after (or during) the run.
    #[must_use]
    pub fn recording(mut self) -> (Self, Arc<RecordingSink>) {
        let (telemetry, sink) = Telemetry::recording();
        self.telemetry = telemetry;
        (self, sink)
    }

    /// Builds the bare learner (synchronous use, no worker thread).
    ///
    /// # Errors
    /// [`FreewayError::InvalidConfig`] naming the offending field.
    pub fn build_learner(self) -> Result<Learner, FreewayError> {
        Self::check_supervisor(&self.supervisor)?;
        Learner::try_new(self.spec, self.config, self.telemetry)
    }

    /// Builds the plain worker-thread pipeline (no supervision).
    ///
    /// # Errors
    /// As [`Self::build_learner`], plus a zero queue depth.
    pub fn build(self) -> Result<Pipeline, FreewayError> {
        let queue_depth = self.supervisor.queue_depth;
        let learner = self.build_learner()?;
        Pipeline::with_learner(learner, queue_depth)
    }

    /// Builds the fault-tolerant supervised pipeline.
    ///
    /// # Errors
    /// As [`Self::build_learner`], plus invalid supervision knobs.
    pub fn build_supervised(self) -> Result<SupervisedPipeline, FreewayError> {
        let supervisor = self.supervisor.clone();
        let learner = self.build_learner()?;
        SupervisedPipeline::with_learner(learner, supervisor)
    }

    /// Builds the supervised pipeline behind admission control (the
    /// config set via [`Self::admission`], or [`AdmissionConfig::default`]
    /// when none was set). The learner, the supervisor, and the ladder
    /// all share one [`DegradationHandle`], so a level change made by the
    /// ladder is visible to the worker thread on its very next batch —
    /// and survives crash-restore, because the supervisor re-attaches the
    /// handle to the recovered learner.
    ///
    /// # Errors
    /// As [`Self::build_supervised`], plus invalid admission knobs.
    pub fn build_admitted(self) -> Result<AdmittedPipeline, FreewayError> {
        let admission = self.admission.clone().unwrap_or_default();
        admission.check().map_err(FreewayError::InvalidConfig)?;
        let supervisor = self.supervisor.clone();
        let handle = DegradationHandle::new();
        let mut learner = self.build_learner()?;
        learner.attach_degradation(handle.clone());
        let inner = SupervisedPipeline::with_learner(learner, supervisor)?;
        AdmittedPipeline::new(inner, admission, handle)
    }

    /// Builds the sharded multi-tenant runtime: [`Self::shards`] admitted
    /// pipelines behind a hash router, sharing one telemetry stream and
    /// one cross-shard [`SharedKnowledge`] registry (capacity
    /// [`FreewayConfig::kdg_buffer`], like each shard's local store).
    ///
    /// Thread budget (see [`FreewayConfig::num_threads`] for the full
    /// policy): the kernel worker pool is process-wide and shared by all
    /// shards, so with `n` shards the compute threads are the `n` shard
    /// workers plus the pool. The resolved kernel thread count is
    /// `FREEWAY_THREADS` when set, else `num_threads` (`0` meaning
    /// "cores / shards", i.e. hand the whole budget to the shards).
    /// Multi-shard with a parallel kernel pool must fit the host:
    /// `shards + kernel_threads > cores` is rejected. Serial kernels
    /// (the default) permit any shard count — workers beyond the core
    /// count time-slice, they do not oversubscribe kernel compute.
    ///
    /// Per-shard checkpoint paths get a `.shard<i>` suffix so shards
    /// never clobber each other's persisted generations.
    ///
    /// # Errors
    /// As [`Self::build_admitted`], plus a zero shard count or an
    /// oversubscribing shard/kernel-thread split.
    pub fn build_sharded(self) -> Result<ShardedPipeline, FreewayError> {
        if self.shards == 0 {
            return Err(FreewayError::InvalidConfig("shard count must be positive".to_owned()));
        }
        Self::check_supervisor(&self.supervisor)?;
        let admission = self.admission.clone().unwrap_or_default();
        admission.check().map_err(FreewayError::InvalidConfig)?;
        let cores = std::thread::available_parallelism().map_or(1, usize::from);
        let requested = std::env::var("FREEWAY_THREADS")
            .ok()
            .and_then(|raw| raw.trim().parse::<usize>().ok())
            .unwrap_or(self.config.num_threads);
        let kernel_threads = if requested == 0 {
            // Auto: the shard workers are the parallelism; give the
            // kernel pool whatever cores the workers leave over.
            (cores / self.shards).max(1)
        } else {
            requested
        };
        if self.shards > 1 && kernel_threads > 1 && self.shards + kernel_threads > cores {
            return Err(FreewayError::InvalidConfig(format!(
                "{} shards + {kernel_threads} kernel threads oversubscribe {cores} cores; \
                 use serial kernels (num_threads = 1) or fewer shards \
                 (see FreewayConfig::num_threads)",
                self.shards
            )));
        }
        let mut config = self.config;
        config.num_threads = kernel_threads;
        let shared = SharedKnowledge::new(config.kdg_buffer);
        let mut shards = Vec::with_capacity(self.shards);
        for shard in 0..self.shards {
            let mut supervisor = self.supervisor.clone();
            if let Some(path) = supervisor.checkpoint_path.take() {
                supervisor.checkpoint_path =
                    Some(PathBuf::from(format!("{}.shard{shard}", path.display())));
            }
            if let Some(journal) = supervisor.journal.as_mut() {
                // One log per shard: a crash on shard i replays only
                // shard i's admitted batches.
                journal.path = PathBuf::from(format!("{}.shard{shard}", journal.path.display()));
            }
            let handle = DegradationHandle::new();
            let mut learner =
                Learner::try_new(self.spec.clone(), config.clone(), self.telemetry.clone())?;
            learner.attach_degradation(handle.clone());
            if self.shards > 1 {
                // A single shard gets no registry handle: lookups could
                // only ever see its own entries (which are excluded), so
                // attaching would just spend publish work — and skipping
                // it keeps 1-shard runs byte-identical to the plain
                // pipeline (the parity oracle).
                learner.attach_shared_knowledge(&shared, shard);
            }
            let mut inner = SupervisedPipeline::with_learner(learner, supervisor)?;
            if self.shards > 1 {
                inner.set_shared_knowledge(shared.clone(), shard);
            }
            shards.push(AdmittedPipeline::new(inner, admission.clone(), handle)?);
        }
        Ok(ShardedPipeline::new(shards, shared, self.telemetry))
    }

    /// Builds the serving facade: a [`Self::build_sharded`] runtime owned
    /// by a router thread, fronted by cloneable [`crate::ServiceHandle`]s
    /// whose keyed [`crate::ClientSession`]s submit concurrently (see
    /// [`crate::serve`]). Configure with [`Self::service`]; a single
    /// shard is a valid (unsharded) service.
    ///
    /// # Errors
    /// As [`Self::build_sharded`], plus invalid service knobs.
    pub fn build_service(mut self) -> Result<Service, FreewayError> {
        let config = self.service.take().unwrap_or_default();
        let pipeline = self.build_sharded()?;
        Service::start(pipeline, config)
    }

    fn check_supervisor(supervisor: &SupervisorConfig) -> Result<(), FreewayError> {
        if supervisor.queue_depth == 0 {
            return Err(FreewayError::InvalidConfig("queue depth must be positive".to_owned()));
        }
        if supervisor.checkpoint_every_n_batches == 0 {
            return Err(FreewayError::InvalidConfig(
                "checkpoint cadence must be positive".to_owned(),
            ));
        }
        if supervisor.quarantine_capacity == 0 {
            return Err(FreewayError::InvalidConfig(
                "quarantine capacity must be positive".to_owned(),
            ));
        }
        if supervisor.stall_deadline.is_some_and(|deadline| deadline.is_zero()) {
            return Err(FreewayError::InvalidConfig(
                "stall deadline must be positive when set".to_owned(),
            ));
        }
        if let Some(journal) = supervisor.journal.as_ref() {
            if journal.segment_max_bytes == 0 {
                return Err(FreewayError::InvalidConfig(
                    "journal segment size must be positive".to_owned(),
                ));
            }
            if journal.fsync_every_n_appends == 0 {
                return Err(FreewayError::InvalidConfig(
                    "journal fsync cadence must be positive".to_owned(),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freeway_streams::concept::{stream_rng, GmmConcept};
    use freeway_streams::{Batch, DriftPhase};

    fn spec() -> ModelSpec {
        ModelSpec::lr(4, 2)
    }

    #[test]
    fn invalid_learner_config_is_an_error_not_a_panic() {
        let err = PipelineBuilder::new(spec())
            .with_config(FreewayConfig { alpha: -1.0, ..Default::default() })
            .build_learner()
            .err()
            .expect("negative alpha is invalid");
        assert!(matches!(err, FreewayError::InvalidConfig(_)), "got {err:?}");
        assert!(err.to_string().contains("alpha"), "message names the field: {err}");
    }

    #[test]
    fn invalid_supervision_is_an_error_not_a_panic() {
        let err = PipelineBuilder::new(spec())
            .with_queue_depth(0)
            .build_supervised()
            .err()
            .expect("zero queue depth is invalid");
        assert!(matches!(err, FreewayError::InvalidConfig(_)), "got {err:?}");
        let err = PipelineBuilder::new(spec())
            .with_checkpoint_every(0)
            .build_learner()
            .err()
            .expect("zero cadence is invalid even for a bare learner");
        assert!(err.to_string().contains("cadence"), "{err}");
    }

    #[test]
    fn recording_builder_wires_the_sink_through_the_whole_stack() {
        let mut rng = stream_rng(31);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let (builder, sink) = PipelineBuilder::new(spec()).recording();
        let mut learner = builder
            .with_mini_batch(64)
            .with_pca_warmup_rows(32)
            .build_learner()
            .expect("valid configuration");
        for i in 0..6 {
            let (x, y) = concept.sample_batch(64, &mut rng);
            learner.process(&Batch::labeled(x, y, i, DriftPhase::Stable));
        }
        assert!(!sink.is_empty(), "processing batches must emit events");
        let snapshot = learner.telemetry().metrics();
        assert_eq!(snapshot.counters.get("freeway_batches_total"), Some(&6));
    }

    #[test]
    fn supervised_builder_runs_a_stream() {
        let mut rng = stream_rng(32);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let mut sup = PipelineBuilder::new(spec())
            .with_mini_batch(64)
            .with_pca_warmup_rows(32)
            .with_queue_depth(8)
            .build_supervised()
            .expect("valid configuration");
        for i in 0..5 {
            let (x, y) = concept.sample_batch(64, &mut rng);
            sup.feed_prequential(Batch::labeled(x, y, i, DriftPhase::Stable)).expect("healthy");
        }
        let run = sup.finish().expect("clean finish");
        assert_eq!(run.stats.accepted, 5);
    }
}
