//! FreewayML core: the adaptive, stable streaming-learning framework.
//!
//! This crate assembles the paper's three adaptive mechanisms behind a
//! single [`learner::Learner`] facade whose constructor mirrors the
//! paper's interface
//! (`Learner(Model, ModelNum, MiniBatch, KdgBuffer, ExpBuffer, α)`):
//!
//! * [`asw`] — the *adaptive streaming window* feeding the
//!   long-granularity model, with disorder-aware decay (§IV-B, Alg. 1);
//! * [`granularity`] — multi-time-granularity models and the Gaussian-
//!   kernel distance ensemble (Equations 12–14);
//! * [`knowledge`] — the `KdgBuffer` store with disorder-gated
//!   preservation and distance matching (§IV-D);
//! * [`selector`] — the strategy selector built on the shift tracker;
//! * [`learner`] — the public API tying everything together;
//! * [`pipeline`] — the threaded train/infer pipeline with asynchronous
//!   long-model updates (§V-A);
//! * [`rate`] — the rate-aware adjuster (§V-B).
//!
//! The fault-tolerance layer lives in three further modules: [`error`]
//! (the `FreewayError` taxonomy every fallible runtime operation
//! returns), [`guard`] (ingestion validation and the poison-batch
//! quarantine), and [`supervisor`] (the checkpointed, auto-restarting
//! [`supervisor::SupervisedPipeline`]).
//!
//! The overload-resilience layer sits on top of it: [`admission`]
//! (admission policies, counted load shedding, and the
//! [`admission::AdmittedPipeline`] wrapper), [`degrade`] (the
//! graceful-degradation ladder with hysteresis), and [`retry`]
//! (bounded exponential backoff with deterministic jitter, used for
//! checkpoint persistence).
//!
//! The scale-out layer is [`shard`]: the keyed, hash-routed
//! [`shard::ShardedPipeline`] running one admitted pipeline per shard
//! over a shared cross-shard knowledge registry
//! ([`knowledge::SharedKnowledge`]).
//!
//! The liveness layer is [`liveness`]: per-worker heartbeat ledgers and
//! the stall watchdog behind
//! [`supervisor::SupervisedPipeline::check_liveness`], plus shard
//! *fencing* — a shard whose restart budget exhausts is isolated and its
//! keys deterministically rerouted ([`shard::failover_shard`]) instead of
//! erroring the whole runtime.
//!
//! The serving layer is [`serve`]: a router thread owning the sharded
//! runtime behind cloneable [`serve::ServiceHandle`]s, so many
//! concurrent clients submit through keyed [`serve::ClientSession`]s
//! with typed backpressure ([`serve::ServeError::Busy`]) and receive
//! exactly their own answers.
//!
//! Construction goes through [`builder::PipelineBuilder`] — one fluent
//! description of model, configuration, supervision, and telemetry sink
//! that builds everything from a bare `Learner` up to a multi-client
//! `Service`. Observability (metrics, per-stage timings, and the
//! structured event stream) comes from the `freeway-telemetry` crate,
//! re-exported here as [`telemetry`].

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod admission;
pub mod asw;
pub mod builder;
pub mod config;
pub mod degrade;
pub mod error;
pub mod granularity;
pub mod guard;
pub mod journal;
pub mod knowledge;
pub mod learner;
pub mod liveness;
pub mod persistence;
pub mod pipeline;
pub mod rate;
pub mod retry;
pub mod selector;
pub mod serve;
pub mod shard;
pub mod supervisor;

pub use freeway_telemetry as telemetry;

pub use admission::{
    AdmissionConfig, AdmissionOutcome, AdmissionPolicy, AdmissionStats, AdmittedPipeline,
    AdmittedRun, ShedBatch, ShedBuffer, ShedReason,
};
pub use builder::PipelineBuilder;
pub use config::{FreewayConfig, OptimizerKind};
pub use degrade::{DegradationHandle, DegradationLadder, DegradationLevel, LadderConfig};
pub use error::{CheckpointError, FreewayError, PipelineError};
pub use guard::{BatchFault, BatchGuard, GuardPolicy, Quarantine};
pub use journal::{frame_batch, Journal, JournalConfig, JournalRecord, JournalStats};
pub use knowledge::{SharedEntry, SharedKnowledge, SharedReader};
pub use learner::{InferenceReport, Learner, Strategy, StrategyStats};
pub use liveness::{HeartbeatLedger, WatchdogState, WorkerStage};
pub use persistence::{crc32, Checkpoint, CheckpointStore, CHECKPOINT_VERSION};
pub use pipeline::{Pipeline, PipelineOutput};
pub use retry::RetryPolicy;
pub use selector::StrategySelector;
pub use serve::{
    busy_hint, AdmittedRecord, ClientSession, ServeError, Service, ServiceConfig, ServiceHandle,
    ServiceReport, ServiceStats, SessionOutput, SubmitOutcome,
};
pub use shard::{failover_shard, shard_for, ShardedPipeline, ShardedRun};
pub use supervisor::{
    FeedOutcome, FinishedRun, SupervisedPipeline, SupervisorConfig, SupervisorStats, TryFeedOutcome,
};

/// Curated one-line import surface:
/// `use freeway_core::prelude::*;` pulls in everything a typical
/// deployment touches — the builder, configuration, the learner types,
/// both pipelines, the error taxonomy, and the telemetry handles.
pub mod prelude {
    pub use crate::admission::{
        AdmissionConfig, AdmissionOutcome, AdmissionPolicy, AdmissionStats, AdmittedPipeline,
        AdmittedRun, ShedReason,
    };
    pub use crate::builder::PipelineBuilder;
    pub use crate::config::{FreewayConfig, OptimizerKind};
    pub use crate::degrade::{DegradationLevel, LadderConfig};
    pub use crate::error::{CheckpointError, FreewayError, PipelineError};
    pub use crate::guard::{BatchFault, Quarantine};
    pub use crate::journal::{Journal, JournalConfig, JournalStats};
    pub use crate::knowledge::{SharedEntry, SharedKnowledge};
    pub use crate::learner::{InferenceReport, Learner, Strategy, StrategyStats};
    pub use crate::liveness::{HeartbeatLedger, WatchdogState, WorkerStage};
    pub use crate::pipeline::{Pipeline, PipelineOutput};
    pub use crate::serve::{
        ClientSession, ServeError, Service, ServiceConfig, ServiceHandle, ServiceReport,
        SessionOutput, SubmitOutcome,
    };
    pub use crate::shard::{failover_shard, shard_for, ShardedPipeline, ShardedRun};
    pub use crate::supervisor::{
        FeedOutcome, FinishedRun, SupervisedPipeline, SupervisorConfig, SupervisorStats,
        TryFeedOutcome,
    };
    pub use freeway_telemetry::{
        RecordingSink, Stage, Telemetry, TelemetryEvent, TelemetrySink, TelemetrySnapshot,
    };
}
