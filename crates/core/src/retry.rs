//! Bounded retry with exponential backoff and deterministic jitter.
//!
//! Checkpoint persistence hits a real filesystem, and real filesystems
//! stall: a slow disk, a full volume, an NFS hiccup. Killing the worker
//! over a transient write failure would be exactly the fragility the
//! supervised runtime exists to avoid, so persistence I/O runs under a
//! [`RetryPolicy`] — a handful of attempts with exponentially growing,
//! jittered sleeps. Jitter comes from a seeded xorshift generator, not
//! the clock, so two runs with the same seed sleep the same schedule
//! (within OS scheduling noise) and tests stay deterministic.

use std::time::Duration;

/// How many times to try, and how long to wait between tries.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Total attempts, including the first (so `1` means no retry).
    pub max_attempts: u32,
    /// Sleep after the first failure; doubles after each subsequent one.
    pub base_delay: Duration,
    /// Upper bound on any single sleep, applied before jitter.
    pub max_delay: Duration,
    /// Seed for the jitter generator.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(50),
            seed: 0x5eed_cafe,
        }
    }
}

/// Splitmix-style step used to derive jitter; pure function of the
/// previous state, so the schedule is reproducible from the seed.
fn xorshift(state: &mut u64) -> u64 {
    let mut x = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    *state = x;
    x
}

impl RetryPolicy {
    /// The sleep before retry number `attempt` (1-based: attempt 1 is the
    /// first *retry*): `base * 2^(attempt-1)`, capped at `max_delay`,
    /// then scaled by a jitter factor in `[0.5, 1.0]` drawn from
    /// `rng_state`. Exposed for tests and for callers that schedule
    /// their own sleeps.
    pub fn backoff(&self, attempt: u32, rng_state: &mut u64) -> Duration {
        let exp = attempt.saturating_sub(1).min(20);
        let raw = self.base_delay.saturating_mul(1u32 << exp).min(self.max_delay);
        let jitter = 0.5 + (xorshift(rng_state) >> 11) as f64 / (1u64 << 53) as f64 * 0.5;
        Duration::from_secs_f64(raw.as_secs_f64() * jitter)
    }

    /// Runs `op` until it succeeds or the attempt budget is spent,
    /// sleeping the jittered backoff between attempts. Returns the first
    /// success, or the error from the final attempt.
    ///
    /// # Errors
    /// Whatever `op` returned on its last attempt.
    pub fn run<T, E>(&self, mut op: impl FnMut() -> Result<T, E>) -> Result<T, E> {
        let mut rng_state = self.seed;
        let attempts = self.max_attempts.max(1);
        let mut attempt = 0;
        loop {
            match op() {
                Ok(value) => return Ok(value),
                Err(err) => {
                    attempt += 1;
                    if attempt >= attempts {
                        return Err(err);
                    }
                    std::thread::sleep(self.backoff(attempt, &mut rng_state));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn succeeds_first_try_without_sleeping() {
        let policy = RetryPolicy { base_delay: Duration::from_secs(60), ..Default::default() };
        let calls = std::cell::Cell::new(0u32);
        let out: Result<u32, ()> = policy.run(|| {
            calls.set(calls.get() + 1);
            Ok(7)
        });
        assert_eq!(out, Ok(7));
        assert_eq!(calls.get(), 1);
    }

    #[test]
    fn retries_until_the_budget_then_returns_the_last_error() {
        let policy = RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_micros(10),
            max_delay: Duration::from_micros(50),
            seed: 1,
        };
        let calls = std::cell::Cell::new(0u32);
        let out: Result<(), u32> = policy.run(|| {
            calls.set(calls.get() + 1);
            Err(calls.get())
        });
        assert_eq!(out, Err(4));
        assert_eq!(calls.get(), 4);
    }

    #[test]
    fn recovers_after_transient_failures() {
        let policy = RetryPolicy {
            max_attempts: 5,
            base_delay: Duration::from_micros(10),
            max_delay: Duration::from_micros(50),
            seed: 2,
        };
        let calls = std::cell::Cell::new(0u32);
        let out: Result<&str, &str> = policy.run(|| {
            calls.set(calls.get() + 1);
            if calls.get() < 3 {
                Err("transient")
            } else {
                Ok("recovered")
            }
        });
        assert_eq!(out, Ok("recovered"));
        assert_eq!(calls.get(), 3);
    }

    #[test]
    fn backoff_grows_caps_and_is_deterministic() {
        let policy = RetryPolicy {
            max_attempts: 8,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(16),
            seed: 42,
        };
        let mut a = policy.seed;
        let mut b = policy.seed;
        let first: Vec<Duration> = (1..=6).map(|i| policy.backoff(i, &mut a)).collect();
        let second: Vec<Duration> = (1..=6).map(|i| policy.backoff(i, &mut b)).collect();
        assert_eq!(first, second, "same seed, same schedule");
        for (i, d) in first.iter().enumerate() {
            let raw = policy.base_delay.saturating_mul(1 << i).min(policy.max_delay);
            assert!(*d <= raw, "jitter only shrinks: {d:?} vs {raw:?}");
            assert!(d.as_secs_f64() >= raw.as_secs_f64() * 0.5 - 1e-12, "jitter floor is half");
        }
        // The cap binds from attempt 4 on (2ms * 8 = 16ms).
        assert!(first[5] <= Duration::from_millis(16));
    }
}
