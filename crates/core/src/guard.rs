//! Ingestion guard: batch validation and the poison-batch quarantine.
//!
//! A NaN-laced or wrong-width batch fed straight into the learner panics
//! deep inside the math substrate (`partial_cmp(..).expect("finite")`,
//! shape asserts) — after the stream has already poisoned parameters.
//! The guard validates every batch **at the pipeline boundary**, before
//! any learner state is touched, and the supervisor diverts rejected
//! batches into a counted, bounded dead-letter buffer instead of
//! panicking. Unlabeled batches are *not* faults: the pipeline degrades
//! them to inference-only service.

use freeway_streams::Batch;
use std::collections::VecDeque;

/// Why a batch was rejected at ingestion.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum BatchFault {
    /// The batch holds no rows.
    Empty,
    /// Feature width differs from the model's input dimension.
    WidthMismatch {
        /// Columns found.
        found: usize,
        /// Columns the model expects.
        expected: usize,
    },
    /// Label vector length differs from the row count.
    LabelCountMismatch {
        /// Feature rows.
        rows: usize,
        /// Labels supplied.
        labels: usize,
    },
    /// A label is outside `0..num_classes`.
    LabelOutOfRange {
        /// Row carrying the label.
        row: usize,
        /// The offending label.
        label: usize,
        /// Number of classes the model has.
        classes: usize,
    },
    /// A feature value is NaN or infinite.
    NonFiniteFeature {
        /// Row of the first offending value.
        row: usize,
        /// Column of the first offending value.
        col: usize,
    },
    /// The batch repeats the previously accepted sequence number.
    DuplicateSeq {
        /// The repeated sequence number.
        seq: u64,
    },
    /// The batch's sequence number moves backwards.
    RegressedSeq {
        /// The regressing sequence number.
        seq: u64,
        /// Highest sequence number accepted so far.
        newest: u64,
    },
}

impl BatchFault {
    /// Short static tag identifying the fault kind, used in telemetry
    /// events and metric labels.
    pub fn tag(&self) -> &'static str {
        match self {
            Self::Empty => "empty",
            Self::WidthMismatch { .. } => "width-mismatch",
            Self::LabelCountMismatch { .. } => "label-count-mismatch",
            Self::LabelOutOfRange { .. } => "label-out-of-range",
            Self::NonFiniteFeature { .. } => "non-finite-feature",
            Self::DuplicateSeq { .. } => "duplicate-seq",
            Self::RegressedSeq { .. } => "regressed-seq",
        }
    }
}

impl std::fmt::Display for BatchFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Empty => write!(f, "empty batch"),
            Self::WidthMismatch { found, expected } => {
                write!(f, "feature width {found}, model expects {expected}")
            }
            Self::LabelCountMismatch { rows, labels } => {
                write!(f, "{labels} labels for {rows} rows")
            }
            Self::LabelOutOfRange { row, label, classes } => {
                write!(f, "row {row}: label {label} out of range for {classes} classes")
            }
            Self::NonFiniteFeature { row, col } => {
                write!(f, "non-finite feature at row {row}, column {col}")
            }
            Self::DuplicateSeq { seq } => write!(f, "duplicate sequence number {seq}"),
            Self::RegressedSeq { seq, newest } => {
                write!(f, "sequence number {seq} regresses behind {newest}")
            }
        }
    }
}

/// What the guard validates against.
#[derive(Clone, Copy, Debug)]
pub struct GuardPolicy {
    /// Feature dimension every batch must match.
    pub expected_features: usize,
    /// Number of classes labels must stay below.
    pub num_classes: usize,
    /// Reject duplicate / regressing sequence numbers. Disable for
    /// sources that legitimately re-emit (e.g. cycling file streams).
    pub check_seq: bool,
}

/// Stateful batch validator (tracks the newest accepted `seq`).
#[derive(Clone, Debug)]
pub struct BatchGuard {
    policy: GuardPolicy,
    newest_seq: Option<u64>,
}

impl BatchGuard {
    /// Creates a guard for the given policy.
    pub fn new(policy: GuardPolicy) -> Self {
        Self { policy, newest_seq: None }
    }

    /// Validates a batch; `Ok` admits it (and advances the seq watermark),
    /// `Err` names the first fault found. Checks are ordered cheapest
    /// first; the non-finite scan is the only O(rows × cols) pass.
    pub fn admit(&mut self, batch: &Batch) -> Result<(), BatchFault> {
        self.inspect(batch)?;
        self.accept(batch.seq);
        Ok(())
    }

    /// Validation only — the seq watermark does **not** advance. The
    /// admission controller needs this split: an inspected batch may
    /// still bounce off a full queue and be re-offered later, which
    /// `admit`'s eager watermark would misreport as a duplicate. Call
    /// [`Self::accept`] once the batch is actually enqueued.
    pub fn inspect(&self, batch: &Batch) -> Result<(), BatchFault> {
        if batch.is_empty() {
            return Err(BatchFault::Empty);
        }
        if batch.dim() != self.policy.expected_features {
            return Err(BatchFault::WidthMismatch {
                found: batch.dim(),
                expected: self.policy.expected_features,
            });
        }
        if let Some(labels) = batch.labels.as_deref() {
            if labels.len() != batch.len() {
                return Err(BatchFault::LabelCountMismatch {
                    rows: batch.len(),
                    labels: labels.len(),
                });
            }
            for (row, &label) in labels.iter().enumerate() {
                if label >= self.policy.num_classes {
                    return Err(BatchFault::LabelOutOfRange {
                        row,
                        label,
                        classes: self.policy.num_classes,
                    });
                }
            }
        }
        let cols = batch.dim();
        if let Some(flat) = batch.x.as_slice().iter().position(|v| !v.is_finite()) {
            return Err(BatchFault::NonFiniteFeature { row: flat / cols, col: flat % cols });
        }
        if self.policy.check_seq {
            if let Some(newest) = self.newest_seq {
                if batch.seq == newest {
                    return Err(BatchFault::DuplicateSeq { seq: batch.seq });
                }
                if batch.seq < newest {
                    return Err(BatchFault::RegressedSeq { seq: batch.seq, newest });
                }
            }
        }
        Ok(())
    }

    /// Advances the seq watermark after a successfully enqueued batch.
    /// Pair with [`Self::inspect`]; [`Self::admit`] does both.
    pub fn accept(&mut self, seq: u64) {
        self.newest_seq = Some(seq);
    }

    /// Highest sequence number accepted so far.
    pub fn newest_seq(&self) -> Option<u64> {
        self.newest_seq
    }
}

/// One quarantined batch, held for inspection.
#[derive(Clone, Debug)]
pub struct QuarantinedBatch {
    /// The rejected batch itself (dead-letter payload).
    pub batch: Batch,
    /// Why it was rejected.
    pub fault: BatchFault,
}

/// Bounded dead-letter buffer for poison batches.
///
/// Every rejection is *counted*; only the most recent `capacity` batches
/// are *kept* (oldest evicted first), so a poison flood cannot grow
/// memory without bound.
#[derive(Clone, Debug)]
pub struct Quarantine {
    entries: VecDeque<QuarantinedBatch>,
    capacity: usize,
    total: u64,
    evicted: u64,
}

impl Quarantine {
    /// Creates a quarantine keeping at most `capacity` batches.
    pub fn new(capacity: usize) -> Self {
        Self { entries: VecDeque::new(), capacity: capacity.max(1), total: 0, evicted: 0 }
    }

    /// Records a poison batch, evicting the oldest if full.
    pub fn push(&mut self, batch: Batch, fault: BatchFault) {
        self.total += 1;
        if self.entries.len() >= self.capacity {
            self.entries.pop_front();
            self.evicted += 1;
        }
        self.entries.push_back(QuarantinedBatch { batch, fault });
    }

    /// Every rejection ever recorded (kept or evicted).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Batches evicted to respect the capacity bound.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The retained dead-letter batches, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &QuarantinedBatch> {
        self.entries.iter()
    }

    /// Number of batches currently retained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freeway_linalg::Matrix;
    use freeway_streams::DriftPhase;

    fn guard() -> BatchGuard {
        BatchGuard::new(GuardPolicy { expected_features: 3, num_classes: 2, check_seq: true })
    }

    fn clean(seq: u64) -> Batch {
        Batch::labeled(Matrix::filled(4, 3, 1.0), vec![0, 1, 0, 1], seq, DriftPhase::Stable)
    }

    #[test]
    fn clean_batches_are_admitted_in_order() {
        let mut g = guard();
        assert_eq!(g.admit(&clean(0)), Ok(()));
        assert_eq!(g.admit(&clean(1)), Ok(()));
        assert_eq!(g.admit(&clean(5)), Ok(()), "gaps are fine, only regressions are not");
        assert_eq!(g.newest_seq(), Some(5));
    }

    #[test]
    fn rejects_nan_and_inf_with_position() {
        let mut g = guard();
        let mut b = clean(0);
        b.x.row_mut(2)[1] = f64::NAN;
        assert_eq!(g.admit(&b), Err(BatchFault::NonFiniteFeature { row: 2, col: 1 }));
        let mut b = clean(0);
        b.x.row_mut(0)[0] = f64::INFINITY;
        assert_eq!(g.admit(&b), Err(BatchFault::NonFiniteFeature { row: 0, col: 0 }));
    }

    #[test]
    fn rejects_width_and_label_faults() {
        let mut g = guard();
        let wide = Batch::labeled(Matrix::filled(2, 4, 0.0), vec![0, 1], 0, DriftPhase::Stable);
        assert!(matches!(g.admit(&wide), Err(BatchFault::WidthMismatch { found: 4, expected: 3 })));

        // Bypass the Batch::labeled assert the way corrupt deserialized
        // input would.
        let ragged = Batch {
            x: Matrix::filled(3, 3, 0.0),
            labels: Some(vec![0, 1]),
            seq: 0,
            phase: DriftPhase::Stable,
        };
        assert!(matches!(g.admit(&ragged), Err(BatchFault::LabelCountMismatch { .. })));

        let hot = Batch::labeled(Matrix::filled(2, 3, 0.0), vec![0, 7], 0, DriftPhase::Stable);
        assert!(matches!(g.admit(&hot), Err(BatchFault::LabelOutOfRange { label: 7, .. })));
    }

    #[test]
    fn rejects_duplicate_and_regressing_seq() {
        let mut g = guard();
        g.admit(&clean(3)).unwrap();
        assert_eq!(g.admit(&clean(3)), Err(BatchFault::DuplicateSeq { seq: 3 }));
        assert_eq!(g.admit(&clean(1)), Err(BatchFault::RegressedSeq { seq: 1, newest: 3 }));
        // A rejection must not advance the watermark.
        assert_eq!(g.admit(&clean(4)), Ok(()));
    }

    #[test]
    fn inspect_does_not_advance_the_watermark() {
        let mut g = guard();
        assert_eq!(g.inspect(&clean(3)), Ok(()));
        assert_eq!(g.newest_seq(), None, "inspection alone must not commit");
        // The same batch can be inspected again (a queue-full re-offer).
        assert_eq!(g.inspect(&clean(3)), Ok(()));
        g.accept(3);
        assert_eq!(g.newest_seq(), Some(3));
        assert_eq!(g.inspect(&clean(3)), Err(BatchFault::DuplicateSeq { seq: 3 }));
    }

    #[test]
    fn unlabeled_batches_are_not_faults() {
        let mut g = guard();
        let b = Batch::unlabeled(Matrix::filled(2, 3, 0.5), 0, DriftPhase::Stable);
        assert_eq!(g.admit(&b), Ok(()));
    }

    #[test]
    fn quarantine_is_counted_and_bounded() {
        let mut q = Quarantine::new(2);
        for seq in 0..5 {
            q.push(clean(seq), BatchFault::DuplicateSeq { seq });
        }
        assert_eq!(q.total(), 5);
        assert_eq!(q.len(), 2, "capacity bound holds");
        assert_eq!(q.evicted(), 3);
        let seqs: Vec<u64> = q.entries().map(|e| e.batch.seq).collect();
        assert_eq!(seqs, vec![3, 4], "newest retained");
    }
}
