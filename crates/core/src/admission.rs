//! Admission control in front of the supervised pipeline: bounded
//! backlog, counted load shedding, and the degradation ladder.
//!
//! The supervised runtime survives *faults*; this module makes it
//! survive *overload*. Without it, a producer faster than the worker has
//! two bad options: block (unbounded producer latency — the stream backs
//! up upstream) or grow a queue (unbounded memory). [`AdmittedPipeline`]
//! gives it governed options instead:
//!
//! * **policy** ([`AdmissionPolicy`]) decides what happens when the
//!   worker queue is full — block, shed the newest batch, shed the
//!   oldest backlogged batch, or spend a bounded latency budget first;
//! * **shed batches** land in a counted, bounded [`ShedBuffer`]
//!   (mirroring the poison quarantine), each announced as
//!   [`TelemetryEvent::BatchShed`];
//! * a [`DegradationLadder`] watches queue pressure (and, optionally,
//!   measured train-stage cost) and steps the learner's service level
//!   down before shedding becomes the only option, then back up —
//!   with hysteresis — once the load clears.
//!
//! The controller is a wrapper, not a mode: pipelines built without it
//! are byte-for-byte the code that ran before, so admission control is
//! zero-cost when disabled.

use crate::degrade::{DegradationHandle, DegradationLadder, DegradationLevel, LadderConfig};
use crate::error::FreewayError;
use crate::guard::Quarantine;
use crate::learner::Learner;
use crate::pipeline::PipelineOutput;
use crate::supervisor::{FinishedRun, SupervisedPipeline, SupervisorStats, TryFeedOutcome};
use freeway_streams::Batch;
use freeway_telemetry::{Telemetry, TelemetryEvent, DURATION_SECONDS_BOUNDS};
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// What to do with a batch when the worker queue is full.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum AdmissionPolicy {
    /// Wait for queue space (the pre-admission behaviour). Producer
    /// latency is unbounded; nothing is ever dropped.
    Block,
    /// Keep a bounded backlog; once it is full, drop the *incoming*
    /// batch. Preserves the oldest waiting work (FIFO fairness).
    SheddingNewest,
    /// Keep a bounded backlog; once it is full, drop the *oldest*
    /// backlogged batch to make room for the incoming one. Preserves
    /// recency — the right trade for drift tracking, where the newest
    /// data describes the current distribution.
    SheddingOldest,
    /// Retry for up to `budget`, then drop the incoming batch. Bounds
    /// producer latency explicitly.
    Deadline {
        /// Maximum time one feed call may spend waiting for queue space.
        budget: Duration,
    },
}

impl AdmissionPolicy {
    /// Static tag used in config validation messages and exports.
    pub fn tag(&self) -> &'static str {
        match self {
            Self::Block => "block",
            Self::SheddingNewest => "shedding-newest",
            Self::SheddingOldest => "shedding-oldest",
            Self::Deadline { .. } => "deadline",
        }
    }
}

/// Why a batch was shed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ShedReason {
    /// Worker queue and backlog were both full.
    QueueFull,
    /// The [`AdmissionPolicy::Deadline`] budget expired.
    DeadlineExceeded,
    /// The degradation ladder reached [`DegradationLevel::Shed`].
    Degraded,
    /// The shard owning this pipeline exhausted its restart budget and
    /// was fenced; the batch (and any backlog) is dropped here while
    /// subsequent traffic for its keys is rerouted to surviving shards.
    Fenced,
}

impl ShedReason {
    /// Static tag used in telemetry events and exports.
    pub fn tag(self) -> &'static str {
        match self {
            Self::QueueFull => "queue-full",
            Self::DeadlineExceeded => "deadline-exceeded",
            Self::Degraded => "degraded",
            Self::Fenced => "fenced",
        }
    }
}

/// One shed batch, held for inspection.
#[derive(Clone, Debug)]
pub struct ShedBatch {
    /// The dropped batch itself.
    pub batch: Batch,
    /// Why it was dropped.
    pub reason: ShedReason,
}

/// Bounded, counted buffer of shed batches (the overload mirror of the
/// poison [`Quarantine`]): every shed is counted, only the most recent
/// `capacity` are kept, so shedding never grows memory without bound.
#[derive(Clone, Debug)]
pub struct ShedBuffer {
    entries: VecDeque<ShedBatch>,
    capacity: usize,
    total: u64,
    evicted: u64,
}

impl ShedBuffer {
    fn new(capacity: usize) -> Self {
        Self { entries: VecDeque::new(), capacity: capacity.max(1), total: 0, evicted: 0 }
    }

    fn push(&mut self, batch: Batch, reason: ShedReason) {
        self.total += 1;
        if self.entries.len() >= self.capacity {
            self.entries.pop_front();
            self.evicted += 1;
        }
        self.entries.push_back(ShedBatch { batch, reason });
    }

    /// Every shed ever recorded (kept or evicted).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Sheds evicted to respect the capacity bound.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// The retained shed batches, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &ShedBatch> {
        self.entries.iter()
    }

    /// Number of batches currently retained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Admission-control knobs.
#[derive(Clone, Debug)]
pub struct AdmissionConfig {
    /// What to do when the worker queue is full.
    pub policy: AdmissionPolicy,
    /// Batches held caller-side while the worker queue is full (not used
    /// by [`AdmissionPolicy::Block`] / [`AdmissionPolicy::Deadline`]).
    pub backlog_capacity: usize,
    /// How many shed batches the [`ShedBuffer`] retains (all are counted
    /// regardless).
    pub shed_capacity: usize,
    /// Degradation ladder; `None` disables graceful degradation (the
    /// policy alone governs overload).
    pub ladder: Option<LadderConfig>,
    /// When set, measured mean train-stage cost per batch is normalized
    /// against this budget and folded into the ladder's pressure signal
    /// (`max` with queue occupancy), so a slow stage degrades service
    /// even while the queue still has room.
    pub stage_budget: Option<Duration>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            policy: AdmissionPolicy::SheddingNewest,
            backlog_capacity: 32,
            shed_capacity: 64,
            ladder: Some(LadderConfig::default()),
            stage_budget: None,
        }
    }
}

impl AdmissionConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// A message naming the offending field, in the builder's
    /// `InvalidConfig` style.
    pub fn check(&self) -> Result<(), String> {
        if let AdmissionPolicy::Deadline { budget } = self.policy {
            if budget.is_zero() {
                return Err("admission deadline budget must be positive".to_owned());
            }
        }
        if matches!(self.policy, AdmissionPolicy::SheddingNewest | AdmissionPolicy::SheddingOldest)
            && self.backlog_capacity == 0
        {
            return Err(format!(
                "admission policy {} needs a positive backlog capacity",
                self.policy.tag()
            ));
        }
        if self.shed_capacity == 0 {
            return Err("admission shed capacity must be positive".to_owned());
        }
        if let Some(stage_budget) = self.stage_budget {
            if stage_budget.is_zero() {
                return Err("admission stage budget must be positive".to_owned());
            }
        }
        if let Some(ladder) = &self.ladder {
            ladder.check()?;
        }
        Ok(())
    }
}

/// What happened to a batch offered to [`AdmittedPipeline::feed`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum AdmissionOutcome {
    /// The batch reached the worker (possibly after a wait).
    Admitted,
    /// The batch is waiting caller-side in the bounded backlog; it will
    /// reach the worker on a later feed/drain call.
    Backlogged,
    /// The batch failed validation and sits in the poison quarantine.
    Quarantined(crate::guard::BatchFault),
    /// The batch was dropped under the configured policy.
    Shed(ShedReason),
}

/// Counters describing admission control over one run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Batches offered to [`AdmittedPipeline::feed`].
    pub offered: u64,
    /// Batches that reached the worker.
    pub admitted: u64,
    /// Batches shed (all reasons; see the [`ShedBuffer`] for detail).
    pub shed: u64,
    /// Batches quarantined as poison (also counted in
    /// [`SupervisorStats::quarantined`]).
    pub quarantined: u64,
    /// High-water mark of the caller-side backlog.
    pub backlog_peak: usize,
    /// Degradation-ladder transitions (both directions).
    pub degradation_transitions: u64,
}

/// A [`SupervisedPipeline`] behind admission control. Construct via
/// [`crate::PipelineBuilder::admission`] + `build_admitted`.
pub struct AdmittedPipeline {
    inner: SupervisedPipeline,
    config: AdmissionConfig,
    /// Batches accepted by the guard-side policy but not yet on the
    /// worker queue, oldest first, with their prequential flag.
    backlog: VecDeque<(Batch, bool)>,
    shed: ShedBuffer,
    ladder: Option<DegradationLadder>,
    handle: DegradationHandle,
    stats: AdmissionStats,
    telemetry: Telemetry,
    /// Train-stage histogram shared with the worker's `StageSpan`s, plus
    /// the (sum, count) watermark of the previous pressure reading —
    /// the delta gives mean seconds per batch over the recent window.
    train_stage: freeway_telemetry::Histogram,
    stage_watermark: (f64, u64),
    /// Raised by [`Self::fence`] after the shard's restart budget
    /// exhausted: every subsequent offer is shed with
    /// [`ShedReason::Fenced`] instead of touching the dead worker.
    fenced: bool,
}

impl AdmittedPipeline {
    /// Wraps a supervised pipeline in admission control. The learner
    /// driving `inner` must already share `handle` (the builder attaches
    /// it before spawning the worker).
    ///
    /// # Errors
    /// [`FreewayError::InvalidConfig`] when `config` fails
    /// [`AdmissionConfig::check`].
    pub fn new(
        mut inner: SupervisedPipeline,
        config: AdmissionConfig,
        handle: DegradationHandle,
    ) -> Result<Self, FreewayError> {
        config.check().map_err(FreewayError::InvalidConfig)?;
        inner.set_degradation_handle(handle.clone());
        let telemetry = inner.telemetry().clone();
        let ladder =
            config.ladder.map(|lc| DegradationLadder::new(lc, handle.clone(), telemetry.clone()));
        let train_stage =
            telemetry.histogram("freeway_stage_train_seconds", DURATION_SECONDS_BOUNDS);
        let shed = ShedBuffer::new(config.shed_capacity);
        Ok(Self {
            inner,
            config,
            backlog: VecDeque::new(),
            shed,
            ladder,
            handle,
            stats: AdmissionStats::default(),
            telemetry,
            train_stage,
            stage_watermark: (0.0, 0),
            fenced: false,
        })
    }

    /// Offers a training/inference batch (routed by labeledness).
    ///
    /// # Errors
    /// As [`SupervisedPipeline::feed`] — supervision errors, never
    /// backpressure (that is what the policy absorbs).
    pub fn feed(&mut self, batch: Batch) -> Result<AdmissionOutcome, FreewayError> {
        self.offer(batch, false)
    }

    /// Offers a prequential batch; see [`Self::feed`].
    ///
    /// # Errors
    /// As [`Self::feed`].
    pub fn feed_prequential(&mut self, batch: Batch) -> Result<AdmissionOutcome, FreewayError> {
        self.offer(batch, true)
    }

    fn offer(&mut self, batch: Batch, prequential: bool) -> Result<AdmissionOutcome, FreewayError> {
        self.stats.offered += 1;
        if self.fenced {
            // Defensive: the sharded router stops sending here once the
            // fence is up, but a direct caller still gets a counted,
            // typed verdict instead of a dead-worker error.
            self.shed_batch(batch, ShedReason::Fenced);
            return Ok(AdmissionOutcome::Shed(ShedReason::Fenced));
        }
        let seq = batch.seq;
        self.drain_backlog()?;
        let outcome = if self.handle.level() == DegradationLevel::Shed {
            // The ladder's last resort: even inference is load we cannot
            // afford. Shedding here keeps the queue draining so the
            // recovery observations below can actually happen.
            self.shed_batch(batch, ShedReason::Degraded);
            AdmissionOutcome::Shed(ShedReason::Degraded)
        } else {
            self.offer_with_policy(batch, prequential)?
        };
        self.observe_pressure(seq);
        Ok(outcome)
    }

    fn offer_with_policy(
        &mut self,
        batch: Batch,
        prequential: bool,
    ) -> Result<AdmissionOutcome, FreewayError> {
        // A non-empty backlog means older batches are still waiting; the
        // incoming one must not jump the queue (the guard would see its
        // seq regress when the backlog drains). Only the shedding
        // policies ever backlog, so Block/Deadline always take the direct
        // path.
        let full = if self.backlog.is_empty() {
            match self.try_inner(batch, prequential)? {
                Ok(outcome) => return Ok(outcome),
                Err(batch) => batch,
            }
        } else {
            batch
        };
        match self.config.policy {
            AdmissionPolicy::Block => {
                // Backpressure by waiting: hand the batch to the blocking
                // path, which pumps worker output until space frees up.
                let outcome = if prequential {
                    self.inner.feed_prequential(full)?
                } else {
                    self.inner.feed(full)?
                };
                self.stats.admitted += 1;
                match outcome {
                    crate::supervisor::FeedOutcome::Accepted => Ok(AdmissionOutcome::Admitted),
                    crate::supervisor::FeedOutcome::Quarantined(fault) => {
                        // Unreachable in practice: try_inner validated
                        // already. Kept total for safety.
                        self.stats.admitted -= 1;
                        self.stats.quarantined += 1;
                        Ok(AdmissionOutcome::Quarantined(fault))
                    }
                }
            }
            AdmissionPolicy::SheddingNewest => {
                if self.backlog.len() < self.config.backlog_capacity {
                    self.push_backlog(full, prequential);
                    Ok(AdmissionOutcome::Backlogged)
                } else {
                    self.shed_batch(full, ShedReason::QueueFull);
                    Ok(AdmissionOutcome::Shed(ShedReason::QueueFull))
                }
            }
            AdmissionPolicy::SheddingOldest => {
                if self.backlog.len() >= self.config.backlog_capacity {
                    if let Some((oldest, _)) = self.backlog.pop_front() {
                        self.shed_batch(oldest, ShedReason::QueueFull);
                    }
                }
                self.push_backlog(full, prequential);
                Ok(AdmissionOutcome::Backlogged)
            }
            AdmissionPolicy::Deadline { budget } => {
                let deadline = Instant::now() + budget;
                let mut batch = full;
                loop {
                    if Instant::now() >= deadline {
                        self.shed_batch(batch, ShedReason::DeadlineExceeded);
                        return Ok(AdmissionOutcome::Shed(ShedReason::DeadlineExceeded));
                    }
                    std::thread::sleep(Duration::from_micros(100));
                    match self.try_inner(batch, prequential)? {
                        Ok(outcome) => return Ok(outcome),
                        Err(returned) => batch = returned,
                    }
                }
            }
        }
    }

    /// One non-blocking offer to the inner pipeline. `Ok(Ok(..))` means
    /// the batch was resolved (admitted or quarantined); `Ok(Err(b))`
    /// hands the batch back on a full queue.
    fn try_inner(
        &mut self,
        batch: Batch,
        prequential: bool,
    ) -> Result<Result<AdmissionOutcome, Batch>, FreewayError> {
        let outcome = if prequential {
            self.inner.try_feed_prequential(batch)?
        } else {
            self.inner.try_feed(batch)?
        };
        Ok(match outcome {
            TryFeedOutcome::Accepted => {
                self.stats.admitted += 1;
                Ok(AdmissionOutcome::Admitted)
            }
            TryFeedOutcome::Quarantined(fault) => {
                self.stats.quarantined += 1;
                Ok(AdmissionOutcome::Quarantined(fault))
            }
            TryFeedOutcome::Full(batch) => Err(batch),
        })
    }

    fn push_backlog(&mut self, batch: Batch, prequential: bool) {
        self.backlog.push_back((batch, prequential));
        self.stats.backlog_peak = self.stats.backlog_peak.max(self.backlog.len());
    }

    /// Moves as many backlogged batches to the worker as fit right now.
    fn drain_backlog(&mut self) -> Result<(), FreewayError> {
        while let Some((batch, prequential)) = self.backlog.pop_front() {
            match self.try_inner(batch, prequential)? {
                Ok(_) => {}
                Err(batch) => {
                    self.backlog.push_front((batch, prequential));
                    break;
                }
            }
        }
        Ok(())
    }

    fn shed_batch(&mut self, batch: Batch, reason: ShedReason) {
        self.stats.shed += 1;
        self.telemetry.emit(TelemetryEvent::BatchShed { seq: batch.seq, reason: reason.tag() });
        self.shed.push(batch, reason);
    }

    /// Feeds the ladder one pressure observation. Pressure is normalized
    /// occupancy of queue + backlog; when a stage budget is configured,
    /// the mean train-stage cost per batch since the last observation is
    /// normalized against it and the *worse* of the two signals drives
    /// the ladder.
    fn observe_pressure(&mut self, seq: u64) {
        let Some(ladder) = self.ladder.as_mut() else { return };
        let capacity = self.inner.queue_depth() + self.config.backlog_capacity;
        let mut pressure = if capacity == 0 {
            0.0
        } else {
            (self.inner.in_flight() + self.backlog.len()) as f64 / capacity as f64
        };
        if let Some(stage_budget) = self.config.stage_budget {
            let sum = self.train_stage.sum();
            let count = self.train_stage.count();
            let (prev_sum, prev_count) = self.stage_watermark;
            if count > prev_count {
                let mean = (sum - prev_sum) / (count - prev_count) as f64;
                pressure = pressure.max(mean / stage_budget.as_secs_f64());
                self.stage_watermark = (sum, count);
            }
        }
        let before = ladder.level();
        let after = ladder.observe(seq, pressure);
        if before != after {
            self.stats.degradation_transitions += 1;
        }
    }

    /// Receives the next output without blocking; see
    /// [`SupervisedPipeline::try_recv`]. Also opportunistically drains
    /// the backlog — consuming outputs is what frees queue space.
    ///
    /// # Errors
    /// As [`SupervisedPipeline::try_recv`].
    pub fn try_recv(&mut self) -> Result<Option<PipelineOutput>, FreewayError> {
        let out = self.inner.try_recv()?;
        self.drain_backlog()?;
        Ok(out)
    }

    /// Current degradation service level.
    pub fn degradation_level(&self) -> DegradationLevel {
        self.handle.level()
    }

    /// Admission counters so far.
    pub fn stats(&self) -> AdmissionStats {
        self.stats
    }

    /// Supervision counters so far (accepted, restarts, checkpoints…).
    pub fn supervisor_stats(&self) -> SupervisorStats {
        self.inner.stats()
    }

    /// The shed-batch buffer (counted, bounded).
    pub fn shed(&self) -> &ShedBuffer {
        &self.shed
    }

    /// The poison quarantine of the wrapped pipeline.
    pub fn quarantine(&self) -> &Quarantine {
        self.inner.quarantine()
    }

    /// Batches waiting caller-side for queue space.
    pub fn backlog_len(&self) -> usize {
        self.backlog.len()
    }

    /// Normalized occupancy of worker queue + backlog in `[0, 1]`; the
    /// measured queue-pressure signal behind dynamic `Busy` retry hints.
    pub fn occupancy(&self) -> f64 {
        let capacity = self.inner.queue_depth() + self.config.backlog_capacity;
        if capacity == 0 {
            return 0.0;
        }
        let filled = (self.inner.in_flight() + self.backlog.len()).min(capacity);
        filled as f64 / capacity as f64
    }

    /// Whether this pipeline has been fenced (restart budget exhausted).
    pub fn is_fenced(&self) -> bool {
        self.fenced
    }

    /// Fences the pipeline after its restart budget exhausted: the
    /// backlog is drained into the shed buffer as [`ShedReason::Fenced`]
    /// (those batches were waiting for a worker that will never return)
    /// and every future offer is shed the same way. Outputs the dead
    /// worker already produced stay consumable via [`Self::try_recv`].
    pub(crate) fn fence(&mut self) {
        if self.fenced {
            return;
        }
        self.fenced = true;
        while let Some((batch, _prequential)) = self.backlog.pop_front() {
            self.shed_batch(batch, ShedReason::Fenced);
        }
    }

    /// Counts a batch that was consumed by the feed that *triggered* the
    /// fence (it was handed to a worker that died before answering, past
    /// the restart budget — there is nothing left to retain).
    pub(crate) fn note_fenced_drop(&mut self, seq: u64) {
        self.stats.shed += 1;
        self.telemetry.emit(TelemetryEvent::BatchShed { seq, reason: ShedReason::Fenced.tag() });
    }

    /// Liveness passthrough: polls the wrapped supervisor's stall
    /// watchdog (see [`SupervisedPipeline::check_liveness`]); after a
    /// forced recovery the backlog is drained into the fresh worker's
    /// empty queue. A fenced pipeline reports `Ok(false)` without
    /// touching the dead worker.
    ///
    /// # Errors
    /// As [`SupervisedPipeline::check_liveness`].
    pub fn check_liveness(&mut self) -> Result<bool, FreewayError> {
        if self.fenced {
            return Ok(false);
        }
        let recovered = self.inner.check_liveness()?;
        if recovered {
            self.drain_backlog()?;
        }
        Ok(recovered)
    }

    /// Chaos hook passthrough: artificially slow the worker's train
    /// stage; see [`SupervisedPipeline::set_chaos_train_delay`].
    pub fn set_chaos_train_delay(&self, delay: Duration) {
        self.inner.set_chaos_train_delay(delay);
    }

    /// Chaos hook passthrough: artificially slow checkpoint persistence;
    /// see [`SupervisedPipeline::set_chaos_persist_delay`].
    pub fn set_chaos_persist_delay(&self, delay: Duration) {
        self.inner.set_chaos_persist_delay(delay);
    }

    /// Chaos hook passthrough: artificially slow journal fsyncs; see
    /// [`SupervisedPipeline::set_chaos_journal_sync_delay`].
    pub fn set_chaos_journal_sync_delay(&self, delay: Duration) {
        self.inner.set_chaos_journal_sync_delay(delay);
    }

    /// Journal counters of the wrapped pipeline (`None` without a
    /// journal). Shed batches never reach the supervisor, so they are
    /// never journaled — the log holds exactly the admitted stream.
    pub fn journal_stats(&self) -> Option<crate::journal::JournalStats> {
        self.inner.journal_stats()
    }

    /// Direct access to the wrapped pipeline (tests and harnesses).
    pub fn supervisor(&mut self) -> &mut SupervisedPipeline {
        &mut self.inner
    }

    /// Flushes the backlog (blocking — these batches were accepted for
    /// service, not shed) and finishes the wrapped pipeline, returning
    /// the run plus this controller's view of what was shed.
    ///
    /// # Errors
    /// As [`SupervisedPipeline::finish`].
    pub fn finish(mut self) -> Result<AdmittedRun, FreewayError> {
        while let Some((batch, prequential)) = self.backlog.pop_front() {
            if prequential {
                self.inner.feed_prequential(batch)?;
            } else {
                self.inner.feed(batch)?;
            }
            self.stats.admitted += 1;
        }
        let run = self.inner.finish()?;
        Ok(AdmittedRun { run, admission: self.stats, shed: self.shed })
    }
}

/// Everything a finished admitted run hands back.
pub struct AdmittedRun {
    /// The wrapped supervised run (learner, outputs, stats, quarantine).
    pub run: FinishedRun,
    /// Admission counters.
    pub admission: AdmissionStats,
    /// The shed-batch buffer.
    pub shed: ShedBuffer,
}

/// Recovers a trained [`Learner`] plus all remaining outputs; sugar over
/// the nested [`FinishedRun`].
impl AdmittedRun {
    /// The learner recovered from the run.
    pub fn learner(&self) -> &Learner {
        &self.run.learner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::PipelineBuilder;
    use crate::config::FreewayConfig;
    use crate::supervisor::SupervisorConfig;
    use freeway_ml::ModelSpec;
    use freeway_streams::concept::{stream_rng, GmmConcept};
    use freeway_streams::DriftPhase;

    fn build(policy: AdmissionPolicy, queue_depth: usize, backlog: usize) -> AdmittedPipeline {
        PipelineBuilder::new(ModelSpec::lr(4, 2))
            .with_config(FreewayConfig {
                pca_warmup_rows: 32,
                mini_batch: 64,
                ..Default::default()
            })
            .with_supervisor_config(SupervisorConfig { queue_depth, ..Default::default() })
            .admission(AdmissionConfig {
                policy,
                backlog_capacity: backlog,
                shed_capacity: 8,
                ladder: None,
                stage_budget: None,
            })
            .build_admitted()
            .expect("valid admission build")
    }

    fn batches(n: u64, seed: u64) -> Vec<Batch> {
        let mut rng = stream_rng(seed);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        (0..n)
            .map(|i| {
                let (x, y) = concept.sample_batch(48, &mut rng);
                Batch::labeled(x, y, i, DriftPhase::Stable)
            })
            .collect()
    }

    #[test]
    fn config_validation_names_the_field() {
        let bad = AdmissionConfig {
            policy: AdmissionPolicy::Deadline { budget: Duration::ZERO },
            ..Default::default()
        };
        assert!(bad.check().unwrap_err().contains("deadline"));
        let bad = AdmissionConfig { backlog_capacity: 0, ..Default::default() };
        assert!(bad.check().unwrap_err().contains("backlog"));
        let bad = AdmissionConfig { shed_capacity: 0, ..Default::default() };
        assert!(bad.check().unwrap_err().contains("shed"));
        assert!(AdmissionConfig::default().check().is_ok());
    }

    #[test]
    fn block_policy_never_sheds() {
        let mut p = build(AdmissionPolicy::Block, 2, 0);
        p.set_chaos_train_delay(Duration::from_millis(2));
        for b in batches(20, 31) {
            let outcome = p.feed_prequential(b).expect("healthy");
            assert_eq!(outcome, AdmissionOutcome::Admitted);
        }
        let run = p.finish().expect("finish");
        assert_eq!(run.admission.shed, 0);
        assert_eq!(run.admission.admitted, 20);
        assert_eq!(run.run.stats.accepted, 20);
    }

    #[test]
    fn shedding_newest_bounds_memory_and_counts_sheds() {
        let mut p = build(AdmissionPolicy::SheddingNewest, 1, 2);
        p.set_chaos_train_delay(Duration::from_millis(25));
        let mut shed = 0u64;
        let mut backlogged = 0u64;
        for b in batches(30, 32) {
            match p.feed_prequential(b).expect("healthy") {
                AdmissionOutcome::Shed(ShedReason::QueueFull) => shed += 1,
                AdmissionOutcome::Backlogged => backlogged += 1,
                AdmissionOutcome::Admitted => {}
                other => panic!("unexpected outcome: {other:?}"),
            }
            assert!(p.backlog_len() <= 2, "backlog bound holds");
        }
        assert!(shed > 0, "a 25ms worker behind a 1-deep queue must shed");
        assert!(backlogged > 0, "the backlog absorbs the first overflow");
        p.set_chaos_train_delay(Duration::ZERO);
        let run = p.finish().expect("finish");
        assert_eq!(run.admission.shed, shed);
        assert_eq!(run.shed.total(), shed);
        assert!(run.shed.len() <= 8, "shed buffer is bounded");
        assert_eq!(run.admission.offered, 30);
        assert_eq!(run.admission.admitted + run.admission.shed, 30);
    }

    #[test]
    fn shedding_oldest_keeps_the_newest_work() {
        let mut p = build(AdmissionPolicy::SheddingOldest, 1, 2);
        p.set_chaos_train_delay(Duration::from_millis(25));
        let all = batches(30, 33);
        let last_seq = all.last().map(|b| b.seq).unwrap_or(0);
        for b in all {
            let outcome = p.feed_prequential(b).expect("healthy");
            assert!(
                !matches!(outcome, AdmissionOutcome::Shed(_)) || p.shed().total() > 0,
                "shedding-oldest sheds from the backlog, not the offer"
            );
        }
        p.set_chaos_train_delay(Duration::ZERO);
        let run = p.finish().expect("finish");
        assert!(run.shed.total() > 0, "overload must shed");
        // The newest offered batch is never the victim under
        // SheddingOldest: it always enters the backlog and is flushed at
        // finish.
        assert!(run.shed.entries().all(|s| s.batch.seq != last_seq));
        assert_eq!(run.admission.offered, 30);
        assert_eq!(run.admission.admitted + run.admission.shed, 30);
    }

    #[test]
    fn deadline_policy_bounds_producer_latency() {
        let mut p = build(AdmissionPolicy::Deadline { budget: Duration::from_millis(5) }, 1, 0);
        p.set_chaos_train_delay(Duration::from_millis(40));
        let mut shed = 0u64;
        let mut worst = Duration::ZERO;
        for b in batches(12, 34) {
            let start = Instant::now();
            if let AdmissionOutcome::Shed(reason) = p.feed_prequential(b).expect("healthy") {
                assert_eq!(reason, ShedReason::DeadlineExceeded);
                shed += 1;
            }
            worst = worst.max(start.elapsed());
        }
        assert!(shed > 0, "a 40ms worker must blow a 5ms budget");
        assert!(
            worst < Duration::from_millis(250),
            "producer latency must stay near the budget, got {worst:?}"
        );
        p.set_chaos_train_delay(Duration::ZERO);
        let run = p.finish().expect("finish");
        assert_eq!(run.admission.offered, 12);
    }

    #[test]
    fn ladder_degrades_under_load_and_recovers() {
        let mut p = PipelineBuilder::new(ModelSpec::lr(4, 2))
            .with_config(FreewayConfig {
                pca_warmup_rows: 32,
                mini_batch: 64,
                ..Default::default()
            })
            .with_supervisor_config(SupervisorConfig { queue_depth: 2, ..Default::default() })
            .admission(AdmissionConfig {
                policy: AdmissionPolicy::SheddingNewest,
                backlog_capacity: 2,
                shed_capacity: 64,
                ladder: Some(LadderConfig {
                    downgrade_above: 0.7,
                    upgrade_below: 0.3,
                    dwell_down: 2,
                    dwell_up: 3,
                }),
                stage_budget: None,
            })
            .build_admitted()
            .expect("valid admission build");
        p.set_chaos_train_delay(Duration::from_millis(25));
        let mut degraded_seen = false;
        for b in batches(25, 35) {
            p.feed_prequential(b).expect("healthy");
            if p.degradation_level() != DegradationLevel::Full {
                degraded_seen = true;
            }
        }
        assert!(degraded_seen, "sustained overload must step the ladder down");
        // Clear the load and keep feeding, paced below the service rate so
        // occupancy actually falls: the ladder must come back up. The loop
        // is condition-driven (with a generous cap) because how fast the
        // queue drains depends on machine load.
        p.set_chaos_train_delay(Duration::ZERO);
        let mut rng = stream_rng(99);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        for seq in 25..425 {
            if p.degradation_level() == DegradationLevel::Full {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
            while p.try_recv().expect("healthy").is_some() {}
            let (x, y) = concept.sample_batch(48, &mut rng);
            p.feed_prequential(Batch::labeled(x, y, seq, DriftPhase::Stable)).expect("healthy");
        }
        assert_eq!(
            p.degradation_level(),
            DegradationLevel::Full,
            "recovery must walk the ladder back up"
        );
        let run = p.finish().expect("finish");
        assert!(run.admission.degradation_transitions >= 2, "{:?}", run.admission);
    }
}
