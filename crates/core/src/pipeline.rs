//! The train/infer pipeline (§V-A).
//!
//! The paper deploys FreewayML as a multi-process architecture with
//! asynchronous updates. This reproduction maps that onto a dedicated
//! worker thread owning the learner, fed through a bounded crossbeam
//! channel: producers never block on model updates shorter than the
//! channel's slack, updates are atomic because exactly one thread touches
//! parameters, and the labeled/unlabeled split of the paper's single
//! input stream happens at the worker.
//!
//! The worker body runs under `catch_unwind`, so a panic inside the
//! learner surfaces as [`PipelineError::WorkerPanicked`] from
//! [`Pipeline::finish`] instead of aborting the process. This type is the
//! unsupervised primitive: it reports failure but does not recover. For
//! checkpointed auto-restart and poison-batch quarantine, wrap the same
//! worker in [`crate::supervisor::SupervisedPipeline`].

use crate::error::{panic_message, PipelineError};
use crate::learner::{InferenceReport, Learner};
use crossbeam::channel::{bounded, Receiver, Sender, TrySendError};
use freeway_telemetry::Stage;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Output of the pipeline for one batch.
#[derive(Clone, Debug)]
pub struct PipelineOutput {
    /// Sequence number of the batch this refers to.
    pub seq: u64,
    /// Inference report (`None` for training-only batches).
    pub report: Option<InferenceReport>,
}

enum Command {
    Batch(freeway_streams::Batch),
    /// Prequential batch: infer first, then train on the same data.
    Prequential(freeway_streams::Batch),
}

/// Recovers the batch from a command a failed send handed back.
fn command_batch(cmd: Command) -> freeway_streams::Batch {
    match cmd {
        Command::Batch(batch) | Command::Prequential(batch) => batch,
    }
}

/// A running pipeline around a [`Learner`].
pub struct Pipeline {
    /// `None` once the channel has been closed (by `finish` or `Drop`).
    input: Option<Sender<Command>>,
    output: Receiver<PipelineOutput>,
    handle: Option<JoinHandle<Result<Learner, String>>>,
}

impl Pipeline {
    /// Spawns the worker thread. `queue_depth` bounds both channels,
    /// providing backpressure instead of unbounded memory growth. The
    /// learner's [`freeway_telemetry::Telemetry`] handle rides along into
    /// the worker: queue waits are timed as the `ingest` stage and every
    /// batch bumps the shared sequence cursor.
    ///
    /// # Errors
    /// [`PipelineError::InvalidConfig`] when `queue_depth` is zero.
    pub fn with_learner(mut learner: Learner, queue_depth: usize) -> Result<Self, PipelineError> {
        if queue_depth == 0 {
            return Err(PipelineError::InvalidConfig("queue depth must be positive".to_owned()));
        }
        let telemetry = learner.telemetry().clone();
        let (in_tx, in_rx) = bounded::<Command>(queue_depth);
        let (out_tx, out_rx) = bounded::<PipelineOutput>(queue_depth);
        let handle = std::thread::spawn(move || {
            // A learner panic must not abort the process: catch it and
            // hand the payload back through `join`. The learner is moved
            // into the closure, so a caught panic forfeits it — exactly
            // the semantics the supervisor's checkpoint restart assumes.
            catch_unwind(AssertUnwindSafe(move || {
                loop {
                    // The ingest span covers queue wait: how long the
                    // worker starved before the next batch arrived.
                    let cmd = {
                        let _span = telemetry.time(Stage::Ingest);
                        match in_rx.recv() {
                            Ok(cmd) => cmd,
                            Err(_) => break,
                        }
                    };
                    match cmd {
                        Command::Batch(batch) => {
                            telemetry.batch_started(batch.seq);
                            // The paper's routing: labeled data is the
                            // training stream, unlabeled the inference
                            // stream.
                            let report = match batch.labels.as_deref() {
                                Some(labels) => {
                                    learner.train(&batch.x, labels);
                                    None
                                }
                                None => Some(learner.infer(&batch.x)),
                            };
                            if out_tx.send(PipelineOutput { seq: batch.seq, report }).is_err() {
                                break;
                            }
                        }
                        Command::Prequential(batch) => {
                            let report = learner.process(&batch);
                            if out_tx
                                .send(PipelineOutput { seq: batch.seq, report: Some(report) })
                                .is_err()
                            {
                                break;
                            }
                        }
                    }
                }
                learner
            }))
            .map_err(panic_message)
        });
        Ok(Self { input: Some(in_tx), output: out_rx, handle: Some(handle) })
    }

    fn send(&self, cmd: Command) -> Result<(), PipelineError> {
        let Some(input) = self.input.as_ref() else {
            return Err(PipelineError::WorkerUnavailable);
        };
        // A send error means the worker dropped its receiver — it either
        // panicked or exited; `finish` can still recover the payload.
        input.send(cmd).map_err(|_| PipelineError::WorkerUnavailable)
    }

    /// Feeds a batch, routed by labeledness (blocks when the queue is
    /// full — backpressure).
    ///
    /// Both channels are bounded by `queue_depth`: every fed batch
    /// produces one output, so a producer that feeds more than
    /// `2 * queue_depth` batches without receiving will block until the
    /// consumer drains. Interleave [`Self::recv`]/[`Self::try_recv`] with
    /// feeding.
    ///
    /// # Errors
    /// [`PipelineError::WorkerUnavailable`] when the worker has exited
    /// (e.g. after a panic); call [`Self::finish`] for the panic message.
    pub fn feed(&self, batch: freeway_streams::Batch) -> Result<(), PipelineError> {
        self.send(Command::Batch(batch))
    }

    /// Feeds a prequential batch (infer-then-train on the same data).
    ///
    /// # Errors
    /// [`PipelineError::WorkerUnavailable`] when the worker has exited.
    pub fn feed_prequential(&self, batch: freeway_streams::Batch) -> Result<(), PipelineError> {
        self.send(Command::Prequential(batch))
    }

    /// Non-blocking [`Self::feed`]: never waits on a full queue. On
    /// failure the batch is handed back so the caller can retry, backlog,
    /// or shed it.
    ///
    /// # Errors
    /// [`PipelineError::QueueFull`] when the input queue is at capacity —
    /// transient backpressure, retry later;
    /// [`PipelineError::WorkerUnavailable`] when the worker has exited —
    /// permanent, do **not** retry (call [`Self::finish`] for the panic
    /// message).
    pub fn try_feed(
        &self,
        batch: freeway_streams::Batch,
    ) -> Result<(), (freeway_streams::Batch, PipelineError)> {
        self.try_send(Command::Batch(batch))
    }

    /// Non-blocking [`Self::feed_prequential`]; failure semantics as
    /// [`Self::try_feed`].
    ///
    /// # Errors
    /// As [`Self::try_feed`].
    pub fn try_feed_prequential(
        &self,
        batch: freeway_streams::Batch,
    ) -> Result<(), (freeway_streams::Batch, PipelineError)> {
        self.try_send(Command::Prequential(batch))
    }

    /// Bounded-latency feed: retries [`Self::try_feed`] until `budget`
    /// elapses, then hands the batch back with
    /// [`PipelineError::QueueFull`]. The vendored channel has no native
    /// timed send, so this polls with a short sleep — adequate for the
    /// millisecond-scale deadlines admission control uses.
    ///
    /// # Errors
    /// [`PipelineError::QueueFull`] when the deadline expired with the
    /// queue still full; [`PipelineError::WorkerUnavailable`] when the
    /// worker has exited (returned immediately, the budget is not spent).
    pub fn feed_timeout(
        &self,
        batch: freeway_streams::Batch,
        budget: Duration,
    ) -> Result<(), (freeway_streams::Batch, PipelineError)> {
        let deadline = Instant::now() + budget;
        let mut cmd = Command::Batch(batch);
        loop {
            match self.try_send_cmd(cmd) {
                Ok(()) => return Ok(()),
                Err((returned, PipelineError::QueueFull)) => {
                    if Instant::now() >= deadline {
                        return Err((command_batch(returned), PipelineError::QueueFull));
                    }
                    cmd = returned;
                    std::thread::sleep(Duration::from_micros(100));
                }
                Err((returned, err)) => return Err((command_batch(returned), err)),
            }
        }
    }

    fn try_send(&self, cmd: Command) -> Result<(), (freeway_streams::Batch, PipelineError)> {
        self.try_send_cmd(cmd).map_err(|(cmd, err)| (command_batch(cmd), err))
    }

    // The large Err is deliberate: a rejected command hands its batch
    // back by value so the caller can retry, backlog, or shed without
    // re-allocating — boxing it would defeat the zero-alloc feed path.
    #[allow(clippy::result_large_err)]
    fn try_send_cmd(&self, cmd: Command) -> Result<(), (Command, PipelineError)> {
        let Some(input) = self.input.as_ref() else {
            return Err((cmd, PipelineError::WorkerUnavailable));
        };
        match input.try_send(cmd) {
            Ok(()) => Ok(()),
            Err(TrySendError::Full(returned)) => Err((returned, PipelineError::QueueFull)),
            Err(TrySendError::Disconnected(returned)) => {
                Err((returned, PipelineError::WorkerUnavailable))
            }
        }
    }

    /// Receives the next output, blocking.
    ///
    /// # Errors
    /// [`PipelineError::WorkerUnavailable`] when the worker has exited
    /// and all buffered outputs are drained.
    pub fn recv(&self) -> Result<PipelineOutput, PipelineError> {
        self.output.recv().map_err(|_| PipelineError::WorkerUnavailable)
    }

    /// Receives without blocking (`None` both when idle and when the
    /// worker has exited — use [`Self::recv`] to distinguish).
    pub fn try_recv(&self) -> Option<PipelineOutput> {
        self.output.try_recv().ok()
    }

    /// Stops the worker and returns the learner (draining any unread
    /// outputs).
    ///
    /// # Errors
    /// [`PipelineError::WorkerPanicked`] with the panic payload when the
    /// worker died mid-stream; the learner it owned is lost.
    pub fn finish(mut self) -> Result<Learner, PipelineError> {
        // Dropping the sender closes the channel without ever blocking
        // (a plain `send(Finish)` could wait forever on a full queue with
        // a dead worker); the worker's `recv` loop observes the
        // disconnect and exits.
        drop(self.input.take());
        // Drain until the worker drops its output sender: this unblocks a
        // worker stuck sending into a full output queue.
        while self.output.recv().is_ok() {}
        let Some(handle) = self.handle.take() else {
            return Err(PipelineError::WorkerUnavailable);
        };
        match handle.join() {
            Ok(Ok(learner)) => Ok(learner),
            Ok(Err(panic)) => Err(PipelineError::WorkerPanicked(panic)),
            // The thread itself cannot panic outside catch_unwind, but
            // map the payload anyway rather than unwrapping.
            Err(payload) => Err(PipelineError::WorkerPanicked(panic_message(payload))),
        }
    }
}

impl Drop for Pipeline {
    fn drop(&mut self) {
        // Same shutdown as `finish`, minus returning the learner: close
        // the input by dropping the sender (never blocks, even with a
        // full queue and a dead worker), drain outputs to unblock the
        // worker, then join.
        drop(self.input.take());
        while self.output.recv().is_ok() {}
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FreewayConfig;
    use freeway_ml::ModelSpec;
    use freeway_streams::concept::{stream_rng, GmmConcept};
    use freeway_streams::{Batch, DriftPhase};

    fn learner() -> Learner {
        Learner::new(
            ModelSpec::lr(4, 2),
            FreewayConfig { pca_warmup_rows: 32, mini_batch: 64, ..Default::default() },
        )
    }

    #[test]
    fn routes_labeled_to_training_and_unlabeled_to_inference() {
        let mut rng = stream_rng(1);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let pipeline = Pipeline::with_learner(learner(), 16).expect("spawn");

        let (x, y) = concept.sample_batch(64, &mut rng);
        pipeline.feed(Batch::labeled(x, y, 0, DriftPhase::Stable)).expect("worker alive");
        let out = pipeline.recv().expect("worker alive");
        assert_eq!(out.seq, 0);
        assert!(out.report.is_none(), "training batches emit no report");

        let (x, _) = concept.sample_batch(64, &mut rng);
        pipeline.feed(Batch::unlabeled(x, 1, DriftPhase::Stable)).expect("worker alive");
        let out = pipeline.recv().expect("worker alive");
        assert_eq!(out.seq, 1);
        let report = out.report.expect("inference batches report");
        assert_eq!(report.predictions.len(), 64);

        let _ = pipeline.finish().expect("clean shutdown");
    }

    #[test]
    fn prequential_feed_reports_and_trains() {
        let mut rng = stream_rng(2);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let pipeline = Pipeline::with_learner(learner(), 16).expect("spawn");
        for i in 0..10 {
            let (x, y) = concept.sample_batch(64, &mut rng);
            pipeline
                .feed_prequential(Batch::labeled(x, y, i, DriftPhase::Stable))
                .expect("worker alive");
        }
        let mut reports = 0;
        for _ in 0..10 {
            if pipeline.recv().expect("worker alive").report.is_some() {
                reports += 1;
            }
        }
        assert_eq!(reports, 10);
        let learner = pipeline.finish().expect("clean shutdown");
        assert!(learner.selector().is_ready(), "training flowed through the worker");
    }

    #[test]
    fn finish_returns_learner_with_state() {
        let pipeline = Pipeline::with_learner(learner(), 4).expect("spawn");
        let l = pipeline.finish().expect("clean shutdown");
        assert_eq!(l.config().mini_batch, 64);
    }

    #[test]
    fn outputs_preserve_batch_order() {
        let mut rng = stream_rng(3);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let pipeline = Pipeline::with_learner(learner(), 32).expect("spawn");
        for i in 0..20 {
            let (x, y) = concept.sample_batch(32, &mut rng);
            pipeline
                .feed_prequential(Batch::labeled(x, y, i, DriftPhase::Stable))
                .expect("worker alive");
        }
        let seqs: Vec<u64> = (0..20).map(|_| pipeline.recv().expect("worker alive").seq).collect();
        assert_eq!(seqs, (0..20).collect::<Vec<_>>(), "single worker keeps order");
        let _ = pipeline.finish().expect("clean shutdown");
    }

    #[test]
    fn worker_panic_is_caught_and_reported() {
        let pipeline = Pipeline::with_learner(learner(), 4).expect("spawn");
        // A ragged batch trips the learner's label-count assert inside
        // the worker; the panic must be contained, not abort the test.
        let poison = Batch {
            x: freeway_linalg::Matrix::zeros(4, 4),
            labels: Some(vec![0]),
            seq: 0,
            phase: DriftPhase::Stable,
        };
        pipeline.feed_prequential(poison).expect("queue accepts before the crash");
        match pipeline.finish().err() {
            Some(PipelineError::WorkerPanicked(msg)) => {
                assert!(msg.contains("label count"), "payload survives: {msg}");
            }
            other => panic!("expected WorkerPanicked, got {other:?}"),
        }
    }

    #[test]
    fn feed_after_worker_death_errors_instead_of_panicking() {
        let mut rng = stream_rng(4);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let pipeline = Pipeline::with_learner(learner(), 4).expect("spawn");
        let poison = Batch {
            x: freeway_linalg::Matrix::zeros(4, 4),
            labels: Some(vec![0]),
            seq: 0,
            phase: DriftPhase::Stable,
        };
        pipeline.feed(poison).expect("queue accepts before the crash");
        // Wait for the worker to die, then feeding must error, not panic
        // or hang.
        while pipeline.recv().is_ok() {}
        let (x, y) = concept.sample_batch(32, &mut rng);
        let res = pipeline.feed(Batch::labeled(x, y, 1, DriftPhase::Stable));
        assert!(matches!(res, Err(PipelineError::WorkerUnavailable)));
    }

    #[test]
    fn try_feed_full_queue_is_retryable_backpressure() {
        let mut rng = stream_rng(5);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let pipeline = Pipeline::with_learner(learner(), 1).expect("spawn");
        // Saturate the tiny queue: the worker may hold one batch while the
        // channel holds another, so push until the channel itself rejects.
        let mut fed = 0;
        let full_err = loop {
            let (x, y) = concept.sample_batch(64, &mut rng);
            match pipeline.try_feed(Batch::labeled(x, y, fed, DriftPhase::Stable)) {
                Ok(()) => fed += 1,
                Err(e) => break e,
            }
            assert!(fed < 64, "a 1-deep queue must fill long before 64 batches");
        };
        // Full is a distinct, retryable error carrying the batch back.
        let (returned, err) = full_err;
        assert!(matches!(err, PipelineError::QueueFull), "got {err:?}");
        assert_eq!(returned.seq, fed, "the rejected batch comes back intact");
        // Draining the consumer side makes the retry succeed — exactly
        // the contract that distinguishes Full from a dead worker.
        let _ = pipeline.recv().expect("worker alive");
        let mut batch = returned;
        loop {
            match pipeline.try_feed(batch) {
                Ok(()) => break,
                Err((b, PipelineError::QueueFull)) => {
                    batch = b;
                    let _ = pipeline.recv().expect("worker alive");
                }
                Err((_, e)) => panic!("retry after drain must not fail: {e:?}"),
            }
        }
        let _ = pipeline.finish().expect("clean shutdown");
    }

    #[test]
    fn try_feed_dead_worker_is_not_retryable() {
        let mut rng = stream_rng(6);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let pipeline = Pipeline::with_learner(learner(), 4).expect("spawn");
        let poison = Batch {
            x: freeway_linalg::Matrix::zeros(4, 4),
            labels: Some(vec![0]),
            seq: 0,
            phase: DriftPhase::Stable,
        };
        pipeline.feed(poison).expect("queue accepts before the crash");
        while pipeline.recv().is_ok() {}
        let (x, y) = concept.sample_batch(32, &mut rng);
        let (_, err) = pipeline
            .try_feed(Batch::labeled(x, y, 1, DriftPhase::Stable))
            .expect_err("dead worker rejects");
        assert!(
            matches!(err, PipelineError::WorkerUnavailable),
            "a dead worker must not masquerade as backpressure: {err:?}"
        );
    }

    #[test]
    fn feed_timeout_expires_against_a_full_queue_and_returns_the_batch() {
        let mut rng = stream_rng(7);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let pipeline = Pipeline::with_learner(learner(), 1).expect("spawn");
        // With nobody receiving, capacity is exactly 3 batches: one in the
        // worker's hands (blocked sending its output once the output slot
        // is taken), one output slot, one input slot. Fill it, then give
        // the worker time to reach its permanently blocked state.
        let mut seq = 0;
        for _ in 0..3 {
            let (x, y) = concept.sample_batch(64, &mut rng);
            pipeline.feed(Batch::labeled(x, y, seq, DriftPhase::Stable)).expect("fits");
            seq += 1;
        }
        std::thread::sleep(Duration::from_millis(100));
        // Queue full and nobody draining: the deadline must expire.
        let (x, y) = concept.sample_batch(64, &mut rng);
        let start = std::time::Instant::now();
        let (returned, err) = pipeline
            .feed_timeout(Batch::labeled(x, y, seq, DriftPhase::Stable), Duration::from_millis(5))
            .expect_err("no drain, must time out");
        assert!(matches!(err, PipelineError::QueueFull), "got {err:?}");
        assert_eq!(returned.seq, seq);
        assert!(start.elapsed() >= Duration::from_millis(5), "budget was honoured");
        let _ = pipeline.finish().expect("clean shutdown");
    }

    #[test]
    fn drop_with_full_queue_and_dead_worker_does_not_deadlock() {
        let pipeline = Pipeline::with_learner(learner(), 1).expect("spawn");
        let poison = |seq| Batch {
            x: freeway_linalg::Matrix::zeros(4, 4),
            labels: Some(vec![0]),
            seq,
            phase: DriftPhase::Stable,
        };
        // First poison batch kills the worker; keep pushing until the
        // (tiny) queue rejects, so Drop runs against a full channel and a
        // dead worker — the exact shape of the old deadlock.
        let mut seq = 0;
        while pipeline.feed(poison(seq)).is_ok() && seq < 64 {
            seq += 1;
        }
        drop(pipeline); // must return promptly
    }
}
