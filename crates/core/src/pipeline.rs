//! The train/infer pipeline (§V-A).
//!
//! The paper deploys FreewayML as a multi-process architecture with
//! asynchronous updates. This reproduction maps that onto a dedicated
//! worker thread owning the learner, fed through a bounded crossbeam
//! channel: producers never block on model updates shorter than the
//! channel's slack, updates are atomic because exactly one thread touches
//! parameters, and the labeled/unlabeled split of the paper's single
//! input stream happens at the worker.

use crate::learner::{InferenceReport, Learner};
use crossbeam::channel::{bounded, Receiver, Sender};
use freeway_streams::Batch;
use std::thread::JoinHandle;

/// Output of the pipeline for one batch.
#[derive(Clone, Debug)]
pub struct PipelineOutput {
    /// Sequence number of the batch this refers to.
    pub seq: u64,
    /// Inference report (`None` for training-only batches).
    pub report: Option<InferenceReport>,
}

enum Command {
    Batch(Batch),
    /// Prequential batch: infer first, then train on the same data.
    Prequential(Batch),
    Finish,
}

/// A running pipeline around a [`Learner`].
pub struct Pipeline {
    input: Sender<Command>,
    output: Receiver<PipelineOutput>,
    handle: Option<JoinHandle<Learner>>,
}

impl Pipeline {
    /// Spawns the worker thread. `queue_depth` bounds both channels,
    /// providing backpressure instead of unbounded memory growth.
    pub fn spawn(mut learner: Learner, queue_depth: usize) -> Self {
        assert!(queue_depth >= 1, "queue depth must be positive");
        let (in_tx, in_rx) = bounded::<Command>(queue_depth);
        let (out_tx, out_rx) = bounded::<PipelineOutput>(queue_depth);
        let handle = std::thread::spawn(move || {
            while let Ok(cmd) = in_rx.recv() {
                match cmd {
                    Command::Batch(batch) => {
                        // The paper's routing: labeled data is the training
                        // stream, unlabeled the inference stream.
                        let report = match batch.labels.as_deref() {
                            Some(labels) => {
                                learner.train(&batch.x, labels);
                                None
                            }
                            None => Some(learner.infer(&batch.x)),
                        };
                        if out_tx.send(PipelineOutput { seq: batch.seq, report }).is_err() {
                            break;
                        }
                    }
                    Command::Prequential(batch) => {
                        let report = learner.process(&batch);
                        if out_tx
                            .send(PipelineOutput { seq: batch.seq, report: Some(report) })
                            .is_err()
                        {
                            break;
                        }
                    }
                    Command::Finish => break,
                }
            }
            learner
        });
        Self { input: in_tx, output: out_rx, handle: Some(handle) }
    }

    /// Feeds a batch, routed by labeledness (blocks when the queue is
    /// full — backpressure).
    ///
    /// Both channels are bounded by `queue_depth`: every fed batch
    /// produces one output, so a producer that feeds more than
    /// `2 * queue_depth` batches without receiving will block until the
    /// consumer drains. Interleave [`Self::recv`]/[`Self::try_recv`] with
    /// feeding.
    pub fn feed(&self, batch: Batch) {
        self.input.send(Command::Batch(batch)).expect("worker alive");
    }

    /// Feeds a prequential batch (infer-then-train on the same data).
    pub fn feed_prequential(&self, batch: Batch) {
        self.input.send(Command::Prequential(batch)).expect("worker alive");
    }

    /// Receives the next output, blocking.
    pub fn recv(&self) -> PipelineOutput {
        self.output.recv().expect("worker alive")
    }

    /// Receives without blocking.
    pub fn try_recv(&self) -> Option<PipelineOutput> {
        self.output.try_recv().ok()
    }

    /// Stops the worker and returns the learner (draining any unread
    /// outputs).
    pub fn finish(mut self) -> Learner {
        self.input.send(Command::Finish).expect("worker alive");
        while self.output.try_recv().is_ok() {}
        self.handle.take().expect("finish called once").join().expect("worker panicked")
    }
}

impl Drop for Pipeline {
    fn drop(&mut self) {
        if let Some(handle) = self.handle.take() {
            let _ = self.input.send(Command::Finish);
            while self.output.try_recv().is_ok() {}
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FreewayConfig;
    use freeway_ml::ModelSpec;
    use freeway_streams::concept::{stream_rng, GmmConcept};
    use freeway_streams::DriftPhase;

    fn learner() -> Learner {
        Learner::new(
            ModelSpec::lr(4, 2),
            FreewayConfig { pca_warmup_rows: 32, mini_batch: 64, ..Default::default() },
        )
    }

    #[test]
    fn routes_labeled_to_training_and_unlabeled_to_inference() {
        let mut rng = stream_rng(1);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let pipeline = Pipeline::spawn(learner(), 16);

        let (x, y) = concept.sample_batch(64, &mut rng);
        pipeline.feed(Batch::labeled(x, y, 0, DriftPhase::Stable));
        let out = pipeline.recv();
        assert_eq!(out.seq, 0);
        assert!(out.report.is_none(), "training batches emit no report");

        let (x, _) = concept.sample_batch(64, &mut rng);
        pipeline.feed(Batch::unlabeled(x, 1, DriftPhase::Stable));
        let out = pipeline.recv();
        assert_eq!(out.seq, 1);
        let report = out.report.expect("inference batches report");
        assert_eq!(report.predictions.len(), 64);

        let _ = pipeline.finish();
    }

    #[test]
    fn prequential_feed_reports_and_trains() {
        let mut rng = stream_rng(2);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let pipeline = Pipeline::spawn(learner(), 16);
        for i in 0..10 {
            let (x, y) = concept.sample_batch(64, &mut rng);
            pipeline.feed_prequential(Batch::labeled(x, y, i, DriftPhase::Stable));
        }
        let mut reports = 0;
        for _ in 0..10 {
            if pipeline.recv().report.is_some() {
                reports += 1;
            }
        }
        assert_eq!(reports, 10);
        let learner = pipeline.finish();
        assert!(learner.selector().is_ready(), "training flowed through the worker");
    }

    #[test]
    fn finish_returns_learner_with_state() {
        let pipeline = Pipeline::spawn(learner(), 4);
        let l = pipeline.finish();
        assert_eq!(l.config().mini_batch, 64);
    }

    #[test]
    fn outputs_preserve_batch_order() {
        let mut rng = stream_rng(3);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let pipeline = Pipeline::spawn(learner(), 32);
        for i in 0..20 {
            let (x, y) = concept.sample_batch(32, &mut rng);
            pipeline.feed_prequential(Batch::labeled(x, y, i, DriftPhase::Stable));
        }
        let seqs: Vec<u64> = (0..20).map(|_| pipeline.recv().seq).collect();
        assert_eq!(seqs, (0..20).collect::<Vec<_>>(), "single worker keeps order");
        let _ = pipeline.finish();
    }
}
