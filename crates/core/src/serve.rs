//! Multi-client serving facade over the sharded runtime.
//!
//! The sharded pipeline ([`crate::ShardedPipeline`]) is a single-producer
//! API: one thread routes keyed batches and drains outputs. Production
//! serving is many concurrent clients, each with its own stream identity
//! and its own view of "my answers". [`Service`] closes that gap with a
//! dedicated **router thread** that owns the sharded pipeline:
//!
//! * clients clone a [`ServiceHandle`] and open keyed
//!   [`ClientSession`]s; every session's submissions route to the shard
//!   its key hashes to, so per-session answer order is total;
//! * [`ClientSession::submit`]/[`ClientSession::submit_labeled`] are
//!   non-blocking, mirroring [`crate::Pipeline::try_feed`]: a full
//!   submit queue surfaces as the typed, retryable
//!   [`ServeError::Busy`] (with a pacing hint) instead of a blocking
//!   send, and [`ClientSession::submit_timeout`] mirrors
//!   [`crate::Pipeline::feed_timeout`] by spending a bounded latency
//!   budget first;
//! * the router stamps every accepted submission with a globally
//!   monotone sequence number (the ingest guard's contract) and keeps a
//!   **per-session ledger** mapping those sequence numbers back to the
//!   owning session, so each client receives exactly its own
//!   [`SessionOutput`]s — including shed and quarantine verdicts — and
//!   never another tenant's predictions;
//! * shutdown ([`Service::shutdown`]) drains the submit queue, runs the
//!   deterministic [`crate::ShardedPipeline::barrier`], delivers every
//!   remaining answer, and hands back the finished [`ServiceReport`].
//!
//! Backpressure composes in two layers: the bounded submit queue bounds
//! how far clients can run ahead of the router, and the admission
//! controller configured on the builder governs what the router does
//! when a shard's worker queue is full (block, shed, deadline — see
//! [`crate::AdmissionPolicy`]). With the blocking policy nothing is ever
//! dropped and client-side `Busy` is the only overload signal; with
//! shedding policies dropped batches come back to their session as
//! [`SubmitOutcome::Shed`].
//!
//! Construct via [`crate::PipelineBuilder::service`] +
//! [`crate::PipelineBuilder::build_service`].

use crate::admission::AdmissionOutcome;
use crate::degrade::DegradationLevel;
use crate::error::{panic_message, FreewayError};
use crate::learner::InferenceReport;
use crate::shard::{ShardedPipeline, ShardedRun};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TryRecvError, TrySendError};
use freeway_streams::keyed::KeyedBatch;
use freeway_streams::Batch;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Serving-facade knobs.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Capacity of the shared client→router submit queue. Bounds how far
    /// clients can run ahead of the router; a full queue surfaces as
    /// [`ServeError::Busy`].
    pub submit_queue_depth: usize,
    /// *Base* pacing hint handed back inside [`ServeError::Busy`]: the
    /// wait suggested when the runtime is unloaded. The actual hint
    /// scales with measured pressure — queue/backlog occupancy and the
    /// degradation ladder — up to 4× this base (see [`busy_hint`]).
    /// Advisory, not enforced.
    pub retry_after_hint: Duration,
    /// Wall-clock budget for the shutdown drain. `None` (the default)
    /// drains unboundedly via [`crate::ShardedPipeline::barrier`]; with a
    /// budget, shutdown uses
    /// [`crate::ShardedPipeline::barrier_deadline`] and surfaces the
    /// typed [`FreewayError::DrainTimeout`] naming the unresponsive
    /// shards instead of hanging on a wedged worker.
    pub drain_budget: Option<Duration>,
    /// When set, the router records the exact order in which submissions
    /// were fed to the shards ([`ServiceReport::admitted_order`]), so a
    /// serialized oracle can replay the run deterministically.
    pub record_admitted: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            submit_queue_depth: 64,
            retry_after_hint: Duration::from_micros(200),
            drain_budget: None,
            record_admitted: false,
        }
    }
}

impl ServiceConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    /// A message naming the offending field, in the builder's
    /// `InvalidConfig` style.
    pub fn check(&self) -> Result<(), String> {
        if self.submit_queue_depth == 0 {
            return Err("service submit queue depth must be positive".to_owned());
        }
        if self.retry_after_hint.is_zero() {
            return Err("service retry-after hint must be positive".to_owned());
        }
        if self.drain_budget.is_some_and(|budget| budget.is_zero()) {
            return Err("service drain budget must be positive when set".to_owned());
        }
        Ok(())
    }
}

/// Everything that can go wrong at the serving facade.
///
/// The two backpressure-adjacent failure modes stay distinguishable
/// through every conversion: [`Self::Busy`] is transient (retry after
/// the hint), [`Self::Disconnected`] is permanent (the router or its
/// workers are gone). [`From`] impls in both directions round-trip
/// [`FreewayError::QueueFull`] and [`FreewayError::WorkerUnavailable`]
/// losslessly onto them.
#[derive(Debug)]
#[non_exhaustive]
pub enum ServeError {
    /// The submit queue is at capacity: transient backpressure. Retry
    /// after roughly `retry_after_hint`; the batch is handed back.
    Busy {
        /// Suggested client-side pause before the next attempt.
        retry_after_hint: Duration,
    },
    /// The service's router thread is gone (shutdown or crash). A retry
    /// can never succeed.
    Disconnected,
    /// The runtime beneath the facade failed; never wraps
    /// [`FreewayError::QueueFull`] or
    /// [`FreewayError::WorkerUnavailable`] (those normalize to
    /// [`Self::Busy`] / [`Self::Disconnected`]).
    Runtime(FreewayError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Busy { retry_after_hint } => {
                write!(f, "service busy (retry after ~{retry_after_hint:?})")
            }
            Self::Disconnected => write!(f, "service is not running"),
            Self::Runtime(e) => write!(f, "service runtime error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FreewayError> for ServeError {
    /// Normalizes the pipeline taxonomy onto the facade's:
    /// `QueueFull` → [`ServeError::Busy`] (with the default hint),
    /// `WorkerUnavailable` → [`ServeError::Disconnected`], everything
    /// else wraps as [`ServeError::Runtime`].
    fn from(e: FreewayError) -> Self {
        match e {
            FreewayError::QueueFull => {
                Self::Busy { retry_after_hint: ServiceConfig::default().retry_after_hint }
            }
            FreewayError::WorkerUnavailable => Self::Disconnected,
            other => Self::Runtime(other),
        }
    }
}

impl From<ServeError> for FreewayError {
    /// The inverse mapping: [`ServeError::Busy`] → `QueueFull`,
    /// [`ServeError::Disconnected`] → `WorkerUnavailable`,
    /// [`ServeError::Runtime`] unwraps. Composing the two `From`s in
    /// either order preserves the retryable-vs-permanent distinction.
    fn from(e: ServeError) -> Self {
        match e {
            ServeError::Busy { .. } => Self::QueueFull,
            ServeError::Disconnected => Self::WorkerUnavailable,
            ServeError::Runtime(other) => other,
        }
    }
}

/// What finally happened to one submission, delivered to the owning
/// session only.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum SubmitOutcome {
    /// The batch was answered; prequential submissions also trained.
    Answered(InferenceReport),
    /// The batch trained the model; training-only submissions produce no
    /// report.
    Trained,
    /// The batch was dropped under the admission policy; the tag is the
    /// [`crate::ShedReason`] tag.
    Shed(&'static str),
    /// The batch failed ingestion validation; the tag is the
    /// [`crate::BatchFault`] tag.
    Quarantined(&'static str),
}

/// One delivered result, tagged with both sequence spaces.
#[derive(Clone, Debug)]
pub struct SessionOutput {
    /// The session-local sequence number [`ClientSession::submit`]
    /// returned for this batch.
    pub client_seq: u64,
    /// The globally monotone sequence number the router stamped.
    pub global_seq: u64,
    /// Shard that served (or dropped) the batch.
    pub shard: usize,
    /// The verdict.
    pub outcome: SubmitOutcome,
}

/// Counters describing one service run.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServiceStats {
    /// Sessions opened over the service's lifetime.
    pub sessions_opened: u64,
    /// Submissions the router accepted off the submit queue.
    pub submitted: u64,
    /// Submissions answered with an [`InferenceReport`].
    pub answered: u64,
    /// Training-only submissions completed.
    pub trained: u64,
    /// Submissions shed under the admission policy.
    pub shed: u64,
    /// Submissions quarantined as poison.
    pub quarantined: u64,
}

/// One entry of the feed-order record ([`ServiceConfig::record_admitted`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmittedRecord {
    /// Owning session id.
    pub session: u64,
    /// The session's routing key.
    pub key: u64,
    /// Session-local sequence number.
    pub client_seq: u64,
    /// Global sequence number the router stamped.
    pub global_seq: u64,
    /// Shard the batch routed to.
    pub shard: usize,
    /// True for prequential (test-then-train) submissions.
    pub prequential: bool,
    /// True when the batch carried labels.
    pub labeled: bool,
}

/// Everything a finished service hands back.
pub struct ServiceReport {
    /// The finished sharded run (per-shard learners, outputs, stats).
    pub run: ShardedRun,
    /// Facade-level counters.
    pub stats: ServiceStats,
    /// Exact feed order when [`ServiceConfig::record_admitted`] was set:
    /// replaying these records serially through an identically built
    /// pipeline reproduces every shard's input sequence, which (with
    /// cross-shard knowledge disabled) reproduces every answer.
    /// Batches later shed from a backlog are removed, so the record is
    /// exactly what the workers processed.
    pub admitted_order: Option<Vec<AdmittedRecord>>,
}

enum Request {
    Open { session: u64, reply: Sender<SessionOutput> },
    Submit { session: u64, key: u64, client_seq: u64, batch: Batch, prequential: bool },
    Close { session: u64 },
    InjectPanic { shard: usize },
    InjectStall { shard: usize, duration: Duration, livelock: bool },
    Shutdown,
}

struct ServiceShared {
    next_session: AtomicU64,
    retry_after_hint: Duration,
    /// Measured runtime pressure in `[0, 100]`, published by the router
    /// every loop: the worst shard's queue/backlog occupancy folded with
    /// its degradation-ladder level. Read lock-free by every session to
    /// derive the [`ServeError::Busy`] pacing hint.
    pressure_pct: AtomicU64,
}

/// Derives the [`ServeError::Busy`] pacing hint from the configured base
/// and the router-published pressure percentage: `base` at zero pressure,
/// scaling linearly to `4 × base` at 100%. Monotone in pressure — a more
/// loaded service never suggests a *shorter* wait — so clients back off
/// harder exactly when the runtime is drowning.
pub fn busy_hint(base: Duration, pressure_pct: u64) -> Duration {
    let pct = u32::try_from(pressure_pct.min(100)).unwrap_or(100);
    base.saturating_add(base.saturating_mul(3).saturating_mul(pct) / 100)
}

/// Cloneable entry point: one per client thread. Open sessions with
/// [`Self::open_session`]; dropping every handle (and session) without
/// calling [`Service::shutdown`] also shuts the router down cleanly.
#[derive(Clone)]
pub struct ServiceHandle {
    tx: Sender<Request>,
    shared: Arc<ServiceShared>,
}

impl ServiceHandle {
    /// Opens a keyed session. All of the session's submissions route to
    /// the shard `key` hashes to, and only this session receives their
    /// outputs.
    ///
    /// # Errors
    /// [`ServeError::Disconnected`] when the service has shut down.
    pub fn open_session(&self, key: u64) -> Result<ClientSession, ServeError> {
        let session = self.shared.next_session.fetch_add(1, Ordering::Relaxed);
        let (reply_tx, reply_rx) = unbounded();
        self.tx
            .send(Request::Open { session, reply: reply_tx })
            .map_err(|_| ServeError::Disconnected)?;
        Ok(ClientSession {
            tx: self.tx.clone(),
            shared: Arc::clone(&self.shared),
            session,
            key,
            next_client_seq: 0,
            in_flight: 0,
            reply: reply_rx,
        })
    }

    /// The router-published pressure estimate in `[0, 100]` (worst-shard
    /// occupancy folded with degradation level). This is the input to
    /// every session's [`ServeError::Busy`] hint ([`busy_hint`]).
    pub fn pressure_pct(&self) -> u64 {
        self.shared.pressure_pct.load(Ordering::Relaxed)
    }

    /// Chaos hook: makes one shard's worker panic on its next command,
    /// exercising the crash-restart (and, past the budget, fencing) path
    /// under live client traffic.
    ///
    /// # Errors
    /// [`ServeError::Disconnected`] when the service has shut down.
    pub fn inject_worker_panic(&self, shard: usize) -> Result<(), ServeError> {
        self.tx.send(Request::InjectPanic { shard }).map_err(|_| ServeError::Disconnected)
    }

    /// Chaos hook: schedules a stall (sleep or livelock) of `duration` on
    /// one shard's worker, exercising the watchdog detect → force-restart
    /// path under live client traffic.
    ///
    /// # Errors
    /// [`ServeError::Disconnected`] when the service has shut down.
    pub fn inject_worker_stall(
        &self,
        shard: usize,
        duration: Duration,
        livelock: bool,
    ) -> Result<(), ServeError> {
        self.tx
            .send(Request::InjectStall { shard, duration, livelock })
            .map_err(|_| ServeError::Disconnected)
    }
}

/// One client's keyed stream into the service. Not `Clone`: the session
/// is the unit of answer routing, so each concurrent submitter opens its
/// own.
pub struct ClientSession {
    tx: Sender<Request>,
    shared: Arc<ServiceShared>,
    session: u64,
    key: u64,
    next_client_seq: u64,
    in_flight: u64,
    reply: Receiver<SessionOutput>,
}

impl ClientSession {
    /// This session's service-unique id.
    pub fn id(&self) -> u64 {
        self.session
    }

    /// This session's routing key.
    pub fn key(&self) -> u64 {
        self.key
    }

    /// Submissions enqueued but not yet resolved by a received output.
    pub fn in_flight(&self) -> u64 {
        self.in_flight
    }

    /// Submits an unlabeled batch for inference. Non-blocking: a full
    /// submit queue hands the batch back with [`ServeError::Busy`].
    /// Returns the session-local sequence number the answer will carry.
    ///
    /// # Errors
    /// [`ServeError::Busy`] on a full queue (retry after the hint);
    /// [`ServeError::Disconnected`] when the service is gone.
    pub fn submit(&mut self, x: freeway_linalg::Matrix) -> Result<u64, (Batch, ServeError)> {
        let batch = Batch::unlabeled(x, self.next_client_seq, freeway_streams::DriftPhase::Stable);
        self.submit_batch(batch, false)
    }

    /// Submits a labeled batch prequentially (test-then-train): the
    /// answer is an [`InferenceReport`] *and* the batch updates the
    /// model. Failure semantics as [`Self::submit`].
    ///
    /// # Errors
    /// As [`Self::submit`].
    ///
    /// # Panics
    /// When `labels.len() != x.rows()` (the [`Batch::labeled`] contract).
    pub fn submit_labeled(
        &mut self,
        x: freeway_linalg::Matrix,
        labels: Vec<usize>,
    ) -> Result<u64, (Batch, ServeError)> {
        let batch =
            Batch::labeled(x, labels, self.next_client_seq, freeway_streams::DriftPhase::Stable);
        self.submit_batch(batch, true)
    }

    /// Submits a labeled batch for training only (no inference report;
    /// the session receives [`SubmitOutcome::Trained`]). This is how
    /// late-arriving labels re-enter the stream. Failure semantics as
    /// [`Self::submit`].
    ///
    /// # Errors
    /// As [`Self::submit`].
    ///
    /// # Panics
    /// When `labels.len() != x.rows()` (the [`Batch::labeled`] contract).
    pub fn submit_train(
        &mut self,
        x: freeway_linalg::Matrix,
        labels: Vec<usize>,
    ) -> Result<u64, (Batch, ServeError)> {
        let batch =
            Batch::labeled(x, labels, self.next_client_seq, freeway_streams::DriftPhase::Stable);
        self.submit_batch(batch, false)
    }

    /// Lowest-level submit: takes a prepared batch (e.g. one handed back
    /// by a failed submit) and the prequential flag. The batch's `seq` is
    /// restamped with this session's next local sequence number; the
    /// router restamps it again with the global one.
    ///
    /// # Errors
    /// As [`Self::submit`].
    pub fn submit_batch(
        &mut self,
        mut batch: Batch,
        prequential: bool,
    ) -> Result<u64, (Batch, ServeError)> {
        let client_seq = self.next_client_seq;
        batch.seq = client_seq;
        let req = Request::Submit {
            session: self.session,
            key: self.key,
            client_seq,
            batch,
            prequential,
        };
        match self.tx.try_send(req) {
            Ok(()) => {
                self.next_client_seq += 1;
                self.in_flight += 1;
                Ok(client_seq)
            }
            Err(TrySendError::Full(req)) => Err((
                request_batch(req),
                ServeError::Busy {
                    retry_after_hint: busy_hint(
                        self.shared.retry_after_hint,
                        self.shared.pressure_pct.load(Ordering::Relaxed),
                    ),
                },
            )),
            Err(TrySendError::Disconnected(req)) => {
                Err((request_batch(req), ServeError::Disconnected))
            }
        }
    }

    /// Bounded-latency submit, mirroring [`crate::Pipeline::feed_timeout`]:
    /// retries [`Self::submit_batch`] until `budget` elapses, then hands
    /// the batch back with [`ServeError::Busy`]. The vendored channel has
    /// no timed send, so this polls with a short sleep.
    ///
    /// # Errors
    /// [`ServeError::Busy`] when the deadline expired with the queue
    /// still full; [`ServeError::Disconnected`] when the service is gone
    /// (returned immediately, the budget is not spent).
    pub fn submit_timeout(
        &mut self,
        batch: Batch,
        prequential: bool,
        budget: Duration,
    ) -> Result<u64, (Batch, ServeError)> {
        let deadline = Instant::now() + budget;
        let mut batch = batch;
        loop {
            match self.submit_batch(batch, prequential) {
                Ok(seq) => return Ok(seq),
                Err((returned, ServeError::Busy { retry_after_hint })) => {
                    if Instant::now() >= deadline {
                        return Err((returned, ServeError::Busy { retry_after_hint }));
                    }
                    batch = returned;
                    std::thread::sleep(Duration::from_micros(100));
                }
                Err(other) => return Err(other),
            }
        }
    }

    /// Receives this session's next output without blocking (`None` both
    /// when nothing is ready and when the service has shut down — use
    /// [`Self::recv_output`] to distinguish).
    pub fn try_output(&mut self) -> Option<SessionOutput> {
        match self.reply.try_recv() {
            Ok(out) => {
                self.in_flight = self.in_flight.saturating_sub(1);
                Some(out)
            }
            Err(_) => None,
        }
    }

    /// Receives this session's next output, blocking until one arrives.
    ///
    /// # Errors
    /// [`ServeError::Disconnected`] when the service has shut down and
    /// every buffered output has been drained.
    pub fn recv_output(&mut self) -> Result<SessionOutput, ServeError> {
        match self.reply.recv() {
            Ok(out) => {
                self.in_flight = self.in_flight.saturating_sub(1);
                Ok(out)
            }
            Err(_) => Err(ServeError::Disconnected),
        }
    }
}

impl Drop for ClientSession {
    fn drop(&mut self) {
        // Best-effort: a full queue or a dead router both mean the close
        // notice does not matter (the router drops unroutable outputs).
        let _ = self.tx.try_send(Request::Close { session: self.session });
    }
}

fn request_batch(req: Request) -> Batch {
    match req {
        Request::Submit { batch, .. } => batch,
        // submit_batch only ever hands back the request it constructed.
        _ => unreachable!("only Submit requests carry a batch"),
    }
}

/// A running serving facade; owns the router thread. Construct via
/// [`crate::PipelineBuilder::build_service`], hand out
/// [`ServiceHandle`]s, then call [`Self::shutdown`].
pub struct Service {
    handle: ServiceHandle,
    router: Option<JoinHandle<Result<ServiceReport, FreewayError>>>,
}

impl Service {
    /// Spawns the router thread around a built sharded pipeline.
    ///
    /// # Errors
    /// [`FreewayError::InvalidConfig`] when `config` fails
    /// [`ServiceConfig::check`].
    pub fn start(pipeline: ShardedPipeline, config: ServiceConfig) -> Result<Self, FreewayError> {
        config.check().map_err(FreewayError::InvalidConfig)?;
        let (tx, rx) = bounded::<Request>(config.submit_queue_depth);
        let shared = Arc::new(ServiceShared {
            next_session: AtomicU64::new(0),
            retry_after_hint: config.retry_after_hint,
            pressure_pct: AtomicU64::new(0),
        });
        let record = config.record_admitted;
        let drain_budget = config.drain_budget;
        let router_shared = Arc::clone(&shared);
        let router = std::thread::spawn(move || {
            Router::new(pipeline, rx, record, router_shared, drain_budget).run()
        });
        Ok(Self { handle: ServiceHandle { tx, shared }, router: Some(router) })
    }

    /// A cloneable client entry point.
    pub fn handle(&self) -> ServiceHandle {
        self.handle.clone()
    }

    /// Stops accepting new work, drains every queued submission, runs
    /// the shard barrier so every in-flight batch is answered, delivers
    /// the remaining outputs, and returns the finished report.
    ///
    /// # Errors
    /// Any runtime error the router hit while serving (the first one
    /// aborts the run), or [`FreewayError::WorkerPanicked`] if the
    /// router thread itself died.
    pub fn shutdown(mut self) -> Result<ServiceReport, FreewayError> {
        let _ = self.handle.tx.send(Request::Shutdown);
        let Some(router) = self.router.take() else {
            return Err(FreewayError::WorkerUnavailable);
        };
        match router.join() {
            Ok(report) => report,
            Err(payload) => Err(FreewayError::WorkerPanicked(panic_message(payload))),
        }
    }
}

impl Drop for Service {
    fn drop(&mut self) {
        let _ = self.handle.tx.send(Request::Shutdown);
        if let Some(router) = self.router.take() {
            let _ = router.join();
        }
    }
}

struct SessionState {
    reply: Sender<SessionOutput>,
    in_flight_gauge: freeway_telemetry::Gauge,
    in_flight: u64,
}

struct PendingEntry {
    session: u64,
    client_seq: u64,
    shard: usize,
}

/// The router: owns the sharded pipeline, serializes all feeds, stamps
/// global sequence numbers, and fans outputs back out by session.
struct Router {
    pipeline: ShardedPipeline,
    rx: Receiver<Request>,
    sessions: HashMap<u64, SessionState>,
    /// global_seq → owning submission, for every batch handed to a shard
    /// whose verdict has not yet come back.
    ledger: HashMap<u64, PendingEntry>,
    next_seq: u64,
    stats: ServiceStats,
    admitted_order: Option<Vec<AdmittedRecord>>,
    /// Per-shard shed-buffer totals already reconciled against the
    /// ledger; growth beyond the watermark triggers a scan.
    shed_watermarks: Vec<u64>,
    /// Fenced-shard count already reconciled against the ledger; growth
    /// triggers a stranded-entry sweep ([`Self::reconcile_fences`]).
    fenced_seen: usize,
    shared: Arc<ServiceShared>,
    drain_budget: Option<Duration>,
    sessions_gauge: freeway_telemetry::Gauge,
    submitted_counter: freeway_telemetry::Counter,
    pressure_gauge: freeway_telemetry::Gauge,
}

impl Router {
    fn new(
        pipeline: ShardedPipeline,
        rx: Receiver<Request>,
        record_admitted: bool,
        shared: Arc<ServiceShared>,
        drain_budget: Option<Duration>,
    ) -> Self {
        let telemetry = pipeline.telemetry().clone();
        let shed_watermarks = vec![0; pipeline.num_shards()];
        Self {
            pipeline,
            rx,
            sessions: HashMap::new(),
            ledger: HashMap::new(),
            next_seq: 0,
            stats: ServiceStats::default(),
            admitted_order: record_admitted.then(Vec::new),
            shed_watermarks,
            fenced_seen: 0,
            shared,
            drain_budget,
            sessions_gauge: telemetry.gauge("freeway_serve_sessions_active"),
            submitted_counter: telemetry.counter("freeway_serve_submitted_total"),
            pressure_gauge: telemetry.gauge("freeway_serve_pressure_pct"),
        }
    }

    /// Publishes the pressure estimate clients read for their `Busy`
    /// hints: the worst unfenced shard's queue/backlog occupancy, folded
    /// with its degradation-ladder level (each rung pinning a floor of
    /// 25/50/75%), clamped to `[0, 100]`.
    fn publish_pressure(&mut self) {
        let mut pct = 0u64;
        for shard in 0..self.pipeline.num_shards() {
            if self.pipeline.is_fenced(shard) {
                continue;
            }
            let state = self.pipeline.shard(shard);
            let occupancy = (state.occupancy() * 100.0).round();
            let floor = match state.degradation_level() {
                DegradationLevel::Full => 0,
                DegradationLevel::ShortOnly => 25,
                DegradationLevel::InferenceOnly => 50,
                DegradationLevel::Shed => 75,
            };
            pct = pct.max(occupancy as u64).max(floor);
        }
        let pct = pct.min(100);
        self.shared.pressure_pct.store(pct, Ordering::Relaxed);
        self.pressure_gauge.set(pct as f64);
    }

    fn run(mut self) -> Result<ServiceReport, FreewayError> {
        'serve: loop {
            let mut worked = false;
            loop {
                match self.rx.try_recv() {
                    Ok(Request::Shutdown) => break 'serve,
                    Ok(req) => {
                        worked = true;
                        self.handle_request(req)?;
                    }
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => break 'serve,
                }
            }
            while let Some((shard, out)) = self.pipeline.try_recv()? {
                worked = true;
                self.deliver(shard, out);
            }
            self.publish_pressure();
            if !worked {
                // Idle is when a stalled worker would otherwise go
                // unnoticed: pump the watchdog, then reconcile any fence
                // it raised.
                if self.pipeline.check_liveness()? > 0 {
                    worked = true;
                }
                self.reconcile_fences()?;
            }
            if !worked {
                std::thread::sleep(Duration::from_micros(50));
            }
        }
        // Submissions enqueued before the shutdown notice were accepted
        // for service: drain and process them before the barrier.
        loop {
            match self.rx.try_recv() {
                Ok(Request::Shutdown) => {}
                Ok(req) => self.handle_request(req)?,
                Err(_) => break,
            }
        }
        let outputs = match self.drain_budget {
            Some(budget) => self.pipeline.barrier_deadline(budget)?,
            None => self.pipeline.barrier()?,
        };
        for (shard, out) in outputs {
            self.deliver(shard, out);
        }
        self.reconcile_sheds();
        self.reconcile_fences()?;
        let Router { pipeline, stats, admitted_order, sessions_gauge, .. } = self;
        sessions_gauge.set(0.0);
        let run = pipeline.finish()?;
        Ok(ServiceReport { run, stats, admitted_order })
    }

    fn handle_request(&mut self, req: Request) -> Result<(), FreewayError> {
        match req {
            Request::Open { session, reply } => {
                let gauge = self
                    .pipeline
                    .telemetry()
                    .gauge(&format!("freeway_serve_session_{session}_in_flight"));
                self.sessions
                    .insert(session, SessionState { reply, in_flight_gauge: gauge, in_flight: 0 });
                self.stats.sessions_opened += 1;
                self.sessions_gauge.set(self.sessions.len() as f64);
            }
            Request::Close { session } => {
                self.sessions.remove(&session);
                self.sessions_gauge.set(self.sessions.len() as f64);
            }
            Request::Submit { session, key, client_seq, mut batch, prequential } => {
                self.stats.submitted += 1;
                self.submitted_counter.inc();
                if let Some(state) = self.sessions.get_mut(&session) {
                    state.in_flight += 1;
                    state.in_flight_gauge.set(state.in_flight as f64);
                }
                // Keep output space ahead of a potentially blocking feed:
                // with everything pumped, a Block-policy feed can wait on
                // at most one worker step before a queue slot frees.
                while let Some((shard, out)) = self.pipeline.try_recv()? {
                    self.deliver(shard, out);
                }
                let global_seq = self.next_seq;
                self.next_seq += 1;
                batch.seq = global_seq;
                let labeled = batch.labels.is_some();
                let keyed = KeyedBatch { key, batch };
                let (shard, outcome) = if prequential {
                    self.pipeline.feed_prequential(keyed)?
                } else {
                    self.pipeline.feed(keyed)?
                };
                match outcome {
                    AdmissionOutcome::Admitted | AdmissionOutcome::Backlogged => {
                        self.ledger.insert(global_seq, PendingEntry { session, client_seq, shard });
                        if let Some(order) = self.admitted_order.as_mut() {
                            order.push(AdmittedRecord {
                                session,
                                key,
                                client_seq,
                                global_seq,
                                shard,
                                prequential,
                                labeled,
                            });
                        }
                    }
                    AdmissionOutcome::Quarantined(fault) => {
                        self.stats.quarantined += 1;
                        self.send_to(
                            session,
                            SessionOutput {
                                client_seq,
                                global_seq,
                                shard,
                                outcome: SubmitOutcome::Quarantined(fault.tag()),
                            },
                        );
                    }
                    AdmissionOutcome::Shed(reason) => {
                        self.stats.shed += 1;
                        self.send_to(
                            session,
                            SessionOutput {
                                client_seq,
                                global_seq,
                                shard,
                                outcome: SubmitOutcome::Shed(reason.tag()),
                            },
                        );
                    }
                }
                // A backlogged batch can be the shed victim of a *later*
                // feed (shedding-oldest); reconcile after every feed so
                // its session still hears the verdict. A feed can also
                // fence its shard (restart budget exhausted), stranding
                // ledger entries the dead worker will never answer.
                self.reconcile_sheds();
                self.reconcile_fences()?;
            }
            Request::InjectPanic { shard } => {
                self.pipeline.inject_worker_panic(shard)?;
                self.reconcile_fences()?;
            }
            Request::InjectStall { shard, duration, livelock } => {
                self.pipeline.inject_worker_stall(shard, duration, livelock)?;
                self.reconcile_fences()?;
            }
            Request::Shutdown => {}
        }
        Ok(())
    }

    /// Routes one pipeline output back to the session that owns it.
    fn deliver(&mut self, shard: usize, out: crate::pipeline::PipelineOutput) {
        let Some(entry) = self.ledger.remove(&out.seq) else {
            // Only reachable if a future pipeline emits outputs for
            // batches it was never fed; dropping is the safe response.
            return;
        };
        debug_assert_eq!(entry.shard, shard, "output arrived from an unexpected shard");
        let outcome = match out.report {
            Some(report) => {
                self.stats.answered += 1;
                SubmitOutcome::Answered(report)
            }
            None => {
                self.stats.trained += 1;
                SubmitOutcome::Trained
            }
        };
        self.send_to(
            entry.session,
            SessionOutput { client_seq: entry.client_seq, global_seq: out.seq, shard, outcome },
        );
    }

    /// Scans shed buffers whose totals grew past the reconciled
    /// watermark and reports newly shed ledger entries back to their
    /// sessions.
    fn reconcile_sheds(&mut self) {
        for shard in 0..self.pipeline.num_shards() {
            let total = self.pipeline.shard(shard).shed().total();
            if total == self.shed_watermarks[shard] {
                continue;
            }
            self.shed_watermarks[shard] = total;
            let mut dropped = Vec::new();
            for entry in self.pipeline.shard(shard).shed().entries() {
                if self.ledger.contains_key(&entry.batch.seq) {
                    dropped.push((entry.batch.seq, entry.reason.tag()));
                }
            }
            for (seq, reason) in dropped {
                if let Some(entry) = self.ledger.remove(&seq) {
                    self.stats.shed += 1;
                    if let Some(order) = self.admitted_order.as_mut() {
                        order.retain(|rec| rec.global_seq != seq);
                    }
                    self.send_to(
                        entry.session,
                        SessionOutput {
                            client_seq: entry.client_seq,
                            global_seq: seq,
                            shard,
                            outcome: SubmitOutcome::Shed(reason),
                        },
                    );
                }
            }
        }
    }

    /// Sweeps the ledger after a fence: batches admitted to a shard that
    /// later exhausted its restart budget can be lost in flight (handed
    /// to the worker that died) — no output and no shed-buffer entry will
    /// ever surface for them. Their sessions receive a typed, retryable
    /// [`SubmitOutcome::Shed`]`("fenced")` verdict instead of waiting
    /// forever. Answers the worker produced *before* dying are delivered
    /// first, so nothing answerable is misreported as lost.
    fn reconcile_fences(&mut self) -> Result<(), FreewayError> {
        if self.pipeline.fenced_shards().len() == self.fenced_seen {
            return Ok(());
        }
        self.fenced_seen = self.pipeline.fenced_shards().len();
        while let Some((shard, out)) = self.pipeline.try_recv()? {
            self.deliver(shard, out);
        }
        self.reconcile_sheds();
        let mut stranded: Vec<u64> = self
            .ledger
            .iter()
            .filter(|(_, entry)| self.pipeline.is_fenced(entry.shard))
            .map(|(seq, _)| *seq)
            .collect();
        stranded.sort_unstable();
        for seq in stranded {
            if let Some(entry) = self.ledger.remove(&seq) {
                self.stats.shed += 1;
                if let Some(order) = self.admitted_order.as_mut() {
                    order.retain(|rec| rec.global_seq != seq);
                }
                self.send_to(
                    entry.session,
                    SessionOutput {
                        client_seq: entry.client_seq,
                        global_seq: seq,
                        shard: entry.shard,
                        outcome: SubmitOutcome::Shed("fenced"),
                    },
                );
            }
        }
        Ok(())
    }

    fn send_to(&mut self, session: u64, output: SessionOutput) {
        if let Some(state) = self.sessions.get_mut(&session) {
            state.in_flight = state.in_flight.saturating_sub(1);
            state.in_flight_gauge.set(state.in_flight as f64);
            // A session that dropped its receiver no longer wants the
            // answer; that is not an error.
            let _ = state.reply.send(output);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_names_the_field() {
        let bad = ServiceConfig { submit_queue_depth: 0, ..Default::default() };
        assert!(bad.check().unwrap_err().contains("queue depth"));
        let bad = ServiceConfig { retry_after_hint: Duration::ZERO, ..Default::default() };
        assert!(bad.check().unwrap_err().contains("retry-after"));
        assert!(ServiceConfig::default().check().is_ok());
    }

    #[test]
    fn busy_hint_is_monotone_in_pressure() {
        let base = Duration::from_micros(200);
        let mut last = Duration::ZERO;
        for pct in 0..=100 {
            let hint = busy_hint(base, pct);
            assert!(hint >= last, "hint shrank at {pct}%: {hint:?} < {last:?}");
            last = hint;
        }
        assert_eq!(busy_hint(base, 0), base, "unloaded hint must equal the configured base");
        assert_eq!(busy_hint(base, 100), base * 4, "saturated hint caps at 4x the base");
        // Out-of-range pressure clamps instead of extrapolating.
        assert_eq!(busy_hint(base, u64::MAX), busy_hint(base, 100));
    }

    #[test]
    fn busy_hint_scales_with_backlog_occupancy() {
        // The router derives pressure from occupancy; a fuller backlog
        // must never yield a shorter suggested wait.
        let base = Duration::from_millis(1);
        for capacity in [1usize, 7, 64] {
            let mut last = Duration::ZERO;
            for used in 0..=capacity {
                #[allow(clippy::cast_precision_loss)]
                let occupancy = used as f64 / capacity as f64;
                let pct = (occupancy * 100.0).round() as u64;
                let hint = busy_hint(base, pct);
                assert!(
                    hint >= last,
                    "hint shrank as backlog filled ({used}/{capacity}): {hint:?} < {last:?}"
                );
                last = hint;
            }
        }
    }

    #[test]
    fn freeway_to_serve_round_trip_is_lossless() {
        // QueueFull and WorkerUnavailable must stay distinguishable
        // through the facade — the exact regression this guards.
        let cases: Vec<FreewayError> = vec![
            FreewayError::InvalidConfig("field".into()),
            FreewayError::WorkerUnavailable,
            FreewayError::QueueFull,
            FreewayError::WorkerPanicked("boom".into()),
            FreewayError::RestartsExhausted { attempts: 3, last_panic: "boom".into() },
            FreewayError::PoisonBatch { seq: 7, fault: crate::guard::BatchFault::Empty },
            FreewayError::Checkpoint(crate::error::CheckpointError::Malformed("bad".into())),
            FreewayError::Io(std::io::Error::other("disk")),
        ];
        for original in cases {
            let tag = std::mem::discriminant(&original);
            let via: ServeError = original.into();
            // The two backpressure variants normalize onto the facade's
            // own taxonomy, never into the Runtime catch-all.
            match &via {
                ServeError::Busy { .. } | ServeError::Disconnected => {}
                ServeError::Runtime(inner) => {
                    assert!(
                        !matches!(inner, FreewayError::QueueFull | FreewayError::WorkerUnavailable),
                        "Runtime must never absorb the normalized variants"
                    );
                }
            }
            let back: FreewayError = via.into();
            assert_eq!(std::mem::discriminant(&back), tag, "round trip changed the variant");
        }
    }

    #[test]
    fn serve_to_freeway_round_trip_keeps_busy_and_disconnected_apart() {
        let busy = ServeError::Busy { retry_after_hint: Duration::from_micros(200) };
        let back: ServeError = FreewayError::from(busy).into();
        assert!(matches!(back, ServeError::Busy { .. }), "Busy collapsed: {back:?}");

        let gone: ServeError = FreewayError::from(ServeError::Disconnected).into();
        assert!(matches!(gone, ServeError::Disconnected), "Disconnected collapsed: {gone:?}");

        let runtime = ServeError::Runtime(FreewayError::InvalidConfig("x".into()));
        let back: ServeError = FreewayError::from(runtime).into();
        assert!(matches!(back, ServeError::Runtime(FreewayError::InvalidConfig(_))));
    }
}
