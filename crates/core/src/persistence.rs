//! Checkpointing: saving and restoring a learner's state.
//!
//! Deployments restart; FreewayML's value is exactly the state it
//! accumulates (trained granularity models, historical knowledge), so a
//! checkpoint captures both. The shift tracker's PCA and history are
//! deliberately **not** checkpointed: the paper freezes PCA on warm-up
//! data, and after a restart the honest move is to re-warm on current
//! data rather than resume distances against a projection fitted on a
//! possibly long-gone distribution. A restored learner therefore spends
//! one PCA warm-up answering from its (fully restored) ensemble before
//! pattern routing resumes.
//!
//! Restoring is fallible, never panicking: a checkpoint from another
//! build, another architecture, or a corrupted file is *rejected* with a
//! [`CheckpointError`] naming what disagreed, and the learner being
//! restored into is left untouched. Disk persistence goes through
//! [`Checkpoint::save_atomic`] (write temp, fsync, rename), so a crash
//! mid-write leaves the previous checkpoint intact.
//!
//! Two further layers harden the on-disk format against the failures
//! rename atomicity cannot catch (bit rot, truncation by a full disk,
//! partial copies): every file carries a CRC32 over its payload in a
//! small envelope, and a [`CheckpointStore`] keeps the last *N*
//! generations (`checkpoint.0.json` newest) so that a corrupted newest
//! file falls back to the previous good one instead of losing all
//! accumulated state. Files written by older builds (bare checkpoint,
//! no envelope) still load.

use crate::config::FreewayConfig;
use crate::error::{CheckpointError, FreewayError};
use crate::learner::Learner;
use freeway_ml::{ModelSnapshot, ModelSpec};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};

/// CRC32 (IEEE 802.3, reflected) lookup table, built at compile time.
static CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xedb8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of `bytes` — the checksum stored in checkpoint
/// envelopes. Exposed so chaos tests can forge or verify envelopes.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xffff_ffffu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

/// On-disk wrapper: the checkpoint JSON as an opaque string plus its
/// CRC32. The payload stays a *string* (not a nested object) so the
/// checksum is computed over the exact bytes written, independent of
/// how a JSON parser would re-order object keys.
#[derive(Serialize, Deserialize)]
struct Envelope {
    crc32: u32,
    payload: String,
}

/// Format version this build writes and accepts. Bump on any change to
/// the serialized shape; readers reject every other version instead of
/// mis-decoding state.
pub const CHECKPOINT_VERSION: u32 = 1;

fn current_version() -> u32 {
    CHECKPOINT_VERSION
}

/// A serialisable learner checkpoint.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version (see [`CHECKPOINT_VERSION`]). Checkpoints written
    /// before versioning decode as 0 and are rejected.
    #[serde(default)]
    pub version: u32,
    /// Configuration the learner ran with.
    pub config: FreewayConfig,
    /// Model architecture.
    pub spec: ModelSpec,
    /// Flat parameters of every granularity level, short first.
    pub level_parameters: Vec<Vec<f64>>,
    /// Preserved knowledge: (distribution fingerprint, snapshot, disorder).
    pub knowledge: Vec<(Vec<f64>, ModelSnapshot, f64)>,
    /// Highest batch sequence number the worker had processed when this
    /// checkpoint was captured — the replay floor for the ingest journal
    /// (`None` on checkpoints captured before any batch, and on files
    /// written by pre-journal builds; both mean "replay everything").
    /// Skipped when absent so pre-journal checkpoint bytes are unchanged.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub journal_seq: Option<u64>,
}

impl Checkpoint {
    /// Captures a checkpoint from a live learner.
    pub fn capture(learner: &Learner) -> Self {
        Self {
            version: current_version(),
            config: learner.config().clone(),
            spec: learner.spec().clone(),
            level_parameters: learner.granularity().level_parameters(),
            knowledge: learner
                .knowledge()
                .entries()
                .iter()
                .map(|e| (e.distribution.clone(), e.snapshot.clone(), e.disorder))
                .collect(),
            journal_seq: None,
        }
    }

    /// Checks internal consistency without building a learner: version,
    /// level count against the checkpoint's own config, per-level
    /// parameter lengths against the spec, and knowledge snapshots
    /// against the spec.
    pub fn validate(&self) -> Result<(), CheckpointError> {
        if self.version != CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion {
                found: self.version,
                supported: CHECKPOINT_VERSION,
            });
        }
        let expected_levels = self.config.model_num.max(1);
        if self.level_parameters.len() != expected_levels {
            return Err(CheckpointError::LevelCountMismatch {
                found: self.level_parameters.len(),
                expected: expected_levels,
            });
        }
        let expected_params = self.spec.num_parameters();
        if let Some((level, p)) =
            self.level_parameters.iter().enumerate().find(|(_, p)| p.len() != expected_params)
        {
            return Err(CheckpointError::ParameterLengthMismatch {
                level,
                found: p.len(),
                expected: expected_params,
            });
        }
        if let Some((entry, _)) =
            self.knowledge.iter().enumerate().find(|(_, (_, snap, _))| snap.spec != self.spec)
        {
            return Err(CheckpointError::SnapshotSpecMismatch { entry });
        }
        Ok(())
    }

    /// Rebuilds a learner from the checkpoint.
    ///
    /// # Errors
    /// [`FreewayError::Checkpoint`] when the checkpoint fails
    /// [`Self::validate`] — a corrupt or mismatched checkpoint is
    /// rejected, never half-restored.
    pub fn restore(&self) -> Result<Learner, FreewayError> {
        self.validate()?;
        let mut learner = Learner::new(self.spec.clone(), self.config.clone());
        learner.restore_from(self)?;
        Ok(learner)
    }

    /// JSON encoding (checkpoints are dominated by `f64` parameters, so
    /// JSON costs ~2.5× the binary size; acceptable for the model sizes
    /// the paper targets, and diffable/debuggable in return).
    pub fn to_json(&self) -> String {
        // Audited: encoding plain structs of numbers/strings to an
        // in-memory string has no failure path.
        #[allow(clippy::expect_used)]
        serde_json::to_string(self).expect("checkpoint serialises")
    }

    /// Decodes a checkpoint from JSON and validates it.
    ///
    /// # Errors
    /// [`CheckpointError::Malformed`] when the JSON does not parse, any
    /// other [`CheckpointError`] when it parses but fails validation.
    pub fn from_json(json: &str) -> Result<Self, FreewayError> {
        let checkpoint: Self =
            serde_json::from_str(json).map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        checkpoint.validate()?;
        Ok(checkpoint)
    }

    /// Persists to `path` atomically: wrap the JSON in a CRC32 envelope,
    /// write to `<path>.tmp`, fsync, then rename over the destination.
    /// Readers observe either the old checkpoint or the new one — never
    /// a torn write — and silent corruption after the write is caught by
    /// the checksum on load.
    ///
    /// # Errors
    /// [`FreewayError::Io`] on any filesystem failure.
    pub fn save_atomic(&self, path: &Path) -> Result<(), FreewayError> {
        use std::io::Write as _;
        let payload = self.to_json();
        let envelope = Envelope { crc32: crc32(payload.as_bytes()), payload };
        // Audited: an in-memory struct of a u32 and a String always
        // encodes.
        #[allow(clippy::expect_used)]
        let body = serde_json::to_string(&envelope).expect("envelope serialises");
        let tmp = path.with_extension("tmp");
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(body.as_bytes())?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads and validates a checkpoint previously written with
    /// [`Self::save_atomic`]. Accepts both the enveloped format (CRC32
    /// verified before the payload is trusted) and the legacy bare
    /// format written by older builds.
    ///
    /// # Errors
    /// [`FreewayError::Io`] when the file cannot be read,
    /// [`FreewayError::Checkpoint`] when the checksum disagrees
    /// ([`CheckpointError::CrcMismatch`]) or the payload cannot be
    /// decoded or fails validation.
    pub fn load(path: &Path) -> Result<Self, FreewayError> {
        let json = std::fs::read_to_string(path)?;
        if let Ok(envelope) = serde_json::from_str::<Envelope>(&json) {
            let computed = crc32(envelope.payload.as_bytes());
            if computed != envelope.crc32 {
                return Err(
                    CheckpointError::CrcMismatch { stored: envelope.crc32, computed }.into()
                );
            }
            return Self::from_json(&envelope.payload);
        }
        Self::from_json(&json)
    }
}

/// Generational checkpoint storage: the newest checkpoint lives at
/// `<stem>.0.<ext>`, the previous at `<stem>.1.<ext>`, and so on up to a
/// configured depth. Saving rotates generations by rename (cheap, and
/// each individual file was written atomically), so a save interrupted
/// at any point leaves at least the previous generation loadable.
/// Restoring walks generations newest-first and returns the first file
/// that passes CRC, version, and structural validation — one corrupted
/// or truncated file costs one checkpoint interval, not the run.
#[derive(Clone, Debug)]
pub struct CheckpointStore {
    base: PathBuf,
    generations: usize,
}

impl CheckpointStore {
    /// A store rooted at `base` (e.g. `dir/checkpoint.json`) keeping
    /// `generations` files. Depth is clamped to at least 1.
    pub fn new(base: impl Into<PathBuf>, generations: usize) -> Self {
        Self { base: base.into(), generations: generations.max(1) }
    }

    /// Number of generations retained.
    pub fn generations(&self) -> usize {
        self.generations
    }

    /// Path of generation `generation` (0 = newest).
    pub fn generation_path(&self, generation: usize) -> PathBuf {
        let stem = self.base.file_stem().and_then(|s| s.to_str()).unwrap_or("checkpoint");
        let ext = self.base.extension().and_then(|e| e.to_str()).unwrap_or("json");
        self.base.with_file_name(format!("{stem}.{generation}.{ext}"))
    }

    /// Persists `checkpoint` as the new generation 0, rotating existing
    /// generations down and dropping the oldest beyond the configured
    /// depth.
    ///
    /// # Errors
    /// [`FreewayError::Io`] when the new generation cannot be written;
    /// rotation failures of *older* generations are not fatal (the new
    /// checkpoint still lands).
    pub fn save(&self, checkpoint: &Checkpoint) -> Result<(), FreewayError> {
        for generation in (0..self.generations.saturating_sub(1)).rev() {
            let from = self.generation_path(generation);
            if from.exists() {
                let _ = std::fs::rename(&from, self.generation_path(generation + 1));
            }
        }
        checkpoint.save_atomic(&self.generation_path(0))
    }

    /// Loads the newest generation that passes CRC, version, and
    /// structural validation, returning it together with the generation
    /// index it came from (0 = the newest file was good). Falls back to
    /// the bare `base` path last, for files written before generational
    /// storage existed.
    ///
    /// # Errors
    /// The error from the *newest* file when every candidate fails —
    /// that is the file an operator should look at first — or
    /// [`FreewayError::Io`] with `NotFound` when no candidate exists.
    pub fn load_newest(&self) -> Result<(Checkpoint, usize), FreewayError> {
        let mut newest_error: Option<FreewayError> = None;
        for generation in 0..self.generations {
            let path = self.generation_path(generation);
            if !path.exists() {
                continue;
            }
            match Checkpoint::load(&path) {
                Ok(checkpoint) => return Ok((checkpoint, generation)),
                Err(err) => {
                    if newest_error.is_none() {
                        newest_error = Some(err);
                    }
                }
            }
        }
        if self.base.exists() {
            match Checkpoint::load(&self.base) {
                Ok(checkpoint) => return Ok((checkpoint, self.generations)),
                Err(err) => {
                    if newest_error.is_none() {
                        newest_error = Some(err);
                    }
                }
            }
        }
        Err(newest_error.unwrap_or_else(|| {
            FreewayError::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("no checkpoint generation found under {}", self.base.display()),
            ))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freeway_streams::concept::{stream_rng, GmmConcept};
    use freeway_streams::{Batch, DriftPhase};

    fn trained_learner() -> (Learner, GmmConcept, rand::rngs::StdRng) {
        let mut rng = stream_rng(42);
        let concept = GmmConcept::random(5, 2, 2, 4.0, 0.6, &mut rng);
        let mut learner = Learner::new(
            ModelSpec::mlp(5, vec![8], 2),
            FreewayConfig {
                mini_batch: 96,
                pca_warmup_rows: 96,
                asw_max_batches: 3,
                ..Default::default()
            },
        );
        for i in 0..30 {
            let (x, y) = concept.sample_batch(96, &mut rng);
            learner.process(&Batch::labeled(x, y, i, DriftPhase::Stable));
        }
        (learner, concept, rng)
    }

    #[test]
    fn roundtrip_preserves_models_and_knowledge() {
        let (learner, concept, mut rng) = trained_learner();
        let checkpoint = Checkpoint::capture(&learner);
        let restored = checkpoint.restore().expect("self-captured checkpoint restores");

        assert_eq!(
            restored.granularity().level_parameters(),
            learner.granularity().level_parameters(),
            "every level's parameters survive"
        );
        assert_eq!(restored.knowledge().len(), learner.knowledge().len());

        // The restored ensemble predicts like the original's short model.
        let (x, _) = concept.sample_batch(128, &mut rng);
        let mut restored = restored;
        let report = restored.infer(&x);
        let original_short = learner.granularity().short_model().predict(&x);
        let agree = report.predictions.iter().zip(&original_short).filter(|(a, b)| a == b).count();
        assert!(
            agree as f64 / x.rows() as f64 > 0.9,
            "restored learner must behave like the original: {agree}/{}",
            x.rows()
        );
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let (learner, _, _) = trained_learner();
        let checkpoint = Checkpoint::capture(&learner);
        let json = checkpoint.to_json();
        let decoded = Checkpoint::from_json(&json).expect("valid json");
        assert_eq!(decoded.version, CHECKPOINT_VERSION);
        assert_eq!(decoded.level_parameters, checkpoint.level_parameters);
        assert_eq!(decoded.knowledge.len(), checkpoint.knowledge.len());
        for (a, b) in decoded.knowledge.iter().zip(&checkpoint.knowledge) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1, b.1);
        }
    }

    #[test]
    fn restored_learner_keeps_learning() {
        let (learner, concept, mut rng) = trained_learner();
        let mut restored =
            Checkpoint::capture(&learner).restore().expect("self-captured checkpoint restores");
        // Continue the stream through the restored learner; accuracy must
        // stay high (the restored models carry the learned state through
        // the PCA re-warm-up).
        let mut correct = 0;
        let mut total = 0;
        for i in 0..10 {
            let (x, y) = concept.sample_batch(96, &mut rng);
            let report =
                restored.process(&Batch::labeled(x, y.clone(), 100 + i, DriftPhase::Stable));
            correct += report.predictions.iter().zip(&y).filter(|(p, t)| p == t).count();
            total += y.len();
        }
        assert!(correct as f64 / total as f64 > 0.8, "post-restore accuracy {correct}/{total}");
    }

    #[test]
    fn restore_rejects_mismatched_levels() {
        let (learner, _, _) = trained_learner();
        let mut checkpoint = Checkpoint::capture(&learner);
        checkpoint.level_parameters.pop();
        match checkpoint.restore().err() {
            Some(FreewayError::Checkpoint(CheckpointError::LevelCountMismatch {
                found: 1,
                expected: 2,
            })) => {}
            other => panic!("expected LevelCountMismatch, got {other:?}"),
        }
    }

    #[test]
    fn restore_rejects_truncated_parameters() {
        let (learner, _, _) = trained_learner();
        let mut checkpoint = Checkpoint::capture(&learner);
        checkpoint.level_parameters[1].truncate(3);
        match checkpoint.restore().err() {
            Some(FreewayError::Checkpoint(CheckpointError::ParameterLengthMismatch {
                level: 1,
                found: 3,
                ..
            })) => {}
            other => panic!("expected ParameterLengthMismatch, got {other:?}"),
        }
    }

    #[test]
    fn unknown_version_is_rejected() {
        let (learner, _, _) = trained_learner();
        let mut checkpoint = Checkpoint::capture(&learner);
        checkpoint.version = CHECKPOINT_VERSION + 1;
        let json = checkpoint.to_json();
        match Checkpoint::from_json(&json) {
            Err(FreewayError::Checkpoint(CheckpointError::UnsupportedVersion {
                found,
                supported,
            })) => {
                assert_eq!(found, CHECKPOINT_VERSION + 1);
                assert_eq!(supported, CHECKPOINT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        // Pre-versioning checkpoints deserialize as version 0 and are
        // rejected the same way, not mis-decoded.
        checkpoint.version = 0;
        assert!(matches!(
            Checkpoint::from_json(&checkpoint.to_json()),
            Err(FreewayError::Checkpoint(CheckpointError::UnsupportedVersion { found: 0, .. }))
        ));
    }

    #[test]
    fn malformed_json_is_an_error_not_a_panic() {
        assert!(matches!(
            Checkpoint::from_json("{\"version\": 1, \"garbage\":"),
            Err(FreewayError::Checkpoint(CheckpointError::Malformed(_)))
        ));
    }

    #[test]
    fn save_atomic_then_load_roundtrips() {
        let (learner, _, _) = trained_learner();
        let checkpoint = Checkpoint::capture(&learner);
        let dir = std::env::temp_dir().join("freeway-persistence-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("ckpt.json");
        checkpoint.save_atomic(&path).expect("save succeeds");
        assert!(!path.with_extension("tmp").exists(), "temp file renamed away");
        let loaded = Checkpoint::load(&path).expect("load succeeds");
        assert_eq!(loaded.level_parameters, checkpoint.level_parameters);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn corrupted_payload_fails_crc_not_parse() {
        let (learner, _, _) = trained_learner();
        let checkpoint = Checkpoint::capture(&learner);
        let dir = std::env::temp_dir().join("freeway-crc-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("ckpt.json");
        checkpoint.save_atomic(&path).expect("save succeeds");
        // Flip one digit without breaking the JSON structure: the
        // envelope still parses, the checksum must not. A digit swap is
        // safe anywhere it lands (stored CRC or payload — either way the
        // two sides disagree), and the serialized version field
        // guarantees a `1` exists.
        let body = std::fs::read_to_string(&path).expect("readable");
        let tampered = body.replacen('1', "2", 1);
        assert_ne!(body, tampered, "fixture must actually change a byte");
        std::fs::write(&path, tampered).expect("writable");
        assert!(matches!(
            Checkpoint::load(&path),
            Err(FreewayError::Checkpoint(CheckpointError::CrcMismatch { .. }))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn legacy_bare_checkpoint_still_loads() {
        let (learner, _, _) = trained_learner();
        let checkpoint = Checkpoint::capture(&learner);
        let dir = std::env::temp_dir().join("freeway-legacy-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("ckpt.json");
        std::fs::write(&path, checkpoint.to_json()).expect("writable");
        let loaded = Checkpoint::load(&path).expect("legacy format loads");
        assert_eq!(loaded.level_parameters, checkpoint.level_parameters);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_rotates_generations_and_falls_back_past_corruption() {
        let (mut learner, concept, mut rng) = trained_learner();
        let first = Checkpoint::capture(&learner);
        let (x, y) = concept.sample_batch(96, &mut rng);
        learner.process(&Batch::labeled(x, y, 100, DriftPhase::Stable));
        let second = Checkpoint::capture(&learner);
        assert_ne!(first.level_parameters, second.level_parameters, "fixture must differ");

        let dir = std::env::temp_dir().join("freeway-store-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        let store = CheckpointStore::new(dir.join("checkpoint.json"), 3);
        store.save(&first).expect("first save");
        store.save(&second).expect("second save");
        assert!(store.generation_path(0).exists());
        assert!(store.generation_path(1).exists());

        let (loaded, generation) = store.load_newest().expect("newest loads");
        assert_eq!(generation, 0);
        assert_eq!(loaded.level_parameters, second.level_parameters);

        // Truncate the newest file: restore must fall back to the
        // previous generation instead of failing.
        let newest = store.generation_path(0);
        let body = std::fs::read_to_string(&newest).expect("readable");
        std::fs::write(&newest, &body[..body.len() / 2]).expect("truncatable");
        let (recovered, generation) = store.load_newest().expect("fallback loads");
        assert_eq!(generation, 1);
        assert_eq!(recovered.level_parameters, first.level_parameters);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_caps_retained_generations() {
        let (learner, _, _) = trained_learner();
        let checkpoint = Checkpoint::capture(&learner);
        let dir = std::env::temp_dir().join("freeway-store-cap-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        let store = CheckpointStore::new(dir.join("checkpoint.json"), 2);
        for _ in 0..4 {
            store.save(&checkpoint).expect("save");
        }
        assert!(store.generation_path(0).exists());
        assert!(store.generation_path(1).exists());
        assert!(!store.generation_path(2).exists(), "oldest generations are dropped");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_store_reports_not_found() {
        let dir = std::env::temp_dir().join("freeway-store-empty-test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir");
        let store = CheckpointStore::new(dir.join("checkpoint.json"), 3);
        assert!(matches!(store.load_newest(), Err(FreewayError::Io(_))));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
