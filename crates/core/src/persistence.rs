//! Checkpointing: saving and restoring a learner's state.
//!
//! Deployments restart; FreewayML's value is exactly the state it
//! accumulates (trained granularity models, historical knowledge), so a
//! checkpoint captures both. The shift tracker's PCA and history are
//! deliberately **not** checkpointed: the paper freezes PCA on warm-up
//! data, and after a restart the honest move is to re-warm on current
//! data rather than resume distances against a projection fitted on a
//! possibly long-gone distribution. A restored learner therefore spends
//! one PCA warm-up answering from its (fully restored) ensemble before
//! pattern routing resumes.
//!
//! Restoring is fallible, never panicking: a checkpoint from another
//! build, another architecture, or a corrupted file is *rejected* with a
//! [`CheckpointError`] naming what disagreed, and the learner being
//! restored into is left untouched. Disk persistence goes through
//! [`Checkpoint::save_atomic`] (write temp, fsync, rename), so a crash
//! mid-write leaves the previous checkpoint intact.

use crate::config::FreewayConfig;
use crate::error::{CheckpointError, FreewayError};
use crate::learner::Learner;
use freeway_ml::{ModelSnapshot, ModelSpec};
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Format version this build writes and accepts. Bump on any change to
/// the serialized shape; readers reject every other version instead of
/// mis-decoding state.
pub const CHECKPOINT_VERSION: u32 = 1;

fn current_version() -> u32 {
    CHECKPOINT_VERSION
}

/// A serialisable learner checkpoint.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Format version (see [`CHECKPOINT_VERSION`]). Checkpoints written
    /// before versioning decode as 0 and are rejected.
    #[serde(default)]
    pub version: u32,
    /// Configuration the learner ran with.
    pub config: FreewayConfig,
    /// Model architecture.
    pub spec: ModelSpec,
    /// Flat parameters of every granularity level, short first.
    pub level_parameters: Vec<Vec<f64>>,
    /// Preserved knowledge: (distribution fingerprint, snapshot, disorder).
    pub knowledge: Vec<(Vec<f64>, ModelSnapshot, f64)>,
}

impl Checkpoint {
    /// Captures a checkpoint from a live learner.
    pub fn capture(learner: &Learner) -> Self {
        Self {
            version: current_version(),
            config: learner.config().clone(),
            spec: learner.spec().clone(),
            level_parameters: learner.granularity().level_parameters(),
            knowledge: learner
                .knowledge()
                .entries()
                .iter()
                .map(|e| (e.distribution.clone(), e.snapshot.clone(), e.disorder))
                .collect(),
        }
    }

    /// Checks internal consistency without building a learner: version,
    /// level count against the checkpoint's own config, per-level
    /// parameter lengths against the spec, and knowledge snapshots
    /// against the spec.
    pub fn validate(&self) -> Result<(), CheckpointError> {
        if self.version != CHECKPOINT_VERSION {
            return Err(CheckpointError::UnsupportedVersion {
                found: self.version,
                supported: CHECKPOINT_VERSION,
            });
        }
        let expected_levels = self.config.model_num.max(1);
        if self.level_parameters.len() != expected_levels {
            return Err(CheckpointError::LevelCountMismatch {
                found: self.level_parameters.len(),
                expected: expected_levels,
            });
        }
        let expected_params = self.spec.num_parameters();
        if let Some((level, p)) =
            self.level_parameters.iter().enumerate().find(|(_, p)| p.len() != expected_params)
        {
            return Err(CheckpointError::ParameterLengthMismatch {
                level,
                found: p.len(),
                expected: expected_params,
            });
        }
        if let Some((entry, _)) =
            self.knowledge.iter().enumerate().find(|(_, (_, snap, _))| snap.spec != self.spec)
        {
            return Err(CheckpointError::SnapshotSpecMismatch { entry });
        }
        Ok(())
    }

    /// Rebuilds a learner from the checkpoint.
    ///
    /// # Errors
    /// [`FreewayError::Checkpoint`] when the checkpoint fails
    /// [`Self::validate`] — a corrupt or mismatched checkpoint is
    /// rejected, never half-restored.
    pub fn restore(&self) -> Result<Learner, FreewayError> {
        self.validate()?;
        let mut learner = Learner::new(self.spec.clone(), self.config.clone());
        learner.restore_from(self)?;
        Ok(learner)
    }

    /// JSON encoding (checkpoints are dominated by `f64` parameters, so
    /// JSON costs ~2.5× the binary size; acceptable for the model sizes
    /// the paper targets, and diffable/debuggable in return).
    pub fn to_json(&self) -> String {
        // Audited: encoding plain structs of numbers/strings to an
        // in-memory string has no failure path.
        #[allow(clippy::expect_used)]
        serde_json::to_string(self).expect("checkpoint serialises")
    }

    /// Decodes a checkpoint from JSON and validates it.
    ///
    /// # Errors
    /// [`CheckpointError::Malformed`] when the JSON does not parse, any
    /// other [`CheckpointError`] when it parses but fails validation.
    pub fn from_json(json: &str) -> Result<Self, FreewayError> {
        let checkpoint: Self =
            serde_json::from_str(json).map_err(|e| CheckpointError::Malformed(e.to_string()))?;
        checkpoint.validate()?;
        Ok(checkpoint)
    }

    /// Persists to `path` atomically: write to `<path>.tmp`, fsync, then
    /// rename over the destination. Readers observe either the old
    /// checkpoint or the new one — never a torn write.
    ///
    /// # Errors
    /// [`FreewayError::Io`] on any filesystem failure.
    pub fn save_atomic(&self, path: &Path) -> Result<(), FreewayError> {
        use std::io::Write as _;
        let tmp = path.with_extension("tmp");
        {
            let mut file = std::fs::File::create(&tmp)?;
            file.write_all(self.to_json().as_bytes())?;
            file.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads and validates a checkpoint previously written with
    /// [`Self::save_atomic`].
    ///
    /// # Errors
    /// [`FreewayError::Io`] when the file cannot be read,
    /// [`FreewayError::Checkpoint`] when it cannot be decoded or fails
    /// validation.
    pub fn load(path: &Path) -> Result<Self, FreewayError> {
        let json = std::fs::read_to_string(path)?;
        Self::from_json(&json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freeway_streams::concept::{stream_rng, GmmConcept};
    use freeway_streams::{Batch, DriftPhase};

    fn trained_learner() -> (Learner, GmmConcept, rand::rngs::StdRng) {
        let mut rng = stream_rng(42);
        let concept = GmmConcept::random(5, 2, 2, 4.0, 0.6, &mut rng);
        let mut learner = Learner::new(
            ModelSpec::mlp(5, vec![8], 2),
            FreewayConfig {
                mini_batch: 96,
                pca_warmup_rows: 96,
                asw_max_batches: 3,
                ..Default::default()
            },
        );
        for i in 0..30 {
            let (x, y) = concept.sample_batch(96, &mut rng);
            learner.process(&Batch::labeled(x, y, i, DriftPhase::Stable));
        }
        (learner, concept, rng)
    }

    #[test]
    fn roundtrip_preserves_models_and_knowledge() {
        let (learner, concept, mut rng) = trained_learner();
        let checkpoint = Checkpoint::capture(&learner);
        let restored = checkpoint.restore().expect("self-captured checkpoint restores");

        assert_eq!(
            restored.granularity().level_parameters(),
            learner.granularity().level_parameters(),
            "every level's parameters survive"
        );
        assert_eq!(restored.knowledge().len(), learner.knowledge().len());

        // The restored ensemble predicts like the original's short model.
        let (x, _) = concept.sample_batch(128, &mut rng);
        let mut restored = restored;
        let report = restored.infer(&x);
        let original_short = learner.granularity().short_model().predict(&x);
        let agree = report.predictions.iter().zip(&original_short).filter(|(a, b)| a == b).count();
        assert!(
            agree as f64 / x.rows() as f64 > 0.9,
            "restored learner must behave like the original: {agree}/{}",
            x.rows()
        );
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let (learner, _, _) = trained_learner();
        let checkpoint = Checkpoint::capture(&learner);
        let json = checkpoint.to_json();
        let decoded = Checkpoint::from_json(&json).expect("valid json");
        assert_eq!(decoded.version, CHECKPOINT_VERSION);
        assert_eq!(decoded.level_parameters, checkpoint.level_parameters);
        assert_eq!(decoded.knowledge.len(), checkpoint.knowledge.len());
        for (a, b) in decoded.knowledge.iter().zip(&checkpoint.knowledge) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1, b.1);
        }
    }

    #[test]
    fn restored_learner_keeps_learning() {
        let (learner, concept, mut rng) = trained_learner();
        let mut restored =
            Checkpoint::capture(&learner).restore().expect("self-captured checkpoint restores");
        // Continue the stream through the restored learner; accuracy must
        // stay high (the restored models carry the learned state through
        // the PCA re-warm-up).
        let mut correct = 0;
        let mut total = 0;
        for i in 0..10 {
            let (x, y) = concept.sample_batch(96, &mut rng);
            let report =
                restored.process(&Batch::labeled(x, y.clone(), 100 + i, DriftPhase::Stable));
            correct += report.predictions.iter().zip(&y).filter(|(p, t)| p == t).count();
            total += y.len();
        }
        assert!(correct as f64 / total as f64 > 0.8, "post-restore accuracy {correct}/{total}");
    }

    #[test]
    fn restore_rejects_mismatched_levels() {
        let (learner, _, _) = trained_learner();
        let mut checkpoint = Checkpoint::capture(&learner);
        checkpoint.level_parameters.pop();
        match checkpoint.restore().err() {
            Some(FreewayError::Checkpoint(CheckpointError::LevelCountMismatch {
                found: 1,
                expected: 2,
            })) => {}
            other => panic!("expected LevelCountMismatch, got {other:?}"),
        }
    }

    #[test]
    fn restore_rejects_truncated_parameters() {
        let (learner, _, _) = trained_learner();
        let mut checkpoint = Checkpoint::capture(&learner);
        checkpoint.level_parameters[1].truncate(3);
        match checkpoint.restore().err() {
            Some(FreewayError::Checkpoint(CheckpointError::ParameterLengthMismatch {
                level: 1,
                found: 3,
                ..
            })) => {}
            other => panic!("expected ParameterLengthMismatch, got {other:?}"),
        }
    }

    #[test]
    fn unknown_version_is_rejected() {
        let (learner, _, _) = trained_learner();
        let mut checkpoint = Checkpoint::capture(&learner);
        checkpoint.version = CHECKPOINT_VERSION + 1;
        let json = checkpoint.to_json();
        match Checkpoint::from_json(&json) {
            Err(FreewayError::Checkpoint(CheckpointError::UnsupportedVersion {
                found,
                supported,
            })) => {
                assert_eq!(found, CHECKPOINT_VERSION + 1);
                assert_eq!(supported, CHECKPOINT_VERSION);
            }
            other => panic!("expected UnsupportedVersion, got {other:?}"),
        }
        // Pre-versioning checkpoints deserialize as version 0 and are
        // rejected the same way, not mis-decoded.
        checkpoint.version = 0;
        assert!(matches!(
            Checkpoint::from_json(&checkpoint.to_json()),
            Err(FreewayError::Checkpoint(CheckpointError::UnsupportedVersion { found: 0, .. }))
        ));
    }

    #[test]
    fn malformed_json_is_an_error_not_a_panic() {
        assert!(matches!(
            Checkpoint::from_json("{\"version\": 1, \"garbage\":"),
            Err(FreewayError::Checkpoint(CheckpointError::Malformed(_)))
        ));
    }

    #[test]
    fn save_atomic_then_load_roundtrips() {
        let (learner, _, _) = trained_learner();
        let checkpoint = Checkpoint::capture(&learner);
        let dir = std::env::temp_dir().join("freeway-persistence-test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("ckpt.json");
        checkpoint.save_atomic(&path).expect("save succeeds");
        assert!(!path.with_extension("tmp").exists(), "temp file renamed away");
        let loaded = Checkpoint::load(&path).expect("load succeeds");
        assert_eq!(loaded.level_parameters, checkpoint.level_parameters);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
