//! Checkpointing: saving and restoring a learner's state.
//!
//! Deployments restart; FreewayML's value is exactly the state it
//! accumulates (trained granularity models, historical knowledge), so a
//! checkpoint captures both. The shift tracker's PCA and history are
//! deliberately **not** checkpointed: the paper freezes PCA on warm-up
//! data, and after a restart the honest move is to re-warm on current
//! data rather than resume distances against a projection fitted on a
//! possibly long-gone distribution. A restored learner therefore spends
//! one PCA warm-up answering from its (fully restored) ensemble before
//! pattern routing resumes.

use crate::config::FreewayConfig;
use crate::learner::Learner;
use freeway_ml::{ModelSnapshot, ModelSpec};
use serde::{Deserialize, Serialize};

/// A serialisable learner checkpoint.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Checkpoint {
    /// Configuration the learner ran with.
    pub config: FreewayConfig,
    /// Model architecture.
    pub spec: ModelSpec,
    /// Flat parameters of every granularity level, short first.
    pub level_parameters: Vec<Vec<f64>>,
    /// Preserved knowledge: (distribution fingerprint, snapshot, disorder).
    pub knowledge: Vec<(Vec<f64>, ModelSnapshot, f64)>,
}

impl Checkpoint {
    /// Captures a checkpoint from a live learner.
    pub fn capture(learner: &Learner) -> Self {
        Self {
            config: learner.config().clone(),
            spec: learner.spec().clone(),
            level_parameters: learner.granularity().level_parameters(),
            knowledge: learner
                .knowledge()
                .entries()
                .iter()
                .map(|e| (e.distribution.clone(), e.snapshot.clone(), e.disorder))
                .collect(),
        }
    }

    /// Rebuilds a learner from the checkpoint.
    pub fn restore(&self) -> Learner {
        let mut learner = Learner::new(self.spec.clone(), self.config.clone());
        learner.restore_from(self);
        learner
    }

    /// JSON encoding (checkpoints are dominated by `f64` parameters, so
    /// JSON costs ~2.5× the binary size; acceptable for the model sizes
    /// the paper targets, and diffable/debuggable in return).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint serialises")
    }

    /// Decodes a checkpoint from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freeway_streams::concept::{stream_rng, GmmConcept};
    use freeway_streams::{Batch, DriftPhase};

    fn trained_learner() -> (Learner, GmmConcept, rand::rngs::StdRng) {
        let mut rng = stream_rng(42);
        let concept = GmmConcept::random(5, 2, 2, 4.0, 0.6, &mut rng);
        let mut learner = Learner::new(
            ModelSpec::mlp(5, vec![8], 2),
            FreewayConfig {
                mini_batch: 96,
                pca_warmup_rows: 96,
                asw_max_batches: 3,
                ..Default::default()
            },
        );
        for i in 0..30 {
            let (x, y) = concept.sample_batch(96, &mut rng);
            learner.process(&Batch::labeled(x, y, i, DriftPhase::Stable));
        }
        (learner, concept, rng)
    }

    #[test]
    fn roundtrip_preserves_models_and_knowledge() {
        let (learner, concept, mut rng) = trained_learner();
        let checkpoint = Checkpoint::capture(&learner);
        let restored = checkpoint.restore();

        assert_eq!(
            restored.granularity().level_parameters(),
            learner.granularity().level_parameters(),
            "every level's parameters survive"
        );
        assert_eq!(restored.knowledge().len(), learner.knowledge().len());

        // The restored ensemble predicts like the original's short model.
        let (x, _) = concept.sample_batch(128, &mut rng);
        let mut restored = restored;
        let report = restored.infer(&x);
        let original_short = learner.granularity().short_model().predict(&x);
        let agree = report.predictions.iter().zip(&original_short).filter(|(a, b)| a == b).count();
        assert!(
            agree as f64 / x.rows() as f64 > 0.9,
            "restored learner must behave like the original: {agree}/{}",
            x.rows()
        );
    }

    #[test]
    fn json_roundtrip_is_lossless() {
        let (learner, _, _) = trained_learner();
        let checkpoint = Checkpoint::capture(&learner);
        let json = checkpoint.to_json();
        let decoded = Checkpoint::from_json(&json).expect("valid json");
        assert_eq!(decoded.level_parameters, checkpoint.level_parameters);
        assert_eq!(decoded.knowledge.len(), checkpoint.knowledge.len());
        for (a, b) in decoded.knowledge.iter().zip(&checkpoint.knowledge) {
            assert_eq!(a.0, b.0);
            assert_eq!(a.1, b.1);
        }
    }

    #[test]
    fn restored_learner_keeps_learning() {
        let (learner, concept, mut rng) = trained_learner();
        let mut restored = Checkpoint::capture(&learner).restore();
        // Continue the stream through the restored learner; accuracy must
        // stay high (the restored models carry the learned state through
        // the PCA re-warm-up).
        let mut correct = 0;
        let mut total = 0;
        for i in 0..10 {
            let (x, y) = concept.sample_batch(96, &mut rng);
            let report =
                restored.process(&Batch::labeled(x, y.clone(), 100 + i, DriftPhase::Stable));
            correct += report.predictions.iter().zip(&y).filter(|(p, t)| p == t).count();
            total += y.len();
        }
        assert!(correct as f64 / total as f64 > 0.8, "post-restore accuracy {correct}/{total}");
    }

    #[test]
    #[should_panic(expected = "level count")]
    fn restore_rejects_mismatched_levels() {
        let (learner, _, _) = trained_learner();
        let mut checkpoint = Checkpoint::capture(&learner);
        checkpoint.level_parameters.pop();
        let _ = checkpoint.restore();
    }
}
