//! Multi-time-granularity models and the distance ensemble (§IV-B).
//!
//! Level 0 is the *short*-granularity model: it trains on every incoming
//! batch. Levels ≥ 1 are *long*-granularity models, each fed by its own
//! [`AdaptiveStreamingWindow`]; level `i`'s window is `i` times the base
//! size, so `model_num > 2` yields a spectrum of granularities without
//! extra implementation effort, exactly as the paper promises.
//!
//! Inference blends all levels with Gaussian-kernel weights over the
//! model–data distance `D` (Equations 12–14): level 0 uses
//! `D = ‖ȳ_n − ȳ_{n−1}‖` (distance to its last training batch) and long
//! levels use `D = ‖ȳ_n − ȳ_ASW‖`.

use crate::asw::{AdaptiveStreamingWindow, AswParams};
use crate::config::FreewayConfig;
use crate::error::CheckpointError;
use freeway_linalg::{pool, vector, Matrix};
use freeway_ml::{Model, ModelSpec, PrecomputeAccumulator, Trainer, Workspace};
use parking_lot::Mutex;
use std::sync::Arc;

/// A long-model update running as a background pool job. The job trains
/// a snapshot (clone) of the level's trainer and deposits it here; the
/// level swaps the result in at a later `train` call, so inference never
/// waits on the update.
struct PendingUpdate {
    /// `None` while the job runs; `Ok(trained)` on success, `Err` when
    /// the update panicked (the level then keeps its current model).
    slot: Arc<Mutex<Option<Result<Trainer, String>>>>,
    /// Fingerprint of the window the job trained on, installed with it.
    window_mean: Option<Vec<f64>>,
    /// Disorder of that window, surfaced on installation.
    disorder: f64,
}

/// Rows scored by the per-level prequential probe in [`MultiGranularity::train`].
const PROBE_ROWS: usize = 64;

/// Cached hard predictions for the probe slice of the batch this level
/// last scored during `predict_proba`, tagged with a bitwise copy of that
/// slice. Under the prequential test-then-train contract the training
/// batch is the batch just inferred, so `train`'s EWMA probe can reuse
/// these instead of paying another forward pass. The cache is *purely*
/// an optimisation: a hit requires the level's model to be unchanged
/// since the predictions were written **and** the incoming probe slice
/// to be bitwise identical to the tagged one — under those conditions
/// recomputing would reproduce the exact same predictions, so results
/// are bit-identical whether the cache hits or misses.
#[derive(Default)]
struct ProbeCache {
    /// Bitwise copy of the probe slice (`preds.len() * cols` values,
    /// row-major) the predictions were computed on.
    head: Vec<f64>,
    /// Column count of the tagged batch.
    cols: usize,
    /// Full row count of the tagged batch (the probe spans the whole
    /// batch when it has ≤ [`PROBE_ROWS`] rows, so shape must match).
    batch_rows: usize,
    /// Argmax predictions for the probe rows.
    preds: Vec<usize>,
    /// Cleared whenever this level's model changes.
    valid: bool,
}

/// One granularity level.
struct Level {
    trainer: Trainer,
    /// In-flight async window updates, oldest first. Results are
    /// installed in submission order; a severe shift discards them.
    pending: Vec<PendingUpdate>,
    /// `None` for the short level (trains every batch), the window
    /// otherwise.
    window: Option<AdaptiveStreamingWindow>,
    /// Completed updates; a level that has never trained must not vote.
    updates: usize,
    /// Distribution fingerprint of the data this level was *trained on*
    /// (the short level's last batch, a long level's window mean at its
    /// most recent completion). The ensemble distance `D` is measured
    /// against this — the model's competence region — not against the
    /// window's still-accumulating contents.
    trained_projection: Option<Vec<f64>>,
    /// Cleared when a severe shift invalidates this level's training
    /// data; restored at its next (clean) window completion. Untrusted
    /// levels do not vote in the ensemble.
    trusted: bool,
    /// Exponentially weighted moving average of this level's *pre-update*
    /// accuracy on incoming labeled batches (prequential quality). Breaks
    /// distance ties in the ensemble toward the stronger model.
    ewma_acc: f64,
    /// Reusable inference scratch (model workspace + probability buffer),
    /// shared across `predict_proba` calls so the warm ensemble forward
    /// pass allocates nothing. Behind a mutex because prediction takes
    /// `&self` and the parallel path evaluates levels on pool threads.
    scratch: Mutex<(Workspace, Matrix)>,
    /// Probe predictions left behind by the most recent `predict_proba`
    /// this level voted in (see [`ProbeCache`]). Behind a mutex for the
    /// same reason as `scratch`.
    probe: Mutex<ProbeCache>,
}

impl Level {
    /// Drops the cached probe predictions; must be called after every
    /// mutation of this level's model (the cache's validity contract).
    fn invalidate_probe(&mut self) {
        self.probe.get_mut().valid = false;
    }
}

/// The multi-granularity model bank.
pub struct MultiGranularity {
    levels: Vec<Level>,
    spec: ModelSpec,
    sigma: f64,
    precompute_subsets: usize,
    update_epochs: usize,
    parallel_inference: bool,
    async_long_updates: bool,
    /// Projection of the short model's most recent training batch
    /// (`ȳ_{n−1}` in Equation 12).
    last_trained_projection: Option<Vec<f64>>,
    /// Disorder of the most recently completed window (knowledge
    /// preservation reads this).
    last_completed_disorder: Option<f64>,
}

impl MultiGranularity {
    /// Builds `config.model_num` levels of the given spec.
    pub fn new(spec: ModelSpec, config: &FreewayConfig) -> Self {
        let levels = (0..config.model_num.max(1))
            .map(|i| {
                // All levels start from the *same* initialisation: they are
                // the same model observed at different time granularities,
                // so an identical starting point keeps the early ensemble
                // coherent.
                let trainer = Trainer::new(
                    spec.build(config.seed),
                    config.optimizer.build(config.learning_rate),
                );
                let window = (i > 0).then(|| {
                    AdaptiveStreamingWindow::new(AswParams {
                        max_batches: config.asw_max_batches * i,
                        max_items: config.asw_max_items * i,
                        base_decay: config.asw_base_decay,
                        rank_decay: config.asw_rank_decay,
                        disorder_boost: config.asw_disorder_boost,
                        min_weight: config.asw_min_weight,
                    })
                });
                let mut trainer = trainer;
                trainer.set_parallel_gradient(config.parallel_gradient);
                Level {
                    trainer,
                    pending: Vec::new(),
                    window,
                    updates: 0,
                    trained_projection: None,
                    trusted: true,
                    ewma_acc: 0.5,
                    scratch: Mutex::new((Workspace::new(), Matrix::zeros(0, 0))),
                    probe: Mutex::new(ProbeCache::default()),
                }
            })
            .collect();
        Self {
            levels,
            spec,
            sigma: config.ensemble_sigma,
            precompute_subsets: config.precompute_subsets.max(1),
            update_epochs: config.asw_update_epochs.max(1),
            parallel_inference: config.parallel_inference,
            async_long_updates: config.async_long_updates,
            last_trained_projection: None,
            last_completed_disorder: None,
        }
    }

    /// Attaches an observability handle to every level's streaming window
    /// (labeled with its level index).
    pub fn attach_telemetry(&mut self, telemetry: &freeway_telemetry::Telemetry) {
        for (i, level) in self.levels.iter_mut().enumerate() {
            if let Some(window) = level.window.as_mut() {
                window.attach_telemetry(telemetry.clone(), i);
            }
        }
    }

    /// Number of granularity levels.
    pub fn num_levels(&self) -> usize {
        self.levels.len()
    }

    /// The architecture spec shared by all levels.
    pub fn spec(&self) -> &ModelSpec {
        &self.spec
    }

    /// The short-granularity model (level 0).
    pub fn short_model(&self) -> &dyn Model {
        self.levels[0].trainer.model()
    }

    /// Mutable short model (knowledge restore writes here).
    pub fn short_model_mut(&mut self) -> &mut dyn Model {
        // The caller may mutate the model, so the probe cache's
        // "unchanged since predict" premise no longer holds.
        self.levels[0].invalidate_probe();
        self.levels[0].trainer.model_mut()
    }

    /// The slowest (longest-granularity) model, or the short model when
    /// `model_num == 1`.
    pub fn long_model(&self) -> &dyn Model {
        // Audited: the constructor clamps `model_num` to at least 1, so
        // `levels` is never empty.
        #[allow(clippy::expect_used)]
        self.levels.last().expect("at least one level").trainer.model()
    }

    /// Disorder of the most recently *completed* window, consumed by the
    /// knowledge-preservation policy; `take` semantics so each completion
    /// is only preserved once.
    pub fn take_completed_disorder(&mut self) -> Option<f64> {
        self.last_completed_disorder.take()
    }

    /// Current disorder of the largest window (A1/A2 signal), zero when
    /// no long level exists or the window is empty.
    pub fn current_disorder(&self) -> f64 {
        self.levels.last().and_then(|l| l.window.as_ref()).map_or(0.0, |w| w.disorder())
    }

    /// Reacts to a detected severe shift (§III Pattern B/C): window
    /// contents straddle the old and new distributions, so they are
    /// flushed, and long levels stop voting until their next *clean*
    /// window completes. The short level keeps adapting batch-by-batch.
    pub fn handle_severe_shift(&mut self) {
        for level in &mut self.levels {
            if let Some(window) = level.window.as_mut() {
                window.clear();
                level.trusted = false;
                // In-flight async updates trained on the invalidated
                // window contents; their results must not land.
                level.pending.clear();
            }
        }
    }

    /// Installs finished async window updates, oldest first, stopping at
    /// the first still-running job so results land in submission order.
    /// Called at the top of every [`Self::train`]; cheap when nothing is
    /// pending.
    /// Installs every *completed* asynchronous window update, in
    /// submission order per level; in-flight updates stay pending.
    /// Called automatically at the start of each [`train`](Self::train);
    /// public so serving processes that have stopped training (and
    /// tests) can still land finished updates without feeding a batch.
    pub fn harvest_async_updates(&mut self) {
        let mut completed_disorder = None;
        for level in &mut self.levels {
            while let Some(front) = level.pending.first() {
                let Some(outcome) = front.slot.lock().take() else {
                    break;
                };
                let finished = level.pending.remove(0);
                match outcome {
                    Ok(trainer) => {
                        level.trainer = trainer;
                        level.invalidate_probe();
                        level.updates += 1;
                        level.trained_projection = finished.window_mean;
                        level.trusted = true;
                        completed_disorder = Some(finished.disorder);
                    }
                    Err(message) => {
                        // The level keeps its current model; the next
                        // window completion retrains it.
                        eprintln!("freeway-core: async long update dropped: {message}");
                    }
                }
            }
        }
        if completed_disorder.is_some() {
            self.last_completed_disorder = completed_disorder;
        }
    }

    /// Number of async window updates still in flight across all levels.
    pub fn pending_async_updates(&self) -> usize {
        self.levels.iter().map(|l| l.pending.len()).sum()
    }

    /// Rate-aware adjuster hook: boost window decay under pressure.
    pub fn set_decay_multiplier(&mut self, multiplier: f64) {
        for level in &mut self.levels {
            if let Some(w) = level.window.as_mut() {
                w.set_decay_multiplier(multiplier);
            }
        }
    }

    /// Trains all levels on a labeled batch (short every call, long via
    /// window completion). `projected` is the batch's shift-graph
    /// projection, used for window decay and ensemble distances.
    pub fn train(&mut self, x: &Matrix, labels: &[usize], projected: &[f64]) {
        self.harvest_async_updates();
        // Captured once: long levels warm-start from the short model's
        // parameters at their window completions.
        let mut short_params: Option<Vec<f64>> = None;
        // Long levels share one `Arc`'d copy of the incoming batch
        // instead of deep-cloning it once per window.
        let mut shared_batch: Option<(Arc<Matrix>, Arc<[usize]>)> = None;
        for level in &mut self.levels {
            // Prequential quality: score the level on (a deterministic
            // slice of) this batch before any update touches it. 64 rows
            // estimate batch accuracy to within a few points, which the
            // EWMA smooths — paying a full CNN forward here would double
            // training cost for no extra signal. When the level just
            // voted on this same batch (the prequential test-then-train
            // contract), the probe reuses the predictions that forward
            // pass left in the level's [`ProbeCache`] — a cache hit is
            // proven bit-identical by the bitwise slice tag, so this only
            // removes the redundant forward, never changes the EWMA.
            if level.updates > 0 {
                let n = PROBE_ROWS.min(x.rows());
                let probe_labels = &labels[..n];
                let cache = level.probe.get_mut();
                let head = &x.as_slice()[..n * x.cols()];
                let acc = if n > 0
                    && cache.valid
                    && cache.batch_rows == x.rows()
                    && cache.cols == x.cols()
                    && cache.preds.len() == n
                    && cache.head == head
                {
                    let hit = cache.preds.iter().zip(probe_labels).filter(|(p, t)| p == t).count();
                    hit as f64 / n as f64
                } else if x.rows() > PROBE_ROWS {
                    let sub = x.slice_rows(0, PROBE_ROWS);
                    freeway_ml::model::accuracy(level.trainer.model(), &sub, probe_labels)
                } else {
                    freeway_ml::model::accuracy(level.trainer.model(), x, labels)
                };
                level.ewma_acc = 0.8 * level.ewma_acc + 0.2 * acc;
            }
            match level.window.as_mut() {
                None => {
                    level.trainer.train_step(x, labels);
                    level.invalidate_probe();
                    level.updates += 1;
                    level.trained_projection = Some(projected.to_vec());
                    short_params = Some(level.trainer.model().parameters());
                }
                Some(window) => {
                    let (sx, sy) = shared_batch
                        .get_or_insert_with(|| (Arc::new(x.clone()), Arc::from(labels)));
                    window.insert(Arc::clone(sx), Arc::clone(sy), projected.to_vec());
                    if window.is_full() {
                        let disorder = window.disorder();
                        let window_mean = window.projected_mean();
                        if let Some((wx, wy, ww)) = window.drain_for_update() {
                            // Warm-start from the short model, then smooth
                            // with a few weighted passes over the window.
                            // The short model supplies position (it has
                            // seen every batch); the window passes supply
                            // the low-variance average that makes this the
                            // *stable* granularity — at a fraction of the
                            // cost of training the long model from its own
                            // stale parameters.
                            //
                            // The passes run on a snapshot (clone) of the
                            // trainer so the level's live model keeps
                            // serving inference; with async updates on,
                            // they run as a background pool job and the
                            // snapshot is swapped in at a later train.
                            let mut snapshot = level.trainer.clone();
                            if let Some(short_params) = short_params.as_ref() {
                                snapshot.model_mut().set_parameters(short_params);
                            }
                            let epochs = self.update_epochs;
                            let subsets = self.precompute_subsets;
                            let pool = self
                                .async_long_updates
                                .then(pool::global)
                                .filter(|p| p.is_parallel());
                            if let Some(pool) = pool {
                                let slot = Arc::new(Mutex::new(None));
                                let job_slot = Arc::clone(&slot);
                                let spawned = pool.spawn_detached(move || {
                                    let result = std::panic::catch_unwind(
                                        std::panic::AssertUnwindSafe(move || {
                                            train_weighted_precomputed(
                                                &mut snapshot,
                                                &wx,
                                                &wy,
                                                &ww,
                                                subsets,
                                                epochs,
                                            );
                                            snapshot
                                        }),
                                    );
                                    *job_slot.lock() = Some(result.map_err(|_| {
                                        "long-model window update panicked".to_string()
                                    }));
                                });
                                debug_assert!(spawned, "pool checked parallel above");
                                level.pending.push(PendingUpdate { slot, window_mean, disorder });
                            } else {
                                train_weighted_precomputed(
                                    &mut snapshot,
                                    &wx,
                                    &wy,
                                    &ww,
                                    subsets,
                                    epochs,
                                );
                                level.trainer = snapshot;
                                level.invalidate_probe();
                                level.updates += 1;
                                level.trained_projection = window_mean;
                                level.trusted = true;
                                self.last_completed_disorder = Some(disorder);
                            }
                        }
                    }
                }
            }
        }
        self.last_trained_projection = Some(projected.to_vec());
    }

    /// Degraded-mode training (overload ladder level `short-only`): only
    /// the short model updates; long windows neither accumulate nor
    /// retrain, and the per-level EWMA probes are skipped. This is the
    /// cheapest update that still tracks the stream — the paper's
    /// short-granularity model is precisely the "reacts to the newest
    /// data" end of the spectrum, so under overload it is the one worth
    /// paying for. Async results that were already in flight are still
    /// harvested (they were paid for before the overload).
    pub fn train_short_only(&mut self, x: &Matrix, labels: &[usize], projected: &[f64]) {
        self.harvest_async_updates();
        for level in &mut self.levels {
            if level.window.is_none() {
                level.trainer.train_step(x, labels);
                level.invalidate_probe();
                level.updates += 1;
                level.trained_projection = Some(projected.to_vec());
            }
        }
        self.last_trained_projection = Some(projected.to_vec());
    }

    /// Ensemble class probabilities for a batch whose projection is
    /// `current_projection` (Equations 12–14).
    ///
    /// The kernel width self-scales to the *closest* model's distance:
    /// `σ_eff = σ · min_i D_i`. Relative weights then depend only on
    /// distance ratios, which makes the blend invariant to the stream's
    /// feature scale and robust right after severe shifts (when absolute
    /// distances are all inflated).
    pub fn predict_proba(&self, x: &Matrix, current_projection: &[f64]) -> Matrix {
        let mut distances = Vec::with_capacity(self.levels.len());
        for level in &self.levels {
            // A level that has never trained must not vote (random
            // initialisation), nor one whose training data a severe shift
            // invalidated.
            if level.updates == 0 || !level.trusted {
                distances.push(None);
                continue;
            }
            let d = level
                .trained_projection
                .as_ref()
                .map_or(0.0, |p| vector::euclidean_distance(current_projection, p));
            distances.push(Some(d));
        }
        let min_d = distances.iter().flatten().cloned().fold(f64::INFINITY, f64::min);
        let mut weights: Vec<f64> = if min_d.is_finite() && min_d > 1e-12 {
            let sigma = (self.sigma * min_d).max(1e-12);
            distances
                .iter()
                .zip(&self.levels)
                .map(|(d, level)| {
                    // Distance kernel (Eq. 14) modulated by prequential
                    // quality: at similar distances the historically more
                    // accurate level dominates.
                    d.map_or(0.0, |d| gaussian_kernel(d, sigma) * level.ewma_acc.powi(4))
                })
                .collect()
        } else if min_d.is_finite() {
            // The closest model sits exactly on the data: it wins outright.
            distances
                .iter()
                .map(|d| match d {
                    Some(d) if *d <= 1e-12 => 1.0,
                    _ => 0.0,
                })
                .collect()
        } else {
            // Nothing has trained yet: uniform vote so predictions exist.
            vec![1.0; self.levels.len()]
        };
        let total: f64 = weights.iter().sum();
        if total <= f64::EPSILON {
            weights.iter_mut().for_each(|w| *w = 1.0);
        }
        let total: f64 = weights.iter().sum();

        let mut blended = Matrix::zeros(x.rows(), self.spec.classes());
        // The paper's multi-process deployment evaluates the granularity
        // models concurrently, which is why its ensemble adds almost no
        // inference latency; reproduce that with jobs on the persistent
        // worker pool when the forward passes are expensive enough to
        // amortise the dispatch. Blending stays on this thread in level
        // order, so the result is bit-identical to serial inference.
        let work = x.rows() * self.spec.num_parameters();
        // A level whose kernel weight is negligible cannot change the
        // argmax; skipping it saves a full forward pass, which is the
        // common case on directional streams where the long model's
        // fingerprint lags behind the data.
        let voters: Vec<(usize, f64)> = weights
            .iter()
            .enumerate()
            .filter(|(_, &w)| w > 0.02 * total)
            .map(|(i, &w)| (i, w))
            .collect();
        let voting_total: f64 = voters.iter().map(|(_, w)| w).sum();
        if self.parallel_inference
            && voters.len() > 1
            && work > 64 * 1024
            && pool::configured_threads() > 1
        {
            let tasks: Vec<pool::Task<'_>> = voters
                .iter()
                .map(|&(i, _)| {
                    let model = self.levels[i].trainer.model();
                    let scratch = &self.levels[i].scratch;
                    Box::new(move || {
                        let mut guard = scratch.lock();
                        let (ws, probs) = &mut *guard;
                        model.predict_proba_into(x, ws, probs);
                    }) as pool::Task<'_>
                })
                .collect();
            pool::global().run(tasks);
            for &(i, w) in &voters {
                let guard = self.levels[i].scratch.lock();
                record_probe(&self.levels[i], x, &guard.1);
                blended.axpy(w / voting_total, &guard.1);
            }
        } else {
            for &(i, w) in &voters {
                let level = &self.levels[i];
                let mut guard = level.scratch.lock();
                let (ws, probs) = &mut *guard;
                level.trainer.model().predict_proba_into(x, ws, probs);
                record_probe(level, x, probs);
                blended.axpy(w / voting_total, probs);
            }
        }
        blended
    }

    /// Flat parameters of every level, short (level 0) first.
    pub fn level_parameters(&self) -> Vec<Vec<f64>> {
        self.levels.iter().map(|l| l.trainer.model().parameters()).collect()
    }

    /// Overwrites every level's parameters from a checkpoint. Levels are
    /// marked trained (they vote immediately) but keep no fingerprint —
    /// the first post-restore batches re-establish distances.
    ///
    /// # Errors
    /// [`CheckpointError::LevelCountMismatch`] when the level count
    /// differs from this bank's,
    /// [`CheckpointError::ParameterLengthMismatch`] when a level's flat
    /// vector does not fit the architecture. Both leave the bank
    /// untouched — a rejected checkpoint must not half-apply.
    pub fn set_level_parameters(&mut self, params: &[Vec<f64>]) -> Result<(), CheckpointError> {
        if params.len() != self.levels.len() {
            return Err(CheckpointError::LevelCountMismatch {
                found: params.len(),
                expected: self.levels.len(),
            });
        }
        let expected = self.spec.num_parameters();
        if let Some((level, p)) = params.iter().enumerate().find(|(_, p)| p.len() != expected) {
            return Err(CheckpointError::ParameterLengthMismatch {
                level,
                found: p.len(),
                expected,
            });
        }
        for (level, p) in self.levels.iter_mut().zip(params) {
            level.trainer.model_mut().set_parameters(p);
            level.invalidate_probe();
            level.updates = level.updates.max(1);
            level.trusted = true;
            // Async results trained before the restore are stale now.
            level.pending.clear();
        }
        Ok(())
    }

    /// Smallest fingerprint distance among trusted, trained levels —
    /// "how close is the nearest live model to this data". Knowledge
    /// reuse must beat this to be worthwhile.
    pub fn nearest_live_distance(&self, current_projection: &[f64]) -> Option<f64> {
        self.levels
            .iter()
            .filter(|l| l.updates > 0 && l.trusted)
            .filter_map(|l| {
                l.trained_projection
                    .as_ref()
                    .map(|p| vector::euclidean_distance(current_projection, p))
            })
            .min_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal))
    }

    /// Diagnostic: per-level (distance, update-count) against a
    /// projection, in level order. Distances are `None` for untrained
    /// levels.
    pub fn level_diagnostics(&self, current_projection: &[f64]) -> Vec<(Option<f64>, usize)> {
        self.levels
            .iter()
            .map(|level| {
                let d = (level.updates > 0).then(|| {
                    level
                        .trained_projection
                        .as_ref()
                        .map_or(0.0, |p| vector::euclidean_distance(current_projection, p))
                });
                (d, level.updates)
            })
            .collect()
    }

    /// Hard predictions via the ensemble.
    pub fn predict(&self, x: &Matrix, current_projection: &[f64]) -> Vec<usize> {
        let probs = self.predict_proba(x, current_projection);
        probs.row_iter().map(|row| vector::argmax(row).unwrap_or(0)).collect()
    }
}

/// Tags `level`'s [`ProbeCache`] with the probe slice of `x` and the
/// argmax predictions its forward pass just produced for those rows.
/// Forward passes are row-independent (every model here processes each
/// sample row identically regardless of its neighbours), so these
/// predictions are bitwise what `accuracy` on the probe slice would
/// recompute — the cache-hit proof in [`MultiGranularity::train`].
fn record_probe(level: &Level, x: &Matrix, probs: &Matrix) {
    let n = PROBE_ROWS.min(x.rows());
    let mut cache = level.probe.lock();
    cache.cols = x.cols();
    cache.batch_rows = x.rows();
    cache.head.clear();
    cache.head.extend_from_slice(&x.as_slice()[..n * x.cols()]);
    cache.preds.clear();
    cache.preds.extend(probs.row_iter().take(n).map(|row| vector::argmax(row).unwrap_or(0)));
    cache.valid = true;
}

/// Gaussian kernel `K(D, σ) = exp(−D² / 2σ²)` (Equation 14).
pub fn gaussian_kernel(distance: f64, sigma: f64) -> f64 {
    (-(distance * distance) / (2.0 * sigma * sigma)).exp()
}

/// Runs `epochs` weighted passes, each splitting the window into
/// `subsets` chunks and merging per-chunk gradients — the pre-computing
/// window of §V-B. With `subsets == 1` each pass is a single weighted
/// batch step. The epoch loop lives here (not at the call site) so the
/// chunk matrix and gradient buffer warm once and are reused across
/// every subset of every epoch: a warm window update allocates only the
/// merged-gradient accumulator, while producing bit-identical parameters
/// to the old slice-and-allocate loop (same chunk contents, same
/// gradient arithmetic, same merge order).
fn train_weighted_precomputed(
    trainer: &mut Trainer,
    x: &Matrix,
    labels: &[usize],
    weights: &[f64],
    subsets: usize,
    epochs: usize,
) {
    let n = x.rows();
    if n == 0 {
        return;
    }
    if subsets <= 1 || n < subsets * 2 {
        for _ in 0..epochs {
            trainer.train_weighted_step(x, labels, Some(weights));
        }
        return;
    }
    let mut sub_x = Matrix::zeros(0, 0);
    let mut grad = Vec::new();
    for _ in 0..epochs {
        let mut acc = PrecomputeAccumulator::new();
        let chunk = n.div_ceil(subsets);
        let mut start = 0;
        while start < n {
            let end = (start + chunk).min(n);
            let sub_y = &labels[start..end];
            let sub_w = &weights[start..end];
            let weight_sum: f64 = sub_w.iter().sum();
            if weight_sum > 0.0 {
                x.copy_row_range_into(start, end, &mut sub_x);
                trainer.gradient_into(&sub_x, sub_y, Some(sub_w), &mut grad);
                acc.add_subset(&grad, weight_sum);
            }
            start = end;
        }
        if let Some(merged) = acc.take_merged() {
            trainer.apply_gradient(&merged);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(model_num: usize) -> FreewayConfig {
        FreewayConfig {
            model_num,
            asw_max_batches: 3,
            asw_max_items: 10_000,
            learning_rate: 0.5,
            ..Default::default()
        }
    }

    /// Linearly separable batch shifted by `offset`.
    fn batch(offset: f64, n: usize) -> (Matrix, Vec<usize>, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let side = if i % 2 == 0 { 1.0 } else { -1.0 };
                vec![side * 2.0 + offset, side + offset * 0.5]
            })
            .collect();
        let labels = (0..n).map(|i| i % 2).collect();
        let x = Matrix::from_rows(&rows);
        let projected = vec![offset, offset * 0.5];
        (x, labels, projected)
    }

    #[test]
    fn short_model_learns_immediately() {
        let mut mg = MultiGranularity::new(ModelSpec::lr(2, 2), &config(2));
        let (x, y, p) = batch(0.0, 64);
        for _ in 0..30 {
            mg.train(&x, &y, &p);
        }
        let acc = freeway_ml::model::accuracy(mg.short_model(), &x, &y);
        assert!(acc > 0.95, "short model accuracy {acc}");
    }

    #[test]
    fn long_model_updates_only_on_window_completion() {
        let mut mg = MultiGranularity::new(ModelSpec::lr(2, 2), &config(2));
        let before = mg.long_model().parameters();
        let (x, y, p) = batch(0.0, 32);
        mg.train(&x, &y, &p);
        mg.train(&x, &y, &p);
        assert_eq!(mg.long_model().parameters(), before, "window not yet full");
        mg.train(&x, &y, &p); // 3rd insert fills max_batches = 3
        assert_ne!(mg.long_model().parameters(), before, "window completion trains");
        assert!(mg.take_completed_disorder().is_some());
        assert!(mg.take_completed_disorder().is_none(), "take semantics");
    }

    #[test]
    fn ensemble_probabilities_are_normalised() {
        let mut mg = MultiGranularity::new(ModelSpec::lr(2, 2), &config(3));
        let (x, y, p) = batch(0.0, 32);
        for _ in 0..5 {
            mg.train(&x, &y, &p);
        }
        let probs = mg.predict_proba(&x, &p);
        for row in probs.row_iter() {
            assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn gaussian_kernel_properties() {
        assert_eq!(gaussian_kernel(0.0, 1.0), 1.0);
        assert!(gaussian_kernel(1.0, 1.0) < 1.0);
        assert!(gaussian_kernel(2.0, 1.0) < gaussian_kernel(1.0, 1.0));
        assert!(gaussian_kernel(1.0, 10.0) > gaussian_kernel(1.0, 1.0), "wider σ is flatter");
    }

    #[test]
    fn nearby_data_weights_short_model_higher() {
        // Train the bank, then move the query projection far from the
        // window mean but near the short model's last batch: predictions
        // should follow the short model.
        let mut mg = MultiGranularity::new(ModelSpec::lr(2, 2), &config(2));
        let (x, y, p) = batch(0.0, 64);
        for _ in 0..10 {
            mg.train(&x, &y, &p);
        }
        // Query projected exactly at the short model's last batch.
        let short_pred = {
            let probs = mg.levels[0].trainer.model().predict_proba(&x);
            probs.row_iter().map(|r| vector::argmax(r).unwrap_or(0)).collect::<Vec<_>>()
        };
        let ens_pred = mg.predict(&x, &p);
        assert_eq!(short_pred, ens_pred, "at D_short = 0 the short model dominates enough");
    }

    #[test]
    fn single_level_config_works() {
        let mut mg = MultiGranularity::new(ModelSpec::lr(2, 2), &config(1));
        assert_eq!(mg.num_levels(), 1);
        let (x, y, p) = batch(0.0, 16);
        mg.train(&x, &y, &p);
        let preds = mg.predict(&x, &p);
        assert_eq!(preds.len(), 16);
    }

    #[test]
    fn precompute_matches_single_step() {
        // Training with 1 subset vs 4 subsets must produce identical
        // parameters (same merged gradient, same SGD step).
        let cfg1 = FreewayConfig { precompute_subsets: 1, ..config(2) };
        let cfg4 = FreewayConfig { precompute_subsets: 4, ..config(2) };
        let mut a = MultiGranularity::new(ModelSpec::lr(2, 2), &cfg1);
        let mut b = MultiGranularity::new(ModelSpec::lr(2, 2), &cfg4);
        for i in 0..3 {
            let (x, y, p) = batch(i as f64 * 0.1, 32);
            a.train(&x, &y, &p);
            let (x, y, p) = batch(i as f64 * 0.1, 32);
            b.train(&x, &y, &p);
        }
        let pa = a.long_model().parameters();
        let pb = b.long_model().parameters();
        for (x, y) in pa.iter().zip(&pb) {
            assert!((x - y).abs() < 1e-10, "precompute must not change the update");
        }
    }
}

#[cfg(test)]
mod warmstart_tests {
    use super::*;
    use freeway_linalg::Matrix;

    fn cfg() -> FreewayConfig {
        FreewayConfig {
            model_num: 2,
            asw_max_batches: 2,
            asw_update_epochs: 1,
            learning_rate: 0.3,
            ..Default::default()
        }
    }

    fn batch(offset: f64, n: usize) -> (Matrix, Vec<usize>, Vec<f64>) {
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                let side = if i % 2 == 0 { 1.0 } else { -1.0 };
                vec![side * 2.0 + offset, side]
            })
            .collect();
        (Matrix::from_rows(&rows), (0..n).map(|i| i % 2).collect(), vec![offset, 0.0])
    }

    #[test]
    fn long_model_warm_starts_from_short() {
        let mut mg = MultiGranularity::new(ModelSpec::lr(2, 2), &cfg());
        let (x, y, p) = batch(0.0, 32);
        // Two inserts fill the window (max_batches = 2) and trigger the
        // warm-started long update.
        mg.train(&x, &y, &p);
        mg.train(&x, &y, &p);
        // The long model's parameters must now be near the short model's
        // (one refinement epoch of distance at most).
        let short = mg.short_model().parameters();
        let long = mg.long_model().parameters();
        let gap: f64 = short.iter().zip(&long).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        // Before the fix the long model sat at initialisation (far from
        // the trained short model); warm-start bounds the gap by one
        // window pass.
        assert!(gap < 1.0, "warm-started long model must track short: gap {gap}");
        assert_ne!(short, long, "the refinement pass must still differentiate them");
    }

    #[test]
    fn untrusted_levels_do_not_vote_after_severe_shift() {
        let mut mg = MultiGranularity::new(ModelSpec::lr(2, 2), &cfg());
        let (x, y, p) = batch(0.0, 32);
        mg.train(&x, &y, &p);
        mg.train(&x, &y, &p); // long trained + trusted
        mg.handle_severe_shift();
        // Only the short level votes now; predictions must equal its own.
        let short_preds = mg.short_model().predict(&x);
        let ens_preds = mg.predict(&x, &p);
        assert_eq!(short_preds, ens_preds);
        // One full window later the long level is trusted again.
        mg.train(&x, &y, &p);
        mg.train(&x, &y, &p);
        let diag = mg.level_diagnostics(&p);
        assert!(diag[1].0.is_some(), "long level votes again after a clean window");
    }
}
