//! Liveness acceptance: the stall watchdog detects hung and livelocked
//! workers (and only those — slow-but-progressing workers are never
//! killed), forced recovery rides the checkpoint-restore path, exhausted
//! shards fence instead of erroring the runtime, and failover routing is
//! a deterministic, stable function of the failed set.

use std::time::Duration;

use freeway_core::liveness::WatchdogState;
use freeway_core::shard::failover_shard;
use freeway_core::telemetry::{EventKind, TelemetryEvent, TelemetrySink};
use freeway_core::{
    shard_for, AdmissionConfig, AdmissionOutcome, AdmissionPolicy, FreewayConfig, FreewayError,
    PipelineBuilder, ShedReason,
};
use freeway_ml::ModelSpec;
use freeway_streams::concept::{stream_rng, GmmConcept};
use freeway_streams::keyed::KeyedBatch;
use freeway_streams::{Batch, DriftPhase};
use proptest::prelude::*;

const DIM: usize = 4;
const BATCH_SIZE: usize = 32;

fn config() -> FreewayConfig {
    FreewayConfig { pca_warmup_rows: 32, mini_batch: BATCH_SIZE, ..Default::default() }
}

fn lossless_admission() -> AdmissionConfig {
    AdmissionConfig { policy: AdmissionPolicy::Block, ladder: None, ..Default::default() }
}

/// Labeled batches from one stationary concept, stamped with the caller's
/// sequence counter.
struct Feed {
    concept: GmmConcept,
    rng: rand::rngs::StdRng,
    next_seq: u64,
}

impl Feed {
    fn new(seed: u64) -> Self {
        let mut rng = stream_rng(seed);
        let concept = GmmConcept::random(DIM, 2, 2, 3.0, 0.5, &mut rng);
        Self { concept, rng, next_seq: 0 }
    }

    fn batch(&mut self) -> Batch {
        let (x, y) = self.concept.sample_batch(BATCH_SIZE, &mut self.rng);
        let seq = self.next_seq;
        self.next_seq += 1;
        Batch::labeled(x, y, seq, DriftPhase::Stable)
    }

    fn keyed(&mut self, key: u64) -> KeyedBatch {
        KeyedBatch { key, batch: self.batch() }
    }
}

/// First key at/after `start` routing to `target` under `n` shards.
fn key_for_shard(target: usize, n: usize, start: u64) -> u64 {
    (start..start + 1024)
        .find(|k| shard_for(*k, n) == target)
        .expect("1024 consecutive keys cover every shard")
}

#[test]
fn watchdog_detects_and_recovers_both_stall_flavors() {
    for livelock in [false, true] {
        let (builder, sink) = PipelineBuilder::new(ModelSpec::lr(DIM, 2))
            .with_config(config())
            .with_queue_depth(16)
            .with_stall_deadline(Duration::from_millis(40))
            .recording();
        let mut sup = builder.build_supervised().expect("valid configuration");
        let mut feed = Feed::new(7);
        for _ in 0..3 {
            sup.feed_prequential(feed.batch()).expect("healthy");
        }
        sup.inject_worker_stall(Duration::from_secs(30), livelock).expect("worker alive");
        // Fed behind the stall: deterministically pending work, so the
        // watchdog has something to declare stalled about.
        sup.feed_prequential(feed.batch()).expect("healthy");
        while sup.stats().worker_stalls < 1 {
            sup.check_liveness().expect("recovery within budget");
            std::thread::sleep(Duration::from_micros(200));
        }
        for _ in 0..3 {
            sup.feed_prequential(feed.batch()).expect("recovered worker serves");
        }
        let run = sup.finish().expect("clean finish");
        assert_eq!(run.stats.worker_stalls, 1, "livelock={livelock}");
        assert_eq!(run.stats.restarts, 1, "forced recovery spends the restart budget");
        let events = sink.events();
        let stalled: Vec<_> =
            events.iter().filter(|e| e.kind() == EventKind::WorkerStalled).collect();
        let recovered: Vec<_> =
            events.iter().filter(|e| e.kind() == EventKind::WorkerRecovered).collect();
        assert_eq!(stalled.len(), 1, "livelock={livelock}: {events:?}");
        assert_eq!(recovered.len(), 1, "livelock={livelock}");
        if let TelemetryEvent::WorkerStalled { stage, .. } = stalled[0] {
            assert_eq!(stage, &"chaos-stall");
        }
    }
}

#[test]
fn slow_but_progressing_worker_is_never_declared_stalled() {
    // Train and checkpoint-persist both slowed to a crawl — every step
    // still lands a heartbeat, so however far behind the worker falls,
    // the watchdog must stay quiet. This is the paper's slow-disk
    // checkpoint-cadence case: backoff, not a kill.
    let mut sup = PipelineBuilder::new(ModelSpec::lr(DIM, 2))
        .with_config(config())
        .with_queue_depth(16)
        .with_checkpoint_every(4)
        .with_stall_deadline(Duration::from_millis(120))
        .build_supervised()
        .expect("valid configuration");
    sup.set_chaos_train_delay(Duration::from_millis(15));
    sup.set_chaos_persist_delay(Duration::from_millis(25));
    let mut feed = Feed::new(11);
    for _ in 0..12 {
        sup.feed_prequential(feed.batch()).expect("healthy");
        sup.check_liveness().expect("no recovery needed");
        std::thread::sleep(Duration::from_millis(2));
    }
    let run = sup.finish().expect("clean finish");
    assert_eq!(run.stats.worker_stalls, 0, "progressing worker was declared stalled");
    assert_eq!(run.stats.restarts, 0);
    assert_eq!(run.outputs.len(), 12, "every batch answered");
}

#[test]
fn exhausted_shard_fences_and_keys_fail_over() {
    let mut pipeline = PipelineBuilder::new(ModelSpec::lr(DIM, 2))
        .with_config(config())
        .with_queue_depth(16)
        .with_max_restarts(0)
        .admission(lossless_admission())
        .shards(2)
        .build_sharded()
        .expect("valid configuration");
    let mut feed = Feed::new(23);
    let victim = 0usize;
    let victim_key = key_for_shard(victim, 2, 0);
    let survivor_key = key_for_shard(1, 2, 0);
    for _ in 0..2 {
        pipeline.feed_prequential(feed.keyed(victim_key)).expect("healthy");
        pipeline.feed_prequential(feed.keyed(survivor_key)).expect("healthy");
    }
    pipeline.barrier().expect("healthy shards");
    let shared_before = pipeline.shared().len();

    // Zero restart budget: the first panic exhausts it. The error must
    // not surface — the shard fences and the triggering batch comes back
    // as a typed, retryable shed.
    pipeline.inject_worker_panic(victim).expect("injection accepted");
    let mut fenced_seen = false;
    for _ in 0..400 {
        let (shard, outcome) =
            pipeline.feed_prequential(feed.keyed(victim_key)).expect("fence, not an error");
        let _ = pipeline.try_recv().expect("drain never errors");
        match outcome {
            AdmissionOutcome::Shed(ShedReason::Fenced) => {
                fenced_seen = true;
                break;
            }
            _ => {
                assert!(!pipeline.is_fenced(shard), "non-shed outcome on a fenced shard");
                // The panic command may still be queued; give the worker
                // a moment to die before probing again.
                std::thread::sleep(Duration::from_millis(2));
            }
        }
    }
    assert!(fenced_seen, "restart exhaustion never surfaced as a fenced shed");
    assert!(pipeline.is_fenced(victim));
    assert_eq!(pipeline.fenced_shards(), vec![victim]);

    // The fenced shard's keys deterministically fail over to the
    // survivor; healthy-shard keys do not move.
    let rerouted = pipeline.route_for_key(victim_key).expect("survivor exists");
    assert_eq!(rerouted, 1, "victim key must land on the survivor");
    assert_eq!(pipeline.route_for_key(survivor_key).expect("survivor exists"), 1);
    let (shard, outcome) = pipeline.feed_prequential(feed.keyed(victim_key)).expect("rerouted");
    assert_eq!(shard, 1);
    assert!(
        matches!(outcome, AdmissionOutcome::Admitted | AdmissionOutcome::Backlogged),
        "rerouted key must be served: {outcome:?}"
    );

    // Fencing isolates the worker, not the knowledge: the shared
    // registry keeps every published entry readable for warm starts.
    assert_eq!(pipeline.shared().len(), shared_before, "fence must not clear the registry");

    pipeline.barrier().expect("surviving shard drains");
    let run = pipeline.finish().expect("fenced runtime still finishes");
    assert_eq!(run.shards.len(), 2);
}

#[test]
fn sharded_liveness_sweep_recovers_a_stalled_shard() {
    let mut pipeline = PipelineBuilder::new(ModelSpec::lr(DIM, 2))
        .with_config(config())
        .with_queue_depth(16)
        .with_stall_deadline(Duration::from_millis(40))
        .admission(lossless_admission())
        .shards(2)
        .build_sharded()
        .expect("valid configuration");
    let mut feed = Feed::new(31);
    let key0 = key_for_shard(0, 2, 0);
    let key1 = key_for_shard(1, 2, 0);
    for _ in 0..2 {
        pipeline.feed_prequential(feed.keyed(key0)).expect("healthy");
        pipeline.feed_prequential(feed.keyed(key1)).expect("healthy");
    }
    pipeline.barrier().expect("healthy shards");

    pipeline.inject_worker_stall(0, Duration::from_secs(30), false).expect("injection accepted");
    pipeline.feed_prequential(feed.keyed(key0)).expect("healthy");
    let mut recovered = 0usize;
    while recovered == 0 {
        recovered = pipeline.check_liveness().expect("recovery within budget");
        std::thread::sleep(Duration::from_micros(200));
    }
    assert_eq!(recovered, 1);
    assert!(pipeline.fenced_shards().is_empty(), "recovery within budget must not fence");

    pipeline.barrier().expect("both shards quiescent");
    let run = pipeline.finish().expect("clean finish");
    assert_eq!(run.shards[0].run.stats.worker_stalls, 1);
    assert_eq!(run.shards[1].run.stats.worker_stalls, 0);
}

#[test]
fn barrier_deadline_names_the_wedged_shard_and_loses_nothing() {
    // No watchdog here: the drain itself must stay bounded and report
    // exactly which shard is wedged.
    let mut pipeline = PipelineBuilder::new(ModelSpec::lr(DIM, 2))
        .with_config(config())
        .with_queue_depth(16)
        .admission(lossless_admission())
        .shards(2)
        .build_sharded()
        .expect("valid configuration");
    let mut feed = Feed::new(43);
    let key0 = key_for_shard(0, 2, 0);
    let key1 = key_for_shard(1, 2, 0);
    pipeline.feed_prequential(feed.keyed(key0)).expect("healthy");
    pipeline.feed_prequential(feed.keyed(key1)).expect("healthy");
    pipeline.barrier().expect("healthy shards");

    pipeline.inject_worker_stall(0, Duration::from_millis(400), false).expect("accepted");
    let stalled = feed.keyed(key0);
    let stalled_seq = stalled.batch.seq;
    pipeline.feed_prequential(stalled).expect("healthy");

    let err = pipeline.barrier_deadline(Duration::from_millis(50));
    match err {
        Err(FreewayError::DrainTimeout { shards }) => {
            assert_eq!(shards, vec![0], "exactly the wedged shard is named")
        }
        other => panic!("expected DrainTimeout, got {other:?}"),
    }

    // The stall is finite; once it ends, a plain barrier must deliver
    // the delayed answer — a timed-out drain loses nothing.
    std::thread::sleep(Duration::from_millis(450));
    let outputs = pipeline.barrier().expect("stall over");
    assert!(
        outputs.iter().any(|(shard, out)| *shard == 0 && out.seq == stalled_seq),
        "the batch wedged behind the stall must still be answered: {outputs:?}"
    );
    pipeline.finish().expect("clean finish");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The watchdog false-positive property: a worker that keeps making
    /// progress — however slow its steps and however sparse the polling —
    /// is never declared stalled, across randomized deadlines.
    #[test]
    fn progressing_worker_never_declared_stalled(
        service in 1u64..50,
        poll in 1u64..20,
        slack in 0u64..100,
        ticks in 200u64..1500,
    ) {
        // A progress observation can lag a completion by one poll; any
        // deadline beyond service + poll is safe. Randomize the slack on
        // top to cover the whole safe region, not one lucky point.
        let deadline = service + 2 * poll + 1 + slack;
        let mut watchdog = WatchdogState::new(deadline);
        let mut epoch = 0u64;
        let mut step = 0u64;
        for now in 0..ticks {
            step += 1;
            if step >= service {
                step = 0;
                epoch += 1;
            }
            if now % poll == 0 {
                prop_assert!(
                    !watchdog.observe(now, epoch, 1),
                    "false positive at tick {now} (service {service}, poll {poll}, \
                     deadline {deadline})"
                );
            }
        }
    }

    /// The complement: pending work with a frozen heartbeat is declared
    /// stalled within one poll period past the deadline — detection
    /// latency is bounded, not best-effort.
    #[test]
    fn frozen_worker_is_declared_within_deadline_plus_poll(
        deadline in 1u64..200,
        poll in 1u64..20,
    ) {
        let mut watchdog = WatchdogState::new(deadline);
        prop_assert!(!watchdog.observe(0, 0, 1), "priming observation never fires");
        let mut fired_at = None;
        let mut now = poll;
        while now <= deadline + 2 * poll {
            if watchdog.observe(now, 0, 1) {
                fired_at = Some(now);
                break;
            }
            now += poll;
        }
        let fired = fired_at.expect("a frozen worker must be declared stalled");
        prop_assert!(fired >= deadline, "fired early at {fired} (deadline {deadline})");
        prop_assert!(fired <= deadline + poll, "fired late at {fired} (deadline {deadline})");
    }

    /// Failover routing is a pure, deterministic function of
    /// `(key, failed set)`: same inputs, same shard; the result is always
    /// a survivor; a healthy primary is never moved.
    #[test]
    fn failover_routing_is_deterministic_and_lands_on_survivors(
        key in 0u64..u64::MAX,
        fenced in prop::collection::vec((0u32..2).prop_map(|b| b == 1), 1..16),
    ) {
        let a = failover_shard(key, &fenced);
        let b = failover_shard(key, &fenced);
        prop_assert_eq!(a, b, "same failed set must give the same route");
        match a {
            Some(shard) => {
                prop_assert!(!fenced[shard], "routed to a fenced shard");
                let primary = shard_for(key, fenced.len());
                if !fenced[primary] {
                    prop_assert_eq!(shard, primary, "healthy-shard keys must never move");
                }
            }
            None => prop_assert!(
                fenced.iter().all(|&f| f),
                "None is only legal when every shard is fenced"
            ),
        }
    }

    /// Fencing additional shards never disturbs keys whose primary is
    /// still healthy — reroute churn is confined to the failed shards.
    #[test]
    fn healthy_primary_keys_are_stable_under_growing_failure(
        key in 0u64..u64::MAX,
        n in 1usize..16,
        extra_fences in prop::collection::vec((0u32..2).prop_map(|b| b == 1), 16usize),
    ) {
        let primary = shard_for(key, n);
        let healthy = vec![false; n];
        prop_assert_eq!(failover_shard(key, &healthy), Some(primary));
        // Keep the primary healthy, fence an arbitrary subset of others.
        let mut grown: Vec<bool> = extra_fences.iter().copied().take(n).collect();
        grown[primary] = false;
        prop_assert_eq!(
            failover_shard(key, &grown),
            Some(primary),
            "a healthy primary moved when other shards fenced"
        );
    }
}
