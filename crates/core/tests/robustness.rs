//! Property-based robustness: arbitrarily corrupted batches pushed
//! through the guarded, supervised pipeline must never panic the process
//! and must never drive the learner's parameters non-finite.

use freeway_core::supervisor::{SupervisedPipeline, SupervisorConfig};
use freeway_core::{Checkpoint, FreewayConfig, Learner};
use freeway_linalg::Matrix;
use freeway_ml::ModelSpec;
use freeway_streams::{Batch, DriftPhase};
use proptest::prelude::*;

const FEATURES: usize = 4;
const CLASSES: usize = 2;

/// One step of an adversarial stream: either a clean batch or a specific
/// corruption of one.
#[derive(Clone, Debug)]
enum Step {
    Clean,
    NanCell { row: usize, col: usize },
    InfCell { row: usize, col: usize },
    WrongWidth { wider: bool },
    LabelOutOfRange { row: usize, by: usize },
    LabelCountMismatch { extra: usize },
    NoLabels,
    RepeatSeq,
}

/// Maps a sampled `(kind, a, b)` triple to a step; `kind` is weighted so
/// roughly a third of the stream stays clean.
fn step_strategy() -> impl Strategy<Value = Step> {
    (0usize..10, 0usize..8, 1usize..4).prop_map(|(kind, a, b)| match kind {
        0..=2 => Step::Clean,
        3 => Step::NanCell { row: a, col: b % FEATURES },
        4 => Step::InfCell { row: a, col: b % FEATURES },
        5 => Step::WrongWidth { wider: a % 2 == 0 },
        6 => Step::LabelOutOfRange { row: a, by: b },
        7 => Step::LabelCountMismatch { extra: b },
        8 => Step::NoLabels,
        _ => Step::RepeatSeq,
    })
}

/// Deterministic, well-conditioned clean batch: class 0 rows cluster at
/// -1, class 1 rows at +1 with a small per-row wobble.
fn clean_batch(seq: u64, rows: usize) -> Batch {
    let mut data = Vec::with_capacity(rows);
    let mut labels = Vec::with_capacity(rows);
    for r in 0..rows {
        let class = r % CLASSES;
        let center = if class == 0 { -1.0 } else { 1.0 };
        let wobble = ((seq as usize * 31 + r * 7) % 13) as f64 / 26.0;
        data.push(vec![center + wobble; FEATURES]);
        labels.push(class);
    }
    Batch::labeled(Matrix::from_rows(&data), labels, seq, DriftPhase::Stable)
}

fn corrupt(step: &Step, seq: u64) -> Batch {
    let rows = 8;
    let mut batch = clean_batch(seq, rows);
    match step {
        Step::Clean => {}
        Step::NanCell { row, col } => batch.x.row_mut(row % rows)[col % FEATURES] = f64::NAN,
        Step::InfCell { row, col } => {
            batch.x.row_mut(row % rows)[col % FEATURES] = f64::NEG_INFINITY;
        }
        Step::WrongWidth { wider } => {
            let w = if *wider { FEATURES + 1 } else { FEATURES - 1 };
            batch.x = Matrix::zeros(rows, w);
        }
        Step::LabelOutOfRange { row, by } => {
            batch.labels.as_mut().expect("clean batch is labeled")[row % rows] = CLASSES - 1 + by;
        }
        Step::LabelCountMismatch { extra } => {
            let labels = batch.labels.as_mut().expect("clean batch is labeled");
            for _ in 0..*extra {
                labels.push(0);
            }
        }
        Step::NoLabels => batch.labels = None,
        Step::RepeatSeq => batch.seq = 0,
    }
    batch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn corrupted_streams_never_panic_and_parameters_stay_finite(
        steps in prop::collection::vec(step_strategy(), 1..24)
    ) {
        let learner = Learner::new(
            ModelSpec::lr(FEATURES, CLASSES),
            FreewayConfig { mini_batch: 8, pca_warmup_rows: 16, ..Default::default() },
        );
        let mut sup = SupervisedPipeline::with_learner(
            learner,
            SupervisorConfig { checkpoint_every_n_batches: 4, ..Default::default() },
        ).expect("valid supervisor config");
        // seq 0 is fed first so RepeatSeq steps always collide with it.
        let mut fed = 0u64;
        for (i, step) in steps.iter().enumerate() {
            let batch = corrupt(step, i as u64);
            let labeled = batch.labels.is_some();
            let outcome = if labeled {
                sup.feed_prequential(batch)
            } else {
                sup.feed(batch)
            };
            // No corruption is allowed to surface as an error, let alone
            // a panic: poison is quarantined, valid batches accepted.
            prop_assert!(outcome.is_ok(), "step {i} {step:?}: {:?}", outcome.err());
            fed += 1;
            while let Ok(Some(_)) = sup.try_recv() {}
        }
        let run = sup.finish().expect("supervised finish never fails on guarded input");
        prop_assert_eq!(run.stats.restarts, 0, "guard must stop poison before the worker");
        prop_assert_eq!(run.stats.accepted + run.stats.quarantined, fed);

        // Whatever mix of poison flowed past, the surviving learner's
        // parameters must all be finite.
        let snapshot = Checkpoint::capture(&run.learner);
        for (level, params) in snapshot.level_parameters.iter().enumerate() {
            prop_assert!(
                params.iter().all(|p| p.is_finite()),
                "level {level} contains non-finite parameters"
            );
        }
    }

    #[test]
    fn quarantine_capacity_is_bounded_under_floods(
        poison_count in 1usize..40,
        capacity in 1usize..6
    ) {
        let learner = Learner::new(
            ModelSpec::lr(FEATURES, CLASSES),
            FreewayConfig { mini_batch: 8, pca_warmup_rows: 16, ..Default::default() },
        );
        let mut sup = SupervisedPipeline::with_learner(
            learner,
            SupervisorConfig { quarantine_capacity: capacity, ..Default::default() },
        ).expect("valid supervisor config");
        for i in 0..poison_count {
            let mut batch = clean_batch(i as u64, 8);
            batch.x.row_mut(0)[0] = f64::NAN;
            sup.feed_prequential(batch).expect("quarantine is not an error");
        }
        let run = sup.finish().expect("finish");
        prop_assert_eq!(run.quarantine.total(), poison_count as u64);
        prop_assert!(run.quarantine.len() <= capacity, "buffer must stay bounded");
        prop_assert_eq!(
            run.quarantine.evicted(),
            poison_count.saturating_sub(capacity) as u64
        );
    }
}
