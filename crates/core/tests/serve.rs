//! Serving-facade acceptance tests (ISSUE §serving):
//!
//! * Session semantics: each keyed session receives exactly its own
//!   outputs, in submission order, with both sequence spaces intact.
//! * Shutdown semantics: submitting into a shut-down service surfaces
//!   [`ServeError::Disconnected`] and hands the batch back.
//! * The concurrency oracle (proptest): M free-running session threads
//!   interleave nondeterministically, yet replaying the recorded
//!   admitted order serially through an identically built pipeline
//!   reproduces every per-key transcript exactly. Concurrency changes
//!   *interleaving*, never *answers*.

use std::collections::HashMap;
use std::time::Duration;

use freeway_core::admission::{AdmissionConfig, AdmissionPolicy};
use freeway_core::{FreewayConfig, PipelineBuilder, ServeError, ServiceConfig, SubmitOutcome};
use freeway_ml::ModelSpec;
use freeway_streams::concept::{stream_rng, GmmConcept};
use freeway_streams::{Batch, DriftPhase, KeyedBatch};
use proptest::prelude::*;

const DIM: usize = 6;
const CLASSES: usize = 2;
const ROWS: usize = 32;

fn config() -> FreewayConfig {
    FreewayConfig {
        pca_warmup_rows: 64,
        mini_batch: ROWS,
        // The cross-shard registry's reads are timing-dependent by
        // design; the oracle needs per-shard determinism, so the drills
        // here run without it.
        enable_knowledge: false,
        ..Default::default()
    }
}

fn builder(shards: usize) -> PipelineBuilder {
    PipelineBuilder::new(ModelSpec::lr(DIM, CLASSES))
        .with_config(config())
        .shards(shards)
        .admission(AdmissionConfig { policy: AdmissionPolicy::Block, ..Default::default() })
}

/// Deterministic per-key batch stream: same `(seed, key, count)` always
/// yields the same batches, so the oracle can regenerate a session's
/// submissions without sharing state with the session thread.
fn session_batches(seed: u64, key: u64, count: usize) -> Vec<Batch> {
    let mut rng = stream_rng(seed ^ key.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let concept = GmmConcept::random(DIM, CLASSES, 2, 4.0, 0.6, &mut rng);
    (0..count)
        .map(|i| {
            let (x, y) = concept.sample_batch(ROWS, &mut rng);
            Batch::labeled(x, y, i as u64, DriftPhase::Stable)
        })
        .collect()
}

#[test]
fn sessions_receive_only_their_own_outputs_in_order() {
    let service = builder(2).build_service().expect("valid service");
    let handle = service.handle();
    let mut a = handle.open_session(11).expect("service running");
    let mut b = handle.open_session(12).expect("service running");
    let batches_a = session_batches(1, 11, 6);
    let batches_b = session_batches(1, 12, 6);

    // Interleave submissions from one thread; answers must still come
    // back strictly segregated and in per-session order.
    for (ba, bb) in batches_a.iter().zip(&batches_b) {
        a.submit_batch(ba.clone(), true).expect("admitted");
        b.submit_batch(bb.clone(), true).expect("admitted");
    }
    for expect_seq in 0..6u64 {
        for session in [&mut a, &mut b] {
            let out = session.recv_output().expect("output delivered");
            assert_eq!(out.client_seq, expect_seq, "per-session order is submission order");
            assert!(
                matches!(out.outcome, SubmitOutcome::Answered(_)),
                "prequential submissions are answered"
            );
        }
    }
    assert_eq!(a.in_flight(), 0);
    assert_eq!(b.in_flight(), 0);

    let report = service.shutdown().expect("clean shutdown");
    assert_eq!(report.stats.sessions_opened, 2);
    assert_eq!(report.stats.submitted, 12);
    assert_eq!(report.stats.answered, 12);
}

#[test]
fn training_only_submissions_complete_without_reports() {
    let service = builder(1).build_service().expect("valid service");
    let mut session = service.handle().open_session(5).expect("service running");
    let batches = session_batches(3, 5, 4);
    for b in &batches {
        session
            .submit_train(b.x.clone(), b.labels.clone().expect("labeled source"))
            .expect("admitted");
    }
    for _ in 0..4 {
        let out = session.recv_output().expect("output delivered");
        assert!(matches!(out.outcome, SubmitOutcome::Trained), "train-only yields no report");
    }
    let report = service.shutdown().expect("clean shutdown");
    assert_eq!(report.stats.trained, 4);
    assert_eq!(report.stats.answered, 0);
}

#[test]
fn submitting_after_shutdown_is_disconnected_and_returns_the_batch() {
    let service = builder(1).build_service().expect("valid service");
    let handle = service.handle();
    let mut session = handle.open_session(9).expect("service running");
    let _ = service.shutdown().expect("clean shutdown");

    let batch = session_batches(4, 9, 1).pop().expect("one batch");
    let (returned, err) = session.submit_batch(batch.clone(), true).expect_err("service gone");
    assert!(matches!(err, ServeError::Disconnected), "got {err:?}");
    assert_eq!(returned.x.as_slice(), batch.x.as_slice(), "the batch comes back intact");

    match handle.open_session(10) {
        Err(ServeError::Disconnected) => {}
        Err(err) => panic!("expected Disconnected, got {err:?}"),
        Ok(_) => panic!("the service is gone; opening a session must fail"),
    }
}

#[test]
fn submit_timeout_gives_up_busy_after_the_budget() {
    // A zero budget degrades to try-once; on an idle service that must
    // still admit immediately (the budget bounds waiting, not success).
    let service = builder(1).build_service().expect("valid service");
    let mut session = service.handle().open_session(2).expect("service running");
    let batch = session_batches(5, 2, 1).pop().expect("one batch");
    session
        .submit_timeout(batch, true, Duration::from_millis(50))
        .expect("idle service admits within the budget");
    let out = session.recv_output().expect("output delivered");
    assert!(matches!(out.outcome, SubmitOutcome::Answered(_)));
    let _ = service.shutdown().expect("clean shutdown");
}

/// Service-side run: M session threads submit concurrently, each
/// retrying on Busy, and collect their own transcripts.
fn concurrent_transcripts(
    seed: u64,
    counts: &[usize],
) -> (HashMap<u64, Vec<Vec<usize>>>, Vec<freeway_core::AdmittedRecord>) {
    let service = builder(2)
        .service(ServiceConfig { record_admitted: true, ..Default::default() })
        .build_service()
        .expect("valid service");
    let handle = service.handle();

    let mut threads = Vec::new();
    for (k, &count) in counts.iter().enumerate() {
        let key = k as u64;
        let handle = handle.clone();
        let batches = session_batches(seed, key, count);
        threads.push(std::thread::spawn(move || {
            let mut session = handle.open_session(key).expect("service running");
            let mut transcript = Vec::with_capacity(count);
            for batch in batches {
                let mut pending = batch;
                loop {
                    match session.submit_batch(pending, true) {
                        Ok(_) => break,
                        Err((back, ServeError::Busy { retry_after_hint })) => {
                            std::thread::sleep(retry_after_hint);
                            pending = back;
                        }
                        Err((_, err)) => panic!("unexpected submit failure: {err:?}"),
                    }
                }
            }
            for _ in 0..count {
                let out = session.recv_output().expect("output delivered");
                assert_eq!(
                    out.client_seq,
                    transcript.len() as u64,
                    "outputs arrive in submission order"
                );
                match out.outcome {
                    SubmitOutcome::Answered(report) => transcript.push(report.predictions),
                    other => panic!("expected an answer, got {other:?}"),
                }
            }
            (key, transcript)
        }));
    }
    let mut by_key = HashMap::new();
    for t in threads {
        let (key, transcript) = t.join().expect("session thread completed");
        by_key.insert(key, transcript);
    }
    let report = service.shutdown().expect("clean shutdown");
    assert_eq!(report.stats.shed, 0, "Block admission never sheds");
    assert_eq!(report.stats.quarantined, 0, "clean batches never quarantine");
    (by_key, report.admitted_order.expect("record_admitted was set"))
}

/// Oracle: replay the recorded admitted order serially through an
/// identically built (non-serving) sharded pipeline.
fn oracle_transcripts(
    seed: u64,
    counts: &[usize],
    admitted: &[freeway_core::AdmittedRecord],
) -> HashMap<u64, Vec<Vec<usize>>> {
    let mut pipeline = builder(2).build_sharded().expect("valid pipeline");
    let batches: HashMap<u64, Vec<Batch>> = counts
        .iter()
        .enumerate()
        .map(|(k, &count)| (k as u64, session_batches(seed, k as u64, count)))
        .collect();
    let mut owner: HashMap<u64, (u64, u64)> = HashMap::new();
    for rec in admitted {
        let mut batch = batches[&rec.key][rec.client_seq as usize].clone();
        batch.seq = rec.global_seq;
        owner.insert(rec.global_seq, (rec.key, rec.client_seq));
        pipeline
            .feed_prequential(KeyedBatch { key: rec.key, batch })
            .expect("oracle feed admitted");
    }
    let mut transcripts: HashMap<u64, Vec<(u64, Vec<usize>)>> = HashMap::new();
    for (_, out) in pipeline.barrier().expect("oracle barrier") {
        let (key, client_seq) = owner[&out.seq];
        let report = out.report.expect("prequential reports");
        transcripts.entry(key).or_default().push((client_seq, report.predictions));
    }
    let _ = pipeline.finish().expect("clean oracle shutdown");
    transcripts
        .into_iter()
        .map(|(key, mut entries)| {
            entries.sort_by_key(|(client_seq, _)| *client_seq);
            (key, entries.into_iter().map(|(_, p)| p).collect())
        })
        .collect()
}

proptest! {
    // Each case spins up a service (2 shards + router) plus an oracle
    // pipeline; a handful of cases is plenty, and keeps the suite fast.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn concurrent_sessions_match_the_serialized_oracle(
        seed in 0u64..u64::MAX,
        counts in prop::collection::vec(3usize..9, 2..5),
    ) {
        let (served, admitted) = concurrent_transcripts(seed, &counts);
        prop_assert_eq!(
            admitted.len(),
            counts.iter().sum::<usize>(),
            "every submission was admitted exactly once"
        );
        let oracle = oracle_transcripts(seed, &counts, &admitted);
        prop_assert_eq!(
            served, oracle,
            "concurrent interleaving must not change any per-key transcript"
        );
    }
}
