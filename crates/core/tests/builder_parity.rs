//! Builder/direct-constructor parity: `with_learner` and the
//! [`PipelineBuilder`] must produce byte-identical experiment output for
//! the same description — the builder is a re-plumbing of construction,
//! never a behavior change.

use freeway_core::{FreewayConfig, Learner, Pipeline, PipelineBuilder, SupervisorConfig};
use freeway_ml::ModelSpec;
use freeway_streams::concept::{stream_rng, GmmConcept};
use freeway_streams::{Batch, DriftPhase};

const BATCHES: u64 = 24;
const BATCH_SIZE: usize = 96;

fn config() -> FreewayConfig {
    FreewayConfig { pca_warmup_rows: 64, mini_batch: BATCH_SIZE, ..Default::default() }
}

fn batches() -> Vec<Batch> {
    let mut rng = stream_rng(4242);
    let mut concept = GmmConcept::random(6, 2, 2, 4.0, 0.6, &mut rng);
    (0..BATCHES)
        .map(|i| {
            if i == 14 {
                concept.translate(&[25.0; 6]);
            }
            let (x, y) = concept.sample_batch(BATCH_SIZE, &mut rng);
            Batch::labeled(x, y, i, DriftPhase::Stable)
        })
        .collect()
}

/// Everything observable about one inference, hashed into a comparable
/// transcript row.
fn transcript(learner: &mut Learner, feed: &[Batch]) -> Vec<(u64, Vec<usize>, &'static str, u64)> {
    feed.iter()
        .map(|b| {
            let r = learner.process(b);
            (b.seq, r.predictions().to_vec(), r.strategy().tag(), r.severity().to_bits())
        })
        .collect()
}

#[test]
fn builder_learner_matches_legacy_learner_exactly() {
    let feed = batches();

    let mut legacy = Learner::new(ModelSpec::lr(6, 2), config());
    let legacy_out = transcript(&mut legacy, &feed);

    let mut built = PipelineBuilder::new(ModelSpec::lr(6, 2))
        .with_config(config())
        .build_learner()
        .expect("valid configuration");
    let built_out = transcript(&mut built, &feed);

    assert_eq!(legacy_out, built_out, "builder must not change learner behavior");
    assert_eq!(legacy.strategy_stats(), built.strategy_stats());
    assert_eq!(legacy.knowledge().len(), built.knowledge().len());
}

#[test]
fn builder_pipeline_matches_direct_constructor_exactly() {
    let feed = batches();

    let legacy = Pipeline::with_learner(Learner::new(ModelSpec::lr(6, 2), config()), 16)
        .expect("valid queue depth");
    for b in &feed {
        legacy.feed_prequential(b.clone()).expect("worker alive");
    }
    let legacy_out: Vec<_> = (0..feed.len())
        .map(|_| {
            let out = legacy.recv().expect("worker alive");
            (out.seq, out.report.expect("prequential reports").predictions)
        })
        .collect();
    let _ = legacy.finish().expect("clean shutdown");

    let built = PipelineBuilder::new(ModelSpec::lr(6, 2))
        .with_config(config())
        .with_queue_depth(16)
        .build()
        .expect("valid configuration");
    for b in &feed {
        built.feed_prequential(b.clone()).expect("worker alive");
    }
    let built_out: Vec<_> = (0..feed.len())
        .map(|_| {
            let out = built.recv().expect("worker alive");
            (out.seq, out.report.expect("prequential reports").predictions)
        })
        .collect();
    let _ = built.finish().expect("clean shutdown");

    assert_eq!(legacy_out, built_out, "builder pipeline must match the direct constructor");
}

#[test]
fn builder_supervised_matches_direct_constructor_exactly() {
    let feed = batches();
    let sup_config = || SupervisorConfig {
        queue_depth: 16,
        checkpoint_every_n_batches: 4,
        ..Default::default()
    };

    let mut legacy =
        SupervisedPipeline::with_learner(Learner::new(ModelSpec::lr(6, 2), config()), sup_config())
            .expect("valid supervision config");
    let legacy_out = drive_supervised(&mut legacy, &feed);

    let mut built = PipelineBuilder::new(ModelSpec::lr(6, 2))
        .with_config(config())
        .with_supervisor_config(sup_config())
        .build_supervised()
        .expect("valid configuration");
    let built_out = drive_supervised(&mut built, &feed);

    assert_eq!(legacy_out, built_out, "builder supervised must match the direct constructor");
}

use freeway_core::SupervisedPipeline;

fn drive_supervised(sup: &mut SupervisedPipeline, feed: &[Batch]) -> Vec<(u64, Vec<usize>)> {
    let mut out = Vec::new();
    for b in feed {
        sup.feed_prequential(b.clone()).expect("healthy pipeline");
        while let Ok(Some(o)) = sup.try_recv() {
            out.push((o.seq, o.report.expect("prequential reports").predictions));
        }
    }
    let run = sup_finish(sup, feed.len(), &mut out);
    assert_eq!(run, feed.len(), "every batch produced an output");
    out
}

/// Drains the remaining outputs via `recv` (blocking) until all are seen.
fn sup_finish(
    sup: &mut SupervisedPipeline,
    total: usize,
    out: &mut Vec<(u64, Vec<usize>)>,
) -> usize {
    while out.len() < total {
        let o = sup.recv().expect("outputs outstanding");
        out.push((o.seq, o.report.expect("prequential reports").predictions));
    }
    out.len()
}
