//! Property-based tests for the FreewayML core invariants.

use freeway_core::asw::{AdaptiveStreamingWindow, AswParams};
use freeway_core::knowledge::KnowledgeStore;
use freeway_core::{FreewayConfig, Learner};
use freeway_linalg::Matrix;
use freeway_ml::ModelSpec;
use freeway_streams::{Batch, DriftPhase};
use proptest::prelude::*;

fn window_params(max_batches: usize) -> AswParams {
    AswParams { max_batches, max_items: 1_000_000, ..Default::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn asw_weights_stay_in_unit_interval(
        means in prop::collection::vec(-10.0..10.0f64, 1..20)
    ) {
        let mut w = AdaptiveStreamingWindow::new(window_params(100));
        for &m in &means {
            w.insert(Matrix::filled(2, 3, m).into(), vec![0, 1].into(), vec![m, m]);
            for b in w.batches() {
                prop_assert!((0.0..=1.0).contains(&b.weight), "weight {}", b.weight);
            }
        }
        prop_assert_eq!(w.items(), w.batches().iter().map(|b| b.x.rows()).sum::<usize>());
    }

    #[test]
    fn asw_disorder_bounded(
        means in prop::collection::vec(-5.0..5.0f64, 2..15)
    ) {
        let mut w = AdaptiveStreamingWindow::new(window_params(100));
        for &m in &means {
            let d = w.insert(Matrix::filled(1, 2, m).into(), vec![0].into(), vec![m, 0.0]);
            prop_assert!((0.0..=1.0).contains(&d), "disorder {d}");
        }
    }

    #[test]
    fn asw_drain_preserves_sample_count(
        sizes in prop::collection::vec(1usize..8, 1..6)
    ) {
        let mut w = AdaptiveStreamingWindow::new(window_params(100));
        let mut total = 0;
        for (i, &n) in sizes.iter().enumerate() {
            w.insert(Matrix::filled(n, 2, i as f64).into(), vec![0; n].into(), vec![i as f64, 0.0]);
            total += n;
        }
        // Decay may have evicted some batches; drained rows must match
        // the window's own accounting exactly.
        let held = w.items();
        prop_assert!(held <= total);
        let (x, labels, weights) = w.drain_for_update().unwrap();
        prop_assert_eq!(x.rows(), held);
        prop_assert_eq!(labels.len(), held);
        prop_assert_eq!(weights.len(), held);
        prop_assert!(weights.iter().all(|&w| w > 0.0));
    }

    #[test]
    fn knowledge_store_never_exceeds_capacity(
        n in 1usize..40, capacity in 1usize..10
    ) {
        let spec = ModelSpec::lr(3, 2);
        let mut store = KnowledgeStore::new(capacity);
        let model = spec.build(0);
        for i in 0..n {
            store.preserve(vec![i as f64], model.as_ref(), spec.clone(), 0.5);
            prop_assert!(store.len() <= capacity);
        }
        prop_assert_eq!(store.len() + store.archived(), n);
    }

    #[test]
    fn knowledge_dedup_keeps_distinct_regions(
        regions in prop::collection::vec(0usize..4, 8..30)
    ) {
        let spec = ModelSpec::lr(3, 2);
        let mut store = KnowledgeStore::new(20);
        let model = spec.build(0);
        for &r in &regions {
            // Four well-separated regions; radius 1.0 dedups within each.
            store.preserve_dedup(
                vec![r as f64 * 10.0, 0.0],
                model.as_ref(),
                spec.clone(),
                0.5,
                1.0,
            );
        }
        let distinct: std::collections::HashSet<usize> = regions.iter().copied().collect();
        prop_assert_eq!(store.len(), distinct.len(), "one entry per region");
        prop_assert_eq!(store.archived(), 0, "dedup avoids spills entirely");
    }

    #[test]
    fn same_key_always_routes_to_same_shard(
        keys in prop::collection::vec(0u64..u64::MAX, 1..64), shards in 1usize..9
    ) {
        for &key in &keys {
            let shard = freeway_core::shard_for(key, shards);
            prop_assert!(shard < shards, "shard {shard} out of range for {shards}");
            // Routing is a pure function of (key, shard count): feeding the
            // same key twice — or on another host — lands on the same shard.
            prop_assert_eq!(shard, freeway_core::shard_for(key, shards));
        }
    }

    #[test]
    fn single_shard_takes_every_key(keys in prop::collection::vec(0u64..u64::MAX, 1..64)) {
        for &key in &keys {
            prop_assert_eq!(freeway_core::shard_for(key, 1), 0);
        }
    }

    #[test]
    fn learner_reports_match_batch_shape(
        size in 8usize..64, batches in 2usize..6, seed in 0u64..50
    ) {
        let mut rng = freeway_streams::concept::stream_rng(seed);
        let concept =
            freeway_streams::concept::GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let mut learner = Learner::new(
            ModelSpec::lr(4, 2),
            FreewayConfig { mini_batch: size, pca_warmup_rows: 16, ..Default::default() },
        );
        for i in 0..batches {
            let (x, y) = concept.sample_batch(size, &mut rng);
            let b = Batch::labeled(x, y, i as u64, DriftPhase::Stable);
            let report = learner.process(&b);
            prop_assert_eq!(report.predictions.len(), size);
            prop_assert!(report.predictions.iter().all(|&p| p < 2));
        }
    }
}
