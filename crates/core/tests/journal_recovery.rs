//! Torn-write recovery drill for the ingest journal (ISSUE §journal):
//! a crash can cut the log at *any* byte. Opening a journal truncated at
//! every possible prefix of its tail frame must recover every fully
//! framed record, drop the torn tail cleanly, and leave the log
//! appendable — no prefix may produce an error, a partial record, or a
//! corrupted reopen.

use freeway_core::journal::segment_path;
use freeway_core::{frame_batch, Journal, JournalConfig, JournalRecord};
use freeway_linalg::Matrix;
use freeway_streams::{Batch, DriftPhase};
use proptest::prelude::*;

fn temp_dir(label: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("freeway-journal-torn-{}-{label}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// A deterministic labeled batch whose payload varies with `seq`.
fn batch(seq: u64, rows: usize) -> Batch {
    let cols = 3;
    let data: Vec<f64> = (0..rows * cols).map(|i| (seq as f64) + (i as f64) * 0.25).collect();
    let x = Matrix::from_vec(rows, cols, data);
    let labels = (0..rows).map(|r| (r + seq as usize) % 2).collect();
    Batch::labeled(x, labels, seq, DriftPhase::Stable)
}

/// Writes `records` through a real journal and returns the raw segment
/// bytes plus the byte offset where each frame starts (so cuts can be
/// aimed at the tail frame).
fn journaled_bytes(dir: &std::path::Path, n: u64) -> (Vec<u8>, Vec<usize>, Vec<JournalRecord>) {
    let config = JournalConfig::new(dir.join("ingest.wal"));
    let (mut journal, recovered) = Journal::open(config.clone()).expect("fresh journal opens");
    assert!(recovered.is_empty());
    let mut offsets = Vec::new();
    let mut offset = 0usize;
    for seq in 0..n {
        let frame = frame_batch(&batch(seq, 2 + (seq as usize % 3)), true);
        offsets.push(offset);
        offset += frame.len();
        journal.append_frame(seq, &frame).expect("append");
    }
    journal.sync();
    let (reopened, records) = Journal::open(config).expect("reopen");
    assert_eq!(records.len(), n as usize, "all synced records recover");
    drop(reopened);
    let bytes = std::fs::read(segment_path(&dir.join("ingest.wal"), 0)).expect("segment bytes");
    assert_eq!(bytes.len(), offset, "offsets account for every byte");
    (bytes, offsets, records)
}

#[test]
fn every_byte_prefix_of_the_tail_frame_recovers_cleanly() {
    let dir = temp_dir("exhaustive");
    let n = 4u64;
    let (bytes, offsets, records) = journaled_bytes(&dir, n);
    let tail_start = *offsets.last().expect("at least one frame");

    // Cut the log at every byte inside (and at the start of) the tail
    // frame: everything before it must come back, nothing after.
    for cut in tail_start..bytes.len() {
        let case = dir.join(format!("cut-{cut}"));
        std::fs::create_dir_all(&case).expect("case dir");
        let base = case.join("ingest.wal");
        std::fs::write(segment_path(&base, 0), &bytes[..cut]).expect("torn copy");
        let (journal, recovered) =
            Journal::open(JournalConfig::new(base)).expect("torn tail is never an open error");
        assert_eq!(
            recovered,
            records[..(n - 1) as usize],
            "cut at byte {cut}: all fully framed records, nothing more"
        );
        assert_eq!(
            journal.stats().torn_bytes_dropped as usize,
            cut - tail_start,
            "cut at byte {cut}: exactly the torn tail is dropped"
        );
        // The recovered log is appendable: the write-ahead contract
        // survives the crash.
        let mut journal = journal;
        let replacement = frame_batch(&batch(n - 1, 2), true);
        journal.append_frame(n - 1, &replacement).expect("append after torn recovery");
        journal.sync();
        let (_j, reread) = Journal::open(JournalConfig::new(case.join("ingest.wal")))
            .expect("reopen after repair");
        assert_eq!(reread.len(), n as usize, "cut at byte {cut}: repaired log is complete");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupting_a_mid_log_byte_drops_that_frame_and_its_suffix() {
    let dir = temp_dir("midframe");
    let n = 5u64;
    let (bytes, offsets, records) = journaled_bytes(&dir, n);
    // Flip one payload byte inside frame 2: frames 0-1 survive, frames
    // 2-4 are dropped (replay must be a contiguous prefix).
    let mut corrupt = bytes.clone();
    let victim = offsets[2] + 12;
    corrupt[victim] ^= 0xFF;
    let case = dir.join("corrupt");
    std::fs::create_dir_all(&case).expect("case dir");
    let base = case.join("ingest.wal");
    std::fs::write(segment_path(&base, 0), &corrupt).expect("corrupt copy");
    let (journal, recovered) =
        Journal::open(JournalConfig::new(base)).expect("corruption is recovered, not fatal");
    assert_eq!(recovered, records[..2], "contiguous prefix before the corrupt frame");
    assert_eq!(
        journal.stats().torn_bytes_dropped as usize,
        bytes.len() - offsets[2],
        "the corrupt frame and its suffix are dropped"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Arbitrary record sets cut at an arbitrary byte: the recovery is
    /// always the longest fully framed prefix at or before the cut.
    #[test]
    fn any_cut_point_recovers_the_framed_prefix(
        n in 1u64..6,
        rows in 1usize..4,
        cut_fraction in 0.0f64..1.0,
    ) {
        let dir = temp_dir(&format!("prop-{n}-{rows}-{:.0}", cut_fraction * 1000.0));
        let config = JournalConfig::new(dir.join("ingest.wal"));
        let (mut journal, _) = Journal::open(config).expect("fresh journal");
        let mut offsets = Vec::new();
        let mut offset = 0usize;
        for seq in 0..n {
            let frame = frame_batch(&batch(seq, rows), seq % 2 == 0);
            offsets.push(offset);
            offset += frame.len();
            journal.append_frame(seq, &frame).expect("append");
        }
        journal.sync();
        drop(journal);
        let seg = segment_path(&dir.join("ingest.wal"), 0);
        let bytes = std::fs::read(&seg).expect("segment bytes");
        let cut = ((bytes.len() as f64) * cut_fraction) as usize;
        std::fs::write(&seg, &bytes[..cut]).expect("torn rewrite");
        let (reopened, recovered) =
            Journal::open(JournalConfig::new(dir.join("ingest.wal"))).expect("recovery");
        let expect_full = offsets.iter().filter(|&&o| {
            // A frame survives iff the *next* frame boundary fits the cut.
            let next = offsets.iter().find(|&&p| p > o).copied().unwrap_or(bytes.len());
            next <= cut
        }).count();
        prop_assert_eq!(recovered.len(), expect_full);
        for (seq, record) in recovered.iter().enumerate() {
            prop_assert_eq!(record.seq, seq as u64);
        }
        drop(reopened);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
