//! Sharded-runtime acceptance: 1-shard parity oracle against the plain
//! pipeline, cross-shard Pattern-C reuse through the shared registry,
//! thousand-key routing, and the shard/kernel thread-budget guard.

use freeway_core::{
    shard_for, AdmissionConfig, AdmissionPolicy, FreewayConfig, FreewayError, PipelineBuilder,
    Strategy,
};
use freeway_ml::ModelSpec;
use freeway_streams::concept::{stream_rng, GmmConcept};
use freeway_streams::keyed::{InterleavedKeyed, KeyedBatch};
use freeway_streams::{Batch, DriftPhase};

const DIM: usize = 6;
const BATCH_SIZE: usize = 96;

fn config() -> FreewayConfig {
    FreewayConfig { pca_warmup_rows: 64, mini_batch: BATCH_SIZE, ..Default::default() }
}

/// Admission that can neither shed nor degrade: parity runs must train on
/// exactly the batches the plain pipeline trains on.
fn lossless_admission() -> AdmissionConfig {
    AdmissionConfig { policy: AdmissionPolicy::Block, ladder: None, ..Default::default() }
}

/// First key at/after `start` routing to `target` under `n` shards.
fn key_for_shard(target: usize, n: usize, start: u64) -> u64 {
    (start..start + 1024)
        .find(|k| shard_for(*k, n) == target)
        .expect("1024 consecutive keys cover every shard")
}

#[test]
fn one_shard_run_is_output_identical_to_plain_pipeline() {
    // The same interleaved keyed stream (with a severe mid-stream shift)
    // drives both runtimes; at 1 shard every key routes to shard 0 in
    // feed order, so the learner behind the sharded router must see —
    // and answer — byte-identically to the plain pipeline's learner.
    let make_feed = || {
        let mut gen = InterleavedKeyed::uniform(DIM, 2, 8, 4242);
        let mut feed = Vec::new();
        for i in 0..24 {
            if i == 14 {
                for key in 0..8 {
                    gen.concept_mut(key).translate(&[25.0; DIM]);
                }
                gen.set_phase(DriftPhase::Sudden);
            } else if i == 15 {
                gen.set_phase(DriftPhase::Stable);
            }
            feed.push(gen.next_keyed(BATCH_SIZE));
        }
        feed
    };

    let plain = PipelineBuilder::new(ModelSpec::lr(DIM, 2))
        .with_config(config())
        .with_queue_depth(32)
        .build()
        .expect("valid configuration");
    for kb in make_feed() {
        plain.feed_prequential(kb.batch).expect("worker alive");
    }
    let mut plain_out: Vec<_> = (0..24)
        .map(|_| {
            let o = plain.recv().expect("worker alive");
            let report = o.report.expect("prequential reports");
            (o.seq, report.predictions.clone(), report.strategy(), report.severity().to_bits())
        })
        .collect();
    plain.finish().expect("clean shutdown");
    plain_out.sort_by_key(|(seq, ..)| *seq);

    let mut sharded = PipelineBuilder::new(ModelSpec::lr(DIM, 2))
        .with_config(config())
        .with_queue_depth(32)
        .admission(lossless_admission())
        .shards(1)
        .build_sharded()
        .expect("valid configuration");
    for kb in make_feed() {
        let (shard, _) = sharded.feed_prequential(kb).expect("worker alive");
        assert_eq!(shard, 0, "one shard takes every key");
    }
    let sharded_out: Vec<_> = sharded
        .barrier()
        .expect("healthy shards")
        .into_iter()
        .map(|(_, o)| {
            let report = o.report.expect("prequential reports");
            (o.seq, report.predictions.clone(), report.strategy(), report.severity().to_bits())
        })
        .collect();
    let run = sharded.finish().expect("clean finish");

    assert_eq!(plain_out, sharded_out, "1-shard run must match the plain pipeline exactly");
    assert_eq!(run.admission().admitted, 24);
    assert_eq!(run.shared_hits(), 0, "a single shard can never hit foreign knowledge");
    assert!(run.shared.is_empty(), "a single shard publishes nothing");
}

#[test]
fn concept_preserved_on_one_shard_is_reused_on_another() {
    // Shard A's tenant lives on `home`; shard B's tenant lives far away
    // on `other`. After both have preserved knowledge, shard B's tenant
    // jumps ONTO `home` — a concept shard B has never seen but shard A
    // has published. The severe shift on shard B must resolve through
    // the shared registry as a Pattern-C style reuse (KnowledgeReuse
    // strategy, shared_hits > 0) instead of a cold CEC reconstruction.
    let mut rng = stream_rng(12);
    let home = GmmConcept::random(DIM, 2, 2, 4.0, 0.6, &mut rng);
    let mut other = home.clone();
    other.translate(&[40.0; DIM]);

    let cfg = FreewayConfig {
        pca_warmup_rows: 64,
        mini_batch: BATCH_SIZE,
        asw_max_batches: 3,
        beta: 0.9,
        ..Default::default()
    };
    let mut sharded = PipelineBuilder::new(ModelSpec::lr(DIM, 2))
        .with_config(cfg)
        .with_queue_depth(32)
        .admission(lossless_admission())
        .shards(2)
        .build_sharded()
        .expect("valid configuration");

    let key_a = key_for_shard(0, 2, 0);
    let key_b = key_for_shard(1, 2, 0);
    let mut seq = 0u64;
    let mut feed = |sharded: &mut freeway_core::ShardedPipeline,
                    key: u64,
                    concept: &GmmConcept,
                    rng: &mut rand::rngs::StdRng,
                    phase: DriftPhase| {
        let (x, y) = concept.sample_batch(BATCH_SIZE, rng);
        let batch = Batch::labeled(x, y, seq, phase);
        seq += 1;
        sharded.feed_prequential(KeyedBatch { key, batch }).expect("worker alive")
    };

    // Phase 1: both tenants learn their own concepts; window completions
    // publish into the shared registry.
    for _ in 0..25 {
        feed(&mut sharded, key_a, &home, &mut rng, DriftPhase::Stable);
        feed(&mut sharded, key_b, &other, &mut rng, DriftPhase::Stable);
    }
    sharded.barrier().expect("healthy shards");
    let published = sharded.shared().len();
    assert!(published >= 2, "both shards published ({published} entries)");

    // Phase 2: shard B's tenant jumps onto shard A's concept.
    let mut hit_strategies = Vec::new();
    for _ in 0..6 {
        feed(&mut sharded, key_b, &home, &mut rng, DriftPhase::Sudden);
        for (shard, out) in sharded.barrier().expect("healthy shards") {
            if shard == 1 {
                if let Some(report) = out.report {
                    hit_strategies.push(report.strategy());
                }
            }
        }
    }
    let run = sharded.finish().expect("clean finish");
    assert!(
        run.shards[1].learner().shared_hits() >= 1,
        "shard B must reuse shard A's published concept (strategies: {hit_strategies:?})"
    );
    assert!(
        hit_strategies.contains(&Strategy::KnowledgeReuse),
        "a cross-shard hit serves inference as knowledge reuse: {hit_strategies:?}"
    );
}

#[test]
fn thousand_interleaved_keyed_streams_route_and_complete() {
    let keys = 1200usize;
    let mut gen = InterleavedKeyed::uniform(4, 2, keys, 7);
    let mut sharded = PipelineBuilder::new(ModelSpec::lr(4, 2))
        .with_config(FreewayConfig { pca_warmup_rows: 64, mini_batch: 16, ..Default::default() })
        .with_queue_depth(64)
        .admission(lossless_admission())
        .shards(2)
        .build_sharded()
        .expect("valid configuration");
    let mut per_shard = [0u64; 2];
    for _ in 0..keys {
        let kb = gen.next_keyed(16);
        let expected = shard_for(kb.key, 2);
        let (shard, _) = sharded.feed_prequential(kb).expect("worker alive");
        assert_eq!(shard, expected, "router matches shard_for");
        per_shard[shard] += 1;
    }
    let outputs = sharded.barrier().expect("healthy shards");
    assert_eq!(outputs.len(), keys, "every keyed batch produced an output");
    let run = sharded.finish().expect("clean finish");
    assert_eq!(run.admission().admitted, keys as u64);
    assert!(per_shard.iter().all(|&n| n > 0), "1200 keys land on both shards: {per_shard:?}");
}

#[test]
fn oversubscribed_shard_thread_split_is_rejected() {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    // 2 shards plus a kernel pool as wide as the host (at least 2) can
    // never fit `shards + kernel_threads <= cores`.
    let err = PipelineBuilder::new(ModelSpec::lr(4, 2))
        .with_config(FreewayConfig { num_threads: cores.max(2), ..Default::default() })
        .shards(2)
        .build_sharded()
        .err()
        .expect("oversubscribed split is invalid");
    assert!(matches!(err, FreewayError::InvalidConfig(_)), "got {err:?}");
    assert!(err.to_string().contains("oversubscribe"), "{err}");

    let err = PipelineBuilder::new(ModelSpec::lr(4, 2))
        .shards(0)
        .build_sharded()
        .err()
        .expect("zero shards is invalid");
    assert!(err.to_string().contains("shard count"), "{err}");
}
