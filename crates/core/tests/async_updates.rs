//! Asynchronous long-model updates must never block the serving path.
//!
//! Lives in its own integration binary on purpose: it needs the
//! process-wide worker pool configured to 2 threads for its whole
//! duration, and `Learner::new`/`pool::configure` calls from unrelated
//! tests in the same process would race that setting. Each integration
//! test file is its own process, so the configuration is stable here.

use freeway_core::config::FreewayConfig;
use freeway_core::granularity::MultiGranularity;
use freeway_linalg::{pool, Matrix};
use freeway_ml::ModelSpec;
use std::time::{Duration, Instant};

fn batch(rows: usize, seed: u64) -> (Matrix, Vec<usize>, Vec<f64>) {
    let fill = |i: usize| ((i as f64 + seed as f64 * 31.0) * 0.13).sin() * 2.0;
    let x = Matrix::from_vec(rows, 4, (0..rows * 4).map(fill).collect());
    let y: Vec<usize> = (0..rows).map(|i| (i + seed as usize) % 2).collect();
    let projected: Vec<f64> = (0..2).map(|i| fill(i + seed as usize)).collect();
    (x, y, projected)
}

#[test]
fn slow_long_update_does_not_block_predict_proba() {
    pool::configure(2);
    assert!(
        pool::global().is_parallel(),
        "test needs a parallel pool (FREEWAY_THREADS=1 would force serial)"
    );

    let config = FreewayConfig {
        model_num: 2,
        asw_max_batches: 2,
        // Make the window update genuinely slow relative to inference:
        // many weighted epochs over every retained row.
        asw_update_epochs: 400,
        num_threads: 2,
        async_long_updates: true,
        ..Default::default()
    };
    let mut bank = MultiGranularity::new(ModelSpec::mlp(4, vec![16], 2), &config);

    // Two batches fill the long level's window (asw_max_batches * level
    // index = 2) and enqueue the slow update as a detached pool job.
    let mut pending_seen = false;
    let mut seed = 0u64;
    while !pending_seen && seed < 8 {
        let (x, y, projected) = batch(256, seed);
        bank.train(&x, &y, &projected);
        pending_seen = bank.pending_async_updates() > 0;
        seed += 1;
    }
    assert!(pending_seen, "window completion must enqueue an async update");

    // While the long update is still in flight, inference must be
    // serviced immediately — the whole point of the double-buffered
    // snapshot is that serving never waits on training.
    let (qx, _, qproj) = batch(64, 99);
    let started = Instant::now();
    let probs = bank.predict_proba(&qx, &qproj);
    let predict_latency = started.elapsed();
    assert_eq!(probs.rows(), 64);
    assert!(
        predict_latency < Duration::from_secs(5),
        "predict_proba blocked for {predict_latency:?} behind the long update"
    );

    // The update lands at a later train() or explicit harvest, in
    // submission order; harvesting here (instead of training filler
    // batches) avoids completing further windows while we wait.
    let long_updates = |bank: &MultiGranularity| bank.level_diagnostics(&qproj)[1].1;
    let updates_before = long_updates(&bank);
    let deadline = Instant::now() + Duration::from_secs(60);
    while bank.pending_async_updates() > 0 {
        assert!(Instant::now() < deadline, "async long update never completed");
        std::thread::sleep(Duration::from_millis(20));
        bank.harvest_async_updates();
    }
    assert!(
        long_updates(&bank) > updates_before,
        "harvest must install the completed long-model update"
    );
}
