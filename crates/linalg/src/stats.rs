//! Batch statistics used by the shift graph (Equations 2–3 and 6–10).

use crate::matrix::Matrix;

/// Mean vector of the rows of `data` (Equation 2).
///
/// Empty input yields a zero vector of the matrix's column count.
pub fn mean_vector(data: &Matrix) -> Vec<f64> {
    data.column_means()
}

/// Population covariance matrix of the rows of `data` (Equation 3):
/// `Σ = (1/n) Σ_i (x_i − μ)(x_i − μ)^T`.
///
/// Fewer than two rows yield the zero matrix, since a single point carries
/// no spread information.
pub fn covariance_matrix(data: &Matrix) -> Matrix {
    let (n, d) = data.shape();
    let mut cov = Matrix::zeros(d, d);
    if n < 2 {
        return cov;
    }
    let mu = data.column_means();
    let mut centered = vec![0.0; d];
    for row in data.row_iter() {
        for ((c, &x), &m) in centered.iter_mut().zip(row).zip(&mu) {
            *c = x - m;
        }
        for i in 0..d {
            let ci = centered[i];
            if ci == 0.0 {
                continue;
            }
            let cov_row = &mut cov.as_mut_slice()[i * d..(i + 1) * d];
            for (entry, &cj) in cov_row.iter_mut().zip(&centered) {
                *entry += ci * cj;
            }
        }
    }
    cov.scale(1.0 / n as f64);
    cov
}

/// Weighted mean of `values` with weights `w` (Equation 8).
///
/// Returns `0.0` when the total weight vanishes.
///
/// # Panics
/// Panics if lengths differ.
pub fn weighted_mean(values: &[f64], w: &[f64]) -> f64 {
    assert_eq!(values.len(), w.len(), "weighted_mean length mismatch");
    let total: f64 = w.iter().sum();
    if total.abs() < f64::EPSILON {
        return 0.0;
    }
    values.iter().zip(w).map(|(v, wi)| v * wi).sum::<f64>() / total
}

/// Population standard deviation of `values` around a given center
/// (Equation 9 uses the weighted mean as the center).
pub fn std_dev_around(values: &[f64], center: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let ss: f64 = values.iter().map(|v| (v - center) * (v - center)).sum();
    (ss / values.len() as f64).sqrt()
}

/// Exponential recency weights for a history of length `n`: the most
/// recent entry (index `n-1`) gets weight 1, older entries decay by
/// `decay` per step. These are the `w_i` of Equation 8.
pub fn recency_weights(n: usize, decay: f64) -> Vec<f64> {
    assert!((0.0..=1.0).contains(&decay), "decay must be in [0, 1]");
    (0..n).map(|i| decay.powi((n - 1 - i) as i32)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_vector_of_simple_batch() {
        let m = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 20.0]]);
        assert_eq!(mean_vector(&m), vec![2.0, 15.0]);
    }

    #[test]
    fn covariance_of_uncorrelated_axes_is_diagonal() {
        let m =
            Matrix::from_rows(&[vec![1.0, 0.0], vec![-1.0, 0.0], vec![0.0, 2.0], vec![0.0, -2.0]]);
        let c = covariance_matrix(&m);
        assert!((c[(0, 0)] - 0.5).abs() < 1e-12);
        assert!((c[(1, 1)] - 2.0).abs() < 1e-12);
        assert!(c[(0, 1)].abs() < 1e-12);
        assert!(c[(1, 0)].abs() < 1e-12);
    }

    #[test]
    fn covariance_is_symmetric_psd_diagonal() {
        let m = Matrix::from_rows(&[
            vec![1.0, 2.0, 0.0],
            vec![2.0, 4.5, 1.0],
            vec![3.0, 5.5, -1.0],
            vec![0.5, 1.0, 0.3],
        ]);
        let c = covariance_matrix(&m);
        for i in 0..3 {
            assert!(c[(i, i)] >= 0.0, "variance must be non-negative");
            for j in 0..3 {
                assert!((c[(i, j)] - c[(j, i)]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn covariance_of_single_point_is_zero() {
        let m = Matrix::from_rows(&[vec![5.0, -3.0]]);
        assert_eq!(covariance_matrix(&m), Matrix::zeros(2, 2));
    }

    #[test]
    fn weighted_mean_matches_equation_8() {
        // values [1, 3] with weights [1, 3] => (1 + 9) / 4 = 2.5
        assert!((weighted_mean(&[1.0, 3.0], &[1.0, 3.0]) - 2.5).abs() < 1e-12);
        assert_eq!(weighted_mean(&[1.0], &[0.0]), 0.0);
    }

    #[test]
    fn std_dev_around_center() {
        assert!((std_dev_around(&[1.0, 3.0], 2.0) - 1.0).abs() < 1e-12);
        assert_eq!(std_dev_around(&[], 0.0), 0.0);
    }

    #[test]
    fn recency_weights_decay_toward_the_past() {
        let w = recency_weights(3, 0.5);
        assert_eq!(w, vec![0.25, 0.5, 1.0]);
        assert_eq!(recency_weights(0, 0.9), Vec::<f64>::new());
    }
}
