//! Row-major dense `f64` matrix.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f64` values.
///
/// The element at row `r`, column `c` lives at `data[r * cols + c]`.
/// Dimensions are immutable after construction; all binary operations
/// panic on dimension mismatch, which in this workspace always indicates
/// a programming error rather than a recoverable condition.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Minimum `rows * cols * rhs.cols` before [`Matrix::matmul`] goes
/// parallel; below this the channel round-trip costs more than the math.
pub const PAR_MATMUL_MIN_FLOPS: usize = 64 * 1024;

/// Minimum `rows * cols` before [`Matrix::matvec`] goes parallel.
pub const PAR_MATVEC_MIN_ELEMS: usize = 64 * 1024;

/// Fixed accumulation chunk for [`Matrix::t_matvec`]. Partial sums are
/// produced per chunk and combined in chunk order, so results depend on
/// this constant and the row count — never on the thread count.
pub const T_MATVEC_CHUNK_ROWS: usize = 256;

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from a slice of equally sized rows.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged rows: expected {cols}, got {}", row.len());
            data.extend_from_slice(row);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Iterator over row slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Matrix product `self * rhs`.
    ///
    /// Uses the i-k-j loop order so the inner loop walks both operands
    /// contiguously, which matters for the hot MLP forward/backward passes.
    /// Large products are split across the global worker pool by output
    /// row; each row's arithmetic is unchanged, so the result is
    /// bit-identical to the serial computation for any thread count.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let flops = self.rows * self.cols * rhs.cols;
        if self.rows < 2 || flops < PAR_MATMUL_MIN_FLOPS || crate::pool::configured_threads() == 1 {
            let mut out = Matrix::zeros(self.rows, rhs.cols);
            for (i, out_row) in out.data.chunks_mut(rhs.cols.max(1)).enumerate() {
                self.matmul_row_into(rhs, i, out_row);
            }
            return out;
        }
        self.matmul_with(rhs, &crate::pool::global())
    }

    /// [`Self::matmul`] on an explicit pool, bypassing the size gate.
    /// Exposed so tests can compare pool sizes side by side.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul_with(&self, rhs: &Matrix, pool: &crate::pool::WorkerPool) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        if self.rows == 0 {
            return out;
        }
        let out_cols = rhs.cols.max(1);
        let chunk_rows = self.rows.div_ceil(pool.threads());
        let tasks: Vec<crate::pool::Task<'_>> = out
            .data
            .chunks_mut((chunk_rows * out_cols).max(1))
            .enumerate()
            .map(|(chunk, out_chunk)| {
                let row0 = chunk * chunk_rows;
                Box::new(move || {
                    for (offset, out_row) in out_chunk.chunks_mut(out_cols).enumerate() {
                        self.matmul_row_into(rhs, row0 + offset, out_row);
                    }
                }) as crate::pool::Task<'_>
            })
            .collect();
        pool.run(tasks);
        out
    }

    /// Computes one output row of `self * rhs` into `out_row`.
    #[inline]
    fn matmul_row_into(&self, rhs: &Matrix, i: usize, out_row: &mut [f64]) {
        let a_row = self.row(i);
        for (k, &a_ik) in a_row.iter().enumerate() {
            let b_row = rhs.row(k);
            for (o, &b) in out_row.iter_mut().zip(b_row) {
                *o += a_ik * b;
            }
        }
    }

    /// Matrix-vector product `self * v`.
    ///
    /// Large products are split across the global worker pool by output
    /// row; bit-identical to serial for any thread count.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        if self.rows < 2
            || self.rows * self.cols < PAR_MATVEC_MIN_ELEMS
            || crate::pool::configured_threads() == 1
        {
            return self.row_iter().map(|row| crate::vector::dot(row, v)).collect();
        }
        self.matvec_with(v, &crate::pool::global())
    }

    /// [`Self::matvec`] on an explicit pool, bypassing the size gate.
    /// Exposed so tests can compare pool sizes side by side.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec_with(&self, v: &[f64], pool: &crate::pool::WorkerPool) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        if self.rows == 0 {
            return out;
        }
        let chunk_rows = self.rows.div_ceil(pool.threads());
        let tasks: Vec<crate::pool::Task<'_>> = out
            .chunks_mut(chunk_rows)
            .enumerate()
            .map(|(chunk, out_chunk)| {
                let row0 = chunk * chunk_rows;
                Box::new(move || {
                    for (offset, slot) in out_chunk.iter_mut().enumerate() {
                        *slot = crate::vector::dot(self.row(row0 + offset), v);
                    }
                }) as crate::pool::Task<'_>
            })
            .collect();
        pool.run(tasks);
        out
    }

    /// Transposed matrix-vector product `self^T * v`.
    ///
    /// Rows are accumulated in fixed chunks of [`T_MATVEC_CHUNK_ROWS`]
    /// whose partial sums are combined in chunk order on the calling
    /// thread. The chunking depends only on `self.rows()`, so the result
    /// is bit-identical for any thread count (including fully serial).
    ///
    /// # Panics
    /// Panics if `v.len() != self.rows()`.
    pub fn t_matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "t_matvec dimension mismatch");
        if self.rows <= T_MATVEC_CHUNK_ROWS || crate::pool::configured_threads() == 1 {
            // A single chunk — or chunks run inline in order — reduces
            // exactly like the pooled path, so this stays bit-identical.
            return self.t_matvec_with(v, &crate::pool::WorkerPool::new(1));
        }
        self.t_matvec_with(v, &crate::pool::global())
    }

    /// [`Self::t_matvec`] on an explicit pool, bypassing the size gate.
    /// Exposed so tests can compare pool sizes side by side.
    ///
    /// # Panics
    /// Panics if `v.len() != self.rows()`.
    pub fn t_matvec_with(&self, v: &[f64], pool: &crate::pool::WorkerPool) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "t_matvec dimension mismatch");
        let chunks = self.rows.div_ceil(T_MATVEC_CHUNK_ROWS);
        if chunks <= 1 {
            return self.t_matvec_range(v, 0, self.rows);
        }
        let mut partials: Vec<Vec<f64>> = vec![Vec::new(); chunks];
        let tasks: Vec<crate::pool::Task<'_>> = partials
            .iter_mut()
            .enumerate()
            .map(|(chunk, slot)| {
                Box::new(move || {
                    let start = chunk * T_MATVEC_CHUNK_ROWS;
                    let end = (start + T_MATVEC_CHUNK_ROWS).min(self.rows);
                    *slot = self.t_matvec_range(v, start, end);
                }) as crate::pool::Task<'_>
            })
            .collect();
        pool.run(tasks);
        let mut iter = partials.into_iter();
        let mut out = iter.next().expect("at least one chunk");
        for partial in iter {
            for (o, x) in out.iter_mut().zip(partial) {
                *o += x;
            }
        }
        out
    }

    /// Sequential `self[start..end]^T * v[start..end]` partial sum.
    fn t_matvec_range(&self, v: &[f64], start: usize, end: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for (r, &vr) in v.iter().enumerate().take(end).skip(start) {
            for (o, &x) in out.iter_mut().zip(self.row(r)) {
                *o += vr * x;
            }
        }
        out
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// In-place scalar multiplication.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Returns a matrix whose entries are drawn uniformly from
    /// `[-limit, limit]` using the supplied RNG (Xavier/Glorot-style init).
    pub fn random_uniform<R: rand::Rng>(rows: usize, cols: usize, limit: f64, rng: &mut R) -> Self {
        use rand::RngExt as _;
        let data = (0..rows * cols).map(|_| rng.random_range(-limit..=limit)).collect();
        Self { rows, cols, data }
    }

    /// Sums each column into a length-`cols` vector.
    pub fn column_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        for row in self.row_iter() {
            for (o, &x) in out.iter_mut().zip(row) {
                *o += x;
            }
        }
        out
    }

    /// Means of each column; empty matrix yields all zeros.
    pub fn column_means(&self) -> Vec<f64> {
        let mut sums = self.column_sums();
        if self.rows > 0 {
            let inv = 1.0 / self.rows as f64;
            for s in &mut sums {
                *s *= inv;
            }
        }
        sums
    }

    /// Returns a new matrix containing the given rows (in order).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix { rows: indices.len(), cols: self.cols, data }
    }

    /// Stacks two matrices vertically.
    ///
    /// # Panics
    /// Panics if column counts differ.
    pub fn vstack(&self, below: &Matrix) -> Matrix {
        assert_eq!(self.cols, below.cols, "vstack column mismatch");
        let mut data = Vec::with_capacity((self.rows + below.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&below.data);
        Matrix { rows: self.rows + below.rows, cols: self.cols, data }
    }

    /// True when all entries are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ... ({} more rows)", self.rows - 8)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_is_diagonal() {
        let m = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(m[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_round_trips() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged_input() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0, 0.5], vec![0.0, 3.0, 9.0]]);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_rejects_mismatched_shapes() {
        Matrix::zeros(2, 3).matmul(&Matrix::zeros(2, 3));
    }

    #[test]
    fn matvec_and_t_matvec_agree_with_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(a.t_matvec(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.axpy(0.5, &b);
        assert!(a.as_slice().iter().all(|&x| (x - 2.0).abs() < 1e-12));
    }

    #[test]
    fn column_means_average_rows() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0]]);
        assert_eq!(m.column_means(), vec![2.0, 4.0]);
    }

    #[test]
    fn select_rows_and_vstack() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let picked = m.select_rows(&[2, 0]);
        assert_eq!(picked.row(0), &[3.0]);
        assert_eq!(picked.row(1), &[1.0]);
        let stacked = picked.vstack(&m);
        assert_eq!(stacked.rows(), 5);
        assert_eq!(stacked.row(4), &[3.0]);
    }

    #[test]
    fn random_uniform_respects_limit_and_seed() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = Matrix::random_uniform(10, 10, 0.3, &mut rng);
        assert!(m.as_slice().iter().all(|&x| (-0.3..=0.3).contains(&x)));
        let mut rng2 = StdRng::seed_from_u64(7);
        let m2 = Matrix::random_uniform(10, 10, 0.3, &mut rng2);
        assert_eq!(m, m2);
    }

    #[test]
    fn frobenius_norm_of_identity() {
        assert!((Matrix::identity(4).frobenius_norm() - 2.0).abs() < 1e-12);
    }
}
