//! Row-major dense `f64` matrix.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f64` values.
///
/// The element at row `r`, column `c` lives at `data[r * cols + c]`.
/// Dimensions only change through [`Matrix::resize`], which re-shapes a
/// scratch matrix in place (retaining its allocation); all binary
/// operations panic on dimension mismatch, which in this workspace always
/// indicates a programming error rather than a recoverable condition.
///
/// Every allocating product (`matmul`, `matvec`, …) has an `_into`
/// counterpart that writes into a caller-owned buffer; the `_into` paths
/// perform no heap allocation once the buffer's capacity has reached its
/// high-water mark, which is what makes the warm training loop
/// allocation-free.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Minimum `rows * cols * rhs.cols` before [`Matrix::matmul`] goes
/// parallel; below this the channel round-trip costs more than the math.
pub const PAR_MATMUL_MIN_FLOPS: usize = 64 * 1024;

/// Minimum `rows * cols` before [`Matrix::matvec`] goes parallel.
pub const PAR_MATVEC_MIN_ELEMS: usize = 64 * 1024;

/// Fixed accumulation chunk for [`Matrix::t_matvec`]. Partial sums are
/// produced per chunk and combined in chunk order, so results depend on
/// this constant and the row count — never on the thread count.
pub const T_MATVEC_CHUNK_ROWS: usize = 256;

/// Rows per register block in the tiled matmul micro-kernels.
///
/// Together with [`MICRO_COLS`] this sizes the accumulator footprint:
/// `4 x 8` f64 accumulators fill four 512-bit registers (or eight
/// 256-bit ones), leaving room for the operand broadcasts.
pub const MICRO_ROWS: usize = 4;

/// Columns per register block in the tiled matmul micro-kernels — one
/// full [`crate::vector::WIDE_LANES`] vector of output columns.
pub const MICRO_COLS: usize = 8;

/// Row extent of an output tile in the cache-blocked matmul paths. A
/// `TILE_ROWS x k` block of the left operand stays resident in L1/L2
/// while the micro-kernels sweep one column tile.
pub const TILE_ROWS: usize = 64;

/// Column extent of an output tile in the cache-blocked matmul paths.
/// Sized so a `k x TILE_COLS` panel of the right operand (the data every
/// micro-kernel in the tile re-reads) fits comfortably in L2 for the
/// MLP/CNN shapes this workspace trains (`k` up to a few hundred).
pub const TILE_COLS: usize = 256;

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from a slice of equally sized rows.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged rows: expected {cols}, got {}", row.len());
            data.extend_from_slice(row);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Re-shapes this matrix in place to `rows x cols`.
    ///
    /// Intended for scratch/workspace buffers: the backing allocation is
    /// retained, so repeated resizes stop allocating once the buffer's
    /// high-water mark is reached. Entries carried over from the previous
    /// shape keep their (now meaningless) values — callers that need
    /// zeroed contents must clear explicitly.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Makes this matrix an exact copy of `src`, reusing the existing
    /// allocation when its capacity suffices.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.resize(src.rows, src.cols);
        self.data.copy_from_slice(&src.data);
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.rows);
        self.col_into(c, &mut out);
        out
    }

    /// Copies column `c` into `out`, reusing its allocation.
    ///
    /// # Panics
    /// Panics if `c >= self.cols()`.
    pub fn col_into(&self, c: usize, out: &mut Vec<f64>) {
        assert!(c < self.cols);
        out.clear();
        out.extend((0..self.rows).map(|r| self[(r, c)]));
    }

    /// Iterator over row slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Matrix product `self * rhs`.
    ///
    /// Uses the i-k-j loop order so the inner loop walks both operands
    /// contiguously, which matters for the hot MLP forward/backward passes.
    /// Large products are split across the global worker pool by output
    /// row; each row's arithmetic is unchanged, so the result is
    /// bit-identical to the serial computation for any thread count.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// [`Self::matmul`] writing into `out`, which is re-shaped to
    /// `self.rows() x rhs.cols()` reusing its allocation. Bit-identical to
    /// the allocating path.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.resize(self.rows, rhs.cols);
        // No zero-fill: every output element is fully overwritten by the
        // band kernel below (each is produced in one register
        // accumulation over the whole shared dimension).
        let flops = self.rows * self.cols * rhs.cols;
        if self.rows < 2 || flops < PAR_MATMUL_MIN_FLOPS || crate::pool::configured_threads() == 1 {
            self.matmul_band_into(rhs, 0, self.rows, &mut out.data);
            return;
        }
        self.matmul_pooled_into(rhs, out, &crate::pool::global());
    }

    /// [`Self::matmul`] on an explicit pool, bypassing the size gate.
    /// Exposed so tests can compare pool sizes side by side.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul_with(&self, rhs: &Matrix, pool: &crate::pool::WorkerPool) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_pooled_into(rhs, &mut out, pool);
        out
    }

    /// Pooled matmul body; `out` must have shape `self.rows x rhs.cols`
    /// (every element is overwritten). Output rows are partitioned into
    /// bands aligned to the [`MICRO_ROWS`] register tiling, and each band
    /// runs the same cache-blocked kernel as the serial path; each output
    /// element still accumulates in plain ascending-`k` order, so the
    /// result is bit-identical for any thread count.
    fn matmul_pooled_into(&self, rhs: &Matrix, out: &mut Matrix, pool: &crate::pool::WorkerPool) {
        if self.rows == 0 {
            return;
        }
        let out_cols = rhs.cols.max(1);
        // Band boundaries land on micro-tile edges so no task splits a
        // register block.
        let chunk_rows = self.rows.div_ceil(pool.threads()).next_multiple_of(MICRO_ROWS);
        let tasks: Vec<crate::pool::Task<'_>> = out
            .data
            .chunks_mut((chunk_rows * out_cols).max(1))
            .enumerate()
            .map(|(chunk, out_chunk)| {
                let row0 = chunk * chunk_rows;
                let rows_here = out_chunk.len() / out_cols;
                Box::new(move || {
                    self.matmul_band_into(rhs, row0, row0 + rows_here, out_chunk);
                }) as crate::pool::Task<'_>
            })
            .collect();
        pool.run(tasks);
    }

    /// Cache-blocked `self * rhs` over the output row band `[i0, i1)`;
    /// `out_band` is the corresponding slice of the output buffer (row
    /// `i` lives at offset `(i - i0) * rhs.cols`). Prior contents are
    /// ignored: every element is overwritten.
    ///
    /// Tiling walks `TILE_COLS`-wide column panels and `TILE_ROWS`-tall
    /// row blocks so the right-hand panel a tile re-reads stays cache
    /// resident, with a `MICRO_ROWS x MICRO_COLS` register micro-kernel
    /// inside. Each output element accumulates its terms in plain
    /// ascending-`k` order regardless of tile or band geometry — the
    /// blocking only changes *where* partial sums live and *when* output
    /// elements are produced, never the order or association of any
    /// element's additions — so the result is bit-identical to the naive
    /// k-outer loop, for any tile sizes and any thread count.
    fn matmul_band_into(&self, rhs: &Matrix, i0: usize, i1: usize, out_band: &mut [f64]) {
        let n = rhs.cols;
        if n == 0 || i1 <= i0 {
            return;
        }
        debug_assert_eq!(out_band.len(), (i1 - i0) * n);
        for jc in (0..n).step_by(TILE_COLS) {
            let jc_end = (jc + TILE_COLS).min(n);
            for ic in (i0..i1).step_by(TILE_ROWS) {
                let ic_end = (ic + TILE_ROWS).min(i1);
                let mut i = ic;
                while i + MICRO_ROWS <= ic_end {
                    let mut j = jc;
                    while j + MICRO_COLS <= jc_end {
                        self.matmul_micro::<{ MICRO_COLS }>(rhs, i, j, i0, out_band);
                        j += MICRO_COLS;
                    }
                    // Narrow column remainder: keep the 4-row register
                    // blocking (one `b` row load serves four output rows)
                    // instead of falling back to row-at-a-time — this is
                    // the *entire* matmul for skinny outputs like the
                    // LR/MLP head (2–8 classes).
                    match jc_end - j {
                        0 => {}
                        1 => self.matmul_micro::<1>(rhs, i, j, i0, out_band),
                        2 => self.matmul_micro::<2>(rhs, i, j, i0, out_band),
                        3 => self.matmul_micro::<3>(rhs, i, j, i0, out_band),
                        4 => self.matmul_micro::<4>(rhs, i, j, i0, out_band),
                        5 => self.matmul_micro::<5>(rhs, i, j, i0, out_band),
                        6 => self.matmul_micro::<6>(rhs, i, j, i0, out_band),
                        _ => self.matmul_micro::<7>(rhs, i, j, i0, out_band),
                    }
                    i += MICRO_ROWS;
                }
                for r in i..ic_end {
                    let base = (r - i0) * n;
                    Self::matmul_row_range_into(
                        self.row(r),
                        rhs,
                        jc,
                        &mut out_band[base + jc..base + jc_end],
                    );
                }
            }
        }
    }

    /// `MICRO_ROWS x N` register micro-kernel: computes output rows
    /// `i..i + MICRO_ROWS`, columns `j..j + N` of `self * rhs` into
    /// `out_band` (band starting at output row `i0`). `N = MICRO_COLS`
    /// is the full-width tile interior; `N < MICRO_COLS` serves the
    /// column remainder and skinny outputs. All accumulators live in
    /// registers; terms are added in ascending `k`, matching the naive
    /// loop element-for-element.
    #[inline]
    fn matmul_micro<const N: usize>(
        &self,
        rhs: &Matrix,
        i: usize,
        j: usize,
        i0: usize,
        out_band: &mut [f64],
    ) {
        let k = self.cols;
        let n = rhs.cols;
        assert!(i + MICRO_ROWS <= self.rows && j + N <= n && rhs.rows == k);
        let a = &self.data;
        let b = &rhs.data;
        let mut acc = [[0.0f64; N]; MICRO_ROWS];
        for p in 0..k {
            // SAFETY: `p < k = rhs.rows` and `j + N <= n` put
            // `p * n + j + N <= rhs.data.len()`; likewise
            // `i + MICRO_ROWS <= self.rows` and `p < k` keep every `a`
            // index below `self.data.len()`. Both are established by the
            // assert above; unchecked access hoists the per-`k` bounds
            // checks out of the FMA loop.
            unsafe {
                let b_row = b.get_unchecked(p * n + j..p * n + j + N);
                for (r, acc_r) in acc.iter_mut().enumerate() {
                    let a_v = *a.get_unchecked((i + r) * k + p);
                    for l in 0..N {
                        acc_r[l] += a_v * b_row[l];
                    }
                }
            }
        }
        for (r, acc_r) in acc.iter().enumerate() {
            let base = (i + r - i0) * n + j;
            out_band[base..base + N].copy_from_slice(acc_r);
        }
    }

    /// Columns `j0..j0 + out_row.len()` of one output row of
    /// `self * rhs` (whose prior contents are ignored; every element is
    /// overwritten).
    ///
    /// Each output element accumulates its terms in plain ascending-`k`
    /// order — the register blocking below only changes *where* the
    /// partial sums live (a fixed-size accumulator array instead of the
    /// output slice), never the order or association of the additions, so
    /// the result is bit-identical to the naive k-outer loop.
    #[inline]
    fn matmul_row_range_into(a_row: &[f64], rhs: &Matrix, j0: usize, out_row: &mut [f64]) {
        let mut j = j0;
        let end = j0 + out_row.len();
        while end - j >= MICRO_COLS {
            Self::matmul_row_block::<{ MICRO_COLS }>(
                a_row,
                rhs,
                j,
                &mut out_row[j - j0..j - j0 + MICRO_COLS],
            );
            j += MICRO_COLS;
        }
        let rest = &mut out_row[j - j0..];
        match rest.len() {
            0 => {}
            1 => Self::matmul_row_block::<1>(a_row, rhs, j, rest),
            2 => Self::matmul_row_block::<2>(a_row, rhs, j, rest),
            3 => Self::matmul_row_block::<3>(a_row, rhs, j, rest),
            4 => Self::matmul_row_block::<4>(a_row, rhs, j, rest),
            5 => Self::matmul_row_block::<5>(a_row, rhs, j, rest),
            6 => Self::matmul_row_block::<6>(a_row, rhs, j, rest),
            _ => Self::matmul_row_block::<7>(a_row, rhs, j, rest),
        }
    }

    /// One `N`-wide column block of a matmul output row: `out[j] =
    /// Σ_k a_row[k] · rhs[k][j0+j]`, terms added in ascending `k` with a
    /// per-column register accumulator (constant `N` lets the chains
    /// vectorize).
    #[inline]
    fn matmul_row_block<const N: usize>(a_row: &[f64], rhs: &Matrix, j0: usize, out: &mut [f64]) {
        let cols = rhs.cols.max(1);
        assert!(j0 + N <= cols && a_row.len() * cols <= rhs.data.len());
        let mut acc = [0.0f64; N];
        for (p, &a_ik) in a_row.iter().enumerate() {
            // SAFETY: `p < a_row.len()` and `j0 + N <= cols` keep
            // `p * cols + j0 + N <= rhs.data.len()` per the assert above;
            // unchecked access hoists the per-`k` re-slice bounds check
            // out of the accumulation loop.
            let b = unsafe { rhs.data.get_unchecked(p * cols + j0..p * cols + j0 + N) };
            for j in 0..N {
                acc[j] += a_ik * b[j];
            }
        }
        out.copy_from_slice(&acc);
    }

    /// Fused transposed product `self^T * rhs` without materializing the
    /// transpose.
    ///
    /// Every output element accumulates its terms in ascending shared-row
    /// order, exactly like `self.transpose().matmul(rhs)`, so the result
    /// is bit-identical to the two-step form (and across thread counts).
    ///
    /// # Panics
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn matmul_transa(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_transa_into(rhs, &mut out);
        out
    }

    /// [`Self::matmul_transa`] writing into `out`, which is re-shaped to
    /// `self.cols() x rhs.cols()` reusing its allocation.
    ///
    /// # Panics
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn matmul_transa_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_transa dimension mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.resize(self.cols, rhs.cols);
        out.data.fill(0.0);
        if rhs.cols == 0 || self.cols == 0 {
            return;
        }
        let flops = self.rows * self.cols * rhs.cols;
        if self.cols < 2 || flops < PAR_MATMUL_MIN_FLOPS || crate::pool::configured_threads() == 1 {
            // Shared-row-outer order streams both operands contiguously;
            // each output element still sees plain ascending-k
            // accumulation, matching the pooled path below element-wise.
            // Narrow right-hand sides (backprop's `input^T · delta` with
            // few classes) take a register-held copy of the shared row.
            match rhs.cols {
                1 => self.matmul_transa_serial::<1>(rhs, out),
                2 => self.matmul_transa_serial::<2>(rhs, out),
                3 => self.matmul_transa_serial::<3>(rhs, out),
                4 => self.matmul_transa_serial::<4>(rhs, out),
                _ => self.matmul_transa_band_into(rhs, 0, self.cols, &mut out.data),
            }
            return;
        }
        self.matmul_transa_pooled_into(rhs, out, &crate::pool::global());
    }

    /// Register-blocked `self^T * rhs` over output rows `[c0, c1)`
    /// (columns of `self`); `out_band` is the corresponding slice of the
    /// output buffer, which must be zeroed (elements accumulate in
    /// place). Works in `MICRO_ROWS x MICRO_COLS` register tiles over the
    /// ascending shared-row sweep; each output element accumulates in
    /// ascending shared-row order exactly like the naive loop, for any
    /// band geometry, so results are bit-identical to
    /// `self.transpose().matmul(rhs)`.
    fn matmul_transa_band_into(&self, rhs: &Matrix, c0: usize, c1: usize, out_band: &mut [f64]) {
        let n = rhs.cols;
        if n == 0 || c1 <= c0 {
            return;
        }
        debug_assert_eq!(out_band.len(), (c1 - c0) * n);
        let mut c = c0;
        while c + MICRO_ROWS <= c1 {
            let mut j = 0;
            while j + MICRO_COLS <= n {
                self.matmul_transa_micro(rhs, c, j, c0, out_band);
                j += MICRO_COLS;
            }
            if j < n {
                self.matmul_transa_scalar(rhs, c, c + MICRO_ROWS, j, n, c0, out_band);
            }
            c += MICRO_ROWS;
        }
        if c < c1 {
            self.matmul_transa_scalar(rhs, c, c1, 0, n, c0, out_band);
        }
    }

    /// `MICRO_ROWS x MICRO_COLS` register tile of `self^T * rhs`: output
    /// rows `c..c + MICRO_ROWS`, columns `j..j + MICRO_COLS`, accumulated
    /// over all shared rows in ascending order with register-resident
    /// partial sums.
    #[inline]
    fn matmul_transa_micro(
        &self,
        rhs: &Matrix,
        c: usize,
        j: usize,
        c0: usize,
        out_band: &mut [f64],
    ) {
        let n = rhs.cols;
        let k = self.cols;
        assert!(c + MICRO_ROWS <= k && j + MICRO_COLS <= n && rhs.rows == self.rows);
        let a = &self.data;
        let b = &rhs.data;
        let mut acc = [[0.0f64; MICRO_COLS]; MICRO_ROWS];
        for r in 0..self.rows {
            // SAFETY: `r < self.rows = rhs.rows`, `c + MICRO_ROWS <= k`,
            // and `j + MICRO_COLS <= n` (asserted above) bound every
            // index below the respective buffer lengths; unchecked access
            // hoists the per-row bounds checks out of the FMA loop.
            unsafe {
                let a_row = a.get_unchecked(r * k + c..r * k + c + MICRO_ROWS);
                let b_row = b.get_unchecked(r * n + j..r * n + j + MICRO_COLS);
                for (acc_c, &a_rc) in acc.iter_mut().zip(a_row) {
                    for l in 0..MICRO_COLS {
                        acc_c[l] += a_rc * b_row[l];
                    }
                }
            }
        }
        for (row_idx, acc_c) in acc.iter().enumerate() {
            let base = (c + row_idx - c0) * n + j;
            for (o, &v) in out_band[base..base + MICRO_COLS].iter_mut().zip(acc_c) {
                *o += v;
            }
        }
    }

    /// Scalar remainder of the blocked `self^T * rhs`: output rows
    /// `[ca, cb)`, columns `[ja, jb)`, ascending shared-row accumulation
    /// directly into the (zero-initialised) output band.
    #[allow(clippy::too_many_arguments)] // tile coordinates: two index ranges + band offset
    fn matmul_transa_scalar(
        &self,
        rhs: &Matrix,
        ca: usize,
        cb: usize,
        ja: usize,
        jb: usize,
        c0: usize,
        out_band: &mut [f64],
    ) {
        let n = rhs.cols;
        for (a_row, b_row) in self.row_iter().zip(rhs.row_iter()) {
            for (c, &a_rc) in a_row.iter().enumerate().take(cb).skip(ca) {
                let base = (c - c0) * n;
                for (o, &b) in out_band[base + ja..base + jb].iter_mut().zip(&b_row[ja..jb]) {
                    *o += a_rc * b;
                }
            }
        }
    }

    /// Serial `self^T * rhs` body for a constant narrow `rhs` width:
    /// identical shared-row-outer traversal and per-element ascending-k
    /// accumulation as the generic loop, with the `N` right-hand values
    /// of each shared row held in registers.
    #[inline]
    fn matmul_transa_serial<const N: usize>(&self, rhs: &Matrix, out: &mut Matrix) {
        for (a_row, b_row) in self.row_iter().zip(rhs.row_iter()) {
            let mut b = [0.0f64; N];
            b.copy_from_slice(&b_row[..N]);
            for (out_row, &a_kc) in out.data.chunks_exact_mut(N).zip(a_row) {
                for j in 0..N {
                    out_row[j] += a_kc * b[j];
                }
            }
        }
    }

    /// [`Self::matmul_transa`] on an explicit pool, bypassing the size
    /// gate. Exposed so tests can compare pool sizes side by side.
    ///
    /// # Panics
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn matmul_transa_with(&self, rhs: &Matrix, pool: &crate::pool::WorkerPool) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_transa dimension mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        self.matmul_transa_pooled_into(rhs, &mut out, pool);
        out
    }

    /// Pooled `self^T * rhs` body; `out` must already be zeroed with shape
    /// `self.cols x rhs.cols`. Output rows (columns of `self`) are
    /// partitioned into micro-tile-aligned bands running the blocked
    /// kernel; each output element is produced wholly within one task by
    /// ascending shared-row accumulation, so there are no split
    /// reductions and the result is thread-count invariant.
    fn matmul_transa_pooled_into(
        &self,
        rhs: &Matrix,
        out: &mut Matrix,
        pool: &crate::pool::WorkerPool,
    ) {
        if self.cols == 0 {
            return;
        }
        let out_cols = rhs.cols.max(1);
        let chunk_rows = self.cols.div_ceil(pool.threads()).next_multiple_of(MICRO_ROWS);
        let tasks: Vec<crate::pool::Task<'_>> = out
            .data
            .chunks_mut((chunk_rows * out_cols).max(1))
            .enumerate()
            .map(|(chunk, out_chunk)| {
                let c0 = chunk * chunk_rows;
                let rows_here = out_chunk.len() / out_cols;
                Box::new(move || {
                    self.matmul_transa_band_into(rhs, c0, c0 + rows_here, out_chunk);
                }) as crate::pool::Task<'_>
            })
            .collect();
        pool.run(tasks);
    }

    /// Fused transposed product `self * rhs^T` without materializing the
    /// transpose.
    ///
    /// Every output element is a plain ascending-k dot of two rows,
    /// exactly the accumulation order of `self.matmul(&rhs.transpose())`,
    /// so the result is bit-identical to the two-step form (and across
    /// thread counts).
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_transb(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_transb_into(rhs, &mut out);
        out
    }

    /// [`Self::matmul_transb`] writing into `out`, which is re-shaped to
    /// `self.rows() x rhs.rows()` reusing its allocation.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_transb_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_transb dimension mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.resize(self.rows, rhs.rows);
        let flops = self.rows * self.cols * rhs.rows;
        if self.rows < 2 || flops < PAR_MATMUL_MIN_FLOPS || crate::pool::configured_threads() == 1 {
            self.matmul_transb_band_into(rhs, 0, self.rows, &mut out.data);
            return;
        }
        self.matmul_transb_pooled_into(rhs, out, &crate::pool::global());
    }

    /// Register-blocked `self * rhs^T` over output rows `[i0, i1)`;
    /// `out_band` is the corresponding slice of the output buffer (prior
    /// contents ignored). Both operands stream contiguously along the
    /// shared dimension, so the blocking is pure register tiling:
    /// `MICRO_ROWS x MICRO_ROWS` output tiles, each element a plain
    /// ascending-`k` dot — bit-identical to `matmul` against a
    /// materialized transpose for any band geometry or thread count.
    fn matmul_transb_band_into(&self, rhs: &Matrix, i0: usize, i1: usize, out_band: &mut [f64]) {
        let n = rhs.rows;
        if n == 0 || i1 <= i0 {
            return;
        }
        debug_assert_eq!(out_band.len(), (i1 - i0) * n);
        // Narrow shared dimensions keep the register-held-row kernels.
        if self.cols <= MICRO_ROWS {
            for i in i0..i1 {
                let base = (i - i0) * n;
                self.matmul_transb_row_range_into(rhs, i, 0, &mut out_band[base..base + n]);
            }
            return;
        }
        let mut i = i0;
        while i + MICRO_ROWS <= i1 {
            let mut j = 0;
            while j + MICRO_ROWS <= n {
                self.matmul_transb_micro(rhs, i, j, i0, out_band);
                j += MICRO_ROWS;
            }
            if j < n {
                for r in i..i + MICRO_ROWS {
                    let base = (r - i0) * n;
                    self.matmul_transb_row_range_into(rhs, r, j, &mut out_band[base + j..base + n]);
                }
            }
            i += MICRO_ROWS;
        }
        for r in i..i1 {
            let base = (r - i0) * n;
            self.matmul_transb_row_range_into(rhs, r, 0, &mut out_band[base..base + n]);
        }
    }

    /// `MICRO_ROWS x MICRO_ROWS` register tile of `self * rhs^T`: output
    /// rows `i..i + MICRO_ROWS`, columns `j..j + MICRO_ROWS`, each
    /// element a plain ascending-`k` sum held in a register.
    #[inline]
    fn matmul_transb_micro(
        &self,
        rhs: &Matrix,
        i: usize,
        j: usize,
        i0: usize,
        out_band: &mut [f64],
    ) {
        let k = self.cols;
        let n = rhs.rows;
        assert!(i + MICRO_ROWS <= self.rows && j + MICRO_ROWS <= n && rhs.cols == k);
        let a = &self.data;
        let b = &rhs.data;
        let mut acc = [[0.0f64; MICRO_ROWS]; MICRO_ROWS];
        for p in 0..k {
            // SAFETY: `p < k`, `i + MICRO_ROWS <= self.rows`, and
            // `j + MICRO_ROWS <= n = rhs.rows` (asserted above) bound all
            // indices; unchecked access hoists per-`k` bounds checks out
            // of the accumulation loop.
            unsafe {
                let mut b_v = [0.0f64; MICRO_ROWS];
                for (s, slot) in b_v.iter_mut().enumerate() {
                    *slot = *b.get_unchecked((j + s) * k + p);
                }
                for (r, acc_r) in acc.iter_mut().enumerate() {
                    let a_v = *a.get_unchecked((i + r) * k + p);
                    for s in 0..MICRO_ROWS {
                        acc_r[s] += a_v * b_v[s];
                    }
                }
            }
        }
        for (r, acc_r) in acc.iter().enumerate() {
            let base = (i + r - i0) * n + j;
            out_band[base..base + MICRO_ROWS].copy_from_slice(acc_r);
        }
    }

    /// [`Self::matmul_transb`] on an explicit pool, bypassing the size
    /// gate. Exposed so tests can compare pool sizes side by side.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_transb_with(&self, rhs: &Matrix, pool: &crate::pool::WorkerPool) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_transb dimension mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        self.matmul_transb_pooled_into(rhs, &mut out, pool);
        out
    }

    /// Pooled `self * rhs^T` body; `out` must have shape
    /// `self.rows x rhs.rows` (every element is overwritten). Output rows
    /// are partitioned into micro-tile-aligned bands running the blocked
    /// kernel, with unchanged per-element arithmetic.
    fn matmul_transb_pooled_into(
        &self,
        rhs: &Matrix,
        out: &mut Matrix,
        pool: &crate::pool::WorkerPool,
    ) {
        if self.rows == 0 {
            return;
        }
        let out_cols = rhs.rows.max(1);
        let chunk_rows = self.rows.div_ceil(pool.threads()).next_multiple_of(MICRO_ROWS);
        let tasks: Vec<crate::pool::Task<'_>> = out
            .data
            .chunks_mut((chunk_rows * out_cols).max(1))
            .enumerate()
            .map(|(chunk, out_chunk)| {
                let row0 = chunk * chunk_rows;
                let rows_here = out_chunk.len() / out_cols;
                Box::new(move || {
                    self.matmul_transb_band_into(rhs, row0, row0 + rows_here, out_chunk);
                }) as crate::pool::Task<'_>
            })
            .collect();
        pool.run(tasks);
    }

    /// Columns `j0..j0 + out_row.len()` of one output row of
    /// `self * rhs^T`.
    ///
    /// Uses a plain ascending-k scalar sum — deliberately *not* the
    /// unrolled [`crate::vector::dot`], whose 4-lane association order
    /// differs — so each element matches `matmul` against a materialized
    /// transpose bit for bit.
    #[inline]
    fn matmul_transb_row_range_into(&self, rhs: &Matrix, i: usize, j0: usize, out_row: &mut [f64]) {
        let a_row = self.row(i);
        let b_rows = &rhs.data[j0 * rhs.cols..(j0 + out_row.len()) * rhs.cols];
        // Narrow shared dimensions (backprop's `delta · W^T` with few
        // classes) keep the row in registers; the ascending-k sum below
        // is the same either way.
        match a_row.len() {
            0 => out_row.fill(0.0),
            1 => Self::matmul_transb_row_narrow::<1>(a_row, b_rows, out_row),
            2 => Self::matmul_transb_row_narrow::<2>(a_row, b_rows, out_row),
            3 => Self::matmul_transb_row_narrow::<3>(a_row, b_rows, out_row),
            4 => Self::matmul_transb_row_narrow::<4>(a_row, b_rows, out_row),
            cols => {
                for (o, b_row) in out_row.iter_mut().zip(b_rows.chunks_exact(cols)) {
                    let mut s = 0.0;
                    for (&a, &b) in a_row.iter().zip(b_row) {
                        s += a * b;
                    }
                    *o = s;
                }
            }
        }
    }

    /// A span of one output row of `self * rhs^T` for a constant narrow
    /// shared dimension `N`: per-element ascending-k scalar sums exactly
    /// like the generic loop, with `a_row` held in registers. `b_rows` is
    /// the contiguous slice of `rhs` rows matching `out_row`.
    #[inline]
    fn matmul_transb_row_narrow<const N: usize>(
        a_row: &[f64],
        b_rows: &[f64],
        out_row: &mut [f64],
    ) {
        let mut a = [0.0f64; N];
        a.copy_from_slice(&a_row[..N]);
        for (o, b_row) in out_row.iter_mut().zip(b_rows.chunks_exact(N)) {
            let mut s = 0.0;
            for j in 0..N {
                s += a[j] * b_row[j];
            }
            *o = s;
        }
    }

    /// Matrix-vector product `self * v`.
    ///
    /// Large products are split across the global worker pool by output
    /// row; bit-identical to serial for any thread count.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.rows);
        self.matvec_into(v, &mut out);
        out
    }

    /// [`Self::matvec`] writing into `out`, reusing its allocation.
    /// Bit-identical to the allocating path.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec_into(&self, v: &[f64], out: &mut Vec<f64>) {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        out.clear();
        if self.rows < 2
            || self.rows * self.cols < PAR_MATVEC_MIN_ELEMS
            || crate::pool::configured_threads() == 1
        {
            out.extend(self.row_iter().map(|row| crate::vector::dot(row, v)));
            return;
        }
        out.resize(self.rows, 0.0);
        self.matvec_pooled_into(v, out, &crate::pool::global());
    }

    /// [`Self::matvec`] on an explicit pool, bypassing the size gate.
    /// Exposed so tests can compare pool sizes side by side.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec_with(&self, v: &[f64], pool: &crate::pool::WorkerPool) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        self.matvec_pooled_into(v, &mut out, pool);
        out
    }

    /// Pooled matvec body; `out` must have length `self.rows` (every
    /// element is overwritten).
    fn matvec_pooled_into(&self, v: &[f64], out: &mut [f64], pool: &crate::pool::WorkerPool) {
        if self.rows == 0 {
            return;
        }
        if self.cols == 0 {
            out.fill(0.0);
            return;
        }
        let chunk_rows = self.rows.div_ceil(pool.threads());
        let tasks: Vec<crate::pool::Task<'_>> = out
            .chunks_mut(chunk_rows)
            .enumerate()
            .map(|(chunk, out_chunk)| {
                let row0 = chunk * chunk_rows;
                // Walk the band with `chunks_exact` instead of re-indexing
                // `self.row(row0 + offset)` per row: one bounds check for
                // the whole band, and the row stride is a loop-carried add.
                let band = &self.data[row0 * self.cols..(row0 + out_chunk.len()) * self.cols];
                Box::new(move || {
                    for (slot, row) in out_chunk.iter_mut().zip(band.chunks_exact(self.cols)) {
                        *slot = crate::vector::dot(row, v);
                    }
                }) as crate::pool::Task<'_>
            })
            .collect();
        pool.run(tasks);
    }

    /// Transposed matrix-vector product `self^T * v`.
    ///
    /// Rows are accumulated in fixed chunks of [`T_MATVEC_CHUNK_ROWS`]
    /// whose partial sums are combined in chunk order on the calling
    /// thread. The chunking depends only on `self.rows()`, so the result
    /// is bit-identical for any thread count (including fully serial).
    ///
    /// # Panics
    /// Panics if `v.len() != self.rows()`.
    pub fn t_matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "t_matvec dimension mismatch");
        if self.rows <= T_MATVEC_CHUNK_ROWS || crate::pool::configured_threads() == 1 {
            // A single chunk — or chunks run inline in order — reduces
            // exactly like the pooled path, so this stays bit-identical.
            return self.t_matvec_with(v, &crate::pool::WorkerPool::new(1));
        }
        self.t_matvec_with(v, &crate::pool::global())
    }

    /// [`Self::t_matvec`] writing into `out`, reusing its allocation.
    /// Bit-identical to the allocating path; allocation-free when the
    /// matrix fits a single accumulation chunk
    /// (`rows <= T_MATVEC_CHUNK_ROWS`, which covers every per-row hot
    /// caller in this workspace).
    ///
    /// # Panics
    /// Panics if `v.len() != self.rows()`.
    pub fn t_matvec_into(&self, v: &[f64], out: &mut Vec<f64>) {
        assert_eq!(v.len(), self.rows, "t_matvec dimension mismatch");
        if self.rows <= T_MATVEC_CHUNK_ROWS {
            out.clear();
            out.resize(self.cols, 0.0);
            self.t_matvec_range_into(v, 0, self.rows, out);
            return;
        }
        // Multi-chunk: reuse the fixed chunked reduction wholesale so the
        // chunk-order combine stays byte-for-byte the same. The partials
        // allocate, but only for matrices past the chunk threshold.
        let result = self.t_matvec(v);
        out.clear();
        out.extend_from_slice(&result);
    }

    /// [`Self::t_matvec`] on an explicit pool, bypassing the size gate.
    /// Exposed so tests can compare pool sizes side by side.
    ///
    /// # Panics
    /// Panics if `v.len() != self.rows()`.
    pub fn t_matvec_with(&self, v: &[f64], pool: &crate::pool::WorkerPool) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "t_matvec dimension mismatch");
        let chunks = self.rows.div_ceil(T_MATVEC_CHUNK_ROWS);
        if chunks <= 1 {
            return self.t_matvec_range(v, 0, self.rows);
        }
        let mut partials: Vec<Vec<f64>> = vec![Vec::new(); chunks];
        let tasks: Vec<crate::pool::Task<'_>> = partials
            .iter_mut()
            .enumerate()
            .map(|(chunk, slot)| {
                Box::new(move || {
                    let start = chunk * T_MATVEC_CHUNK_ROWS;
                    let end = (start + T_MATVEC_CHUNK_ROWS).min(self.rows);
                    *slot = self.t_matvec_range(v, start, end);
                }) as crate::pool::Task<'_>
            })
            .collect();
        pool.run(tasks);
        let mut iter = partials.into_iter();
        // Audited: `partials` has one slot per chunk and rows > 0 here.
        #[allow(clippy::expect_used)]
        let mut out = iter.next().expect("at least one chunk");
        for partial in iter {
            for (o, x) in out.iter_mut().zip(partial) {
                *o += x;
            }
        }
        out
    }

    /// Sequential `self[start..end]^T * v[start..end]` partial sum.
    fn t_matvec_range(&self, v: &[f64], start: usize, end: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        self.t_matvec_range_into(v, start, end, &mut out);
        out
    }

    /// [`Self::t_matvec_range`] accumulating into a pre-zeroed slice.
    ///
    /// Each row contributes through the wide-lane [`crate::vector::axpy`]
    /// core; axpy is element-wise, so the unroll width never changes any
    /// element's accumulation order and the result stays bit-identical to
    /// the scalar loop.
    fn t_matvec_range_into(&self, v: &[f64], start: usize, end: usize, out: &mut [f64]) {
        for (r, &vr) in v.iter().enumerate().take(end).skip(start) {
            crate::vector::axpy(out, vr, self.row(r));
        }
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// In-place scalar multiplication.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Returns a matrix whose entries are drawn uniformly from
    /// `[-limit, limit]` using the supplied RNG (Xavier/Glorot-style init).
    pub fn random_uniform<R: rand::Rng>(rows: usize, cols: usize, limit: f64, rng: &mut R) -> Self {
        use rand::RngExt as _;
        let data = (0..rows * cols).map(|_| rng.random_range(-limit..=limit)).collect();
        Self { rows, cols, data }
    }

    /// Sums each column into a length-`cols` vector.
    pub fn column_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        self.column_sums_into(&mut out);
        out
    }

    /// [`Self::column_sums`] writing into `out` (every element is
    /// overwritten). Bit-identical to the allocating path.
    ///
    /// # Panics
    /// Panics if `out.len() != self.cols()`.
    pub fn column_sums_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.cols, "column_sums_into length mismatch");
        out.fill(0.0);
        for row in self.row_iter() {
            for (o, &x) in out.iter_mut().zip(row) {
                *o += x;
            }
        }
    }

    /// Means of each column; empty matrix yields all zeros.
    pub fn column_means(&self) -> Vec<f64> {
        let mut sums = self.column_sums();
        if self.rows > 0 {
            let inv = 1.0 / self.rows as f64;
            for s in &mut sums {
                *s *= inv;
            }
        }
        sums
    }

    /// Returns a new matrix containing the given rows (in order).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix { rows: indices.len(), cols: self.cols, data }
    }

    /// Returns a new matrix holding the contiguous row range
    /// `start..end` — equivalent to `select_rows` over consecutive
    /// indices, without building an index vector.
    ///
    /// # Panics
    /// Panics if `start > end` or `end > self.rows()`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.copy_row_range_into(start, end, &mut out);
        out
    }

    /// [`Self::slice_rows`] writing into `out`, reusing its allocation.
    ///
    /// # Panics
    /// Panics if `start > end` or `end > self.rows()`.
    pub fn copy_row_range_into(&self, start: usize, end: usize, out: &mut Matrix) {
        assert!(
            start <= end && end <= self.rows,
            "row range {start}..{end} out of bounds for {} rows",
            self.rows
        );
        out.resize(end - start, self.cols);
        out.data.copy_from_slice(&self.data[start * self.cols..end * self.cols]);
    }

    /// Stacks two matrices vertically.
    ///
    /// # Panics
    /// Panics if column counts differ.
    pub fn vstack(&self, below: &Matrix) -> Matrix {
        assert_eq!(self.cols, below.cols, "vstack column mismatch");
        let mut data = Vec::with_capacity((self.rows + below.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&below.data);
        Matrix { rows: self.rows + below.rows, cols: self.cols, data }
    }

    /// True when all entries are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ... ({} more rows)", self.rows - 8)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_is_diagonal() {
        let m = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(m[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_round_trips() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged_input() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0, 0.5], vec![0.0, 3.0, 9.0]]);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_rejects_mismatched_shapes() {
        Matrix::zeros(2, 3).matmul(&Matrix::zeros(2, 3));
    }

    #[test]
    fn matvec_and_t_matvec_agree_with_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(a.t_matvec(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.axpy(0.5, &b);
        assert!(a.as_slice().iter().all(|&x| (x - 2.0).abs() < 1e-12));
    }

    #[test]
    fn column_means_average_rows() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0]]);
        assert_eq!(m.column_means(), vec![2.0, 4.0]);
    }

    #[test]
    fn select_rows_and_vstack() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let picked = m.select_rows(&[2, 0]);
        assert_eq!(picked.row(0), &[3.0]);
        assert_eq!(picked.row(1), &[1.0]);
        let stacked = picked.vstack(&m);
        assert_eq!(stacked.rows(), 5);
        assert_eq!(stacked.row(4), &[3.0]);
    }

    #[test]
    fn random_uniform_respects_limit_and_seed() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = Matrix::random_uniform(10, 10, 0.3, &mut rng);
        assert!(m.as_slice().iter().all(|&x| (-0.3..=0.3).contains(&x)));
        let mut rng2 = StdRng::seed_from_u64(7);
        let m2 = Matrix::random_uniform(10, 10, 0.3, &mut rng2);
        assert_eq!(m, m2);
    }

    #[test]
    fn frobenius_norm_of_identity() {
        assert!((Matrix::identity(4).frobenius_norm() - 2.0).abs() < 1e-12);
    }

    fn arange(rows: usize, cols: usize, scale: f64) -> Matrix {
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|i| (i as f64 - 3.0) * scale).collect())
    }

    #[test]
    fn transa_matches_two_step_transpose_matmul() {
        let a = arange(5, 3, 0.7);
        let b = arange(5, 4, -0.31);
        assert_eq!(a.matmul_transa(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn transb_matches_two_step_transpose_matmul() {
        let a = arange(4, 6, 0.13);
        let b = arange(3, 6, 0.57);
        assert_eq!(a.matmul_transb(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn into_variants_reuse_buffers_across_shapes() {
        let mut out = Matrix::zeros(7, 7);
        let mut v_out = Vec::new();
        for rows in [2usize, 6, 3] {
            let a = arange(rows, 3, 0.2);
            let b = arange(3, 2, 0.9);
            a.matmul_into(&b, &mut out);
            assert_eq!(out, a.matmul(&b));
            let v: Vec<f64> = (0..3).map(|i| i as f64 - 1.0).collect();
            a.matvec_into(&v, &mut v_out);
            assert_eq!(v_out, a.matvec(&v));
            let w: Vec<f64> = (0..rows).map(|i| 0.5 - i as f64).collect();
            a.t_matvec_into(&w, &mut v_out);
            assert_eq!(v_out, a.t_matvec(&w));
            let mut sums = vec![0.0; 3];
            a.column_sums_into(&mut sums);
            assert_eq!(sums, a.column_sums());
        }
    }

    #[test]
    fn resize_retains_capacity_and_copy_from_round_trips() {
        let src = arange(4, 2, 1.0);
        let mut dst = Matrix::zeros(1, 1);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        dst.resize(2, 2);
        assert_eq!(dst.shape(), (2, 2));
        assert_eq!(dst.as_slice(), &src.as_slice()[..4]);
    }

    #[test]
    fn slice_rows_matches_select_rows() {
        let m = arange(6, 3, 0.4);
        let idx: Vec<usize> = (1..4).collect();
        assert_eq!(m.slice_rows(1, 4), m.select_rows(&idx));
        assert_eq!(m.slice_rows(0, 0).rows(), 0);
    }

    #[test]
    fn col_into_matches_col() {
        let m = arange(5, 3, 0.8);
        let mut out = vec![99.0; 7];
        m.col_into(2, &mut out);
        assert_eq!(out, m.col(2));
    }
}
