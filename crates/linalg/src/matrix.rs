//! Row-major dense `f64` matrix.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major matrix of `f64` values.
///
/// The element at row `r`, column `c` lives at `data[r * cols + c]`.
/// Dimensions only change through [`Matrix::resize`], which re-shapes a
/// scratch matrix in place (retaining its allocation); all binary
/// operations panic on dimension mismatch, which in this workspace always
/// indicates a programming error rather than a recoverable condition.
///
/// Every allocating product (`matmul`, `matvec`, …) has an `_into`
/// counterpart that writes into a caller-owned buffer; the `_into` paths
/// perform no heap allocation once the buffer's capacity has reached its
/// high-water mark, which is what makes the warm training loop
/// allocation-free.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Minimum `rows * cols * rhs.cols` before [`Matrix::matmul`] goes
/// parallel; below this the channel round-trip costs more than the math.
pub const PAR_MATMUL_MIN_FLOPS: usize = 64 * 1024;

/// Minimum `rows * cols` before [`Matrix::matvec`] goes parallel.
pub const PAR_MATVEC_MIN_ELEMS: usize = 64 * 1024;

/// Fixed accumulation chunk for [`Matrix::t_matvec`]. Partial sums are
/// produced per chunk and combined in chunk order, so results depend on
/// this constant and the row count — never on the thread count.
pub const T_MATVEC_CHUNK_ROWS: usize = 256;

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self { rows, cols, data: vec![value; rows * cols] }
    }

    /// Creates the `n x n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match {rows}x{cols}",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// Builds a matrix from a slice of equally sized rows.
    ///
    /// # Panics
    /// Panics if rows have inconsistent lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "ragged rows: expected {cols}, got {}", row.len());
            data.extend_from_slice(row);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable borrow of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix, returning its row-major buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Re-shapes this matrix in place to `rows x cols`.
    ///
    /// Intended for scratch/workspace buffers: the backing allocation is
    /// retained, so repeated resizes stop allocating once the buffer's
    /// high-water mark is reached. Entries carried over from the previous
    /// shape keep their (now meaningless) values — callers that need
    /// zeroed contents must clear explicitly.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Makes this matrix an exact copy of `src`, reusing the existing
    /// allocation when its capacity suffices.
    pub fn copy_from(&mut self, src: &Matrix) {
        self.resize(src.rows, src.cols);
        self.data.copy_from_slice(&src.data);
    }

    /// Copies column `c` into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.rows);
        self.col_into(c, &mut out);
        out
    }

    /// Copies column `c` into `out`, reusing its allocation.
    ///
    /// # Panics
    /// Panics if `c >= self.cols()`.
    pub fn col_into(&self, c: usize, out: &mut Vec<f64>) {
        assert!(c < self.cols);
        out.clear();
        out.extend((0..self.rows).map(|r| self[(r, c)]));
    }

    /// Iterator over row slices.
    pub fn row_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Matrix product `self * rhs`.
    ///
    /// Uses the i-k-j loop order so the inner loop walks both operands
    /// contiguously, which matters for the hot MLP forward/backward passes.
    /// Large products are split across the global worker pool by output
    /// row; each row's arithmetic is unchanged, so the result is
    /// bit-identical to the serial computation for any thread count.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(rhs, &mut out);
        out
    }

    /// [`Self::matmul`] writing into `out`, which is re-shaped to
    /// `self.rows() x rhs.cols()` reusing its allocation. Bit-identical to
    /// the allocating path.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.resize(self.rows, rhs.cols);
        out.data.fill(0.0);
        let flops = self.rows * self.cols * rhs.cols;
        if self.rows < 2 || flops < PAR_MATMUL_MIN_FLOPS || crate::pool::configured_threads() == 1 {
            for (i, out_row) in out.data.chunks_mut(rhs.cols.max(1)).enumerate() {
                self.matmul_row_into(rhs, i, out_row);
            }
            return;
        }
        self.matmul_pooled_into(rhs, out, &crate::pool::global());
    }

    /// [`Self::matmul`] on an explicit pool, bypassing the size gate.
    /// Exposed so tests can compare pool sizes side by side.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.rows()`.
    pub fn matmul_with(&self, rhs: &Matrix, pool: &crate::pool::WorkerPool) -> Matrix {
        assert_eq!(
            self.cols, rhs.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        self.matmul_pooled_into(rhs, &mut out, pool);
        out
    }

    /// Pooled matmul body; `out` must already be zeroed with shape
    /// `self.rows x rhs.cols`. Output rows are partitioned across pool
    /// threads; each row's arithmetic is unchanged, so the result is
    /// bit-identical for any thread count.
    fn matmul_pooled_into(&self, rhs: &Matrix, out: &mut Matrix, pool: &crate::pool::WorkerPool) {
        if self.rows == 0 {
            return;
        }
        let out_cols = rhs.cols.max(1);
        let chunk_rows = self.rows.div_ceil(pool.threads());
        let tasks: Vec<crate::pool::Task<'_>> = out
            .data
            .chunks_mut((chunk_rows * out_cols).max(1))
            .enumerate()
            .map(|(chunk, out_chunk)| {
                let row0 = chunk * chunk_rows;
                Box::new(move || {
                    for (offset, out_row) in out_chunk.chunks_mut(out_cols).enumerate() {
                        self.matmul_row_into(rhs, row0 + offset, out_row);
                    }
                }) as crate::pool::Task<'_>
            })
            .collect();
        pool.run(tasks);
    }

    /// Computes one output row of `self * rhs` into `out_row` (whose prior
    /// contents are ignored; every element is overwritten).
    ///
    /// Each output element accumulates its terms in plain ascending-`k`
    /// order — the register blocking below only changes *where* the
    /// partial sums live (a fixed-size accumulator array instead of the
    /// output slice), never the order or association of the additions, so
    /// the result is bit-identical to the naive k-outer loop.
    #[inline]
    fn matmul_row_into(&self, rhs: &Matrix, i: usize, out_row: &mut [f64]) {
        let a_row = self.row(i);
        let mut j0 = 0;
        while out_row.len() - j0 >= 8 {
            Self::matmul_row_block::<8>(a_row, rhs, j0, &mut out_row[j0..j0 + 8]);
            j0 += 8;
        }
        let rest = &mut out_row[j0..];
        match rest.len() {
            0 => {}
            1 => Self::matmul_row_block::<1>(a_row, rhs, j0, rest),
            2 => Self::matmul_row_block::<2>(a_row, rhs, j0, rest),
            3 => Self::matmul_row_block::<3>(a_row, rhs, j0, rest),
            4 => Self::matmul_row_block::<4>(a_row, rhs, j0, rest),
            5 => Self::matmul_row_block::<5>(a_row, rhs, j0, rest),
            6 => Self::matmul_row_block::<6>(a_row, rhs, j0, rest),
            _ => Self::matmul_row_block::<7>(a_row, rhs, j0, rest),
        }
    }

    /// One `N`-wide column block of a matmul output row: `out[j] =
    /// Σ_k a_row[k] · rhs[k][j0+j]`, terms added in ascending `k` with a
    /// per-column register accumulator (constant `N` lets the chains
    /// vectorize).
    #[inline]
    fn matmul_row_block<const N: usize>(a_row: &[f64], rhs: &Matrix, j0: usize, out: &mut [f64]) {
        let mut acc = [0.0f64; N];
        for (&a_ik, b_row) in a_row.iter().zip(rhs.data.chunks_exact(rhs.cols.max(1))) {
            let b = &b_row[j0..j0 + N];
            for j in 0..N {
                acc[j] += a_ik * b[j];
            }
        }
        out.copy_from_slice(&acc);
    }

    /// Fused transposed product `self^T * rhs` without materializing the
    /// transpose.
    ///
    /// Every output element accumulates its terms in ascending shared-row
    /// order, exactly like `self.transpose().matmul(rhs)`, so the result
    /// is bit-identical to the two-step form (and across thread counts).
    ///
    /// # Panics
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn matmul_transa(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_transa_into(rhs, &mut out);
        out
    }

    /// [`Self::matmul_transa`] writing into `out`, which is re-shaped to
    /// `self.cols() x rhs.cols()` reusing its allocation.
    ///
    /// # Panics
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn matmul_transa_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_transa dimension mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.resize(self.cols, rhs.cols);
        out.data.fill(0.0);
        if rhs.cols == 0 || self.cols == 0 {
            return;
        }
        let flops = self.rows * self.cols * rhs.cols;
        if self.cols < 2 || flops < PAR_MATMUL_MIN_FLOPS || crate::pool::configured_threads() == 1 {
            // Shared-row-outer order streams both operands contiguously;
            // each output element still sees plain ascending-k
            // accumulation, matching the pooled path below element-wise.
            // Narrow right-hand sides (backprop's `input^T · delta` with
            // few classes) take a register-held copy of the shared row.
            match rhs.cols {
                1 => self.matmul_transa_serial::<1>(rhs, out),
                2 => self.matmul_transa_serial::<2>(rhs, out),
                3 => self.matmul_transa_serial::<3>(rhs, out),
                4 => self.matmul_transa_serial::<4>(rhs, out),
                cols => {
                    for (a_row, b_row) in self.row_iter().zip(rhs.row_iter()) {
                        for (out_row, &a_kc) in out.data.chunks_exact_mut(cols).zip(a_row) {
                            for (o, &b) in out_row.iter_mut().zip(b_row) {
                                *o += a_kc * b;
                            }
                        }
                    }
                }
            }
            return;
        }
        self.matmul_transa_pooled_into(rhs, out, &crate::pool::global());
    }

    /// Serial `self^T * rhs` body for a constant narrow `rhs` width:
    /// identical shared-row-outer traversal and per-element ascending-k
    /// accumulation as the generic loop, with the `N` right-hand values
    /// of each shared row held in registers.
    #[inline]
    fn matmul_transa_serial<const N: usize>(&self, rhs: &Matrix, out: &mut Matrix) {
        for (a_row, b_row) in self.row_iter().zip(rhs.row_iter()) {
            let mut b = [0.0f64; N];
            b.copy_from_slice(&b_row[..N]);
            for (out_row, &a_kc) in out.data.chunks_exact_mut(N).zip(a_row) {
                for j in 0..N {
                    out_row[j] += a_kc * b[j];
                }
            }
        }
    }

    /// [`Self::matmul_transa`] on an explicit pool, bypassing the size
    /// gate. Exposed so tests can compare pool sizes side by side.
    ///
    /// # Panics
    /// Panics if `self.rows() != rhs.rows()`.
    pub fn matmul_transa_with(&self, rhs: &Matrix, pool: &crate::pool::WorkerPool) -> Matrix {
        assert_eq!(
            self.rows, rhs.rows,
            "matmul_transa dimension mismatch: ({}x{})^T * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.cols, rhs.cols);
        self.matmul_transa_pooled_into(rhs, &mut out, pool);
        out
    }

    /// Pooled `self^T * rhs` body; `out` must already be zeroed with shape
    /// `self.cols x rhs.cols`. Output rows (columns of `self`) are
    /// partitioned across threads; each output element is produced wholly
    /// within one task by ascending shared-row accumulation, so there are
    /// no split reductions and the result is thread-count invariant.
    fn matmul_transa_pooled_into(
        &self,
        rhs: &Matrix,
        out: &mut Matrix,
        pool: &crate::pool::WorkerPool,
    ) {
        if self.cols == 0 {
            return;
        }
        let out_cols = rhs.cols.max(1);
        let chunk_rows = self.cols.div_ceil(pool.threads());
        let tasks: Vec<crate::pool::Task<'_>> = out
            .data
            .chunks_mut((chunk_rows * out_cols).max(1))
            .enumerate()
            .map(|(chunk, out_chunk)| {
                let c0 = chunk * chunk_rows;
                Box::new(move || {
                    for (offset, out_row) in out_chunk.chunks_mut(out_cols).enumerate() {
                        let c = c0 + offset;
                        for k in 0..self.rows {
                            let a_kc = self[(k, c)];
                            for (o, &b) in out_row.iter_mut().zip(rhs.row(k)) {
                                *o += a_kc * b;
                            }
                        }
                    }
                }) as crate::pool::Task<'_>
            })
            .collect();
        pool.run(tasks);
    }

    /// Fused transposed product `self * rhs^T` without materializing the
    /// transpose.
    ///
    /// Every output element is a plain ascending-k dot of two rows,
    /// exactly the accumulation order of `self.matmul(&rhs.transpose())`,
    /// so the result is bit-identical to the two-step form (and across
    /// thread counts).
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_transb(&self, rhs: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_transb_into(rhs, &mut out);
        out
    }

    /// [`Self::matmul_transb`] writing into `out`, which is re-shaped to
    /// `self.rows() x rhs.rows()` reusing its allocation.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_transb_into(&self, rhs: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_transb dimension mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        out.resize(self.rows, rhs.rows);
        let flops = self.rows * self.cols * rhs.rows;
        if self.rows < 2 || flops < PAR_MATMUL_MIN_FLOPS || crate::pool::configured_threads() == 1 {
            for (i, out_row) in out.data.chunks_mut(rhs.rows.max(1)).enumerate() {
                self.matmul_transb_row_into(rhs, i, out_row);
            }
            return;
        }
        self.matmul_transb_pooled_into(rhs, out, &crate::pool::global());
    }

    /// [`Self::matmul_transb`] on an explicit pool, bypassing the size
    /// gate. Exposed so tests can compare pool sizes side by side.
    ///
    /// # Panics
    /// Panics if `self.cols() != rhs.cols()`.
    pub fn matmul_transb_with(&self, rhs: &Matrix, pool: &crate::pool::WorkerPool) -> Matrix {
        assert_eq!(
            self.cols, rhs.cols,
            "matmul_transb dimension mismatch: {}x{} * ({}x{})^T",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Matrix::zeros(self.rows, rhs.rows);
        self.matmul_transb_pooled_into(rhs, &mut out, pool);
        out
    }

    /// Pooled `self * rhs^T` body; `out` must have shape
    /// `self.rows x rhs.rows` (every element is overwritten). Output rows
    /// are partitioned across threads with unchanged per-row arithmetic.
    fn matmul_transb_pooled_into(
        &self,
        rhs: &Matrix,
        out: &mut Matrix,
        pool: &crate::pool::WorkerPool,
    ) {
        if self.rows == 0 {
            return;
        }
        let out_cols = rhs.rows.max(1);
        let chunk_rows = self.rows.div_ceil(pool.threads());
        let tasks: Vec<crate::pool::Task<'_>> = out
            .data
            .chunks_mut((chunk_rows * out_cols).max(1))
            .enumerate()
            .map(|(chunk, out_chunk)| {
                let row0 = chunk * chunk_rows;
                Box::new(move || {
                    for (offset, out_row) in out_chunk.chunks_mut(out_cols).enumerate() {
                        self.matmul_transb_row_into(rhs, row0 + offset, out_row);
                    }
                }) as crate::pool::Task<'_>
            })
            .collect();
        pool.run(tasks);
    }

    /// Computes one output row of `self * rhs^T` into `out_row`.
    ///
    /// Uses a plain ascending-k scalar sum — deliberately *not* the
    /// unrolled [`crate::vector::dot`], whose 4-lane association order
    /// differs — so each element matches `matmul` against a materialized
    /// transpose bit for bit.
    #[inline]
    fn matmul_transb_row_into(&self, rhs: &Matrix, i: usize, out_row: &mut [f64]) {
        let a_row = self.row(i);
        // Narrow shared dimensions (backprop's `delta · W^T` with few
        // classes) keep the row in registers; the ascending-k sum below
        // is the same either way.
        match a_row.len() {
            0 => out_row.fill(0.0),
            1 => Self::matmul_transb_row_narrow::<1>(a_row, rhs, out_row),
            2 => Self::matmul_transb_row_narrow::<2>(a_row, rhs, out_row),
            3 => Self::matmul_transb_row_narrow::<3>(a_row, rhs, out_row),
            4 => Self::matmul_transb_row_narrow::<4>(a_row, rhs, out_row),
            cols => {
                for (o, b_row) in out_row.iter_mut().zip(rhs.data.chunks_exact(cols)) {
                    let mut s = 0.0;
                    for (&a, &b) in a_row.iter().zip(b_row) {
                        s += a * b;
                    }
                    *o = s;
                }
            }
        }
    }

    /// One output row of `self * rhs^T` for a constant narrow shared
    /// dimension `N`: per-element ascending-k scalar sums exactly like the
    /// generic loop, with `a_row` held in registers.
    #[inline]
    fn matmul_transb_row_narrow<const N: usize>(a_row: &[f64], rhs: &Matrix, out_row: &mut [f64]) {
        let mut a = [0.0f64; N];
        a.copy_from_slice(&a_row[..N]);
        for (o, b_row) in out_row.iter_mut().zip(rhs.data.chunks_exact(N)) {
            let mut s = 0.0;
            for j in 0..N {
                s += a[j] * b_row[j];
            }
            *o = s;
        }
    }

    /// Matrix-vector product `self * v`.
    ///
    /// Large products are split across the global worker pool by output
    /// row; bit-identical to serial for any thread count.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.rows);
        self.matvec_into(v, &mut out);
        out
    }

    /// [`Self::matvec`] writing into `out`, reusing its allocation.
    /// Bit-identical to the allocating path.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec_into(&self, v: &[f64], out: &mut Vec<f64>) {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        out.clear();
        if self.rows < 2
            || self.rows * self.cols < PAR_MATVEC_MIN_ELEMS
            || crate::pool::configured_threads() == 1
        {
            out.extend(self.row_iter().map(|row| crate::vector::dot(row, v)));
            return;
        }
        out.resize(self.rows, 0.0);
        self.matvec_pooled_into(v, out, &crate::pool::global());
    }

    /// [`Self::matvec`] on an explicit pool, bypassing the size gate.
    /// Exposed so tests can compare pool sizes side by side.
    ///
    /// # Panics
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec_with(&self, v: &[f64], pool: &crate::pool::WorkerPool) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        let mut out = vec![0.0; self.rows];
        self.matvec_pooled_into(v, &mut out, pool);
        out
    }

    /// Pooled matvec body; `out` must have length `self.rows` (every
    /// element is overwritten).
    fn matvec_pooled_into(&self, v: &[f64], out: &mut [f64], pool: &crate::pool::WorkerPool) {
        if self.rows == 0 {
            return;
        }
        let chunk_rows = self.rows.div_ceil(pool.threads());
        let tasks: Vec<crate::pool::Task<'_>> = out
            .chunks_mut(chunk_rows)
            .enumerate()
            .map(|(chunk, out_chunk)| {
                let row0 = chunk * chunk_rows;
                Box::new(move || {
                    for (offset, slot) in out_chunk.iter_mut().enumerate() {
                        *slot = crate::vector::dot(self.row(row0 + offset), v);
                    }
                }) as crate::pool::Task<'_>
            })
            .collect();
        pool.run(tasks);
    }

    /// Transposed matrix-vector product `self^T * v`.
    ///
    /// Rows are accumulated in fixed chunks of [`T_MATVEC_CHUNK_ROWS`]
    /// whose partial sums are combined in chunk order on the calling
    /// thread. The chunking depends only on `self.rows()`, so the result
    /// is bit-identical for any thread count (including fully serial).
    ///
    /// # Panics
    /// Panics if `v.len() != self.rows()`.
    pub fn t_matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "t_matvec dimension mismatch");
        if self.rows <= T_MATVEC_CHUNK_ROWS || crate::pool::configured_threads() == 1 {
            // A single chunk — or chunks run inline in order — reduces
            // exactly like the pooled path, so this stays bit-identical.
            return self.t_matvec_with(v, &crate::pool::WorkerPool::new(1));
        }
        self.t_matvec_with(v, &crate::pool::global())
    }

    /// [`Self::t_matvec`] writing into `out`, reusing its allocation.
    /// Bit-identical to the allocating path; allocation-free when the
    /// matrix fits a single accumulation chunk
    /// (`rows <= T_MATVEC_CHUNK_ROWS`, which covers every per-row hot
    /// caller in this workspace).
    ///
    /// # Panics
    /// Panics if `v.len() != self.rows()`.
    pub fn t_matvec_into(&self, v: &[f64], out: &mut Vec<f64>) {
        assert_eq!(v.len(), self.rows, "t_matvec dimension mismatch");
        if self.rows <= T_MATVEC_CHUNK_ROWS {
            out.clear();
            out.resize(self.cols, 0.0);
            self.t_matvec_range_into(v, 0, self.rows, out);
            return;
        }
        // Multi-chunk: reuse the fixed chunked reduction wholesale so the
        // chunk-order combine stays byte-for-byte the same. The partials
        // allocate, but only for matrices past the chunk threshold.
        let result = self.t_matvec(v);
        out.clear();
        out.extend_from_slice(&result);
    }

    /// [`Self::t_matvec`] on an explicit pool, bypassing the size gate.
    /// Exposed so tests can compare pool sizes side by side.
    ///
    /// # Panics
    /// Panics if `v.len() != self.rows()`.
    pub fn t_matvec_with(&self, v: &[f64], pool: &crate::pool::WorkerPool) -> Vec<f64> {
        assert_eq!(v.len(), self.rows, "t_matvec dimension mismatch");
        let chunks = self.rows.div_ceil(T_MATVEC_CHUNK_ROWS);
        if chunks <= 1 {
            return self.t_matvec_range(v, 0, self.rows);
        }
        let mut partials: Vec<Vec<f64>> = vec![Vec::new(); chunks];
        let tasks: Vec<crate::pool::Task<'_>> = partials
            .iter_mut()
            .enumerate()
            .map(|(chunk, slot)| {
                Box::new(move || {
                    let start = chunk * T_MATVEC_CHUNK_ROWS;
                    let end = (start + T_MATVEC_CHUNK_ROWS).min(self.rows);
                    *slot = self.t_matvec_range(v, start, end);
                }) as crate::pool::Task<'_>
            })
            .collect();
        pool.run(tasks);
        let mut iter = partials.into_iter();
        // Audited: `partials` has one slot per chunk and rows > 0 here.
        #[allow(clippy::expect_used)]
        let mut out = iter.next().expect("at least one chunk");
        for partial in iter {
            for (o, x) in out.iter_mut().zip(partial) {
                *o += x;
            }
        }
        out
    }

    /// Sequential `self[start..end]^T * v[start..end]` partial sum.
    fn t_matvec_range(&self, v: &[f64], start: usize, end: usize) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        self.t_matvec_range_into(v, start, end, &mut out);
        out
    }

    /// [`Self::t_matvec_range`] accumulating into a pre-zeroed slice.
    fn t_matvec_range_into(&self, v: &[f64], start: usize, end: usize, out: &mut [f64]) {
        for (r, &vr) in v.iter().enumerate().take(end).skip(start) {
            for (o, &x) in out.iter_mut().zip(self.row(r)) {
                *o += vr * x;
            }
        }
    }

    /// In-place `self += alpha * other`.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "axpy shape mismatch");
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// In-place scalar multiplication.
    pub fn scale(&mut self, alpha: f64) {
        for a in &mut self.data {
            *a *= alpha;
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Returns a matrix whose entries are drawn uniformly from
    /// `[-limit, limit]` using the supplied RNG (Xavier/Glorot-style init).
    pub fn random_uniform<R: rand::Rng>(rows: usize, cols: usize, limit: f64, rng: &mut R) -> Self {
        use rand::RngExt as _;
        let data = (0..rows * cols).map(|_| rng.random_range(-limit..=limit)).collect();
        Self { rows, cols, data }
    }

    /// Sums each column into a length-`cols` vector.
    pub fn column_sums(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.cols];
        self.column_sums_into(&mut out);
        out
    }

    /// [`Self::column_sums`] writing into `out` (every element is
    /// overwritten). Bit-identical to the allocating path.
    ///
    /// # Panics
    /// Panics if `out.len() != self.cols()`.
    pub fn column_sums_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.cols, "column_sums_into length mismatch");
        out.fill(0.0);
        for row in self.row_iter() {
            for (o, &x) in out.iter_mut().zip(row) {
                *o += x;
            }
        }
    }

    /// Means of each column; empty matrix yields all zeros.
    pub fn column_means(&self) -> Vec<f64> {
        let mut sums = self.column_sums();
        if self.rows > 0 {
            let inv = 1.0 / self.rows as f64;
            for s in &mut sums {
                *s *= inv;
            }
        }
        sums
    }

    /// Returns a new matrix containing the given rows (in order).
    ///
    /// # Panics
    /// Panics if any index is out of bounds.
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(indices.len() * self.cols);
        for &i in indices {
            data.extend_from_slice(self.row(i));
        }
        Matrix { rows: indices.len(), cols: self.cols, data }
    }

    /// Returns a new matrix holding the contiguous row range
    /// `start..end` — equivalent to `select_rows` over consecutive
    /// indices, without building an index vector.
    ///
    /// # Panics
    /// Panics if `start > end` or `end > self.rows()`.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.copy_row_range_into(start, end, &mut out);
        out
    }

    /// [`Self::slice_rows`] writing into `out`, reusing its allocation.
    ///
    /// # Panics
    /// Panics if `start > end` or `end > self.rows()`.
    pub fn copy_row_range_into(&self, start: usize, end: usize, out: &mut Matrix) {
        assert!(
            start <= end && end <= self.rows,
            "row range {start}..{end} out of bounds for {} rows",
            self.rows
        );
        out.resize(end - start, self.cols);
        out.data.copy_from_slice(&self.data[start * self.cols..end * self.cols]);
    }

    /// Stacks two matrices vertically.
    ///
    /// # Panics
    /// Panics if column counts differ.
    pub fn vstack(&self, below: &Matrix) -> Matrix {
        assert_eq!(self.cols, below.cols, "vstack column mismatch");
        let mut data = Vec::with_capacity((self.rows + below.rows) * self.cols);
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&below.data);
        Matrix { rows: self.rows + below.rows, cols: self.cols, data }
    }

    /// True when all entries are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ... ({} more rows)", self.rows - 8)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn identity_is_diagonal() {
        let m = Matrix::identity(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(m[(r, c)], if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_round_trips() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(m[(0, 1)], 2.0);
        assert_eq!(m[(1, 0)], 3.0);
        assert_eq!(m.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn from_rows_rejects_ragged_input() {
        Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0, 0.5], vec![0.0, 3.0, 9.0]]);
        assert_eq!(a.matmul(&Matrix::identity(3)), a);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_rejects_mismatched_shapes() {
        Matrix::zeros(2, 3).matmul(&Matrix::zeros(2, 3));
    }

    #[test]
    fn matvec_and_t_matvec_agree_with_matmul() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
        assert_eq!(a.t_matvec(&[1.0, 1.0]), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.axpy(0.5, &b);
        assert!(a.as_slice().iter().all(|&x| (x - 2.0).abs() < 1e-12));
    }

    #[test]
    fn column_means_average_rows() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 6.0]]);
        assert_eq!(m.column_means(), vec![2.0, 4.0]);
    }

    #[test]
    fn select_rows_and_vstack() {
        let m = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let picked = m.select_rows(&[2, 0]);
        assert_eq!(picked.row(0), &[3.0]);
        assert_eq!(picked.row(1), &[1.0]);
        let stacked = picked.vstack(&m);
        assert_eq!(stacked.rows(), 5);
        assert_eq!(stacked.row(4), &[3.0]);
    }

    #[test]
    fn random_uniform_respects_limit_and_seed() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = Matrix::random_uniform(10, 10, 0.3, &mut rng);
        assert!(m.as_slice().iter().all(|&x| (-0.3..=0.3).contains(&x)));
        let mut rng2 = StdRng::seed_from_u64(7);
        let m2 = Matrix::random_uniform(10, 10, 0.3, &mut rng2);
        assert_eq!(m, m2);
    }

    #[test]
    fn frobenius_norm_of_identity() {
        assert!((Matrix::identity(4).frobenius_norm() - 2.0).abs() < 1e-12);
    }

    fn arange(rows: usize, cols: usize, scale: f64) -> Matrix {
        Matrix::from_vec(rows, cols, (0..rows * cols).map(|i| (i as f64 - 3.0) * scale).collect())
    }

    #[test]
    fn transa_matches_two_step_transpose_matmul() {
        let a = arange(5, 3, 0.7);
        let b = arange(5, 4, -0.31);
        assert_eq!(a.matmul_transa(&b), a.transpose().matmul(&b));
    }

    #[test]
    fn transb_matches_two_step_transpose_matmul() {
        let a = arange(4, 6, 0.13);
        let b = arange(3, 6, 0.57);
        assert_eq!(a.matmul_transb(&b), a.matmul(&b.transpose()));
    }

    #[test]
    fn into_variants_reuse_buffers_across_shapes() {
        let mut out = Matrix::zeros(7, 7);
        let mut v_out = Vec::new();
        for rows in [2usize, 6, 3] {
            let a = arange(rows, 3, 0.2);
            let b = arange(3, 2, 0.9);
            a.matmul_into(&b, &mut out);
            assert_eq!(out, a.matmul(&b));
            let v: Vec<f64> = (0..3).map(|i| i as f64 - 1.0).collect();
            a.matvec_into(&v, &mut v_out);
            assert_eq!(v_out, a.matvec(&v));
            let w: Vec<f64> = (0..rows).map(|i| 0.5 - i as f64).collect();
            a.t_matvec_into(&w, &mut v_out);
            assert_eq!(v_out, a.t_matvec(&w));
            let mut sums = vec![0.0; 3];
            a.column_sums_into(&mut sums);
            assert_eq!(sums, a.column_sums());
        }
    }

    #[test]
    fn resize_retains_capacity_and_copy_from_round_trips() {
        let src = arange(4, 2, 1.0);
        let mut dst = Matrix::zeros(1, 1);
        dst.copy_from(&src);
        assert_eq!(dst, src);
        dst.resize(2, 2);
        assert_eq!(dst.shape(), (2, 2));
        assert_eq!(dst.as_slice(), &src.as_slice()[..4]);
    }

    #[test]
    fn slice_rows_matches_select_rows() {
        let m = arange(6, 3, 0.4);
        let idx: Vec<usize> = (1..4).collect();
        assert_eq!(m.slice_rows(1, 4), m.select_rows(&idx));
        assert_eq!(m.slice_rows(0, 0).rows(), 0);
    }

    #[test]
    fn col_into_matches_col() {
        let m = arange(5, 3, 0.8);
        let mut out = vec![99.0; 7];
        m.col_into(2, &mut out);
        assert_eq!(out, m.col(2));
    }
}
