//! Free functions over `&[f64]` slices.
//!
//! The shift graph works almost entirely on small projected vectors
//! (`ȳ_t` in the paper), so these helpers are the hottest primitives in
//! pattern detection.

/// Number of f64 lanes in the wide kernel core (one AVX-512 register, two
/// AVX2 registers). [`dot_wide`] and [`axpy`] unroll to this width.
pub const WIDE_LANES: usize = 8;

/// Dot product of two equal-length slices.
///
/// Accumulates into four independent lanes so the additions do not form
/// one serial dependency chain; the compiler can keep all lanes in
/// flight (and vectorise them) instead of stalling on each `+`.
///
/// This 4-lane association order is the repository's *reference*
/// reduction: every checked-in paper artifact was produced with it. The
/// `wide-kernels` feature reroutes this function to the 8-lane
/// [`dot_wide`], which reassociates (different bits past ~1 ulp) and is
/// therefore validated by the tolerance-gated A/B suite instead of byte
/// identity; see DESIGN.md §3g.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    #[cfg(feature = "wide-kernels")]
    {
        dot_wide(a, b)
    }
    #[cfg(not(feature = "wide-kernels"))]
    {
        assert_eq!(a.len(), b.len(), "dot length mismatch");
        let mut acc = [0.0f64; 4];
        for (ca, cb) in a.chunks_exact(4).zip(b.chunks_exact(4)) {
            acc[0] += ca[0] * cb[0];
            acc[1] += ca[1] * cb[1];
            acc[2] += ca[2] * cb[2];
            acc[3] += ca[3] * cb[3];
        }
        let tail: f64 = a
            .chunks_exact(4)
            .remainder()
            .iter()
            .zip(b.chunks_exact(4).remainder())
            .map(|(x, y)| x * y)
            .sum();
        (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
    }
}

/// Dot product over [`WIDE_LANES`] independent accumulator lanes — the
/// wide-lane reduction core of the kernel layer.
///
/// One loop iteration consumes a full 8-lane vector register of each
/// operand, so the reduction runs at native SIMD width instead of the
/// 4-lane reference order. The price is reassociation: results differ
/// from [`dot`] in the last bits for lengths ≥ 8, so this core only
/// serves the default path where per-element accumulation order is not
/// observable, and replaces `dot` wholesale only under the
/// `wide-kernels` feature (covered by the tolerance-gated A/B tests).
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn dot_wide(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let mut acc = [0.0f64; WIDE_LANES];
    for (ca, cb) in a.chunks_exact(WIDE_LANES).zip(b.chunks_exact(WIDE_LANES)) {
        for l in 0..WIDE_LANES {
            acc[l] += ca[l] * cb[l];
        }
    }
    let tail: f64 = a
        .chunks_exact(WIDE_LANES)
        .remainder()
        .iter()
        .zip(b.chunks_exact(WIDE_LANES).remainder())
        .map(|(x, y)| x * y)
        .sum();
    let half = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    let other = (acc[4] + acc[5]) + (acc[6] + acc[7]);
    half + other + tail
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Euclidean distance between two equal-length slices
/// (`d_t = ‖ȳ_t − ȳ_{t−1}‖`, Equation 7 of the paper).
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

/// Element-wise difference `a - b` as a new vector.
///
/// # Panics
/// Panics if lengths differ.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Element-wise sum `a + b` as a new vector.
///
/// # Panics
/// Panics if lengths differ.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// In-place `a += alpha * b`, unrolled to [`WIDE_LANES`] elements per
/// iteration.
///
/// Unlike the dot reductions, axpy is element-wise — each `a[i]` sees
/// exactly one fused `+ alpha * b[i]` regardless of lane width — so the
/// wide unroll is bit-identical to the scalar loop and safe on the
/// default path.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn axpy(a: &mut [f64], alpha: f64, b: &[f64]) {
    assert_eq!(a.len(), b.len(), "axpy length mismatch");
    let mut ca = a.chunks_exact_mut(WIDE_LANES);
    let mut cb = b.chunks_exact(WIDE_LANES);
    for (xa, xb) in ca.by_ref().zip(cb.by_ref()) {
        for l in 0..WIDE_LANES {
            xa[l] += alpha * xb[l];
        }
    }
    for (x, &y) in ca.into_remainder().iter_mut().zip(cb.remainder()) {
        *x += alpha * y;
    }
}

/// In-place scalar multiplication.
#[inline]
pub fn scale(a: &mut [f64], alpha: f64) {
    for x in a {
        *x *= alpha;
    }
}

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Population standard deviation; `0.0` for slices shorter than 2.
pub fn std_dev(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    (a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / a.len() as f64).sqrt()
}

/// Index of the maximum element (first one on ties).
///
/// Returns `None` for an empty slice; NaN entries never win.
pub fn argmax(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in a.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        match best {
            Some((_, b)) if x <= b => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// Normalises `a` in place so it sums to one; leaves an all-zero slice
/// untouched (there is no meaningful direction to normalise toward).
pub fn normalize_sum(a: &mut [f64]) {
    let s: f64 = a.iter().sum();
    if s.abs() > f64::EPSILON {
        scale(a, 1.0 / s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = [1.0, -2.0, 0.5];
        let b = [0.0, 1.0, 4.5];
        assert_eq!(euclidean_distance(&a, &a), 0.0);
        assert!((euclidean_distance(&a, &b) - euclidean_distance(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn sub_add_axpy_scale_roundtrip() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![0.5, 0.5, 0.5];
        let mut c = sub(&a, &b);
        axpy(&mut c, 1.0, &b);
        assert_eq!(c, a);
        let d = add(&a, &b);
        assert_eq!(d, vec![1.5, 2.5, 3.5]);
        let mut e = a;
        scale(&mut e, 2.0);
        assert_eq!(e, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn mean_and_std_dev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn argmax_prefers_first_max_and_skips_nan() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
        assert_eq!(argmax(&[f64::NAN, 2.0]), Some(1));
        assert_eq!(argmax(&[f64::NAN]), None);
    }

    #[test]
    fn dot_wide_matches_reference_within_tolerance() {
        let a: Vec<f64> = (0..37).map(|i| (i as f64 * 0.731).sin()).collect();
        let b: Vec<f64> = (0..37).map(|i| (i as f64 * 1.173).cos()).collect();
        let reference: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        let wide = dot_wide(&a, &b);
        assert!((wide - reference).abs() <= 1e-12 * reference.abs().max(1.0));
    }

    #[test]
    fn dot_wide_is_exact_below_lane_width() {
        // Shorter than one lane group the wide path is pure tail — the
        // same ascending scalar sum — so it is bit-identical to naive.
        for len in 0..WIDE_LANES {
            let a: Vec<f64> = (0..len).map(|i| 1.0 + i as f64 * 0.37).collect();
            let b: Vec<f64> = (0..len).map(|i| 2.0 - i as f64 * 0.11).collect();
            let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert_eq!(dot_wide(&a, &b), naive, "len {len}");
        }
    }

    #[test]
    fn wide_axpy_is_bit_identical_to_scalar() {
        let b: Vec<f64> = (0..29).map(|i| (i as f64 * 0.913).sin()).collect();
        let mut wide: Vec<f64> = (0..29).map(|i| (i as f64 * 0.417).cos()).collect();
        let mut scalar = wide.clone();
        axpy(&mut wide, 0.737, &b);
        for (x, &y) in scalar.iter_mut().zip(&b) {
            *x += 0.737 * y;
        }
        assert_eq!(wide, scalar);
    }

    #[test]
    fn normalize_sum_handles_zero_vector() {
        let mut a = vec![0.0, 0.0];
        normalize_sum(&mut a);
        assert_eq!(a, vec![0.0, 0.0]);
        let mut b = vec![1.0, 3.0];
        normalize_sum(&mut b);
        assert!((b[0] - 0.25).abs() < 1e-12 && (b[1] - 0.75).abs() < 1e-12);
    }
}
