//! Free functions over `&[f64]` slices.
//!
//! The shift graph works almost entirely on small projected vectors
//! (`ȳ_t` in the paper), so these helpers are the hottest primitives in
//! pattern detection.

/// Dot product of two equal-length slices.
///
/// Accumulates into four independent lanes so the additions do not form
/// one serial dependency chain; the compiler can keep all lanes in
/// flight (and vectorise them) instead of stalling on each `+`.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    let mut acc = [0.0f64; 4];
    for (ca, cb) in a.chunks_exact(4).zip(b.chunks_exact(4)) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    let tail: f64 = a
        .chunks_exact(4)
        .remainder()
        .iter()
        .zip(b.chunks_exact(4).remainder())
        .map(|(x, y)| x * y)
        .sum();
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Euclidean distance between two equal-length slices
/// (`d_t = ‖ȳ_t − ȳ_{t−1}‖`, Equation 7 of the paper).
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn euclidean_distance(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distance length mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>().sqrt()
}

/// Element-wise difference `a - b` as a new vector.
///
/// # Panics
/// Panics if lengths differ.
pub fn sub(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "sub length mismatch");
    a.iter().zip(b).map(|(x, y)| x - y).collect()
}

/// Element-wise sum `a + b` as a new vector.
///
/// # Panics
/// Panics if lengths differ.
pub fn add(a: &[f64], b: &[f64]) -> Vec<f64> {
    assert_eq!(a.len(), b.len(), "add length mismatch");
    a.iter().zip(b).map(|(x, y)| x + y).collect()
}

/// In-place `a += alpha * b`.
///
/// # Panics
/// Panics if lengths differ.
#[inline]
pub fn axpy(a: &mut [f64], alpha: f64, b: &[f64]) {
    assert_eq!(a.len(), b.len(), "axpy length mismatch");
    for (x, &y) in a.iter_mut().zip(b) {
        *x += alpha * y;
    }
}

/// In-place scalar multiplication.
#[inline]
pub fn scale(a: &mut [f64], alpha: f64) {
    for x in a {
        *x *= alpha;
    }
}

/// Arithmetic mean; `0.0` for an empty slice.
pub fn mean(a: &[f64]) -> f64 {
    if a.is_empty() {
        0.0
    } else {
        a.iter().sum::<f64>() / a.len() as f64
    }
}

/// Population standard deviation; `0.0` for slices shorter than 2.
pub fn std_dev(a: &[f64]) -> f64 {
    if a.len() < 2 {
        return 0.0;
    }
    let m = mean(a);
    (a.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / a.len() as f64).sqrt()
}

/// Index of the maximum element (first one on ties).
///
/// Returns `None` for an empty slice; NaN entries never win.
pub fn argmax(a: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &x) in a.iter().enumerate() {
        if x.is_nan() {
            continue;
        }
        match best {
            Some((_, b)) if x <= b => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// Normalises `a` in place so it sums to one; leaves an all-zero slice
/// untouched (there is no meaningful direction to normalise toward).
pub fn normalize_sum(a: &mut [f64]) {
    let s: f64 = a.iter().sum();
    if s.abs() > f64::EPSILON {
        scale(a, 1.0 / s);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((norm(&[3.0, 4.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = [1.0, -2.0, 0.5];
        let b = [0.0, 1.0, 4.5];
        assert_eq!(euclidean_distance(&a, &a), 0.0);
        assert!((euclidean_distance(&a, &b) - euclidean_distance(&b, &a)).abs() < 1e-12);
    }

    #[test]
    fn sub_add_axpy_scale_roundtrip() {
        let a = vec![1.0, 2.0, 3.0];
        let b = vec![0.5, 0.5, 0.5];
        let mut c = sub(&a, &b);
        axpy(&mut c, 1.0, &b);
        assert_eq!(c, a);
        let d = add(&a, &b);
        assert_eq!(d, vec![1.5, 2.5, 3.5]);
        let mut e = a;
        scale(&mut e, 2.0);
        assert_eq!(e, vec![2.0, 4.0, 6.0]);
    }

    #[test]
    fn mean_and_std_dev() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        assert!((std_dev(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn argmax_prefers_first_max_and_skips_nan() {
        assert_eq!(argmax(&[]), None);
        assert_eq!(argmax(&[1.0, 3.0, 3.0]), Some(1));
        assert_eq!(argmax(&[f64::NAN, 2.0]), Some(1));
        assert_eq!(argmax(&[f64::NAN]), None);
    }

    #[test]
    fn normalize_sum_handles_zero_vector() {
        let mut a = vec![0.0, 0.0];
        normalize_sum(&mut a);
        assert_eq!(a, vec![0.0, 0.0]);
        let mut b = vec![1.0, 3.0];
        normalize_sum(&mut b);
        assert!((b[0] - 0.25).abs() < 1e-12 && (b[1] - 0.75).abs() < 1e-12);
    }
}
