//! Dense linear-algebra substrate for FreewayML.
//!
//! FreewayML's models (logistic regression, MLP, CNN) and its shift-graph
//! machinery (PCA, distribution distances) only need small dense matrices,
//! so this crate provides a deliberately compact, allocation-conscious
//! implementation rather than binding an external BLAS:
//!
//! * [`Matrix`] — row-major `f64` matrix with the handful of operations the
//!   rest of the workspace needs (matmul, transpose, row views, axpy).
//! * [`eigen`] — symmetric eigendecomposition via cyclic Jacobi rotations,
//!   which is robust for the covariance matrices PCA works on.
//! * [`stats`] — batch mean, covariance, and distance helpers used by the
//!   shift graph (Equations 2–7 of the paper).
//! * [`vector`] — free functions over `&[f64]` slices.
//! * [`pool`] — persistent worker pool backing the parallel kernels;
//!   serial by default, sized via `FreewayConfig` or `FREEWAY_THREADS`.
//!
//! All random initialisation is seeded; no global RNG state is used, and
//! every parallel kernel is bit-identical to its serial form for any
//! thread count (reductions run in a fixed order on the calling thread).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod eigen;
pub mod matrix;
pub mod pool;
pub mod stats;
pub mod vector;

pub use eigen::{jacobi_eigen, EigenDecomposition};
pub use matrix::Matrix;
