//! Symmetric eigendecomposition via the cyclic Jacobi method.
//!
//! PCA (Equations 2–5 of the paper) needs the eigenvectors of a `d x d`
//! covariance matrix where `d` is the feature dimension of the stream —
//! at most a few dozen for every workload in the evaluation. The Jacobi
//! method is simple, numerically robust for symmetric matrices, and more
//! than fast enough at these sizes.

use crate::matrix::Matrix;

/// Result of a symmetric eigendecomposition, sorted by descending
/// eigenvalue.
#[derive(Debug, Clone)]
pub struct EigenDecomposition {
    /// Eigenvalues in descending order.
    pub values: Vec<f64>,
    /// Eigenvectors as matrix columns: column `i` pairs with `values[i]`.
    pub vectors: Matrix,
}

impl EigenDecomposition {
    /// Returns the top-`k` eigenvectors as a `d x k` matrix (the component
    /// matrix `P_d` of Equation 5).
    ///
    /// # Panics
    /// Panics if `k` exceeds the number of eigenvectors.
    pub fn top_components(&self, k: usize) -> Matrix {
        let d = self.vectors.rows();
        assert!(k <= self.vectors.cols(), "requested {k} components from {d}-dim decomposition");
        let mut out = Matrix::zeros(d, k);
        for c in 0..k {
            for r in 0..d {
                out[(r, c)] = self.vectors[(r, c)];
            }
        }
        out
    }

    /// True when every eigenvalue and eigenvector entry is finite —
    /// callers use this to detect a decomposition poisoned by NaN/Inf
    /// input and fall back instead of propagating garbage.
    pub fn all_finite(&self) -> bool {
        self.values.iter().all(|v| v.is_finite())
            && self.vectors.as_slice().iter().all(|v| v.is_finite())
    }
}

/// Off-diagonal Frobenius norm squared, the Jacobi convergence measure.
fn off_diagonal_sq(a: &Matrix) -> f64 {
    let n = a.rows();
    let mut s = 0.0;
    for i in 0..n {
        for j in 0..n {
            if i != j {
                s += a[(i, j)] * a[(i, j)];
            }
        }
    }
    s
}

/// Eigendecomposition of a symmetric matrix using cyclic Jacobi rotations.
///
/// Sweeps zero out each off-diagonal element in turn until the
/// off-diagonal mass drops below `tol` (relative to the Frobenius norm)
/// or `max_sweeps` is exhausted. For symmetric input this converges
/// quadratically; non-symmetric input is symmetrised first by averaging
/// with its transpose, which is exact for covariance matrices whose
/// asymmetry is only floating-point noise.
pub fn jacobi_eigen(matrix: &Matrix, tol: f64, max_sweeps: usize) -> EigenDecomposition {
    assert_eq!(matrix.rows(), matrix.cols(), "eigendecomposition requires a square matrix");
    let n = matrix.rows();
    if n == 0 {
        return EigenDecomposition { values: Vec::new(), vectors: Matrix::zeros(0, 0) };
    }

    // Symmetrise to wash out floating-point asymmetry.
    let mut a = matrix.clone();
    for i in 0..n {
        for j in (i + 1)..n {
            let avg = 0.5 * (a[(i, j)] + a[(j, i)]);
            a[(i, j)] = avg;
            a[(j, i)] = avg;
        }
    }

    let mut v = Matrix::identity(n);
    let scale = a.frobenius_norm().max(f64::MIN_POSITIVE);
    let threshold = tol * tol * scale * scale;

    for _ in 0..max_sweeps {
        if off_diagonal_sq(&a) <= threshold {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[(p, q)];
                if apq.abs() <= f64::EPSILON * scale {
                    continue;
                }
                let app = a[(p, p)];
                let aqq = a[(q, q)];
                let theta = (aqq - app) / (2.0 * apq);
                // Numerically stable tangent of the rotation angle.
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                for k in 0..n {
                    let akp = a[(k, p)];
                    let akq = a[(k, q)];
                    a[(k, p)] = c * akp - s * akq;
                    a[(k, q)] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[(p, k)];
                    let aqk = a[(q, k)];
                    a[(p, k)] = c * apk - s * aqk;
                    a[(q, k)] = s * apk + c * aqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    // Sort by descending eigenvalue, permuting eigenvector columns along.
    // NaN diagonals (non-finite input) compare Equal rather than
    // panicking; `all_finite` lets callers detect and reject the result.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| a[(j, j)].partial_cmp(&a[(i, i)]).unwrap_or(std::cmp::Ordering::Equal));

    let values: Vec<f64> = order.iter().map(|&i| a[(i, i)]).collect();
    let mut vectors = Matrix::zeros(n, n);
    for (new_c, &old_c) in order.iter().enumerate() {
        for r in 0..n {
            vectors[(r, new_c)] = v[(r, old_c)];
        }
    }

    EigenDecomposition { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector;

    fn assert_close(a: f64, b: f64, eps: f64) {
        assert!((a - b).abs() < eps, "{a} !~ {b}");
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_its_diagonal_sorted() {
        let m = Matrix::from_rows(&[vec![2.0, 0.0, 0.0], vec![0.0, 5.0, 0.0], vec![0.0, 0.0, 1.0]]);
        let e = jacobi_eigen(&m, 1e-12, 50);
        assert_close(e.values[0], 5.0, 1e-9);
        assert_close(e.values[1], 2.0, 1e-9);
        assert_close(e.values[2], 1.0, 1e-9);
    }

    #[test]
    fn two_by_two_known_decomposition() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = jacobi_eigen(&m, 1e-12, 50);
        assert_close(e.values[0], 3.0, 1e-9);
        assert_close(e.values[1], 1.0, 1e-9);
        // Leading eigenvector is (1,1)/sqrt(2) up to sign.
        let v0 = e.vectors.col(0);
        assert_close(v0[0].abs(), std::f64::consts::FRAC_1_SQRT_2, 1e-9);
        assert_close(v0[0], v0[1], 1e-9);
    }

    #[test]
    fn eigenvectors_are_orthonormal() {
        let m = Matrix::from_rows(&[vec![4.0, 1.0, 0.5], vec![1.0, 3.0, 0.2], vec![0.5, 0.2, 1.0]]);
        let e = jacobi_eigen(&m, 1e-12, 100);
        for i in 0..3 {
            for j in 0..3 {
                let d = vector::dot(&e.vectors.col(i), &e.vectors.col(j));
                assert_close(d, if i == j { 1.0 } else { 0.0 }, 1e-9);
            }
        }
    }

    #[test]
    fn reconstruction_matches_original() {
        let m = Matrix::from_rows(&[vec![4.0, 1.0, 0.5], vec![1.0, 3.0, 0.2], vec![0.5, 0.2, 1.0]]);
        let e = jacobi_eigen(&m, 1e-12, 100);
        // Reconstruct V * diag(values) * V^T.
        let mut lam = Matrix::zeros(3, 3);
        for i in 0..3 {
            lam[(i, i)] = e.values[i];
        }
        let rec = e.vectors.matmul(&lam).matmul(&e.vectors.transpose());
        for r in 0..3 {
            for c in 0..3 {
                assert_close(rec[(r, c)], m[(r, c)], 1e-8);
            }
        }
    }

    #[test]
    fn top_components_selects_leading_columns() {
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let e = jacobi_eigen(&m, 1e-12, 50);
        let p = e.top_components(1);
        assert_eq!(p.shape(), (2, 1));
        assert_close(p[(0, 0)], e.vectors[(0, 0)], 1e-12);
    }

    #[test]
    fn empty_matrix_yields_empty_decomposition() {
        let e = jacobi_eigen(&Matrix::zeros(0, 0), 1e-12, 10);
        assert!(e.values.is_empty());
    }

    #[test]
    fn handles_nearly_symmetric_input() {
        let m = Matrix::from_rows(&[vec![2.0, 1.0 + 1e-15], vec![1.0, 2.0]]);
        let e = jacobi_eigen(&m, 1e-12, 50);
        assert_close(e.values[0], 3.0, 1e-9);
    }
}
