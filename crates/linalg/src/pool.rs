//! Persistent worker pool shared by every parallel kernel in the
//! workspace.
//!
//! The pool replaces the ad-hoc `std::thread::scope` spawns the
//! codebase used before: threads are created once and fed jobs through
//! a channel, so the per-call cost of going parallel is a channel send
//! instead of a thread spawn. Three design rules keep it predictable:
//!
//! 1. **Determinism** — the pool only ever runs *independent* tasks;
//!    every reduction across task results happens on the calling thread
//!    in a fixed order chosen by work size, never by thread count or
//!    completion order. Callers that follow this rule (all kernels in
//!    this crate do) produce bit-identical results for any pool size.
//! 2. **Safe sizing** — the default is a single thread, i.e. fully
//!    serial. Parallelism is opt-in via [`configure`] (driven by
//!    `FreewayConfig`) or the `FREEWAY_THREADS` environment variable
//!    (`0` means "use all available cores"); the env var wins so
//!    deployments can re-size without code changes.
//! 3. **No nested blocking** — jobs that themselves call parallel
//!    kernels run those kernels inline (workers never wait on other
//!    workers), so the pool cannot deadlock on itself.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// A unit of work submitted to the pool. The lifetime lets scoped tasks
/// borrow from the caller's stack; [`WorkerPool::run`] joins all tasks
/// before returning, which is what makes that sound.
pub type Task<'scope> = Box<dyn FnOnce() + Send + 'scope>;

thread_local! {
    static IN_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// A fixed-size set of worker threads fed through an MPMC channel.
///
/// Most code should use the process-wide pool via [`global`]; standalone
/// pools exist so tests can compare thread counts side by side.
pub struct WorkerPool {
    sender: Sender<Job>,
    threads: usize,
}

type Job = Box<dyn FnOnce() + Send + 'static>;

impl WorkerPool {
    /// Spawns a pool with `threads` workers (`0` and `1` both mean
    /// "serial": no workers are spawned and every task runs inline).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = unbounded::<Job>();
        if threads > 1 {
            for i in 0..threads {
                let rx: Receiver<Job> = receiver.clone();
                // Audited: OS refusing to spawn threads at startup is
                // unrecoverable; failing loudly here is the design.
                #[allow(clippy::expect_used)]
                std::thread::Builder::new()
                    .name(format!("freeway-worker-{i}"))
                    .spawn(move || {
                        IN_WORKER.with(|flag| flag.set(true));
                        while let Ok(job) = rx.recv() {
                            // A panicking job must not take the worker
                            // down with it; scoped tasks re-raise their
                            // panic on the submitting thread instead.
                            let _ = panic::catch_unwind(AssertUnwindSafe(job));
                        }
                    })
                    .expect("failed to spawn freeway worker thread");
            }
        }
        Self { sender, threads }
    }

    /// Number of threads this pool was created with (1 = serial).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether submitting tasks can actually overlap execution.
    pub fn is_parallel(&self) -> bool {
        self.threads > 1
    }

    /// Runs every task to completion before returning.
    ///
    /// On a serial pool — or when called from inside a worker (nested
    /// parallelism) — tasks run inline on the current thread, in order.
    /// Otherwise they are distributed across the workers and this call
    /// blocks until the last one finishes. A panic in any task is
    /// re-raised here once all tasks have settled.
    pub fn run(&self, tasks: Vec<Task<'_>>) {
        if tasks.is_empty() {
            return;
        }
        if !self.is_parallel() || IN_WORKER.with(|flag| flag.get()) {
            for task in tasks {
                task();
            }
            return;
        }
        let latch = Arc::new(Latch::new(tasks.len()));
        for task in tasks {
            // SAFETY: `run` blocks on the latch until every task has
            // completed, so borrows captured by the tasks outlive their
            // execution even though the channel requires 'static.
            let task: Task<'static> =
                unsafe { std::mem::transmute::<Task<'_>, Task<'static>>(task) };
            let latch_handle = Arc::clone(&latch);
            let job: Job = Box::new(move || {
                let result = panic::catch_unwind(AssertUnwindSafe(task));
                latch_handle.complete(result.err());
            });
            // Audited: workers only exit when the last sender drops, and
            // `self` holds one — the channel cannot be disconnected here.
            #[allow(clippy::expect_used)]
            self.sender.send(job).expect("worker threads outlive the pool handle");
        }
        latch.wait_and_propagate();
    }

    /// Submits a fire-and-forget job, returning `false` on a serial
    /// pool (callers fall back to doing the work synchronously). The
    /// job must handle its own panics; see `new` for why the worker
    /// survives if it does not.
    pub fn spawn_detached(&self, job: impl FnOnce() + Send + 'static) -> bool {
        if !self.is_parallel() {
            return false;
        }
        self.sender.send(Box::new(job)).is_ok()
    }
}

struct Latch {
    state: Mutex<LatchState>,
    all_done: Condvar,
}

struct LatchState {
    remaining: usize,
    panic_payload: Option<Box<dyn std::any::Any + Send>>,
}

impl Latch {
    fn new(count: usize) -> Self {
        Self {
            state: Mutex::new(LatchState { remaining: count, panic_payload: None }),
            all_done: Condvar::new(),
        }
    }

    fn complete(&self, panic_payload: Option<Box<dyn std::any::Any + Send>>) {
        let mut state = self.state.lock();
        state.remaining -= 1;
        if state.panic_payload.is_none() {
            state.panic_payload = panic_payload;
        }
        if state.remaining == 0 {
            self.all_done.notify_all();
        }
    }

    fn wait_and_propagate(&self) {
        let mut state = self.state.lock();
        while state.remaining > 0 {
            self.all_done.wait(&mut state);
        }
        if let Some(payload) = state.panic_payload.take() {
            drop(state);
            panic::resume_unwind(payload);
        }
    }
}

static DESIRED_THREADS: AtomicUsize = AtomicUsize::new(1);
static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();
static GLOBAL: Mutex<Option<Arc<WorkerPool>>> = Mutex::new(None);

/// Sets the process-wide pool size (used by `FreewayConfig`); `0` means
/// "use all available cores", matching the env var. The
/// `FREEWAY_THREADS` environment variable, when set, takes precedence.
/// Takes effect lazily: the next [`global`] call re-creates the pool if
/// the size changed; pool handles already held keep working.
pub fn configure(threads: usize) {
    let resolved = if threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        threads
    };
    DESIRED_THREADS.store(resolved, Ordering::Relaxed);
}

/// The pool size [`global`] would use right now.
pub fn configured_threads() -> usize {
    let env = *ENV_THREADS.get_or_init(|| {
        std::env::var("FREEWAY_THREADS").ok().and_then(|raw| {
            let parsed = raw.trim().parse::<usize>().ok()?;
            Some(if parsed == 0 {
                std::thread::available_parallelism().map_or(1, usize::from)
            } else {
                parsed
            })
        })
    });
    env.unwrap_or_else(|| DESIRED_THREADS.load(Ordering::Relaxed)).max(1)
}

/// The process-wide pool, created lazily at the currently configured
/// size. Cheap enough to call per kernel invocation, but size-gate
/// first: serial fallbacks should not pay for the handle.
pub fn global() -> Arc<WorkerPool> {
    let desired = configured_threads();
    let mut slot = GLOBAL.lock();
    match slot.as_ref() {
        Some(pool) if pool.threads() == desired => Arc::clone(pool),
        _ => {
            // Replacing the pool drops our sender once callers finish;
            // orphaned workers then drain their queue and exit.
            let pool = Arc::new(WorkerPool::new(desired));
            *slot = Some(Arc::clone(&pool));
            pool
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn serial_pool_runs_inline() {
        let pool = WorkerPool::new(1);
        assert!(!pool.is_parallel());
        let mut touched = false;
        pool.run(vec![Box::new(|| touched = true)]);
        assert!(touched);
    }

    #[test]
    fn parallel_pool_runs_every_task() {
        let pool = WorkerPool::new(4);
        let counter = AtomicU64::new(0);
        let tasks: Vec<Task<'_>> = (0..64)
            .map(|i| {
                let counter = &counter;
                Box::new(move || {
                    counter.fetch_add(i, Ordering::Relaxed);
                }) as Task<'_>
            })
            .collect();
        pool.run(tasks);
        assert_eq!(counter.load(Ordering::Relaxed), (0..64).sum::<u64>());
    }

    #[test]
    fn tasks_can_borrow_disjoint_output_slices() {
        let pool = WorkerPool::new(3);
        let mut out = vec![0usize; 9];
        let tasks: Vec<Task<'_>> = out
            .chunks_mut(3)
            .enumerate()
            .map(|(i, chunk)| {
                Box::new(move || {
                    for (j, slot) in chunk.iter_mut().enumerate() {
                        *slot = i * 3 + j;
                    }
                }) as Task<'_>
            })
            .collect();
        pool.run(tasks);
        assert_eq!(out, (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn panic_in_task_propagates_to_caller() {
        let pool = WorkerPool::new(2);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run(vec![Box::new(|| {}), Box::new(|| panic!("deliberate test panic"))]);
        }));
        assert!(result.is_err(), "panic must cross the pool boundary");
        // The pool must stay usable after a panicked task.
        let mut ok = false;
        pool.run(vec![Box::new(|| ok = true)]);
        assert!(ok);
    }

    #[test]
    fn nested_run_from_worker_does_not_deadlock() {
        let pool = Arc::new(WorkerPool::new(2));
        let outer = Arc::clone(&pool);
        let hits = Arc::new(AtomicU64::new(0));
        let hits_outer = Arc::clone(&hits);
        pool.run(vec![Box::new(move || {
            let hits_inner = Arc::clone(&hits_outer);
            // Inner run executes inline on the worker thread.
            outer.run(vec![Box::new(move || {
                hits_inner.fetch_add(1, Ordering::Relaxed);
            })]);
        })]);
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn spawn_detached_refuses_on_serial_pool() {
        let pool = WorkerPool::new(1);
        assert!(!pool.spawn_detached(|| {}));
        let pool = WorkerPool::new(2);
        let flag = Arc::new(AtomicU64::new(0));
        let flag_job = Arc::clone(&flag);
        assert!(pool.spawn_detached(move || {
            flag_job.store(1, Ordering::SeqCst);
        }));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while flag.load(Ordering::SeqCst) == 0 {
            assert!(std::time::Instant::now() < deadline, "detached job never ran");
            std::thread::yield_now();
        }
    }

    #[test]
    fn configured_threads_defaults_to_serial() {
        // In the test environment FREEWAY_THREADS is normally unset, in
        // which case the compiled-in default of 1 (serial) applies.
        if std::env::var("FREEWAY_THREADS").is_err() {
            assert_eq!(configured_threads(), 1);
        }
    }
}
