//! Property-based tests for the linear-algebra substrate.

use freeway_linalg::pool::WorkerPool;
use freeway_linalg::{jacobi_eigen, Matrix};
use freeway_linalg::{stats, vector};
use proptest::prelude::*;

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0..100.0f64, len)
}

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0..10.0f64, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #[test]
    fn distance_triangle_inequality(a in small_vec(5), b in small_vec(5), c in small_vec(5)) {
        let ab = vector::euclidean_distance(&a, &b);
        let bc = vector::euclidean_distance(&b, &c);
        let ac = vector::euclidean_distance(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-9);
    }

    #[test]
    fn distance_symmetry_and_identity(a in small_vec(6), b in small_vec(6)) {
        prop_assert!((vector::euclidean_distance(&a, &b)
            - vector::euclidean_distance(&b, &a)).abs() < 1e-9);
        prop_assert!(vector::euclidean_distance(&a, &a) == 0.0);
    }

    #[test]
    fn dot_is_bilinear(a in small_vec(4), b in small_vec(4), alpha in -5.0..5.0f64) {
        let scaled: Vec<f64> = a.iter().map(|x| x * alpha).collect();
        let lhs = vector::dot(&scaled, &b);
        let rhs = alpha * vector::dot(&a, &b);
        prop_assert!((lhs - rhs).abs() < 1e-6 * (1.0 + rhs.abs()));
    }

    #[test]
    fn transpose_involution(m in small_matrix(3, 5)) {
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn matmul_associates_with_identity(m in small_matrix(4, 4)) {
        let id = Matrix::identity(4);
        prop_assert_eq!(m.matmul(&id), m.clone());
        prop_assert_eq!(id.matmul(&m), m);
    }

    #[test]
    fn matmul_distributes_over_axpy(a in small_matrix(3, 3), b in small_matrix(3, 3), c in small_matrix(3, 3)) {
        // (a + b) * c == a*c + b*c
        let mut sum = a.clone();
        sum.axpy(1.0, &b);
        let lhs = sum.matmul(&c);
        let mut rhs = a.matmul(&c);
        rhs.axpy(1.0, &b.matmul(&c));
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-6 * (1.0 + y.abs()));
        }
    }

    #[test]
    fn matvec_agrees_with_matmul(m in small_matrix(4, 3), v in small_vec(3)) {
        let as_col = Matrix::from_vec(3, 1, v.clone());
        let via_matmul = m.matmul(&as_col);
        let via_matvec = m.matvec(&v);
        for (i, &x) in via_matvec.iter().enumerate() {
            prop_assert!((x - via_matmul[(i, 0)]).abs() < 1e-9);
        }
    }

    #[test]
    fn covariance_diagonal_nonnegative(rows in 2usize..12) {
        let data: Vec<f64> = (0..rows * 4).map(|i| ((i * 37) % 101) as f64 / 10.0).collect();
        let m = Matrix::from_vec(rows, 4, data);
        let cov = stats::covariance_matrix(&m);
        for i in 0..4 {
            prop_assert!(cov[(i, i)] >= -1e-12);
        }
    }

    #[test]
    fn jacobi_eigenvalue_sum_equals_trace(m in small_matrix(4, 4)) {
        // Symmetrise, then trace == sum of eigenvalues.
        let mut sym = m.clone();
        let t = m.transpose();
        sym.axpy(1.0, &t);
        sym.scale(0.5);
        let trace: f64 = (0..4).map(|i| sym[(i, i)]).sum();
        let e = jacobi_eigen(&sym, 1e-12, 100);
        let sum: f64 = e.values.iter().sum();
        prop_assert!((trace - sum).abs() < 1e-6 * (1.0 + trace.abs()));
    }

    #[test]
    fn jacobi_vectors_orthonormal(m in small_matrix(3, 3)) {
        let mut sym = m.clone();
        let t = m.transpose();
        sym.axpy(1.0, &t);
        sym.scale(0.5);
        let e = jacobi_eigen(&sym, 1e-12, 100);
        for i in 0..3 {
            for j in 0..3 {
                let d = vector::dot(&e.vectors.col(i), &e.vectors.col(j));
                let expected = if i == j { 1.0 } else { 0.0 };
                prop_assert!((d - expected).abs() < 1e-7);
            }
        }
    }

    // Determinism contract of the worker pool (see `pool` module docs):
    // every parallel kernel must be BIT-identical — `==`, not approximate
    // — for any pool size, because chunk boundaries and reduction order
    // are fixed by the input shape, never by the thread count.

    #[test]
    fn parallel_matmul_is_bit_identical_across_pool_sizes(
        rows in 1usize..24,
        inner in 1usize..12,
        cols in 1usize..12,
        data in prop::collection::vec(-10.0..10.0f64, 24 * 12 + 12 * 12),
    ) {
        let a = Matrix::from_vec(rows, inner, data[..rows * inner].to_vec());
        let b_off = 24 * 12;
        let b = Matrix::from_vec(inner, cols, data[b_off..b_off + inner * cols].to_vec());
        let serial = a.matmul_with(&b, &WorkerPool::new(1));
        for threads in [2usize, 8] {
            let parallel = a.matmul_with(&b, &WorkerPool::new(threads));
            prop_assert_eq!(&serial, &parallel);
        }
        prop_assert_eq!(&serial, &a.matmul(&b));
    }

    #[test]
    fn parallel_matvec_is_bit_identical_across_pool_sizes(
        rows in 1usize..40,
        cols in 1usize..10,
        data in prop::collection::vec(-10.0..10.0f64, 40 * 10 + 10),
    ) {
        let m = Matrix::from_vec(rows, cols, data[..rows * cols].to_vec());
        let v = data[40 * 10..40 * 10 + cols].to_vec();
        let serial = m.matvec_with(&v, &WorkerPool::new(1));
        for threads in [2usize, 8] {
            prop_assert_eq!(&serial, &m.matvec_with(&v, &WorkerPool::new(threads)));
        }
        prop_assert_eq!(&serial, &m.matvec(&v));
    }

    #[test]
    fn parallel_t_matvec_is_bit_identical_across_pool_sizes(
        // Rows straddle the fixed 256-row chunk boundary so multi-chunk
        // reduction (the only path where order could matter) is hit.
        rows in 200usize..600,
        cols in 1usize..6,
        seed in 0u64..1000,
    ) {
        let fill = |i: usize| ((i as f64 + seed as f64) * 0.37).sin() * 3.0;
        let m = Matrix::from_vec(rows, cols, (0..rows * cols).map(fill).collect());
        let v: Vec<f64> = (0..rows).map(|i| fill(i + 7)).collect();
        let serial = m.t_matvec_with(&v, &WorkerPool::new(1));
        for threads in [2usize, 8] {
            prop_assert_eq!(&serial, &m.t_matvec_with(&v, &WorkerPool::new(threads)));
        }
        prop_assert_eq!(&serial, &m.t_matvec(&v));
    }

    // Zero-allocation hot path contract: every `_into` variant and fused
    // transposed kernel must be BIT-identical (`==`) to its allocating
    // two-step counterpart, for every pool size, even when the output
    // buffer is dirty from a previous differently-shaped call.

    #[test]
    fn matmul_into_matches_matmul_with_dirty_buffer(
        rows in 1usize..20,
        inner in 1usize..10,
        cols in 1usize..10,
        data in prop::collection::vec(-10.0..10.0f64, 20 * 10 + 10 * 10),
    ) {
        let a = Matrix::from_vec(rows, inner, data[..rows * inner].to_vec());
        let b = Matrix::from_vec(inner, cols, data[200..200 + inner * cols].to_vec());
        let mut out = Matrix::filled(7, 3, f64::NAN); // dirty, wrong shape
        a.matmul_into(&b, &mut out);
        prop_assert_eq!(&out, &a.matmul(&b));
    }

    #[test]
    fn fused_transa_matches_transpose_then_matmul(
        rows in 1usize..24,
        cols_a in 1usize..10,
        cols_b in 1usize..10,
        data in prop::collection::vec(-10.0..10.0f64, 24 * 10 + 24 * 10),
    ) {
        // A is rows x cols_a, B is rows x cols_b; fused computes Aᵀ·B.
        let a = Matrix::from_vec(rows, cols_a, data[..rows * cols_a].to_vec());
        let b = Matrix::from_vec(rows, cols_b, data[240..240 + rows * cols_b].to_vec());
        let two_step = a.transpose().matmul(&b);
        prop_assert_eq!(&a.matmul_transa(&b), &two_step);
        let mut out = Matrix::filled(2, 5, f64::NAN);
        a.matmul_transa_into(&b, &mut out);
        prop_assert_eq!(&out, &two_step);
        for threads in [1usize, 2, 8] {
            prop_assert_eq!(&a.matmul_transa_with(&b, &WorkerPool::new(threads)), &two_step);
        }
    }

    #[test]
    fn fused_transb_matches_transpose_then_matmul(
        rows in 1usize..24,
        inner in 1usize..10,
        cols in 1usize..10,
        data in prop::collection::vec(-10.0..10.0f64, 24 * 10 + 10 * 10),
    ) {
        // A is rows x inner, B is cols x inner; fused computes A·Bᵀ.
        let a = Matrix::from_vec(rows, inner, data[..rows * inner].to_vec());
        let b = Matrix::from_vec(cols, inner, data[240..240 + cols * inner].to_vec());
        let two_step = a.matmul(&b.transpose());
        prop_assert_eq!(&a.matmul_transb(&b), &two_step);
        let mut out = Matrix::filled(3, 1, f64::NAN);
        a.matmul_transb_into(&b, &mut out);
        prop_assert_eq!(&out, &two_step);
        for threads in [1usize, 2, 8] {
            prop_assert_eq!(&a.matmul_transb_with(&b, &WorkerPool::new(threads)), &two_step);
        }
    }

    #[test]
    fn vector_into_variants_match_allocating(
        rows in 1usize..30,
        cols in 1usize..8,
        data in prop::collection::vec(-10.0..10.0f64, 30 * 8 + 30 + 8),
    ) {
        let m = Matrix::from_vec(rows, cols, data[..rows * cols].to_vec());
        let v_cols = data[240..240 + cols].to_vec();
        let v_rows = data[248..248 + rows].to_vec();
        let mut out = vec![f64::NAN; 3]; // dirty, wrong length
        m.matvec_into(&v_cols, &mut out);
        prop_assert_eq!(&out, &m.matvec(&v_cols));
        m.t_matvec_into(&v_rows, &mut out);
        prop_assert_eq!(&out, &m.t_matvec(&v_rows));
    }

    #[test]
    fn recency_weights_monotone(n in 1usize..30, decay in 0.01..1.0f64) {
        let w = stats::recency_weights(n, decay);
        for pair in w.windows(2) {
            prop_assert!(pair[0] <= pair[1] + 1e-12);
        }
        prop_assert!((w[n - 1] - 1.0).abs() < 1e-12);
    }

    // The blocked kernels band output rows to the micro-kernel height, so
    // pool-size invariance must also hold for shapes larger than the
    // register block — band boundaries move with thread count but every
    // output element keeps its full ascending-k accumulation.

    #[test]
    fn tiled_pooled_kernels_bit_identical_across_pool_sizes(
        rows in 1usize..80,
        inner in 1usize..14,
        cols in 1usize..14,
        seed in 0u64..1000,
    ) {
        let fill = |i: usize| ((i as f64 + seed as f64) * 0.61).sin() * 4.0;
        let a = Matrix::from_vec(rows, inner, (0..rows * inner).map(fill).collect());
        let b = Matrix::from_vec(inner, cols, (0..inner * cols).map(|i| fill(i + 3)).collect());
        let bt = b.transpose();
        let at = a.transpose();
        let serial = a.matmul_with(&b, &WorkerPool::new(1));
        for threads in [2usize, 3, 8] {
            let pool = WorkerPool::new(threads);
            prop_assert_eq!(&serial, &a.matmul_with(&b, &pool));
            prop_assert_eq!(&at.matmul_transa_with(&b, &pool), &serial);
            prop_assert_eq!(&a.matmul_transb_with(&bt, &pool), &serial);
        }
    }
}

/// Naive triple-loop reference: per output element, one accumulator
/// started at `0.0` and advanced in ascending-k order — the association
/// order the blocked kernels promise to preserve bit-for-bit.
fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(a.rows(), b.cols());
    for i in 0..a.rows() {
        for j in 0..b.cols() {
            let mut acc = 0.0;
            for p in 0..a.cols() {
                acc += a[(i, p)] * b[(p, j)];
            }
            out[(i, j)] = acc;
        }
    }
    out
}

/// Tile-size invariance, phrased against the fixed tile constants: shapes
/// on, below, and across every micro/tile boundary (4-row micro, 8-col
/// micro, 64-row L1 tile, 256-col tile) must all reproduce the naive
/// reference exactly, serial and pooled. If a tile edge ever changed an
/// element's accumulation order, one of these shapes would catch it.
#[test]
fn blocked_kernels_bit_identical_to_naive_across_tile_boundaries() {
    let shapes = [
        (1usize, 1usize, 1usize),
        (3, 7, 9),
        (4, 8, 8),
        (5, 9, 17),
        (17, 2, 31),
        (64, 10, 256),
        (65, 3, 257),
        (70, 33, 300),
        (130, 17, 40),
    ];
    for &(m, k, n) in &shapes {
        let fill = |i: usize| ((i as f64) * 0.37).sin() * 5.0;
        let a = Matrix::from_vec(m, k, (0..m * k).map(fill).collect());
        let b = Matrix::from_vec(k, n, (0..k * n).map(|i| fill(i + 11)).collect());
        let reference = naive_matmul(&a, &b);
        assert_eq!(a.matmul(&b), reference, "matmul {m}x{k}x{n}");
        let at = a.transpose();
        assert_eq!(at.matmul_transa(&b), reference, "transa {m}x{k}x{n}");
        let bt = b.transpose();
        assert_eq!(a.matmul_transb(&bt), reference, "transb {m}x{k}x{n}");
        for threads in [2usize, 5] {
            let pool = WorkerPool::new(threads);
            assert_eq!(a.matmul_with(&b, &pool), reference, "pooled matmul {m}x{k}x{n}");
            assert_eq!(at.matmul_transa_with(&b, &pool), reference, "pooled transa {m}x{k}x{n}");
            assert_eq!(a.matmul_transb_with(&bt, &pool), reference, "pooled transb {m}x{k}x{n}");
        }
    }
}
