//! Flink ML-style baseline: mini-batch SGD over watermark-aligned batches.
//!
//! Flink ML's accuracy behaviour in the paper comes from straightforward
//! incremental SGD; its watermark mechanism governs *which* events form a
//! batch, not how the model updates. We reproduce the watermark as a
//! small reorder-tolerant staging buffer: training data is staged and
//! only consumed once a full batch is "complete", which delays updates by
//! one batch relative to plain SGD — the latency-vs-freshness trade
//! Flink's event-time alignment exhibits.

use crate::StreamingLearner;
use freeway_linalg::Matrix;
use freeway_ml::{ModelSpec, Sgd, Trainer};

/// Flink ML-style streaming learner.
pub struct FlinkMlStyle {
    trainer: Trainer,
    staged: Option<(Matrix, Vec<usize>)>,
}

impl FlinkMlStyle {
    /// Builds the baseline.
    pub fn new(spec: ModelSpec, seed: u64) -> Self {
        Self {
            trainer: Trainer::new(
                spec.build(seed),
                Box::new(Sgd::new(crate::plain::PlainSgd::LEARNING_RATE)),
            ),
            staged: None,
        }
    }
}

impl StreamingLearner for FlinkMlStyle {
    fn name(&self) -> &'static str {
        "Flink ML"
    }

    fn infer(&mut self, x: &Matrix) -> Vec<usize> {
        self.trainer.model().predict(x)
    }

    fn train(&mut self, x: &Matrix, labels: &[usize]) {
        // Watermark staging: consume the previously completed batch, stage
        // the current one until its watermark passes (the next call).
        if let Some((sx, sy)) = self.staged.take() {
            self.trainer.train_step(&sx, &sy);
        }
        self.staged = Some((x.clone(), labels.to_vec()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freeway_streams::concept::{stream_rng, GmmConcept};

    #[test]
    fn staging_delays_updates_by_one_batch() {
        let mut rng = stream_rng(1);
        let concept = GmmConcept::random(4, 2, 1, 3.0, 0.5, &mut rng);
        let mut learner = FlinkMlStyle::new(ModelSpec::lr(4, 2), 0);
        let (x, y) = concept.sample_batch(64, &mut rng);
        let before = learner.trainer.model().parameters();
        learner.train(&x, &y);
        assert_eq!(learner.trainer.model().parameters(), before, "first batch only staged");
        let (x2, y2) = concept.sample_batch(64, &mut rng);
        learner.train(&x2, &y2);
        assert_ne!(learner.trainer.model().parameters(), before, "staged batch consumed");
    }

    #[test]
    fn still_learns_the_concept() {
        let mut rng = stream_rng(2);
        let concept = GmmConcept::random(4, 2, 2, 4.0, 0.5, &mut rng);
        let mut learner = FlinkMlStyle::new(ModelSpec::lr(4, 2), 0);
        for _ in 0..40 {
            let (x, y) = concept.sample_batch(128, &mut rng);
            learner.train(&x, &y);
        }
        let (x, y) = concept.sample_batch(256, &mut rng);
        let preds = learner.infer(&x);
        let acc = preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.8, "Flink-style accuracy {acc}");
    }
}
