//! Plain streaming SGD — the unadorned "StreamingLR / StreamingMLP /
//! StreamingCNN" that the per-mechanism studies (Table II, Figures 9/12)
//! compare against.

use crate::StreamingLearner;
use freeway_linalg::Matrix;
use freeway_ml::{ModelSpec, Sgd, Trainer};

/// Mini-batch SGD with no drift handling at all.
pub struct PlainSgd {
    trainer: Trainer,
}

impl PlainSgd {
    /// Default learning rate shared by the baseline family (matches
    /// FreewayML's short-granularity model, keeping comparisons fair).
    /// Deliberately on the *sensitive* side: the paper's premise is that
    /// streaming models are sensitive and lightweight, and the stability
    /// mechanisms exist to tame exactly that sensitivity.
    pub const LEARNING_RATE: f64 = 0.3;

    /// Builds a plain streaming learner.
    pub fn new(spec: ModelSpec, seed: u64) -> Self {
        Self { trainer: Trainer::new(spec.build(seed), Box::new(Sgd::new(Self::LEARNING_RATE))) }
    }

    /// Access to the underlying model (tests/diagnostics).
    pub fn model(&self) -> &dyn freeway_ml::Model {
        self.trainer.model()
    }
}

impl StreamingLearner for PlainSgd {
    fn name(&self) -> &'static str {
        "Plain"
    }

    fn infer(&mut self, x: &Matrix) -> Vec<usize> {
        self.trainer.model().predict(x)
    }

    fn train(&mut self, x: &Matrix, labels: &[usize]) {
        self.trainer.train_step(x, labels);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freeway_streams::concept::{stream_rng, GmmConcept};

    #[test]
    fn learns_a_stationary_concept() {
        let mut rng = stream_rng(1);
        let concept = GmmConcept::random(5, 2, 2, 4.0, 0.5, &mut rng);
        let mut learner = PlainSgd::new(ModelSpec::lr(5, 2), 0);
        for _ in 0..30 {
            let (x, y) = concept.sample_batch(128, &mut rng);
            learner.train(&x, &y);
        }
        let (x, y) = concept.sample_batch(256, &mut rng);
        let preds = learner.infer(&x);
        let acc = preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.8, "plain SGD accuracy {acc}");
    }

    #[test]
    fn suffers_after_sudden_shift() {
        // The motivating failure mode: once the distribution jumps, the
        // frozen decision boundary mispredicts.
        let mut rng = stream_rng(2);
        let mut concept = GmmConcept::random(5, 2, 2, 4.0, 0.5, &mut rng);
        let mut learner = PlainSgd::new(ModelSpec::lr(5, 2), 0);
        for _ in 0..30 {
            let (x, y) = concept.sample_batch(128, &mut rng);
            learner.train(&x, &y);
        }
        let (x, y) = concept.sample_batch(256, &mut rng);
        let before = {
            let preds = learner.infer(&x);
            preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64
        };
        // Replace with a brand-new concept.
        concept = GmmConcept::random(5, 2, 2, 4.0, 0.5, &mut rng);
        let (x, y) = concept.sample_batch(256, &mut rng);
        let after = {
            let preds = learner.infer(&x);
            preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64
        };
        assert!(after < before, "sudden shift must hurt the frozen model: {before} -> {after}");
    }
}
