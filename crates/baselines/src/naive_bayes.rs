//! Streaming Gaussian naive Bayes — an extension baseline.
//!
//! Naive Bayes is the third classic incremental classifier family
//! alongside linear models and Hoeffding trees: exact one-pass updates
//! (Welford moments per feature/class), no learning rate, and natural
//! probability outputs. Included so the baseline suite covers the
//! generative family as well.

use crate::StreamingLearner;
use freeway_linalg::Matrix;

/// Running per-feature Gaussian via Welford's algorithm.
#[derive(Clone, Debug, Default)]
struct Moments {
    n: f64,
    mean: f64,
    m2: f64,
}

impl Moments {
    fn update(&mut self, x: f64) {
        self.n += 1.0;
        let delta = x - self.mean;
        self.mean += delta / self.n;
        self.m2 += delta * (x - self.mean);
    }

    fn variance(&self) -> f64 {
        if self.n < 2.0 {
            // A degenerate class: fall back to unit variance so its
            // likelihood stays finite rather than spiking to a delta.
            1.0
        } else {
            (self.m2 / self.n).max(1e-6)
        }
    }
}

/// Incremental Gaussian naive Bayes classifier.
pub struct GaussianNaiveBayes {
    /// `moments[class][feature]`.
    moments: Vec<Vec<Moments>>,
    class_counts: Vec<f64>,
    total: f64,
    features: usize,
}

impl GaussianNaiveBayes {
    /// Creates an empty model.
    ///
    /// # Panics
    /// Panics unless `features >= 1` and `classes >= 2`.
    pub fn new(features: usize, classes: usize) -> Self {
        assert!(features >= 1 && classes >= 2, "need features and at least two classes");
        Self {
            moments: vec![vec![Moments::default(); features]; classes],
            class_counts: vec![0.0; classes],
            total: 0.0,
            features,
        }
    }

    /// Learns one example.
    pub fn learn_one(&mut self, x: &[f64], y: usize) {
        assert_eq!(x.len(), self.features, "feature dimension mismatch");
        assert!(y < self.class_counts.len(), "label out of range");
        self.class_counts[y] += 1.0;
        self.total += 1.0;
        for (m, &v) in self.moments[y].iter_mut().zip(x) {
            m.update(v);
        }
    }

    /// Log joint likelihood `log P(y) + Σ log P(x_i | y)`.
    fn log_joint(&self, x: &[f64], class: usize) -> f64 {
        if self.class_counts[class] <= 0.0 {
            return f64::NEG_INFINITY;
        }
        // Laplace-smoothed prior keeps unseen-but-possible classes sane.
        let classes = self.class_counts.len() as f64;
        let mut log_p = ((self.class_counts[class] + 1.0) / (self.total + classes)).ln();
        for (m, &v) in self.moments[class].iter().zip(x) {
            let var = m.variance();
            let diff = v - m.mean;
            log_p += -0.5 * ((2.0 * std::f64::consts::PI * var).ln() + diff * diff / var);
        }
        log_p
    }

    /// Predicts one example's class (0 before any data arrives).
    pub fn predict_one(&self, x: &[f64]) -> usize {
        assert_eq!(x.len(), self.features, "feature dimension mismatch");
        let scores: Vec<f64> = (0..self.class_counts.len()).map(|c| self.log_joint(x, c)).collect();
        freeway_linalg::vector::argmax(&scores).unwrap_or(0)
    }

    /// Posterior class probabilities for one example.
    pub fn predict_proba_one(&self, x: &[f64]) -> Vec<f64> {
        let scores: Vec<f64> = (0..self.class_counts.len()).map(|c| self.log_joint(x, c)).collect();
        let max = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        if !max.is_finite() {
            // No data yet: uniform.
            return vec![1.0 / scores.len() as f64; scores.len()];
        }
        let mut probs: Vec<f64> = scores.iter().map(|s| (s - max).exp()).collect();
        let sum: f64 = probs.iter().sum();
        for p in &mut probs {
            *p /= sum;
        }
        probs
    }

    /// Examples observed so far.
    pub fn samples(&self) -> f64 {
        self.total
    }
}

/// Naive Bayes behind the shared baseline interface.
pub struct NaiveBayesBaseline {
    model: GaussianNaiveBayes,
}

impl NaiveBayesBaseline {
    /// Builds the baseline.
    pub fn new(features: usize, classes: usize) -> Self {
        Self { model: GaussianNaiveBayes::new(features, classes) }
    }
}

impl StreamingLearner for NaiveBayesBaseline {
    fn name(&self) -> &'static str {
        "NaiveBayes"
    }

    fn infer(&mut self, x: &Matrix) -> Vec<usize> {
        x.row_iter().map(|row| self.model.predict_one(row)).collect()
    }

    fn train(&mut self, x: &Matrix, labels: &[usize]) {
        for (row, &y) in x.row_iter().zip(labels) {
            self.model.learn_one(row, y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freeway_streams::concept::{stream_rng, GmmConcept};

    #[test]
    fn learns_gaussian_blobs_almost_perfectly() {
        // NB's model class matches GMM data exactly (1 component/class).
        let mut rng = stream_rng(1);
        let concept = GmmConcept::random(6, 3, 1, 5.0, 0.8, &mut rng);
        let mut nb = NaiveBayesBaseline::new(6, 3);
        for _ in 0..20 {
            let (x, y) = concept.sample_batch(128, &mut rng);
            nb.train(&x, &y);
        }
        let (x, y) = concept.sample_batch(512, &mut rng);
        let preds = nb.infer(&x);
        let acc = preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.95, "matched model class: {acc}");
    }

    #[test]
    fn probabilities_are_normalised() {
        let mut nb = GaussianNaiveBayes::new(2, 3);
        for i in 0..60 {
            nb.learn_one(&[i as f64 % 3.0, 1.0], i % 3);
        }
        let p = nb.predict_proba_one(&[1.0, 1.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn empty_model_predicts_uniformly() {
        let nb = GaussianNaiveBayes::new(2, 4);
        let p = nb.predict_proba_one(&[0.0, 0.0]);
        assert!(p.iter().all(|&v| (v - 0.25).abs() < 1e-9));
        assert_eq!(nb.predict_one(&[0.0, 0.0]), 0);
    }

    #[test]
    fn unseen_class_never_wins() {
        let mut nb = GaussianNaiveBayes::new(1, 3);
        for i in 0..50 {
            nb.learn_one(&[i as f64 * 0.1], if i % 2 == 0 { 0 } else { 1 });
        }
        // Class 2 has no data: any input must map to 0 or 1.
        for v in [-100.0, 0.0, 100.0] {
            assert_ne!(nb.predict_one(&[v]), 2);
        }
    }

    #[test]
    fn adapts_mean_estimates_incrementally() {
        let mut nb = GaussianNaiveBayes::new(1, 2);
        for _ in 0..100 {
            nb.learn_one(&[0.0], 0);
            nb.learn_one(&[10.0], 1);
        }
        assert_eq!(nb.predict_one(&[1.0]), 0);
        assert_eq!(nb.predict_one(&[9.0]), 1);
        assert_eq!(nb.samples(), 200.0);
    }
}
