//! Hoeffding tree (VFDT, Domingos & Hulten 2000) — an extension baseline.
//!
//! The paper's comparison set is gradient-based, but River's flagship
//! streaming classifier is the Hoeffding tree, so a faithful VFDT makes
//! the baseline suite representative of what practitioners actually
//! deploy. Numeric attributes use per-class Gaussian observers (the
//! standard River/MOA approach); a leaf splits when the information-gain
//! lead of the best attribute over the runner-up exceeds the Hoeffding
//! bound `ε = sqrt(R² ln(1/δ) / 2n)` (or the tie threshold `τ`).

use crate::StreamingLearner;
use freeway_linalg::Matrix;

/// Abramowitz–Stegun 7.1.26 approximation of `erf` (|error| < 1.5e-7),
/// enough for split-gain estimation.
fn erf(x: f64) -> f64 {
    let sign = x.signum();
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Gaussian CDF.
fn normal_cdf(x: f64, mean: f64, std: f64) -> f64 {
    if std <= 1e-12 {
        return if x >= mean { 1.0 } else { 0.0 };
    }
    0.5 * (1.0 + erf((x - mean) / (std * std::f64::consts::SQRT_2)))
}

/// Per-(feature, class) Welford estimator.
#[derive(Clone, Debug, Default)]
struct Gaussian {
    n: f64,
    mean: f64,
    m2: f64,
}

impl Gaussian {
    fn update(&mut self, x: f64) {
        self.n += 1.0;
        let delta = x - self.mean;
        self.mean += delta / self.n;
        self.m2 += delta * (x - self.mean);
    }

    fn std(&self) -> f64 {
        if self.n < 2.0 {
            0.0
        } else {
            (self.m2 / self.n).sqrt()
        }
    }
}

#[derive(Clone, Debug)]
struct LeafStats {
    /// Majority class of the parent at split time, used for predictions
    /// until this leaf accumulates its own data (never mixed into the
    /// split statistics).
    fallback_majority: usize,
    class_counts: Vec<f64>,
    /// `observers[feature][class]`.
    observers: Vec<Vec<Gaussian>>,
    mins: Vec<f64>,
    maxs: Vec<f64>,
    seen_since_check: usize,
}

impl LeafStats {
    fn new(features: usize, classes: usize) -> Self {
        Self {
            fallback_majority: 0,
            class_counts: vec![0.0; classes],
            observers: vec![vec![Gaussian::default(); classes]; features],
            mins: vec![f64::INFINITY; features],
            maxs: vec![f64::NEG_INFINITY; features],
            seen_since_check: 0,
        }
    }

    fn total(&self) -> f64 {
        self.class_counts.iter().sum()
    }

    fn majority(&self) -> usize {
        if self.total() <= 0.0 {
            return self.fallback_majority;
        }
        freeway_linalg::vector::argmax(&self.class_counts).unwrap_or(self.fallback_majority)
    }

    fn update(&mut self, x: &[f64], y: usize) {
        self.class_counts[y] += 1.0;
        for (f, &v) in x.iter().enumerate() {
            self.observers[f][y].update(v);
            self.mins[f] = self.mins[f].min(v);
            self.maxs[f] = self.maxs[f].max(v);
        }
        self.seen_since_check += 1;
    }

    fn entropy(counts: &[f64]) -> f64 {
        let total: f64 = counts.iter().sum();
        if total <= 0.0 {
            return 0.0;
        }
        counts
            .iter()
            .filter(|&&c| c > 0.0)
            .map(|&c| {
                let p = c / total;
                -p * p.log2()
            })
            .sum()
    }

    /// Estimated information gain of splitting `feature` at `threshold`,
    /// using the Gaussian observers to apportion class mass left/right.
    fn gain(&self, feature: usize, threshold: f64) -> f64 {
        let classes = self.class_counts.len();
        let mut left = vec![0.0; classes];
        let mut right = vec![0.0; classes];
        for c in 0..classes {
            let count = self.class_counts[c];
            if count <= 0.0 {
                continue;
            }
            let obs = &self.observers[feature][c];
            let frac_left = normal_cdf(threshold, obs.mean, obs.std());
            left[c] = count * frac_left;
            right[c] = count * (1.0 - frac_left);
        }
        let total = self.total();
        let nl: f64 = left.iter().sum();
        let nr: f64 = right.iter().sum();
        if nl <= 1e-9 || nr <= 1e-9 {
            return 0.0;
        }
        Self::entropy(&self.class_counts)
            - (nl / total) * Self::entropy(&left)
            - (nr / total) * Self::entropy(&right)
    }

    /// Best (gain, threshold) for one feature over a grid of candidate
    /// thresholds between the observed min and max.
    fn best_split_for_feature(&self, feature: usize) -> (f64, f64) {
        let (lo, hi) = (self.mins[feature], self.maxs[feature]);
        if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
            return (0.0, lo);
        }
        let mut best = (0.0, lo);
        const CANDIDATES: usize = 10;
        for i in 1..=CANDIDATES {
            let t = lo + (hi - lo) * i as f64 / (CANDIDATES + 1) as f64;
            let g = self.gain(feature, t);
            if g > best.0 {
                best = (g, t);
            }
        }
        best
    }
}

#[derive(Clone, Debug)]
enum Node {
    Leaf(LeafStats),
    Split { feature: usize, threshold: f64, left: Box<Node>, right: Box<Node> },
}

/// VFDT configuration.
#[derive(Clone, Copy, Debug)]
pub struct HoeffdingParams {
    /// Samples between split checks at a leaf.
    pub grace_period: usize,
    /// Split confidence δ.
    pub delta: f64,
    /// Tie-breaking threshold τ.
    pub tau: f64,
    /// Maximum tree depth (leaves at the limit never split).
    pub max_depth: usize,
}

impl Default for HoeffdingParams {
    fn default() -> Self {
        // τ = 0.15: with several similarly informative features (common in
        // Gaussian-mixture streams) the best-vs-second gain gap never
        // clears the Hoeffding bound, so the tie rule drives growth; the
        // classic τ = 0.05 needs ~7k samples per split at 3 classes.
        Self { grace_period: 100, delta: 1e-6, tau: 0.15, max_depth: 12 }
    }
}

/// An incremental Hoeffding-tree classifier.
pub struct HoeffdingTree {
    root: Node,
    features: usize,
    classes: usize,
    params: HoeffdingParams,
    leaves: usize,
}

impl HoeffdingTree {
    /// Creates an empty tree.
    pub fn new(features: usize, classes: usize, params: HoeffdingParams) -> Self {
        assert!(features > 0 && classes >= 2, "need features and at least two classes");
        Self {
            root: Node::Leaf(LeafStats::new(features, classes)),
            features,
            classes,
            params,
            leaves: 1,
        }
    }

    /// Current leaf count.
    pub fn num_leaves(&self) -> usize {
        self.leaves
    }

    /// Learns one labeled example.
    pub fn learn_one(&mut self, x: &[f64], y: usize) {
        assert_eq!(x.len(), self.features, "feature dimension mismatch");
        assert!(y < self.classes, "label out of range");
        let params = self.params;
        let (features, classes) = (self.features, self.classes);
        let mut new_leaves = 0;
        Self::learn_rec(&mut self.root, x, y, 0, params, features, classes, &mut new_leaves);
        self.leaves += new_leaves;
    }

    #[allow(clippy::too_many_arguments)]
    fn learn_rec(
        node: &mut Node,
        x: &[f64],
        y: usize,
        depth: usize,
        params: HoeffdingParams,
        features: usize,
        classes: usize,
        new_leaves: &mut usize,
    ) {
        match node {
            Node::Split { feature, threshold, left, right } => {
                let child = if x[*feature] <= *threshold { left } else { right };
                Self::learn_rec(child, x, y, depth + 1, params, features, classes, new_leaves);
            }
            Node::Leaf(stats) => {
                stats.update(x, y);
                if depth >= params.max_depth || stats.seen_since_check < params.grace_period {
                    return;
                }
                stats.seen_since_check = 0;
                // Pure leaves have nothing to gain from splitting.
                if stats.class_counts.iter().filter(|&&c| c > 0.0).count() <= 1 {
                    return;
                }
                // Rank features by their best estimated gain.
                let mut best = (0.0, 0usize, 0.0); // (gain, feature, threshold)
                let mut second = 0.0;
                for f in 0..features {
                    let (g, t) = stats.best_split_for_feature(f);
                    if g > best.0 {
                        second = best.0;
                        best = (g, f, t);
                    } else if g > second {
                        second = g;
                    }
                }
                let n = stats.total();
                let range = (classes as f64).log2();
                let eps = (range * range * (1.0 / params.delta).ln() / (2.0 * n)).sqrt();
                if best.0 > 0.0 && (best.0 - second > eps || eps < params.tau) {
                    // Split: children start with clean statistics; the
                    // parent's side-wise majority only serves as the
                    // prediction fallback until real data arrives.
                    let mut left = LeafStats::new(features, classes);
                    let mut right = LeafStats::new(features, classes);
                    let mut left_counts = vec![0.0; classes];
                    let mut right_counts = vec![0.0; classes];
                    for c in 0..classes {
                        let count = stats.class_counts[c];
                        let obs = &stats.observers[best.1][c];
                        let frac = normal_cdf(best.2, obs.mean, obs.std());
                        left_counts[c] = count * frac;
                        right_counts[c] = count * (1.0 - frac);
                    }
                    left.fallback_majority =
                        freeway_linalg::vector::argmax(&left_counts).unwrap_or(0);
                    right.fallback_majority =
                        freeway_linalg::vector::argmax(&right_counts).unwrap_or(0);
                    *node = Node::Split {
                        feature: best.1,
                        threshold: best.2,
                        left: Box::new(Node::Leaf(left)),
                        right: Box::new(Node::Leaf(right)),
                    };
                    *new_leaves += 1; // one leaf became two
                }
            }
        }
    }

    /// Predicts one example's class.
    pub fn predict_one(&self, x: &[f64]) -> usize {
        let mut node = &self.root;
        loop {
            match node {
                Node::Leaf(stats) => return stats.majority(),
                Node::Split { feature, threshold, left, right } => {
                    node = if x[*feature] <= *threshold { left } else { right };
                }
            }
        }
    }
}

/// The Hoeffding tree behind the shared baseline interface.
pub struct HoeffdingBaseline {
    tree: HoeffdingTree,
}

impl HoeffdingBaseline {
    /// Builds the baseline with default VFDT parameters.
    pub fn new(features: usize, classes: usize) -> Self {
        Self { tree: HoeffdingTree::new(features, classes, HoeffdingParams::default()) }
    }

    /// Access to the underlying tree.
    pub fn tree(&self) -> &HoeffdingTree {
        &self.tree
    }
}

impl StreamingLearner for HoeffdingBaseline {
    fn name(&self) -> &'static str {
        "HoeffdingTree"
    }

    fn infer(&mut self, x: &Matrix) -> Vec<usize> {
        x.row_iter().map(|row| self.tree.predict_one(row)).collect()
    }

    fn train(&mut self, x: &Matrix, labels: &[usize]) {
        for (row, &y) in x.row_iter().zip(labels) {
            self.tree.learn_one(row, y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freeway_streams::concept::{stream_rng, GmmConcept};

    #[test]
    fn erf_matches_known_values() {
        assert!(erf(0.0).abs() < 1e-6, "approximation error budget");
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(3.0) - 0.999_977_9).abs() < 1e-5);
    }

    #[test]
    fn normal_cdf_basics() {
        assert!((normal_cdf(0.0, 0.0, 1.0) - 0.5).abs() < 1e-9);
        assert!(normal_cdf(10.0, 0.0, 1.0) > 0.999);
        assert_eq!(normal_cdf(1.0, 0.0, 0.0), 1.0, "degenerate std: step function");
    }

    #[test]
    fn learns_an_axis_aligned_concept() {
        // Label = (x0 > 0): the canonical easy case for a tree.
        let mut tree =
            HoeffdingTree::new(3, 2, HoeffdingParams { grace_period: 100, ..Default::default() });
        let mut rng = stream_rng(1);
        use rand::RngExt;
        for _ in 0..5000 {
            let x = [
                rng.random_range(-2.0..2.0),
                rng.random_range(-1.0..1.0),
                rng.random_range(-1.0..1.0),
            ];
            tree.learn_one(&x, usize::from(x[0] > 0.0));
        }
        assert!(tree.num_leaves() >= 2, "the tree must have split");
        let mut correct = 0;
        for i in 0..200 {
            let v = (i as f64 - 100.0) / 50.0;
            let x = [v, 0.3, -0.2];
            if tree.predict_one(&x) == usize::from(v > 0.0) {
                correct += 1;
            }
        }
        assert!(correct >= 190, "axis split should be near-perfect: {correct}/200");
    }

    #[test]
    fn baseline_learns_gmm_stream() {
        let mut rng = stream_rng(2);
        let concept = GmmConcept::random(5, 3, 1, 4.0, 0.6, &mut rng);
        let mut learner = HoeffdingBaseline::new(5, 3);
        for _ in 0..40 {
            let (x, y) = concept.sample_batch(256, &mut rng);
            learner.train(&x, &y);
        }
        let (x, y) = concept.sample_batch(512, &mut rng);
        let preds = learner.infer(&x);
        let acc = preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.8, "Hoeffding tree on separated blobs: {acc}");
    }

    #[test]
    fn depth_limit_is_respected() {
        let mut tree = HoeffdingTree::new(
            2,
            2,
            HoeffdingParams { grace_period: 50, max_depth: 1, ..Default::default() },
        );
        let mut rng = stream_rng(3);
        use rand::RngExt;
        for _ in 0..4000 {
            let x = [rng.random_range(-1.0..1.0), rng.random_range(-1.0..1.0)];
            let label = usize::from(x[0] > 0.0) ^ usize::from(x[1] > 0.0);
            tree.learn_one(&x, label);
        }
        assert!(tree.num_leaves() <= 2, "depth 1 allows at most one split");
    }

    #[test]
    fn pure_leaves_never_split() {
        let mut tree = HoeffdingTree::new(2, 2, HoeffdingParams::default());
        for i in 0..2000 {
            tree.learn_one(&[i as f64 % 5.0, 1.0], 0);
        }
        assert_eq!(tree.num_leaves(), 1, "single-class stream must stay a stump");
    }
}
