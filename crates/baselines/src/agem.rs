//! A-GEM baseline: averaged gradient episodic memory (Chaudhry et al.
//! 2019).
//!
//! A-GEM keeps an episodic memory of past data. Before each update it
//! computes the reference gradient `g_ref` on a memory sample; if the
//! proposed gradient `g` conflicts (`g·g_ref < 0`), it is projected to
//! `g − (g·g_ref / g_ref·g_ref) · g_ref`, so new-task updates never
//! increase (to first order) the loss on remembered data. The projection
//! and the extra gradient pass are exactly the overheads that place A-GEM
//! last in the paper's throughput/latency study.

use crate::StreamingLearner;
use freeway_linalg::{vector, Matrix};
use freeway_ml::{Model, ModelSpec};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// One remembered labeled sample.
#[derive(Clone)]
struct Memory {
    features: Vec<f64>,
    label: usize,
}

/// A-GEM streaming learner.
pub struct AGem {
    model: Box<dyn Model>,
    memory: Vec<Memory>,
    capacity: usize,
    sample_size: usize,
    lr: f64,
    rng: StdRng,
    seen: u64,
    projections: usize,
}

impl AGem {
    /// Builds the baseline with a 2048-sample reservoir memory and a
    /// 256-sample reference draw.
    pub fn new(spec: ModelSpec, seed: u64) -> Self {
        Self {
            model: spec.build(seed),
            memory: Vec::new(),
            capacity: 2048,
            sample_size: 256,
            lr: crate::plain::PlainSgd::LEARNING_RATE,
            rng: StdRng::seed_from_u64(seed ^ 0xA6E),
            seen: 0,
            projections: 0,
        }
    }

    /// Number of updates that required projection so far.
    pub fn projections(&self) -> usize {
        self.projections
    }

    /// Reservoir sampling keeps the memory an unbiased sample of history.
    fn remember(&mut self, x: &Matrix, labels: &[usize]) {
        for (row, &label) in x.row_iter().zip(labels) {
            self.seen += 1;
            if self.memory.len() < self.capacity {
                self.memory.push(Memory { features: row.to_vec(), label });
            } else {
                let j = self.rng.random_range(0..self.seen);
                if (j as usize) < self.capacity {
                    self.memory[j as usize] = Memory { features: row.to_vec(), label };
                }
            }
        }
    }

    fn reference_gradient(&mut self) -> Option<Vec<f64>> {
        if self.memory.is_empty() {
            return None;
        }
        let n = self.sample_size.min(self.memory.len());
        let mut rows = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let idx = self.rng.random_range(0..self.memory.len());
            rows.push(self.memory[idx].features.clone());
            labels.push(self.memory[idx].label);
        }
        let mx = Matrix::from_rows(&rows);
        Some(self.model.gradient(&mx, &labels, None))
    }
}

impl StreamingLearner for AGem {
    fn name(&self) -> &'static str {
        "A-GEM"
    }

    fn infer(&mut self, x: &Matrix) -> Vec<usize> {
        self.model.predict(x)
    }

    fn train(&mut self, x: &Matrix, labels: &[usize]) {
        let mut grad = self.model.gradient(x, labels, None);
        if let Some(g_ref) = self.reference_gradient() {
            let dot = vector::dot(&grad, &g_ref);
            if dot < 0.0 {
                let ref_sq = vector::dot(&g_ref, &g_ref);
                if ref_sq > 1e-12 {
                    let scale = dot / ref_sq;
                    vector::axpy(&mut grad, -scale, &g_ref);
                    self.projections += 1;
                }
            }
        }
        let delta: Vec<f64> = grad.iter().map(|g| -self.lr * g).collect();
        self.model.apply_update(&delta);
        self.remember(x, labels);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freeway_streams::concept::{stream_rng, GmmConcept};

    #[test]
    fn learns_a_stationary_concept() {
        let mut rng = stream_rng(1);
        let concept = GmmConcept::random(5, 2, 2, 4.0, 0.5, &mut rng);
        let mut learner = AGem::new(ModelSpec::lr(5, 2), 0);
        for _ in 0..40 {
            let (x, y) = concept.sample_batch(128, &mut rng);
            learner.train(&x, &y);
        }
        let (x, y) = concept.sample_batch(256, &mut rng);
        let preds = learner.infer(&x);
        let acc = preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.8, "A-GEM accuracy {acc}");
    }

    #[test]
    fn projection_fires_on_conflicting_concepts() {
        let mut rng = stream_rng(2);
        // Concept A, then a concept with inverted labels in the same
        // region — gradients must conflict.
        let concept_a = GmmConcept::random(4, 2, 1, 3.0, 0.4, &mut rng);
        let mut learner = AGem::new(ModelSpec::lr(4, 2), 0);
        for _ in 0..20 {
            let (x, y) = concept_a.sample_batch(128, &mut rng);
            learner.train(&x, &y);
        }
        assert_eq!(learner.projections(), 0, "aligned gradients so far");
        for _ in 0..20 {
            let (x, y) = concept_a.sample_batch(128, &mut rng);
            let flipped: Vec<usize> = y.iter().map(|&l| 1 - l).collect();
            learner.train(&x, &flipped);
        }
        assert!(learner.projections() > 0, "label flip must trigger projection");
    }

    #[test]
    fn memory_respects_capacity() {
        let mut rng = stream_rng(3);
        let concept = GmmConcept::random(3, 2, 1, 2.0, 0.5, &mut rng);
        let mut learner = AGem::new(ModelSpec::lr(3, 2), 0);
        learner.capacity = 100;
        for _ in 0..20 {
            let (x, y) = concept.sample_batch(64, &mut rng);
            learner.train(&x, &y);
        }
        assert!(learner.memory.len() <= 100);
        assert_eq!(learner.seen, 20 * 64);
    }

    #[test]
    fn retains_old_concept_better_than_plain_on_interference() {
        // Train on A, then on interfering B; A-GEM should keep more A
        // accuracy than plain SGD.
        let mut rng = stream_rng(4);
        let concept_a = GmmConcept::random(4, 2, 1, 4.0, 0.4, &mut rng);
        let mut agem = AGem::new(ModelSpec::lr(4, 2), 0);
        let mut plain = crate::plain::PlainSgd::new(ModelSpec::lr(4, 2), 0);
        use crate::StreamingLearner as _;
        for _ in 0..30 {
            let (x, y) = concept_a.sample_batch(128, &mut rng);
            agem.train(&x, &y);
            plain.train(&x, &y);
        }
        // Interfering phase: same region, flipped labels.
        for _ in 0..6 {
            let (x, y) = concept_a.sample_batch(128, &mut rng);
            let flipped: Vec<usize> = y.iter().map(|&l| 1 - l).collect();
            agem.train(&x, &flipped);
            plain.train(&x, &flipped);
        }
        let (x, y) = concept_a.sample_batch(512, &mut rng);
        let acc = |preds: Vec<usize>| {
            preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64
        };
        let agem_acc = acc(agem.infer(&x));
        let plain_acc = acc(plain.infer(&x));
        assert!(agem_acc >= plain_acc, "A-GEM must forget less: {agem_acc} vs plain {plain_acc}");
    }
}
