//! Alink-style baseline: FTRL-proximal online updates.
//!
//! Alink "integrates FOBOS and RDA with logistic regression" (paper,
//! Appendix A); FTRL-proximal is the algorithm that unifies exactly those
//! two (McMahan 2011), and is what Alink's online-learning components
//! ship, so we drive the shared model substrate with our FTRL optimizer.

use crate::StreamingLearner;
use freeway_linalg::Matrix;
use freeway_ml::{Ftrl, ModelSpec, Trainer};

/// Alink-style streaming learner.
pub struct AlinkStyle {
    trainer: Trainer,
}

impl AlinkStyle {
    /// Builds the baseline with FTRL hyperparameters tuned for streaming
    /// classification (`alpha = 0.5`, light L1/L2).
    pub fn new(spec: ModelSpec, seed: u64) -> Self {
        Self {
            trainer: Trainer::new(spec.build(seed), Box::new(Ftrl::new(0.5, 1.0, 0.001, 0.001))),
        }
    }
}

impl StreamingLearner for AlinkStyle {
    fn name(&self) -> &'static str {
        "Alink"
    }

    fn infer(&mut self, x: &Matrix) -> Vec<usize> {
        self.trainer.model().predict(x)
    }

    fn train(&mut self, x: &Matrix, labels: &[usize]) {
        self.trainer.train_step(x, labels);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freeway_streams::concept::{stream_rng, GmmConcept};

    #[test]
    fn learns_a_stationary_concept() {
        let mut rng = stream_rng(1);
        let concept = GmmConcept::random(5, 2, 2, 4.0, 0.5, &mut rng);
        let mut learner = AlinkStyle::new(ModelSpec::lr(5, 2), 0);
        for _ in 0..40 {
            let (x, y) = concept.sample_batch(128, &mut rng);
            learner.train(&x, &y);
        }
        let (x, y) = concept.sample_batch(256, &mut rng);
        let preds = learner.infer(&x);
        let acc = preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.8, "Alink-style accuracy {acc}");
    }

    #[test]
    fn regularisation_keeps_irrelevant_weights_sparse() {
        // Feed a concept where only the first feature is informative; FTRL
        // should keep most mass on it.
        let mut learner = AlinkStyle::new(ModelSpec::lr(4, 2), 0);
        let rows: Vec<Vec<f64>> = (0..64)
            .map(|i| {
                let s = if i % 2 == 0 { 3.0 } else { -3.0 };
                vec![s, 0.0, 0.0, 0.0]
            })
            .collect();
        let x = Matrix::from_rows(&rows);
        let y: Vec<usize> = (0..64).map(|i| i % 2).collect();
        for _ in 0..50 {
            learner.train(&x, &y);
        }
        let params = learner.trainer.model().parameters();
        // Weight layout: 4 features x 2 classes. Informative rows are
        // indices 0..2; the rest should be (near-)zero under L1.
        let informative: f64 = params[0..2].iter().map(|w| w.abs()).sum();
        let rest: f64 = params[2..8].iter().map(|w| w.abs()).sum();
        assert!(informative > rest, "L1 must concentrate mass: {informative} vs {rest}");
    }
}
