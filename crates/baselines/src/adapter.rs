//! Adapter presenting the FreewayML learner through the shared
//! [`StreamingLearner`] interface, so the evaluation harness drives all
//! systems identically.

use crate::StreamingLearner;
use freeway_core::{FreewayConfig, Learner};
use freeway_linalg::Matrix;
use freeway_ml::ModelSpec;

/// FreewayML behind the baseline trait.
pub struct FreewaySystem {
    learner: Learner,
}

impl FreewaySystem {
    /// Wraps an already-configured learner.
    pub fn new(learner: Learner) -> Self {
        Self { learner }
    }

    /// Builds FreewayML with paper defaults for the given architecture.
    pub fn with_defaults(spec: ModelSpec, seed: u64) -> Self {
        let config = FreewayConfig { seed, ..Default::default() };
        Self { learner: Learner::new(spec, config) }
    }

    /// Builds FreewayML with an explicit configuration.
    pub fn with_config(spec: ModelSpec, config: FreewayConfig) -> Self {
        Self { learner: Learner::new(spec, config) }
    }

    /// Access to the wrapped learner (experiments read knowledge-space
    /// metrics and strategy statistics through this).
    pub fn learner(&self) -> &Learner {
        &self.learner
    }

    /// Mutable access to the wrapped learner.
    pub fn learner_mut(&mut self) -> &mut Learner {
        &mut self.learner
    }
}

impl StreamingLearner for FreewaySystem {
    fn name(&self) -> &'static str {
        "FreewayML"
    }

    fn infer(&mut self, x: &Matrix) -> Vec<usize> {
        self.learner.infer(x).predictions
    }

    fn train(&mut self, x: &Matrix, labels: &[usize]) {
        self.learner.train(x, labels);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freeway_streams::concept::{stream_rng, GmmConcept};

    #[test]
    fn adapter_trains_and_infers() {
        let mut rng = stream_rng(1);
        let concept = GmmConcept::random(5, 2, 2, 4.0, 0.5, &mut rng);
        let mut system = FreewaySystem::with_defaults(ModelSpec::lr(5, 2), 0);
        for _ in 0..25 {
            let (x, y) = concept.sample_batch(128, &mut rng);
            system.train(&x, &y);
        }
        let (x, y) = concept.sample_batch(256, &mut rng);
        let preds = system.infer(&x);
        let acc = preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.8, "FreewayML adapter accuracy {acc}");
        assert_eq!(system.name(), "FreewayML");
    }
}
