//! River-style baseline: streaming learner + ADWIN drift detection.
//!
//! River's canonical recipe for drifting streams pairs an incremental
//! model with a drift detector; when the detector fires, the model is
//! replaced by a fresh one that relearns the new concept. That reset is
//! the behaviour FreewayML's Table-I/Figure-11 comparisons exercise: it
//! adapts to sudden shifts (eventually) but forgets everything, so
//! reoccurring concepts must be relearned from scratch.

use crate::StreamingLearner;
use freeway_drift::Adwin;
use freeway_linalg::Matrix;
use freeway_ml::{ModelSpec, Sgd, Trainer};

/// River-style streaming learner with ADWIN-triggered resets.
pub struct RiverStyle {
    trainer: Trainer,
    adwin: Adwin,
    spec: ModelSpec,
    seed: u64,
    resets: usize,
}

impl RiverStyle {
    /// Builds the baseline.
    pub fn new(spec: ModelSpec, seed: u64) -> Self {
        Self {
            trainer: Trainer::new(
                spec.build(seed),
                Box::new(Sgd::new(crate::plain::PlainSgd::LEARNING_RATE)),
            ),
            adwin: Adwin::with_defaults(),
            spec,
            seed,
            resets: 0,
        }
    }

    /// Number of drift-triggered resets so far.
    pub fn resets(&self) -> usize {
        self.resets
    }
}

impl StreamingLearner for RiverStyle {
    fn name(&self) -> &'static str {
        "River"
    }

    fn infer(&mut self, x: &Matrix) -> Vec<usize> {
        self.trainer.model().predict(x)
    }

    fn train(&mut self, x: &Matrix, labels: &[usize]) {
        // Feed the detector per-sample 0/1 errors, the way River wires
        // ADWIN behind its classifiers.
        let preds = self.trainer.model().predict(x);
        let mut drift = false;
        for (p, t) in preds.iter().zip(labels) {
            if self.adwin.update(if p == t { 0.0 } else { 1.0 })
                && self.adwin.last_cut_was_increase()
            {
                // Only error *increases* indicate concept drift; decreases
                // are the model learning.
                drift = true;
            }
        }
        if drift {
            // Drift: discard the stale model, start fresh on this concept.
            self.resets += 1;
            self.trainer = Trainer::new(
                self.spec.build(self.seed.wrapping_add(self.resets as u64)),
                Box::new(Sgd::new(crate::plain::PlainSgd::LEARNING_RATE)),
            );
        }
        self.trainer.train_step(x, labels);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freeway_streams::concept::{stream_rng, GmmConcept};

    #[test]
    fn resets_on_persistent_error_jump() {
        let mut rng = stream_rng(1);
        let concept = GmmConcept::random(5, 2, 2, 4.0, 0.5, &mut rng);
        let mut learner = RiverStyle::new(ModelSpec::lr(5, 2), 0);
        for _ in 0..40 {
            let (x, y) = concept.sample_batch(128, &mut rng);
            learner.train(&x, &y);
        }
        assert_eq!(learner.resets(), 0, "no drift yet");
        // New concept: error rate jumps and stays high until relearned.
        let flipped = GmmConcept::random(5, 2, 2, 4.0, 0.5, &mut stream_rng(99));
        for _ in 0..40 {
            let (x, y) = flipped.sample_batch(128, &mut rng);
            learner.train(&x, &y);
        }
        assert!(learner.resets() >= 1, "ADWIN must fire on the concept swap");
        // And the fresh model learns the new concept.
        let (x, y) = flipped.sample_batch(256, &mut rng);
        let preds = learner.infer(&x);
        let acc = preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.7, "post-reset accuracy {acc}");
    }

    #[test]
    fn stable_stream_never_resets() {
        let mut rng = stream_rng(2);
        let concept = GmmConcept::random(5, 2, 2, 4.0, 0.5, &mut rng);
        let mut learner = RiverStyle::new(ModelSpec::lr(5, 2), 0);
        for _ in 0..60 {
            let (x, y) = concept.sample_batch(128, &mut rng);
            learner.train(&x, &y);
        }
        assert_eq!(learner.resets(), 0);
    }
}
