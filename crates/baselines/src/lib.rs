//! Re-implementations of the learning strategies of every baseline system
//! in the paper's evaluation (Appendix A):
//!
//! | Baseline     | Strategy reproduced                                          |
//! |--------------|--------------------------------------------------------------|
//! | Flink ML     | plain mini-batch SGD over watermark-aligned batches          |
//! | Spark MLlib  | mini-batch average-gradient updates with a decaying step size|
//! | Alink        | FTRL-family regularised online updates (FOBOS/RDA lineage)   |
//! | River        | streaming learner + ADWIN drift detector with model reset    |
//! | Camel        | similarity-based data selection + replay from a buffer       |
//! | A-GEM        | episodic gradient memory with conflict projection            |
//! | Hoeffding    | VFDT decision tree (extension; River's flagship classifier)  |
//! | NaiveBayes   | streaming Gaussian NB (extension; generative family)         |
//! | Bagging      | online / leveraging bagging (extension; Oza-Russell, Bifet)  |
//!
//! All baselines run on the same model/optimizer substrate as FreewayML
//! (`freeway-ml`), so Table-I comparisons isolate the learning *strategy*,
//! which is what the paper's claims are about. The shared
//! [`StreamingLearner`] trait is also implemented by
//! [`adapter::FreewaySystem`], the wrapper around the FreewayML learner,
//! so the evaluation harness treats every system uniformly.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod adapter;
pub mod agem;
pub mod alink;
pub mod bagging;
pub mod camel;
pub mod flinkml;
pub mod hoeffding;
pub mod naive_bayes;
pub mod plain;
pub mod river;
pub mod sparkml;

use freeway_linalg::Matrix;
use freeway_streams::Batch;

pub use adapter::FreewaySystem;
pub use agem::AGem;
pub use alink::AlinkStyle;
pub use bagging::OnlineBagging;
pub use camel::CamelStyle;
pub use flinkml::FlinkMlStyle;
pub use hoeffding::{HoeffdingBaseline, HoeffdingTree};
pub use naive_bayes::{GaussianNaiveBayes, NaiveBayesBaseline};
pub use plain::PlainSgd;
pub use river::RiverStyle;
pub use sparkml::SparkMlStyle;

/// A streaming learning system: the uniform interface the evaluation
/// harness drives for FreewayML and every baseline.
pub trait StreamingLearner: Send {
    /// System name as it appears in the paper's tables.
    fn name(&self) -> &'static str;

    /// Predicts hard labels for an inference batch.
    fn infer(&mut self, x: &Matrix) -> Vec<usize>;

    /// Incrementally updates on a labeled batch.
    fn train(&mut self, x: &Matrix, labels: &[usize]);

    /// Prequential step: infer, then train if labeled.
    fn process(&mut self, batch: &Batch) -> Vec<usize> {
        let preds = self.infer(&batch.x);
        if let Some(labels) = batch.labels.as_deref() {
            self.train(&batch.x, labels);
        }
        preds
    }
}

/// Builds a baseline by its paper name, for the experiment runners.
///
/// Recognised names: `flinkml`, `sparkmllib`, `alink`, `river`, `camel`,
/// `agem`, `plain`, `hoeffding`, `naivebayes`, `onlinebagging`,
/// `leveragingbagging`, `freewayml`.
///
/// # Panics
/// Panics on unknown names.
pub fn by_name(name: &str, spec: freeway_ml::ModelSpec, seed: u64) -> Box<dyn StreamingLearner> {
    match name.to_ascii_lowercase().as_str() {
        "flinkml" | "flink ml" => Box::new(FlinkMlStyle::new(spec, seed)),
        "sparkmllib" | "spark mllib" | "sparkml" => Box::new(SparkMlStyle::new(spec, seed)),
        "alink" => Box::new(AlinkStyle::new(spec, seed)),
        "river" => Box::new(RiverStyle::new(spec, seed)),
        "camel" => Box::new(CamelStyle::new(spec, seed)),
        "agem" | "a-gem" => Box::new(AGem::new(spec, seed)),
        "plain" => Box::new(PlainSgd::new(spec, seed)),
        "hoeffding" | "hoeffdingtree" => {
            Box::new(HoeffdingBaseline::new(spec.features(), spec.classes()))
        }
        "naivebayes" | "nb" => Box::new(NaiveBayesBaseline::new(spec.features(), spec.classes())),
        "onlinebagging" => Box::new(OnlineBagging::new(spec, 5, seed)),
        "leveragingbagging" => Box::new(OnlineBagging::leveraging(spec, 5, seed)),
        "freewayml" => Box::new(FreewaySystem::with_defaults(spec, seed)),
        other => panic!("unknown baseline {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freeway_ml::ModelSpec;

    #[test]
    fn by_name_builds_every_system() {
        for name in [
            "flinkml",
            "sparkmllib",
            "alink",
            "river",
            "camel",
            "agem",
            "plain",
            "hoeffding",
            "naivebayes",
            "onlinebagging",
            "leveragingbagging",
            "freewayml",
        ] {
            let learner = by_name(name, ModelSpec::lr(4, 2), 1);
            assert!(!learner.name().is_empty(), "{name} has a display name");
        }
    }

    #[test]
    #[should_panic(expected = "unknown baseline")]
    fn by_name_rejects_unknown() {
        by_name("gpt", ModelSpec::lr(2, 2), 0);
    }
}
