//! Online bagging (Oza & Russell 2001) and leveraging bagging with
//! ADWIN-triggered member replacement (Bifet et al. 2010).
//!
//! Online bagging simulates bootstrap resampling on a stream: each
//! ensemble member sees every example `k ~ Poisson(λ)` times. With
//! `λ = 1` this converges to classical bagging; leveraging bagging uses
//! `λ = 6` for more diversity and pairs each member with an ADWIN
//! detector that replaces it when its error drifts — River/MOA's
//! strongest general-purpose streaming ensemble, included here as an
//! extension baseline.

use crate::plain::PlainSgd;
use crate::StreamingLearner;
use freeway_drift::Adwin;
use freeway_linalg::Matrix;
use freeway_ml::{ModelSpec, Sgd, Trainer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples `k ~ Poisson(lambda)` by inversion (λ is small here).
fn poisson<R: Rng>(lambda: f64, rng: &mut R) -> usize {
    use rand::RngExt as _;
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.random_range(0.0..1.0f64);
        if p <= l || k > 64 {
            return k;
        }
        k += 1;
    }
}

struct Member {
    trainer: Trainer,
    adwin: Adwin,
}

/// Online bagging ensemble over the shared SGD substrate.
pub struct OnlineBagging {
    members: Vec<Member>,
    spec: ModelSpec,
    lambda: f64,
    /// Replace drifting members (leveraging-bagging behaviour).
    replace_on_drift: bool,
    rng: StdRng,
    replacements: usize,
    next_seed: u64,
}

impl OnlineBagging {
    /// Classic online bagging: `λ = 1`, no drift handling.
    pub fn new(spec: ModelSpec, members: usize, seed: u64) -> Self {
        Self::with_options(spec, members, 1.0, false, seed)
    }

    /// Leveraging bagging: `λ = 6` plus ADWIN-triggered member
    /// replacement.
    pub fn leveraging(spec: ModelSpec, members: usize, seed: u64) -> Self {
        Self::with_options(spec, members, 6.0, true, seed)
    }

    /// Fully parameterised constructor.
    ///
    /// # Panics
    /// Panics unless `members >= 1` and `lambda > 0`.
    pub fn with_options(
        spec: ModelSpec,
        members: usize,
        lambda: f64,
        replace_on_drift: bool,
        seed: u64,
    ) -> Self {
        assert!(members >= 1, "need at least one member");
        assert!(lambda > 0.0, "lambda must be positive");
        let member_list = (0..members)
            .map(|i| Member {
                trainer: Trainer::new(
                    spec.build(seed.wrapping_add(i as u64)),
                    Box::new(Sgd::new(PlainSgd::LEARNING_RATE)),
                ),
                adwin: Adwin::with_defaults(),
            })
            .collect();
        Self {
            members: member_list,
            spec,
            lambda,
            replace_on_drift,
            rng: StdRng::seed_from_u64(seed ^ 0xBA66),
            replacements: 0,
            next_seed: seed.wrapping_add(members as u64),
        }
    }

    /// Ensemble size.
    pub fn num_members(&self) -> usize {
        self.members.len()
    }

    /// Drift-triggered member replacements so far.
    pub fn replacements(&self) -> usize {
        self.replacements
    }
}

impl StreamingLearner for OnlineBagging {
    fn name(&self) -> &'static str {
        if self.replace_on_drift {
            "LeveragingBagging"
        } else {
            "OnlineBagging"
        }
    }

    fn infer(&mut self, x: &Matrix) -> Vec<usize> {
        // Majority vote over members.
        let classes = self.spec.classes();
        let mut votes = vec![vec![0usize; classes]; x.rows()];
        for member in &self.members {
            for (r, pred) in member.trainer.model().predict(x).into_iter().enumerate() {
                votes[r][pred] += 1;
            }
        }
        votes
            .iter()
            .map(|v| v.iter().enumerate().max_by_key(|(_, &c)| c).map_or(0, |(class, _)| class))
            .collect()
    }

    fn train(&mut self, x: &Matrix, labels: &[usize]) {
        for member_idx in 0..self.members.len() {
            // Poisson-weighted view of the batch: each row is included
            // k ~ Poisson(λ) times (as a sample weight).
            let weights: Vec<f64> =
                (0..x.rows()).map(|_| poisson(self.lambda, &mut self.rng) as f64).collect();
            if weights.iter().all(|&w| w == 0.0) {
                continue;
            }

            if self.replace_on_drift {
                // Feed per-batch error to the member's detector first.
                let preds = self.members[member_idx].trainer.model().predict(x);
                let mut drift = false;
                for (p, t) in preds.iter().zip(labels) {
                    if self.members[member_idx].adwin.update(if p == t { 0.0 } else { 1.0 })
                        && self.members[member_idx].adwin.last_cut_was_increase()
                    {
                        drift = true;
                    }
                }
                if drift {
                    self.next_seed = self.next_seed.wrapping_add(1);
                    self.members[member_idx] = Member {
                        trainer: Trainer::new(
                            self.spec.build(self.next_seed),
                            Box::new(Sgd::new(PlainSgd::LEARNING_RATE)),
                        ),
                        adwin: Adwin::with_defaults(),
                    };
                    self.replacements += 1;
                }
            }

            self.members[member_idx].trainer.train_weighted_step(x, labels, Some(&weights));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freeway_streams::concept::{stream_rng, GmmConcept};

    #[test]
    fn poisson_mean_is_close_to_lambda() {
        let mut rng = StdRng::seed_from_u64(1);
        for lambda in [0.5, 1.0, 6.0] {
            let n = 20_000;
            let total: usize = (0..n).map(|_| poisson(lambda, &mut rng)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < 0.1 * lambda.max(1.0),
                "λ={lambda}: sample mean {mean}"
            );
        }
    }

    #[test]
    fn bagging_learns_and_votes() {
        let mut rng = stream_rng(2);
        let concept = GmmConcept::random(5, 2, 2, 4.0, 0.6, &mut rng);
        let mut bag = OnlineBagging::new(ModelSpec::lr(5, 2), 5, 0);
        for _ in 0..30 {
            let (x, y) = concept.sample_batch(128, &mut rng);
            bag.train(&x, &y);
        }
        let (x, y) = concept.sample_batch(256, &mut rng);
        let preds = bag.infer(&x);
        let acc = preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.85, "bagged LR accuracy {acc}");
        assert_eq!(bag.num_members(), 5);
        assert_eq!(bag.name(), "OnlineBagging");
    }

    #[test]
    fn leveraging_bagging_replaces_members_on_concept_swap() {
        let mut rng = stream_rng(3);
        let concept_a = GmmConcept::random(5, 2, 1, 4.0, 0.5, &mut rng);
        let mut bag = OnlineBagging::leveraging(ModelSpec::lr(5, 2), 3, 0);
        for _ in 0..40 {
            let (x, y) = concept_a.sample_batch(128, &mut rng);
            bag.train(&x, &y);
        }
        assert_eq!(bag.replacements(), 0, "no drift yet");
        // Swap to a label-inverted world: errors surge, ADWIN fires.
        for _ in 0..40 {
            let (x, y) = concept_a.sample_batch(128, &mut rng);
            let flipped: Vec<usize> = y.iter().map(|&l| 1 - l).collect();
            bag.train(&x, &flipped);
        }
        assert!(bag.replacements() > 0, "drift must replace members");
        assert_eq!(bag.name(), "LeveragingBagging");
    }

    #[test]
    fn ensemble_beats_or_matches_single_member_on_noisy_data() {
        let mut rng = stream_rng(4);
        let concept = GmmConcept::random(4, 2, 2, 3.0, 1.2, &mut rng);
        let mut bag = OnlineBagging::new(ModelSpec::lr(4, 2), 7, 1);
        let mut single = PlainSgd::new(ModelSpec::lr(4, 2), 1);
        for _ in 0..30 {
            let (x, y) = concept.sample_batch(96, &mut rng);
            bag.train(&x, &y);
            single.train(&x, &y);
        }
        let (x, y) = concept.sample_batch(512, &mut rng);
        let acc = |preds: Vec<usize>| {
            preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64
        };
        let bag_acc = acc(bag.infer(&x));
        let single_acc = acc(single.infer(&x));
        assert!(
            bag_acc >= single_acc - 0.02,
            "ensemble {bag_acc} must not trail single {single_acc} materially"
        );
    }
}
