//! Spark MLlib-style baseline: averaged-gradient mini-batch updates with
//! the `lr / sqrt(t)` step-size schedule of StreamingLogisticRegression /
//! StreamingLinearAlgorithm.

use crate::StreamingLearner;
use freeway_linalg::Matrix;
use freeway_ml::{Model, ModelSpec};

/// Spark MLlib-style streaming learner.
pub struct SparkMlStyle {
    model: Box<dyn Model>,
    base_lr: f64,
    t: u64,
}

impl SparkMlStyle {
    /// Builds the baseline.
    pub fn new(spec: ModelSpec, seed: u64) -> Self {
        Self { model: spec.build(seed), base_lr: 0.5, t: 0 }
    }

    fn step_size(&self) -> f64 {
        self.base_lr / (self.t as f64).sqrt().max(1.0)
    }
}

impl StreamingLearner for SparkMlStyle {
    fn name(&self) -> &'static str {
        "Spark MLlib"
    }

    fn infer(&mut self, x: &Matrix) -> Vec<usize> {
        self.model.predict(x)
    }

    fn train(&mut self, x: &Matrix, labels: &[usize]) {
        self.t += 1;
        let lr = self.step_size();
        // MLlib averages per-sample gradients across the mini-batch —
        // which is exactly what our gradient() returns — then takes one
        // decayed step.
        let grad = self.model.gradient(x, labels, None);
        let delta: Vec<f64> = grad.iter().map(|g| -lr * g).collect();
        self.model.apply_update(&delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freeway_streams::concept::{stream_rng, GmmConcept};

    #[test]
    fn step_size_decays() {
        let mut learner = SparkMlStyle::new(ModelSpec::lr(3, 2), 0);
        learner.t = 1;
        let s1 = learner.step_size();
        learner.t = 100;
        let s100 = learner.step_size();
        assert!((s1 - 0.5).abs() < 1e-12);
        assert!((s100 - 0.05).abs() < 1e-12);
    }

    #[test]
    fn learns_but_adapts_slowly_late_in_the_stream() {
        let mut rng = stream_rng(1);
        let concept = GmmConcept::random(4, 2, 2, 4.0, 0.5, &mut rng);
        let mut learner = SparkMlStyle::new(ModelSpec::lr(4, 2), 0);
        for _ in 0..50 {
            let (x, y) = concept.sample_batch(128, &mut rng);
            learner.train(&x, &y);
        }
        let (x, y) = concept.sample_batch(256, &mut rng);
        let preds = learner.infer(&x);
        let acc = preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.8, "Spark-style accuracy {acc}");
        // Late-stream updates are tiny — the decayed-lr signature.
        let before = learner.model.parameters();
        let (x, y) = concept.sample_batch(128, &mut rng);
        learner.train(&x, &y);
        let after = learner.model.parameters();
        let moved: f64 = before.iter().zip(&after).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
        assert!(moved < 0.05, "late updates should be small, moved {moved}");
    }
}
