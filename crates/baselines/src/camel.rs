//! Camel-style baseline: similarity-based data selection + replay.
//!
//! Camel (SIGMOD '22) manages the training data of a stream learner:
//! it keeps a buffer of past data and, for each incoming batch, selects
//! buffered samples *similar to the current distribution* to replay
//! alongside the fresh data — raising effective data quality and
//! mitigating forgetting, at the cost of extra gradient work per batch
//! (which is why Camel trails in the paper's throughput study).

use crate::StreamingLearner;
use freeway_linalg::{vector, Matrix};
use freeway_ml::{ModelSpec, Sgd, Trainer};
use std::collections::VecDeque;

/// One buffered labeled sample.
#[derive(Clone)]
struct Sample {
    features: Vec<f64>,
    label: usize,
}

/// Camel-style streaming learner.
pub struct CamelStyle {
    trainer: Trainer,
    buffer: VecDeque<Sample>,
    capacity: usize,
    replay_per_batch: usize,
}

impl CamelStyle {
    /// Builds the baseline with a 4096-sample buffer replaying up to 25 %
    /// of each batch.
    pub fn new(spec: ModelSpec, seed: u64) -> Self {
        Self {
            trainer: Trainer::new(
                spec.build(seed),
                Box::new(Sgd::new(crate::plain::PlainSgd::LEARNING_RATE)),
            ),
            buffer: VecDeque::new(),
            capacity: 4096,
            replay_per_batch: 256,
        }
    }

    /// Selects the buffered samples nearest to the batch mean — the
    /// "select data similar to the current distribution" step.
    fn select_similar(&self, batch_mean: &[f64], count: usize) -> Vec<Sample> {
        let mut scored: Vec<(f64, &Sample)> = self
            .buffer
            .iter()
            .map(|s| (vector::euclidean_distance(&s.features, batch_mean), s))
            .collect();
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite distances"));
        scored.into_iter().take(count).map(|(_, s)| s.clone()).collect()
    }
}

impl StreamingLearner for CamelStyle {
    fn name(&self) -> &'static str {
        "Camel"
    }

    fn infer(&mut self, x: &Matrix) -> Vec<usize> {
        self.trainer.model().predict(x)
    }

    fn train(&mut self, x: &Matrix, labels: &[usize]) {
        // Augment the batch with similar replayed samples.
        let mean = x.column_means();
        let replay = self.select_similar(&mean, self.replay_per_batch.min(x.rows() / 4));
        if replay.is_empty() {
            self.trainer.train_step(x, labels);
        } else {
            let replay_rows: Vec<Vec<f64>> = replay.iter().map(|s| s.features.clone()).collect();
            let replay_x = Matrix::from_rows(&replay_rows);
            let combined = x.vstack(&replay_x);
            let mut combined_labels = labels.to_vec();
            combined_labels.extend(replay.iter().map(|s| s.label));
            self.trainer.train_step(&combined, &combined_labels);
        }
        // Admit fresh samples to the buffer (every 4th keeps it diverse
        // without ballooning the cost).
        for (row, &label) in x.row_iter().zip(labels).step_by(4) {
            if self.buffer.len() == self.capacity {
                self.buffer.pop_front();
            }
            self.buffer.push_back(Sample { features: row.to_vec(), label });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use freeway_streams::concept::{stream_rng, GmmConcept};

    #[test]
    fn learns_and_buffers() {
        let mut rng = stream_rng(1);
        let concept = GmmConcept::random(5, 2, 2, 4.0, 0.5, &mut rng);
        let mut learner = CamelStyle::new(ModelSpec::lr(5, 2), 0);
        for _ in 0..30 {
            let (x, y) = concept.sample_batch(128, &mut rng);
            learner.train(&x, &y);
        }
        assert!(!learner.buffer.is_empty(), "buffer fills during training");
        let (x, y) = concept.sample_batch(256, &mut rng);
        let preds = learner.infer(&x);
        let acc = preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.8, "Camel-style accuracy {acc}");
    }

    #[test]
    fn selection_prefers_similar_samples() {
        let mut learner = CamelStyle::new(ModelSpec::lr(2, 2), 0);
        // Seed the buffer with two groups.
        for i in 0..20 {
            learner.buffer.push_back(Sample { features: vec![0.0, i as f64 * 0.01], label: 0 });
            learner.buffer.push_back(Sample { features: vec![50.0, i as f64 * 0.01], label: 1 });
        }
        let selected = learner.select_similar(&[0.1, 0.0], 10);
        assert!(
            selected.iter().all(|s| s.features[0] < 1.0),
            "all selected samples must come from the nearby group"
        );
    }

    #[test]
    fn buffer_respects_capacity() {
        let mut rng = stream_rng(2);
        let concept = GmmConcept::random(3, 2, 1, 2.0, 0.5, &mut rng);
        let mut learner = CamelStyle::new(ModelSpec::lr(3, 2), 0);
        learner.capacity = 50;
        for _ in 0..30 {
            let (x, y) = concept.sample_batch(128, &mut rng);
            learner.train(&x, &y);
        }
        assert!(learner.buffer.len() <= 50);
    }
}
