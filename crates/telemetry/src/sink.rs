//! Event sinks: where emitted [`TelemetryEvent`]s go.

use crate::event::TelemetryEvent;
use parking_lot::Mutex;

/// Destination for structured events.
///
/// Implementations must be cheap and non-blocking: `record` is called from
/// the streaming hot path (under the learner's train/infer loop), so a sink
/// that allocates or does I/O per event will show up in throughput. The
/// bundled [`RecordingSink`] preallocates its buffer and only moves a `Copy`
/// value under a short mutex.
pub trait TelemetrySink: Send + Sync {
    /// Accepts one event.
    fn record(&self, event: &TelemetryEvent);

    /// Copy of every retained event, in emission order. Sinks that do not
    /// retain events return an empty vec.
    fn events(&self) -> Vec<TelemetryEvent> {
        Vec::new()
    }

    /// Number of events dropped because the sink was full.
    fn dropped(&self) -> u64 {
        0
    }
}

/// Sink that discards every event.
///
/// Useful when only the metrics side of telemetry is wanted.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {
    fn record(&self, _event: &TelemetryEvent) {}
}

struct RecordingBuf {
    events: Vec<TelemetryEvent>,
    dropped: u64,
}

/// Bounded in-memory sink that retains events for later inspection.
///
/// The buffer is preallocated to `capacity`, so recording below capacity
/// never allocates; once full, further events are counted as dropped
/// instead of growing the buffer. Callers keep their own `Arc` to the sink
/// and read the timeline back with [`RecordingSink::events`].
pub struct RecordingSink {
    capacity: usize,
    buf: Mutex<RecordingBuf>,
}

impl RecordingSink {
    /// Default retention when using [`RecordingSink::new`].
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// Creates a sink retaining up to [`Self::DEFAULT_CAPACITY`] events.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// Creates a sink retaining up to `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            capacity,
            buf: Mutex::new(RecordingBuf { events: Vec::with_capacity(capacity), dropped: 0 }),
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.lock().events.len()
    }

    /// Whether no events have been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clears retained events and the dropped counter.
    pub fn clear(&self) {
        let mut buf = self.buf.lock();
        buf.events.clear();
        buf.dropped = 0;
    }
}

impl Default for RecordingSink {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for RecordingSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let buf = self.buf.lock();
        f.debug_struct("RecordingSink")
            .field("capacity", &self.capacity)
            .field("len", &buf.events.len())
            .field("dropped", &buf.dropped)
            .finish()
    }
}

impl TelemetrySink for RecordingSink {
    fn record(&self, event: &TelemetryEvent) {
        let mut buf = self.buf.lock();
        if buf.events.len() < self.capacity {
            buf.events.push(*event);
        } else {
            buf.dropped += 1;
        }
    }

    fn events(&self) -> Vec<TelemetryEvent> {
        self.buf.lock().events.clone()
    }

    fn dropped(&self) -> u64 {
        self.buf.lock().dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recording_sink_bounds_retention() {
        let sink = RecordingSink::with_capacity(2);
        for seq in 0..5 {
            sink.record(&TelemetryEvent::InferenceDegraded { seq, strategy: "t" });
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 3);
        assert_eq!(sink.events()[0].seq(), Some(0));
        sink.clear();
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 0);
    }
}
