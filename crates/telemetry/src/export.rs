//! Exporters: Prometheus text rendering and JSON snapshots.

use crate::metrics::MetricsSnapshot;
use crate::{Telemetry, TelemetryEvent};
use serde::Serialize;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Full observability state at one point in time: every metric plus the
/// retained event timeline.
#[derive(Clone, Debug, Serialize)]
pub struct TelemetrySnapshot {
    /// Metric values (counters, gauges, histograms).
    pub metrics: MetricsSnapshot,
    /// Retained events in emission order.
    pub events: Vec<TelemetryEvent>,
    /// Events the sink dropped because it was full.
    pub dropped_events: u64,
}

impl TelemetrySnapshot {
    /// Captures the current state of `telemetry`.
    ///
    /// Disabled telemetry yields an empty snapshot.
    pub fn capture(telemetry: &Telemetry) -> Self {
        Self {
            metrics: telemetry.metrics(),
            events: telemetry.events(),
            dropped_events: telemetry.dropped_events(),
        }
    }

    /// Pretty-printed JSON rendering of the whole snapshot.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).unwrap_or_else(|_| String::from("{}"))
    }

    /// JSON rendering with wall-clock-dependent fields removed.
    ///
    /// Stage-timing histograms are the only nondeterministic metrics; with
    /// them stripped, a fixed-seed single-threaded run produces
    /// byte-identical output across invocations.
    pub fn deterministic_json(&self) -> String {
        let stripped = Self {
            metrics: MetricsSnapshot {
                counters: self.metrics.counters.clone(),
                gauges: self.metrics.gauges.clone(),
                histograms: BTreeMap::new(),
            },
            events: self.events.clone(),
            dropped_events: self.dropped_events,
        };
        stripped.to_json()
    }

    /// Writes [`Self::to_json`] to `path`, creating parent directories.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(path, self.to_json())
    }
}

/// Renders a metrics snapshot as a Prometheus text-format page.
pub fn render_prometheus(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, hist) in &snapshot.histograms {
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (bound, count) in hist.bounds.iter().zip(&hist.buckets) {
            cumulative += count;
            let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", hist.count);
        let _ = writeln!(out, "{name}_sum {}", hist.sum);
        let _ = writeln!(out, "{name}_count {}", hist.count);
    }
    out
}

/// Writes the Prometheus text page for `telemetry` to `path`, creating
/// parent directories.
pub fn write_prometheus(telemetry: &Telemetry, path: &Path) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    std::fs::write(path, render_prometheus(&telemetry.metrics()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RecordingSink, Stage};
    use std::sync::Arc;

    #[test]
    fn snapshot_roundtrip_and_prometheus_text() {
        let sink = Arc::new(RecordingSink::new());
        let telemetry = Telemetry::attached(sink);
        telemetry.batch_started(3);
        telemetry.emit(TelemetryEvent::CheckpointWritten { seq: 3, persisted: false });
        drop(telemetry.time(Stage::Train));

        let snapshot = TelemetrySnapshot::capture(&telemetry);
        assert_eq!(snapshot.events.len(), 1);
        let json = snapshot.to_json();
        assert!(json.contains("CheckpointWritten"), "{json}");
        assert!(json.contains("freeway_batches_total"), "{json}");

        let det = snapshot.deterministic_json();
        assert!(!det.contains("freeway_stage_train_seconds"), "{det}");

        let page = render_prometheus(&telemetry.metrics());
        assert!(page.contains("# TYPE freeway_batches_total counter"), "{page}");
        assert!(page.contains("freeway_stage_train_seconds_count 1"), "{page}");
    }
}
