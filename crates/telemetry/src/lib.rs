//! Observability layer for the FreewayML runtime: a lock-cheap metrics
//! registry, a structured event stream, and per-stage timing spans.
//!
//! The central type is [`Telemetry`], a cheaply clonable handle threaded
//! through the learner, pipeline, supervisor, and drift machinery at
//! construction time (via the pipeline builder). It has two states:
//!
//! - **Disabled** ([`Telemetry::disabled`], the default): every operation
//!   is a branch on a `None` and returns immediately — no clock reads, no
//!   atomics, no allocation. This is the zero-cost path the hot-loop
//!   regression tests pin down.
//! - **Attached** ([`Telemetry::attached`]): metrics update via relaxed
//!   atomics, and events are forwarded to a [`TelemetrySink`]. Nothing on
//!   the hot path allocates; the bundled [`RecordingSink`] preallocates its
//!   buffer and events themselves are `Copy`.
//!
//! Exporters ([`TelemetrySnapshot`], [`render_prometheus`]) turn the
//! registry and retained events into a JSON snapshot or a Prometheus-style
//! text page.

#![warn(missing_docs)]
#![warn(clippy::all)]

mod event;
mod export;
mod metrics;
mod sink;

pub use event::{EventKind, TelemetryEvent};
pub use export::{render_prometheus, write_prometheus, TelemetrySnapshot};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot,
    DURATION_SECONDS_BOUNDS, LABEL_LAG_BATCHES_BOUNDS,
};
pub use sink::{NoopSink, RecordingSink, TelemetrySink};

/// Re-export of the JSON substrate so downstream tests and tools can
/// parse exported snapshots without declaring their own dependency.
pub use serde_json;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Pipeline stage identifiers for timing spans, in stream order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Stage {
    /// Batch admission: guard checks and handoff into the worker queue.
    Ingest,
    /// PCA projection of the batch mean (paper Eqn 6 input).
    PcaProject,
    /// Shift-graph distance and severity computation (Eqns 6–10).
    Shift,
    /// Pattern classification and strategy selection.
    Select,
    /// Model training, including window maintenance.
    Train,
    /// Prediction, including severe-shift handling.
    Infer,
}

impl Stage {
    /// Every stage, in histogram-index order.
    pub const ALL: [Stage; 6] =
        [Stage::Ingest, Stage::PcaProject, Stage::Shift, Stage::Select, Stage::Train, Stage::Infer];

    /// Snake-case name used in metric names.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Ingest => "ingest",
            Stage::PcaProject => "pca_project",
            Stage::Shift => "shift",
            Stage::Select => "select",
            Stage::Train => "train",
            Stage::Infer => "infer",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Ingest => 0,
            Stage::PcaProject => 1,
            Stage::Shift => 2,
            Stage::Select => 3,
            Stage::Train => 4,
            Stage::Infer => 5,
        }
    }
}

struct Inner {
    sink: Arc<dyn TelemetrySink>,
    registry: MetricsRegistry,
    /// Sequence number of the batch currently flowing through the learner;
    /// lets deep call sites (windows, knowledge store) stamp events without
    /// having the batch in hand.
    seq: AtomicU64,
    /// Per-kind event counters, indexed by `EventKind::index()`.
    event_counters: Vec<Counter>,
    /// Per-stage duration histograms, indexed by `Stage::index()`.
    stage_histograms: Vec<Histogram>,
    batches: Counter,
    shift_severity: Gauge,
    shift_distance: Gauge,
    window_disorder: Gauge,
}

/// Cheaply clonable observability handle.
///
/// See the [crate docs](crate) for the disabled/attached contract. All
/// methods are safe to call from any thread.
#[derive(Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry").field("enabled", &self.enabled()).finish()
    }
}

impl Telemetry {
    /// A handle whose every operation is a no-op.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A live handle forwarding events to `sink`, with the well-known
    /// metrics (batch counter, per-event counters, stage histograms,
    /// shift/disorder gauges) pre-registered.
    pub fn attached(sink: Arc<dyn TelemetrySink>) -> Self {
        let registry = MetricsRegistry::default();
        let event_counters = EventKind::ALL
            .iter()
            .map(|kind| registry.counter(&format!("freeway_events_{}_total", kind.metric_name())))
            .collect();
        let stage_histograms = Stage::ALL
            .iter()
            .map(|stage| {
                registry.histogram(
                    &format!("freeway_stage_{}_seconds", stage.name()),
                    DURATION_SECONDS_BOUNDS,
                )
            })
            .collect();
        let batches = registry.counter("freeway_batches_total");
        let shift_severity = registry.gauge("freeway_shift_severity");
        let shift_distance = registry.gauge("freeway_shift_distance");
        let window_disorder = registry.gauge("freeway_window_disorder");
        Self {
            inner: Some(Arc::new(Inner {
                sink,
                registry,
                seq: AtomicU64::new(0),
                event_counters,
                stage_histograms,
                batches,
                shift_severity,
                shift_distance,
                window_disorder,
            })),
        }
    }

    /// Convenience: a live handle backed by a fresh [`RecordingSink`].
    ///
    /// Returns the handle and the sink for reading the timeline back.
    pub fn recording() -> (Self, Arc<RecordingSink>) {
        let sink = Arc::new(RecordingSink::new());
        (Self::attached(sink.clone()), sink)
    }

    /// Whether this handle is live.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Marks the start of a batch: stores its sequence number and bumps the
    /// batch counter.
    #[inline]
    pub fn batch_started(&self, seq: u64) {
        if let Some(inner) = &self.inner {
            inner.seq.store(seq, Ordering::Relaxed);
            inner.batches.inc();
        }
    }

    /// Sequence number of the batch currently in flight (0 when disabled).
    #[inline]
    pub fn seq(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.seq.load(Ordering::Relaxed))
    }

    /// Emits one event: bumps its per-kind counter and forwards it to the
    /// sink. No-op when disabled.
    #[inline]
    pub fn emit(&self, event: TelemetryEvent) {
        if let Some(inner) = &self.inner {
            inner.event_counters[event.kind().index()].inc();
            inner.sink.record(&event);
        }
    }

    /// Updates the shift gauges with the latest measurement.
    #[inline]
    pub fn record_shift(&self, severity: f64, distance: f64) {
        if let Some(inner) = &self.inner {
            inner.shift_severity.set(severity);
            inner.shift_distance.set(distance);
        }
    }

    /// Updates the window-disorder gauge.
    #[inline]
    pub fn record_disorder(&self, disorder: f64) {
        if let Some(inner) = &self.inner {
            inner.window_disorder.set(disorder);
        }
    }

    /// Starts a timing span for `stage`; the elapsed time is recorded into
    /// the stage histogram when the returned guard drops. When disabled,
    /// no clock is read.
    #[inline]
    #[must_use = "the span measures until it is dropped"]
    pub fn time(&self, stage: Stage) -> StageSpan {
        StageSpan {
            active: self
                .inner
                .as_ref()
                .map(|i| (i.stage_histograms[stage.index()].clone(), Instant::now())),
        }
    }

    /// Get-or-create a counter in this handle's registry. Returns a
    /// detached no-op handle when disabled.
    pub fn counter(&self, name: &str) -> Counter {
        self.inner.as_ref().map_or_else(Counter::default, |i| i.registry.counter(name))
    }

    /// Get-or-create a gauge in this handle's registry. Returns a detached
    /// no-op handle when disabled.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner.as_ref().map_or_else(Gauge::default, |i| i.registry.gauge(name))
    }

    /// Get-or-create a histogram in this handle's registry. Returns a
    /// detached no-op handle when disabled.
    pub fn histogram(&self, name: &str, bounds: &'static [f64]) -> Histogram {
        self.inner.as_ref().map_or_else(Histogram::default, |i| i.registry.histogram(name, bounds))
    }

    /// Point-in-time copy of every metric (empty when disabled).
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.as_ref().map_or_else(MetricsSnapshot::default, |i| i.registry.snapshot())
    }

    /// Copy of the sink's retained events (empty when disabled or when the
    /// sink does not retain).
    pub fn events(&self) -> Vec<TelemetryEvent> {
        self.inner.as_ref().map_or_else(Vec::new, |i| i.sink.events())
    }

    /// Events the sink dropped because it was full.
    pub fn dropped_events(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.sink.dropped())
    }

    /// Captures a full [`TelemetrySnapshot`] (metrics + events).
    pub fn snapshot(&self) -> TelemetrySnapshot {
        TelemetrySnapshot::capture(self)
    }

    /// Renders the metrics as a Prometheus text-format page.
    pub fn render_prometheus(&self) -> String {
        render_prometheus(&self.metrics())
    }
}

/// Drop guard returned by [`Telemetry::time`]; records the elapsed stage
/// duration into the stage histogram on drop.
#[derive(Debug)]
pub struct StageSpan {
    active: Option<(Histogram, Instant)>,
}

impl Drop for StageSpan {
    fn drop(&mut self) {
        if let Some((histogram, start)) = self.active.take() {
            histogram.record(start.elapsed().as_secs_f64());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_is_inert() {
        let telemetry = Telemetry::disabled();
        assert!(!telemetry.enabled());
        telemetry.batch_started(9);
        assert_eq!(telemetry.seq(), 0);
        telemetry.emit(TelemetryEvent::CheckpointRestored { seq: 1 });
        telemetry.record_shift(1.0, 2.0);
        drop(telemetry.time(Stage::Infer));
        assert!(telemetry.events().is_empty());
        assert!(telemetry.metrics().counters.is_empty());
    }

    #[test]
    fn attached_handle_counts_events_and_batches() {
        let (telemetry, sink) = Telemetry::recording();
        telemetry.batch_started(5);
        assert_eq!(telemetry.seq(), 5);
        telemetry.emit(TelemetryEvent::WorkerRestarted { restarts: 1, lost_in_flight: 2 });
        telemetry.emit(TelemetryEvent::WorkerRestarted { restarts: 2, lost_in_flight: 0 });
        let metrics = telemetry.metrics();
        assert_eq!(metrics.counters["freeway_batches_total"], 1);
        assert_eq!(metrics.counters["freeway_events_worker_restarted_total"], 2);
        assert_eq!(sink.len(), 2);
    }

    #[test]
    fn spans_record_into_stage_histograms() {
        let (telemetry, _sink) = Telemetry::recording();
        {
            let _span = telemetry.time(Stage::Select);
        }
        let metrics = telemetry.metrics();
        assert_eq!(metrics.histograms["freeway_stage_select_seconds"].count, 1);
    }

    #[test]
    fn clones_share_state() {
        let (telemetry, _sink) = Telemetry::recording();
        let clone = telemetry.clone();
        clone.batch_started(11);
        assert_eq!(telemetry.seq(), 11);
    }
}
